// DTD parsing and validation (the subset used by data-exchange DTDs like the
// paper's Fig. 2): <!ELEMENT> declarations with EMPTY / ANY / (#PCDATA) /
// mixed / children content models built from sequences, choices, and the
// ? * + occurrence operators. <!ATTLIST> declarations are parsed and
// ignored (attribute validation is out of scope for this reproduction).
#ifndef SILKROUTE_XML_DTD_H_
#define SILKROUTE_XML_DTD_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/reader.h"

namespace silkroute::xml {

struct ContentParticle {
  enum class Kind { kName, kSequence, kChoice };
  enum class Occurrence { kOne, kOptional, kStar, kPlus };

  Kind kind = Kind::kName;
  Occurrence occurrence = Occurrence::kOne;
  std::string name;                        // for kName
  std::vector<ContentParticle> children;   // for kSequence / kChoice

  std::string ToString() const;
};

struct ElementDecl {
  enum class Category { kEmpty, kAny, kPcdata, kMixed, kChildren };

  std::string name;
  Category category = Category::kAny;
  ContentParticle content;               // for kChildren
  std::vector<std::string> mixed_names;  // for kMixed

  std::string ToString() const;
};

class Dtd {
 public:
  Status AddElement(ElementDecl decl);
  bool HasElement(const std::string& name) const;
  Result<const ElementDecl*> GetElement(const std::string& name) const;
  size_t num_elements() const { return elements_.size(); }

  /// Validates `root` and its subtree. Element content models are matched
  /// with an NFA-style position-set simulation, so `a*` over thousands of
  /// children is linear.
  Status Validate(const XmlNode& root) const;

 private:
  std::map<std::string, ElementDecl> elements_;
};

/// Parses DTD text ("<!ELEMENT supplier (name, nation, part*)> ...").
Result<Dtd> ParseDtd(std::string_view text);

}  // namespace silkroute::xml

#endif  // SILKROUTE_XML_DTD_H_
