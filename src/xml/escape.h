// XML text escaping.
#ifndef SILKROUTE_XML_ESCAPE_H_
#define SILKROUTE_XML_ESCAPE_H_

#include <string>
#include <string_view>

namespace silkroute::xml {

/// Escapes &, <, > for element text content.
std::string EscapeText(std::string_view text);

/// Escapes &, <, >, ", ' for attribute values.
std::string EscapeAttribute(std::string_view text);

/// Append-style variants writing straight into `*out` — the buffered
/// XmlWriter hot path, which must not pay a temporary string per token.
/// Clean runs between special characters are appended in bulk.
void AppendEscapedText(std::string_view text, std::string* out);
void AppendEscapedAttribute(std::string_view text, std::string* out);

/// Reverses EscapeText/EscapeAttribute (handles the five standard entities
/// and decimal/hex character references).
std::string Unescape(std::string_view text);

}  // namespace silkroute::xml

#endif  // SILKROUTE_XML_ESCAPE_H_
