// XML text escaping.
#ifndef SILKROUTE_XML_ESCAPE_H_
#define SILKROUTE_XML_ESCAPE_H_

#include <string>
#include <string_view>

namespace silkroute::xml {

/// Escapes &, <, > for element text content.
std::string EscapeText(std::string_view text);

/// Escapes &, <, >, ", ' for attribute values.
std::string EscapeAttribute(std::string_view text);

/// Reverses EscapeText/EscapeAttribute (handles the five standard entities
/// and decimal/hex character references).
std::string Unescape(std::string_view text);

}  // namespace silkroute::xml

#endif  // SILKROUTE_XML_ESCAPE_H_
