// XmlWriter: streaming XML serializer. Memory use is bounded by the element
// nesting depth (the open-element stack), never by document size — the
// property SilkRoute's tagger relies on for views larger than main memory.
#ifndef SILKROUTE_XML_WRITER_H_
#define SILKROUTE_XML_WRITER_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace silkroute::xml {

class XmlWriter {
 public:
  struct Options {
    bool pretty = false;     // newlines + two-space indentation
    bool declaration = true; // emit <?xml version="1.0"?>
    // Tokens accumulate in a flat in-memory buffer that is written to the
    // ostream in chunks of at least this many bytes, replacing one virtual
    // ostream write per token with one per ~64 KiB. 0 writes through
    // unbuffered. Buffering never changes the emitted bytes.
    size_t buffer_bytes = 64 * 1024;
  };

  explicit XmlWriter(std::ostream* out) : XmlWriter(out, Options()) {}
  XmlWriter(std::ostream* out, Options options);

  /// Flushes any buffered output (Finish also does; this covers writers
  /// abandoned mid-document, e.g. on error paths, so the ostream still
  /// observes everything that was logically written).
  ~XmlWriter() { FlushBuffer(); }

  XmlWriter(const XmlWriter&) = delete;
  XmlWriter& operator=(const XmlWriter&) = delete;

  /// Opens `<name>`. Names are not validated beyond being non-empty.
  Status StartElement(std::string_view name);

  /// Writes an attribute on the most recently started element. Only legal
  /// before any content has been written into it.
  Status Attribute(std::string_view name, std::string_view value);

  /// Writes escaped character data inside the current element.
  Status Text(std::string_view text);

  /// Closes the current element.
  Status EndElement();

  /// Closes all open elements.
  Status Finish();

  size_t depth() const { return stack_.size(); }
  size_t bytes_written() const { return bytes_written_; }
  /// Number of buffered chunks pushed to the ostream so far.
  size_t flushes() const { return flushes_; }

 private:
  void Write(std::string_view s);
  void FlushBuffer();
  void MaybeFlush();
  void CloseStartTagIfOpen();
  void Indent();

  std::ostream* out_;
  Options options_;
  std::vector<std::string> stack_;
  bool start_tag_open_ = false;  // "<name" emitted but not yet ">"
  bool just_wrote_text_ = false;
  size_t bytes_written_ = 0;
  std::string buffer_;
  std::string scratch_;  // escape staging for the unbuffered path
  size_t flushes_ = 0;
};

}  // namespace silkroute::xml

#endif  // SILKROUTE_XML_WRITER_H_
