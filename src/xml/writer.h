// XmlWriter: streaming XML serializer. Memory use is bounded by the element
// nesting depth (the open-element stack), never by document size — the
// property SilkRoute's tagger relies on for views larger than main memory.
#ifndef SILKROUTE_XML_WRITER_H_
#define SILKROUTE_XML_WRITER_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace silkroute::xml {

class XmlWriter {
 public:
  struct Options {
    bool pretty = false;     // newlines + two-space indentation
    bool declaration = true; // emit <?xml version="1.0"?>
  };

  explicit XmlWriter(std::ostream* out) : XmlWriter(out, Options()) {}
  XmlWriter(std::ostream* out, Options options);

  /// Opens `<name>`. Names are not validated beyond being non-empty.
  Status StartElement(std::string_view name);

  /// Writes an attribute on the most recently started element. Only legal
  /// before any content has been written into it.
  Status Attribute(std::string_view name, std::string_view value);

  /// Writes escaped character data inside the current element.
  Status Text(std::string_view text);

  /// Closes the current element.
  Status EndElement();

  /// Closes all open elements.
  Status Finish();

  size_t depth() const { return stack_.size(); }
  size_t bytes_written() const { return bytes_written_; }

 private:
  void Write(std::string_view s);
  void CloseStartTagIfOpen();
  void Indent();

  std::ostream* out_;
  Options options_;
  std::vector<std::string> stack_;
  bool start_tag_open_ = false;  // "<name" emitted but not yet ">"
  bool just_wrote_text_ = false;
  size_t bytes_written_ = 0;
};

}  // namespace silkroute::xml

#endif  // SILKROUTE_XML_WRITER_H_
