#include "xml/reader.h"

#include <cctype>

#include "common/string_util.h"
#include "xml/escape.h"

namespace silkroute::xml {

const XmlNode* XmlNode::FirstChild(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(
    std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

namespace {

class Reader {
 public:
  explicit Reader(std::string_view input) : input_(input) {}

  Result<std::unique_ptr<XmlNode>> Parse() {
    SkipProlog();
    SILK_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseElement());
    SkipWhitespaceAndComments();
    if (pos_ < input_.size()) {
      return Err("trailing content after root element");
    }
    return root;
  }

 private:
  Status Err(std::string msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < input_.size()) {
      if (std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
        continue;
      }
      if (input_.substr(pos_).substr(0, 4) == "<!--") {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  void SkipProlog() {
    SkipWhitespaceAndComments();
    // <?xml ... ?>
    if (input_.substr(pos_).substr(0, 2) == "<?") {
      size_t end = input_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? input_.size() : end + 2;
    }
    SkipWhitespaceAndComments();
    // <!DOCTYPE ...> (no internal subset support needed here)
    if (input_.substr(pos_).substr(0, 9) == "<!DOCTYPE") {
      size_t end = input_.find('>', pos_);
      pos_ = end == std::string_view::npos ? input_.size() : end + 1;
    }
    SkipWhitespaceAndComments();
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_' || input_[pos_] == '-' ||
            input_[pos_] == ':' || input_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected name");
    return std::string(input_.substr(start, pos_ - start));
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (pos_ >= input_.size() || input_[pos_] != '<') {
      return Err("expected '<'");
    }
    ++pos_;
    auto node = std::make_unique<XmlNode>();
    SILK_ASSIGN_OR_RETURN(node->name, ParseName());

    // Attributes.
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size()) return Err("unterminated start tag");
      if (input_[pos_] == '/' || input_[pos_] == '>') break;
      SILK_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipSpace();
      if (pos_ >= input_.size() || input_[pos_] != '=') {
        return Err("expected '=' in attribute");
      }
      ++pos_;
      SkipSpace();
      if (pos_ >= input_.size() ||
          (input_[pos_] != '"' && input_[pos_] != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = input_[pos_++];
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
      if (pos_ >= input_.size()) return Err("unterminated attribute value");
      node->attributes[attr_name] =
          Unescape(input_.substr(start, pos_ - start));
      ++pos_;
    }

    if (input_[pos_] == '/') {
      ++pos_;
      if (pos_ >= input_.size() || input_[pos_] != '>') {
        return Err("expected '>' after '/'");
      }
      ++pos_;
      return node;
    }
    ++pos_;  // '>'

    // Content.
    while (true) {
      if (pos_ >= input_.size()) {
        return Err("unterminated element <" + node->name + ">");
      }
      if (input_[pos_] == '<') {
        if (input_.substr(pos_).substr(0, 4) == "<!--") {
          size_t end = input_.find("-->", pos_ + 4);
          pos_ = end == std::string_view::npos ? input_.size() : end + 3;
          continue;
        }
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
          pos_ += 2;
          SILK_ASSIGN_OR_RETURN(std::string close_name, ParseName());
          if (close_name != node->name) {
            return Err("mismatched close tag </" + close_name +
                       "> for <" + node->name + ">");
          }
          SkipSpace();
          if (pos_ >= input_.size() || input_[pos_] != '>') {
            return Err("expected '>' in close tag");
          }
          ++pos_;
          return node;
        }
        SILK_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child, ParseElement());
        node->children.push_back(std::move(child));
        continue;
      }
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != '<') ++pos_;
      std::string_view raw = input_.substr(start, pos_ - start);
      node->text += Unescape(raw);
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view input) {
  Reader reader(input);
  return reader.Parse();
}

}  // namespace silkroute::xml
