#include "xml/writer.h"

#include "xml/escape.h"

namespace silkroute::xml {

XmlWriter::XmlWriter(std::ostream* out, Options options)
    : out_(out), options_(options) {
  if (options_.buffer_bytes > 0) {
    // One slack token past the threshold before the size check trips.
    buffer_.reserve(options_.buffer_bytes + 256);
  }
  if (options_.declaration) {
    Write("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if (options_.pretty) Write("\n");
  }
}

void XmlWriter::Write(std::string_view s) {
  bytes_written_ += s.size();
  if (options_.buffer_bytes == 0) {
    out_->write(s.data(), static_cast<std::streamsize>(s.size()));
    return;
  }
  buffer_.append(s);
  MaybeFlush();
}

void XmlWriter::FlushBuffer() {
  if (buffer_.empty()) return;
  out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  buffer_.clear();
  ++flushes_;
}

void XmlWriter::MaybeFlush() {
  if (buffer_.size() >= options_.buffer_bytes) FlushBuffer();
}

void XmlWriter::CloseStartTagIfOpen() {
  if (start_tag_open_) {
    Write(">");
    start_tag_open_ = false;
  }
}

void XmlWriter::Indent() {
  if (!options_.pretty) return;
  if (bytes_written_ > 0) Write("\n");
  for (size_t i = 0; i < stack_.size(); ++i) Write("  ");
}

Status XmlWriter::StartElement(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("empty element name");
  }
  CloseStartTagIfOpen();
  if (!just_wrote_text_) Indent();
  Write("<");
  Write(name);
  start_tag_open_ = true;
  just_wrote_text_ = false;
  stack_.emplace_back(name);
  return Status::OK();
}

Status XmlWriter::Attribute(std::string_view name, std::string_view value) {
  if (!start_tag_open_) {
    return Status::InvalidArgument(
        "Attribute() is only legal immediately after StartElement()");
  }
  Write(" ");
  Write(name);
  Write("=\"");
  if (options_.buffer_bytes > 0) {
    size_t before = buffer_.size();
    AppendEscapedAttribute(value, &buffer_);
    bytes_written_ += buffer_.size() - before;
    MaybeFlush();
  } else {
    scratch_.clear();
    AppendEscapedAttribute(value, &scratch_);
    Write(scratch_);
  }
  Write("\"");
  return Status::OK();
}

Status XmlWriter::Text(std::string_view text) {
  if (stack_.empty()) {
    return Status::InvalidArgument("text outside of any element");
  }
  CloseStartTagIfOpen();
  if (options_.buffer_bytes > 0) {
    // Escape straight into the output buffer: no temporary per token.
    size_t before = buffer_.size();
    AppendEscapedText(text, &buffer_);
    bytes_written_ += buffer_.size() - before;
    MaybeFlush();
  } else {
    scratch_.clear();
    AppendEscapedText(text, &scratch_);
    Write(scratch_);
  }
  just_wrote_text_ = true;
  return Status::OK();
}

Status XmlWriter::EndElement() {
  if (stack_.empty()) {
    return Status::InvalidArgument("EndElement() with no open element");
  }
  std::string name = stack_.back();
  stack_.pop_back();
  if (start_tag_open_) {
    Write("/>");
    start_tag_open_ = false;
  } else {
    if (!just_wrote_text_) Indent();
    Write("</");
    Write(name);
    Write(">");
  }
  just_wrote_text_ = false;
  return Status::OK();
}

Status XmlWriter::Finish() {
  while (!stack_.empty()) {
    SILK_RETURN_IF_ERROR(EndElement());
  }
  if (options_.pretty) Write("\n");
  FlushBuffer();
  out_->flush();
  return Status::OK();
}

}  // namespace silkroute::xml
