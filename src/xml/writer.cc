#include "xml/writer.h"

#include "xml/escape.h"

namespace silkroute::xml {

XmlWriter::XmlWriter(std::ostream* out, Options options)
    : out_(out), options_(options) {
  if (options_.declaration) {
    Write("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if (options_.pretty) Write("\n");
  }
}

void XmlWriter::Write(std::string_view s) {
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
  bytes_written_ += s.size();
}

void XmlWriter::CloseStartTagIfOpen() {
  if (start_tag_open_) {
    Write(">");
    start_tag_open_ = false;
  }
}

void XmlWriter::Indent() {
  if (!options_.pretty) return;
  if (bytes_written_ > 0) Write("\n");
  for (size_t i = 0; i < stack_.size(); ++i) Write("  ");
}

Status XmlWriter::StartElement(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("empty element name");
  }
  CloseStartTagIfOpen();
  if (!just_wrote_text_) Indent();
  Write("<");
  Write(name);
  start_tag_open_ = true;
  just_wrote_text_ = false;
  stack_.emplace_back(name);
  return Status::OK();
}

Status XmlWriter::Attribute(std::string_view name, std::string_view value) {
  if (!start_tag_open_) {
    return Status::InvalidArgument(
        "Attribute() is only legal immediately after StartElement()");
  }
  Write(" ");
  Write(name);
  Write("=\"");
  Write(EscapeAttribute(value));
  Write("\"");
  return Status::OK();
}

Status XmlWriter::Text(std::string_view text) {
  if (stack_.empty()) {
    return Status::InvalidArgument("text outside of any element");
  }
  CloseStartTagIfOpen();
  Write(EscapeText(text));
  just_wrote_text_ = true;
  return Status::OK();
}

Status XmlWriter::EndElement() {
  if (stack_.empty()) {
    return Status::InvalidArgument("EndElement() with no open element");
  }
  std::string name = stack_.back();
  stack_.pop_back();
  if (start_tag_open_) {
    Write("/>");
    start_tag_open_ = false;
  } else {
    if (!just_wrote_text_) Indent();
    Write("</");
    Write(name);
    Write(">");
  }
  just_wrote_text_ = false;
  return Status::OK();
}

Status XmlWriter::Finish() {
  while (!stack_.empty()) {
    SILK_RETURN_IF_ERROR(EndElement());
  }
  if (options_.pretty) Write("\n");
  out_->flush();
  return Status::OK();
}

}  // namespace silkroute::xml
