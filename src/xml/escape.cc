#include "xml/escape.h"

#include <cstdlib>

namespace silkroute::xml {

namespace {
std::string EscapeImpl(std::string_view text, bool attribute) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        if (attribute) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      case '\'':
        if (attribute) {
          out += "&apos;";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}
}  // namespace

std::string EscapeText(std::string_view text) {
  return EscapeImpl(text, /*attribute=*/false);
}

std::string EscapeAttribute(std::string_view text) {
  return EscapeImpl(text, /*attribute=*/true);
}

std::string Unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    size_t end = text.find(';', i);
    if (end == std::string_view::npos) {
      out += text[i++];
      continue;
    }
    std::string_view entity = text.substr(i + 1, end - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
      }
      if (code > 0 && code < 128) {
        out += static_cast<char>(code);
      }
    } else {
      // Unknown entity: keep literally.
      out += '&';
      out += entity;
      out += ';';
    }
    i = end + 1;
  }
  return out;
}

}  // namespace silkroute::xml
