#include "xml/escape.h"

#include <cstdlib>

namespace silkroute::xml {

namespace {
void AppendEscapeImpl(std::string_view text, bool attribute,
                      std::string* out) {
  const std::string_view specials = attribute ? "&<>\"'" : "&<>";
  size_t start = 0;
  for (;;) {
    size_t pos = text.find_first_of(specials, start);
    if (pos == std::string_view::npos) {
      out->append(text.substr(start));
      return;
    }
    out->append(text.substr(start, pos - start));
    switch (text[pos]) {
      case '&':
        *out += "&amp;";
        break;
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '"':
        *out += "&quot;";
        break;
      case '\'':
        *out += "&apos;";
        break;
    }
    start = pos + 1;
  }
}
}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscapeImpl(text, /*attribute=*/false, &out);
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscapeImpl(text, /*attribute=*/true, &out);
  return out;
}

void AppendEscapedText(std::string_view text, std::string* out) {
  AppendEscapeImpl(text, /*attribute=*/false, out);
}

void AppendEscapedAttribute(std::string_view text, std::string* out) {
  AppendEscapeImpl(text, /*attribute=*/true, out);
}

std::string Unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    size_t end = text.find(';', i);
    if (end == std::string_view::npos) {
      out += text[i++];
      continue;
    }
    std::string_view entity = text.substr(i + 1, end - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
      }
      if (code > 0 && code < 128) {
        out += static_cast<char>(code);
      }
    } else {
      // Unknown entity: keep literally.
      out += '&';
      out += entity;
      out += ';';
    }
    i = end + 1;
  }
  return out;
}

}  // namespace silkroute::xml
