#include "xml/dtd.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/string_util.h"

namespace silkroute::xml {

namespace {

const char* OccurrenceSuffix(ContentParticle::Occurrence occ) {
  switch (occ) {
    case ContentParticle::Occurrence::kOne:
      return "";
    case ContentParticle::Occurrence::kOptional:
      return "?";
    case ContentParticle::Occurrence::kStar:
      return "*";
    case ContentParticle::Occurrence::kPlus:
      return "+";
  }
  return "";
}

}  // namespace

std::string ContentParticle::ToString() const {
  switch (kind) {
    case Kind::kName:
      return name + OccurrenceSuffix(occurrence);
    case Kind::kSequence:
    case Kind::kChoice: {
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const auto& c : children) parts.push_back(c.ToString());
      const char* sep = kind == Kind::kSequence ? ", " : " | ";
      return "(" + Join(parts, sep) + ")" + OccurrenceSuffix(occurrence);
    }
  }
  return "";
}

std::string ElementDecl::ToString() const {
  std::string body;
  switch (category) {
    case Category::kEmpty:
      body = "EMPTY";
      break;
    case Category::kAny:
      body = "ANY";
      break;
    case Category::kPcdata:
      body = "(#PCDATA)";
      break;
    case Category::kMixed: {
      body = "(#PCDATA";
      for (const auto& n : mixed_names) body += " | " + n;
      body += ")*";
      break;
    }
    case Category::kChildren:
      body = content.ToString();
      // A bare name particle needs enclosing parentheses to be valid DTD
      // syntax: (nation?) rather than nation?.
      if (content.kind == ContentParticle::Kind::kName) {
        body = "(" + body + ")";
      }
      break;
  }
  return "<!ELEMENT " + name + " " + body + ">";
}

Status Dtd::AddElement(ElementDecl decl) {
  const std::string name = decl.name;
  if (elements_.count(name) > 0) {
    return Status::AlreadyExists("duplicate element declaration '" + name +
                                 "'");
  }
  elements_.emplace(name, std::move(decl));
  return Status::OK();
}

bool Dtd::HasElement(const std::string& name) const {
  return elements_.count(name) > 0;
}

Result<const ElementDecl*> Dtd::GetElement(const std::string& name) const {
  auto it = elements_.find(name);
  if (it == elements_.end()) {
    return Status::NotFound("no declaration for element '" + name + "'");
  }
  return &it->second;
}

namespace {

/// Position-set matcher: from each position in `from`, which positions can
/// the particle reach by consuming children names?
std::set<size_t> MatchOnce(const ContentParticle& p,
                           const std::vector<std::string>& names,
                           const std::set<size_t>& from);

std::set<size_t> MatchWithOccurrence(const ContentParticle& p,
                                     const std::vector<std::string>& names,
                                     const std::set<size_t>& from) {
  using Occ = ContentParticle::Occurrence;
  std::set<size_t> result;
  switch (p.occurrence) {
    case Occ::kOne:
      return MatchOnce(p, names, from);
    case Occ::kOptional: {
      result = from;
      std::set<size_t> once = MatchOnce(p, names, from);
      result.insert(once.begin(), once.end());
      return result;
    }
    case Occ::kStar:
    case Occ::kPlus: {
      std::set<size_t> frontier =
          p.occurrence == Occ::kStar ? from : std::set<size_t>{};
      std::set<size_t> current = from;
      // Iterate to fixpoint; each iteration consumes at least one name, so
      // this terminates in at most names.size() rounds.
      while (true) {
        std::set<size_t> next = MatchOnce(p, names, current);
        size_t before = frontier.size();
        frontier.insert(next.begin(), next.end());
        if (frontier.size() == before) break;
        current = std::move(next);
        if (current.empty()) break;
      }
      return frontier;
    }
  }
  return result;
}

std::set<size_t> MatchOnce(const ContentParticle& p,
                           const std::vector<std::string>& names,
                           const std::set<size_t>& from) {
  std::set<size_t> out;
  switch (p.kind) {
    case ContentParticle::Kind::kName: {
      for (size_t pos : from) {
        if (pos < names.size() && names[pos] == p.name) out.insert(pos + 1);
      }
      return out;
    }
    case ContentParticle::Kind::kSequence: {
      std::set<size_t> current = from;
      for (const auto& child : p.children) {
        current = MatchWithOccurrence(child, names, current);
        if (current.empty()) return current;
      }
      return current;
    }
    case ContentParticle::Kind::kChoice: {
      for (const auto& child : p.children) {
        std::set<size_t> branch = MatchWithOccurrence(child, names, from);
        out.insert(branch.begin(), branch.end());
      }
      return out;
    }
  }
  return out;
}

bool IsWhitespaceOnly(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c));
  });
}

}  // namespace

Status Dtd::Validate(const XmlNode& root) const {
  SILK_ASSIGN_OR_RETURN(const ElementDecl* decl, GetElement(root.name));

  switch (decl->category) {
    case ElementDecl::Category::kEmpty:
      if (!root.children.empty() || !IsWhitespaceOnly(root.text)) {
        return Status::ConstraintViolation("element '" + root.name +
                                           "' declared EMPTY has content");
      }
      break;
    case ElementDecl::Category::kAny:
      break;
    case ElementDecl::Category::kPcdata:
      if (!root.children.empty()) {
        return Status::ConstraintViolation(
            "element '" + root.name +
            "' declared (#PCDATA) has element children");
      }
      break;
    case ElementDecl::Category::kMixed: {
      for (const auto& child : root.children) {
        if (std::find(decl->mixed_names.begin(), decl->mixed_names.end(),
                      child->name) == decl->mixed_names.end()) {
          return Status::ConstraintViolation(
              "element '" + child->name + "' not allowed in mixed content of '" +
              root.name + "'");
        }
      }
      break;
    }
    case ElementDecl::Category::kChildren: {
      if (!IsWhitespaceOnly(root.text)) {
        return Status::ConstraintViolation(
            "character data not allowed in element content of '" + root.name +
            "'");
      }
      std::vector<std::string> child_names;
      child_names.reserve(root.children.size());
      for (const auto& c : root.children) child_names.push_back(c->name);
      std::set<size_t> end =
          MatchWithOccurrence(decl->content, child_names, {0});
      if (end.count(child_names.size()) == 0) {
        return Status::ConstraintViolation(
            "children of '" + root.name + "' do not match content model " +
            decl->content.ToString());
      }
      break;
    }
  }

  for (const auto& child : root.children) {
    SILK_RETURN_IF_ERROR(Validate(*child));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DTD parsing
// ---------------------------------------------------------------------------

namespace {

class DtdParser {
 public:
  explicit DtdParser(std::string_view text) : text_(text) {}

  Result<Dtd> Parse() {
    Dtd dtd;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) break;
      if (Lookahead("<!ELEMENT")) {
        SILK_ASSIGN_OR_RETURN(ElementDecl decl, ParseElementDecl());
        SILK_RETURN_IF_ERROR(dtd.AddElement(std::move(decl)));
      } else if (Lookahead("<!ATTLIST")) {
        // Parsed for tolerance, ignored.
        size_t end = text_.find('>', pos_);
        if (end == std::string_view::npos) {
          return Err("unterminated <!ATTLIST");
        }
        pos_ = end + 1;
      } else {
        return Err("expected <!ELEMENT or <!ATTLIST");
      }
    }
    return dtd;
  }

 private:
  Status Err(std::string msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  bool Lookahead(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        continue;
      }
      if (text_.substr(pos_, 4) == "<!--") {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.' ||
            text_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected name");
    return std::string(text_.substr(start, pos_ - start));
  }

  ContentParticle::Occurrence ParseOccurrence() {
    if (pos_ < text_.size()) {
      switch (text_[pos_]) {
        case '?':
          ++pos_;
          return ContentParticle::Occurrence::kOptional;
        case '*':
          ++pos_;
          return ContentParticle::Occurrence::kStar;
        case '+':
          ++pos_;
          return ContentParticle::Occurrence::kPlus;
        default:
          break;
      }
    }
    return ContentParticle::Occurrence::kOne;
  }

  Result<ElementDecl> ParseElementDecl() {
    pos_ += 9;  // "<!ELEMENT"
    SkipSpace();
    ElementDecl decl;
    SILK_ASSIGN_OR_RETURN(decl.name, ParseName());
    SkipSpace();

    if (Lookahead("EMPTY")) {
      pos_ += 5;
      decl.category = ElementDecl::Category::kEmpty;
    } else if (Lookahead("ANY")) {
      pos_ += 3;
      decl.category = ElementDecl::Category::kAny;
    } else if (Lookahead("(")) {
      size_t paren_pos = pos_;
      ++pos_;
      SkipSpace();
      if (Lookahead("#PCDATA")) {
        pos_ += 7;
        SkipSpace();
        std::vector<std::string> mixed;
        while (Lookahead("|")) {
          ++pos_;
          SkipSpace();
          SILK_ASSIGN_OR_RETURN(std::string n, ParseName());
          mixed.push_back(std::move(n));
          SkipSpace();
        }
        if (!Lookahead(")")) return Err("expected ')'");
        ++pos_;
        if (mixed.empty()) {
          decl.category = ElementDecl::Category::kPcdata;
          // Optional trailing '*' per the XML spec.
          if (Lookahead("*")) ++pos_;
        } else {
          decl.category = ElementDecl::Category::kMixed;
          decl.mixed_names = std::move(mixed);
          if (!Lookahead("*")) {
            return Err("mixed content must end with ')*'");
          }
          ++pos_;
        }
      } else {
        pos_ = paren_pos;  // let ParseParticle consume the '('
        decl.category = ElementDecl::Category::kChildren;
        SILK_ASSIGN_OR_RETURN(decl.content, ParseParticle());
      }
    } else {
      return Err("expected content model");
    }
    SkipSpace();
    if (!Lookahead(">")) return Err("expected '>'");
    ++pos_;
    return decl;
  }

  Result<ContentParticle> ParseParticle() {
    SkipSpace();
    ContentParticle p;
    if (Lookahead("(")) {
      ++pos_;
      std::vector<ContentParticle> parts;
      SILK_ASSIGN_OR_RETURN(ContentParticle first, ParseParticle());
      parts.push_back(std::move(first));
      SkipSpace();
      char sep = 0;
      while (pos_ < text_.size() &&
             (text_[pos_] == ',' || text_[pos_] == '|')) {
        if (sep == 0) {
          sep = text_[pos_];
        } else if (text_[pos_] != sep) {
          return Err("cannot mix ',' and '|' in one group");
        }
        ++pos_;
        SILK_ASSIGN_OR_RETURN(ContentParticle next, ParseParticle());
        parts.push_back(std::move(next));
        SkipSpace();
      }
      if (!Lookahead(")")) return Err("expected ')'");
      ++pos_;
      if (parts.size() == 1) {
        p = std::move(parts[0]);
        // An explicit occurrence on the group overrides/combines; the common
        // DTD usage has at most one, so a trailing operator wins.
        auto occ = ParseOccurrence();
        if (occ != ContentParticle::Occurrence::kOne) p.occurrence = occ;
        return p;
      }
      p.kind = sep == '|' ? ContentParticle::Kind::kChoice
                          : ContentParticle::Kind::kSequence;
      p.children = std::move(parts);
      p.occurrence = ParseOccurrence();
      return p;
    }
    SILK_ASSIGN_OR_RETURN(p.name, ParseName());
    p.kind = ContentParticle::Kind::kName;
    p.occurrence = ParseOccurrence();
    return p;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Dtd> ParseDtd(std::string_view text) {
  DtdParser parser(text);
  return parser.Parse();
}

}  // namespace silkroute::xml
