// A small DOM reader used by tests and the DTD validator: parses elements,
// attributes, text, the XML declaration, and comments. No namespaces,
// CDATA, or processing instructions — the subset this project emits.
#ifndef SILKROUTE_XML_READER_H_
#define SILKROUTE_XML_READER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace silkroute::xml {

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;  // concatenated character data directly inside this node

  /// First child with the given element name, or nullptr.
  const XmlNode* FirstChild(std::string_view child_name) const;

  /// All children with the given element name.
  std::vector<const XmlNode*> Children(std::string_view child_name) const;

  /// Number of element children.
  size_t NumChildren() const { return children.size(); }
};

/// Parses a document; returns its root element.
Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view input);

}  // namespace silkroute::xml

#endif  // SILKROUTE_XML_READER_H_
