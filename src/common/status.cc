#include "common/status.h"

namespace silkroute {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->message;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace silkroute
