// Deterministic pseudo-random generator (xorshift64*), used by the TPC-H
// generator and property tests so runs are reproducible across platforms.
#ifndef SILKROUTE_COMMON_RANDOM_H_
#define SILKROUTE_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace silkroute {

class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? 0x9E3779B97F4A7C15ull : seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

 private:
  uint64_t state_;
};

}  // namespace silkroute

#endif  // SILKROUTE_COMMON_RANDOM_H_
