// Deterministic pseudo-random generator (xorshift64*), used by the TPC-H
// generator and property tests so runs are reproducible across platforms.
//
// Thread safety: the state advances through an atomic compare-exchange, so
// one Random instance may be shared by concurrent threads (backoff jitter
// and fault injection run on service worker threads) without tearing or
// duplicated values — every draw is some value of the xorshift sequence,
// taken exactly once. Single-threaded use produces the exact same sequence
// as before. Note that the *interleaving* of draws across threads is
// scheduling-dependent; code that needs per-thread determinism should give
// each thread its own seeded instance.
#ifndef SILKROUTE_COMMON_RANDOM_H_
#define SILKROUTE_COMMON_RANDOM_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace silkroute {

class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? 0x9E3779B97F4A7C15ull : seed) {}

  Random(const Random& other)
      : state_(other.state_.load(std::memory_order_relaxed)) {}
  Random& operator=(const Random& other) {
    state_.store(other.state_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t current = state_.load(std::memory_order_relaxed);
    uint64_t next;
    do {
      next = current;
      next ^= next >> 12;
      next ^= next << 25;
      next ^= next >> 27;
    } while (!state_.compare_exchange_weak(current, next,
                                           std::memory_order_relaxed));
    return next * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

 private:
  std::atomic<uint64_t> state_;
};

}  // namespace silkroute

#endif  // SILKROUTE_COMMON_RANDOM_H_
