// Small string helpers shared across the project.
#ifndef SILKROUTE_COMMON_STRING_UTIL_H_
#define SILKROUTE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace silkroute {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Canonical form of a SQL text: whitespace runs collapse to one space,
/// leading/trailing whitespace dropped. This is the shared keying function
/// for both the workload profile (obs/profile.h) and the component-result
/// cache (engine/result_cache.h) — one definition, so measurements and
/// cache entries for the same query can never key apart on formatting.
std::string NormalizeSql(std::string_view sql);

}  // namespace silkroute

#endif  // SILKROUTE_COMMON_STRING_UTIL_H_
