// CancelToken: cooperative cancellation for blocking waits. A worker that
// must back off (retry sleeps, poll loops) sleeps through the token so a
// service shutdown or deadline expiry wakes it immediately instead of
// waiting out the full backoff. One token is typically shared by many
// threads; all members are thread-safe.
#ifndef SILKROUTE_COMMON_CANCEL_H_
#define SILKROUTE_COMMON_CANCEL_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace silkroute {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Cancels the token and wakes every thread blocked in SleepFor. Sticky:
  /// once cancelled, all future sleeps return immediately.
  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
    }
    cv_.notify_all();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cancelled_;
  }

  /// Sleeps up to `ms` milliseconds, returning early on cancellation.
  /// Returns true if the full sleep elapsed, false if it was interrupted
  /// (or the token was already cancelled).
  bool SleepFor(double ms) {
    if (ms <= 0) return !cancelled();
    std::unique_lock<std::mutex> lock(mu_);
    return !cv_.wait_for(lock,
                         std::chrono::duration<double, std::milli>(ms),
                         [&] { return cancelled_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool cancelled_ = false;
};

}  // namespace silkroute

#endif  // SILKROUTE_COMMON_CANCEL_H_
