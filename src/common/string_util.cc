#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace silkroute {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string NormalizeSql(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  for (char c : sql) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace silkroute
