#include "common/random.h"

namespace silkroute {

std::string Random::NextString(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Next() % 26));
  }
  return out;
}

}  // namespace silkroute
