// Status: lightweight error propagation without exceptions, in the style of
// absl::Status / arrow::Status. Every fallible public API in this project
// returns a Status or a Result<T> (see result.h).
#ifndef SILKROUTE_COMMON_STATUS_H_
#define SILKROUTE_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace silkroute {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kTypeError,
  kConstraintViolation,
  kTimeout,
  /// The source (remote RDBMS) is transiently unreachable; retryable.
  kUnavailable,
  /// A quota — notably the plan-wide retry budget — is used up; permanent.
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Ok statuses carry no allocation; error statuses
/// carry a code and a message.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace silkroute

/// Propagates a non-OK Status to the caller.
#define SILK_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::silkroute::Status _silk_status = (expr);      \
    if (!_silk_status.ok()) return _silk_status;    \
  } while (false)

#endif  // SILKROUTE_COMMON_STATUS_H_
