// Result<T>: a value-or-Status, in the style of absl::StatusOr / arrow::Result.
#ifndef SILKROUTE_COMMON_RESULT_H_
#define SILKROUTE_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace silkroute {

/// Holds either a T or a non-OK Status. Accessing the value of an error
/// Result aborts the process (programming error, like absl::StatusOr).
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status without value\n";
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status* const kOk = new Status();
    return ok() ? *kOk : status_;
  }

  T& value() & {
    CheckOk();
    return *value_;
  }
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Accessed value of error Result: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace silkroute

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define SILK_ASSIGN_OR_RETURN(lhs, rexpr)                     \
  SILK_ASSIGN_OR_RETURN_IMPL_(                                \
      SILK_MACRO_CONCAT_(_silk_result, __LINE__), lhs, rexpr)

#define SILK_MACRO_CONCAT_INNER_(x, y) x##y
#define SILK_MACRO_CONCAT_(x, y) SILK_MACRO_CONCAT_INNER_(x, y)

#define SILK_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value();

#endif  // SILKROUTE_COMMON_RESULT_H_
