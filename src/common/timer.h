// Wall-clock timer used by the benchmark harness.
#ifndef SILKROUTE_COMMON_TIMER_H_
#define SILKROUTE_COMMON_TIMER_H_

#include <chrono>

namespace silkroute {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace silkroute

#endif  // SILKROUTE_COMMON_TIMER_H_
