#include "tpch/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "tpch/schema.h"

namespace silkroute::tpch {

namespace {

const char* const kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                    "MIDDLE EAST"};

struct NationSpec {
  const char* name;
  int64_t regionkey;
};

// The 25 TPC-H nations with their region assignment.
const NationSpec kNations[] = {
    {"ALGERIA", 0},    {"ARGENTINA", 1},     {"BRAZIL", 1},
    {"CANADA", 1},     {"EGYPT", 4},         {"ETHIOPIA", 0},
    {"FRANCE", 3},     {"GERMANY", 3},       {"INDIA", 2},
    {"INDONESIA", 2},  {"IRAN", 4},          {"IRAQ", 4},
    {"JAPAN", 2},      {"JORDAN", 4},        {"KENYA", 0},
    {"MOROCCO", 0},    {"MOZAMBIQUE", 0},    {"PERU", 1},
    {"CHINA", 2},      {"ROMANIA", 3},       {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},    {"RUSSIA", 3},        {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},
};

const char* const kPartAdjectives[] = {
    "plated",   "anodized", "polished", "burnished", "brushed",
    "lacquered", "forged",  "hammered", "spotless",  "floral"};
const char* const kPartMaterials[] = {"brass", "steel", "nickel", "copper",
                                      "tin",   "zinc",  "chrome", "bronze",
                                      "iron",  "cobalt"};
const char* const kOrderStatus[] = {"F", "O", "P"};

std::string PartName(Random* rng) {
  std::string name = kPartAdjectives[rng->Uniform(0, 9)];
  name += " ";
  name += kPartMaterials[rng->Uniform(0, 9)];
  return name;
}

std::string DateString(Random* rng) {
  int64_t year = rng->Uniform(1992, 1998);
  int64_t month = rng->Uniform(1, 12);
  int64_t day = rng->Uniform(1, 28);
  return StringPrintf("%04lld-%02lld-%02lld", static_cast<long long>(year),
                      static_cast<long long>(month),
                      static_cast<long long>(day));
}

std::string PhoneString(Random* rng) {
  return StringPrintf("%02lld-%03lld-%03lld-%04lld",
                      static_cast<long long>(rng->Uniform(10, 34)),
                      static_cast<long long>(rng->Uniform(100, 999)),
                      static_cast<long long>(rng->Uniform(100, 999)),
                      static_cast<long long>(rng->Uniform(1000, 9999)));
}

}  // namespace

TpchRowCounts CountsForScale(double scale_factor) {
  auto scaled = [scale_factor](double base, size_t floor_count) {
    return std::max(floor_count,
                    static_cast<size_t>(std::llround(base * scale_factor)));
  };
  TpchRowCounts counts;
  counts.region = 5;
  counts.nation = 25;
  counts.supplier = scaled(1000, 10);
  counts.part = scaled(20000, 40);
  counts.partsupp = counts.part * 2;
  counts.customer = scaled(15000, 30);
  counts.orders = scaled(150000, 300);
  counts.lineitem = counts.orders * 4;  // average, realized per-order below
  return counts;
}

Status GenerateTpch(const TpchConfig& config, Database* db) {
  SILK_RETURN_IF_ERROR(CreateTpchSchema(db));
  Random rng(config.seed);
  const TpchRowCounts counts = CountsForScale(config.scale_factor);

  SILK_ASSIGN_OR_RETURN(Table * region, db->GetTable("Region"));
  region->Reserve(counts.region);
  for (size_t i = 0; i < counts.region; ++i) {
    region->InsertUnchecked(Tuple{Value::Int64(static_cast<int64_t>(i)),
                                  Value::String(kRegionNames[i])});
  }

  SILK_ASSIGN_OR_RETURN(Table * nation, db->GetTable("Nation"));
  nation->Reserve(counts.nation);
  for (size_t i = 0; i < counts.nation; ++i) {
    nation->InsertUnchecked(Tuple{Value::Int64(static_cast<int64_t>(i)),
                                  Value::String(kNations[i].name),
                                  Value::Int64(kNations[i].regionkey)});
  }

  // Suppliers. A leading fraction never receives parts so that the
  // <supplier> outer join has unmatched parents.
  SILK_ASSIGN_OR_RETURN(Table * supplier, db->GetTable("Supplier"));
  supplier->Reserve(counts.supplier);
  const size_t num_childless_suppliers = static_cast<size_t>(
      static_cast<double>(counts.supplier) * config.supplier_no_parts_fraction);
  for (size_t i = 1; i <= counts.supplier; ++i) {
    supplier->InsertUnchecked(
        Tuple{Value::Int64(static_cast<int64_t>(i)),
              Value::String(StringPrintf("Supplier#%07zu", i)),
              Value::String(rng.NextString(
                  static_cast<size_t>(rng.Uniform(15, 30)))),
              Value::Int64(rng.Uniform(0, 24))});
  }

  SILK_ASSIGN_OR_RETURN(Table * part, db->GetTable("Part"));
  part->Reserve(counts.part);
  for (size_t i = 1; i <= counts.part; ++i) {
    part->InsertUnchecked(Tuple{
        Value::Int64(static_cast<int64_t>(i)), Value::String(PartName(&rng)),
        Value::String(StringPrintf("Mfgr#%lld",
                                   static_cast<long long>(rng.Uniform(1, 5)))),
        Value::String(StringPrintf("Brand#%lld%lld",
                                   static_cast<long long>(rng.Uniform(1, 5)),
                                   static_cast<long long>(rng.Uniform(1, 5)))),
        Value::Int64(rng.Uniform(1, 50)),
        Value::Double(900.0 + rng.NextDouble() * 100.0)});
  }

  // PartSupp: each part gets 2 distinct suppliers drawn from suppliers that
  // are allowed to have parts.
  SILK_ASSIGN_OR_RETURN(Table * partsupp, db->GetTable("PartSupp"));
  partsupp->Reserve(counts.partsupp);
  std::vector<std::pair<int64_t, int64_t>> partsupp_pairs;
  partsupp_pairs.reserve(counts.partsupp);
  const int64_t first_eligible =
      static_cast<int64_t>(num_childless_suppliers) + 1;
  const int64_t last_supplier = static_cast<int64_t>(counts.supplier);
  for (size_t p = 1; p <= counts.part; ++p) {
    int64_t s1 = rng.Uniform(first_eligible, last_supplier);
    int64_t s2 = rng.Uniform(first_eligible, last_supplier);
    if (s2 == s1) s2 = (s2 < last_supplier) ? s2 + 1 : first_eligible;
    for (int64_t s : {s1, s2}) {
      partsupp->InsertUnchecked(Tuple{Value::Int64(static_cast<int64_t>(p)),
                                      Value::Int64(s),
                                      Value::Int64(rng.Uniform(1, 9999))});
      partsupp_pairs.emplace_back(static_cast<int64_t>(p), s);
    }
  }

  SILK_ASSIGN_OR_RETURN(Table * customer, db->GetTable("Customer"));
  customer->Reserve(counts.customer);
  for (size_t i = 1; i <= counts.customer; ++i) {
    customer->InsertUnchecked(
        Tuple{Value::Int64(static_cast<int64_t>(i)),
              Value::String(StringPrintf("Customer#%09zu", i)),
              Value::String(rng.NextString(
                  static_cast<size_t>(rng.Uniform(15, 30)))),
              Value::Int64(rng.Uniform(0, 24)),
              Value::String(PhoneString(&rng))});
  }

  SILK_ASSIGN_OR_RETURN(Table * orders, db->GetTable("Orders"));
  orders->Reserve(counts.orders);
  for (size_t i = 1; i <= counts.orders; ++i) {
    orders->InsertUnchecked(
        Tuple{Value::Int64(static_cast<int64_t>(i)),
              Value::Int64(rng.Uniform(1, static_cast<int64_t>(counts.customer))),
              Value::String(kOrderStatus[rng.Uniform(0, 2)]),
              Value::Double(1000.0 + rng.NextDouble() * 99000.0),
              Value::String(DateString(&rng))});
  }

  // LineItem: 1-7 line items per order, each referencing a partsupp pair
  // from the "active" prefix (the tail fraction of pairs gets no orders).
  // Within one order, line items use distinct suppliers (and hence distinct
  // pairs), so an order contributes at most one <order> instance per
  // supplier/part in the paper's views.
  SILK_ASSIGN_OR_RETURN(Table * lineitem, db->GetTable("LineItem"));
  lineitem->Reserve(counts.lineitem);  // average; realized count is close
  const size_t num_active_pairs = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(partsupp_pairs.size()) *
                             (1.0 - config.partsupp_no_lineitem_fraction)));
  std::vector<int64_t> used_suppliers;
  for (size_t o = 1; o <= counts.orders; ++o) {
    int64_t items = rng.Uniform(1, 7);
    used_suppliers.clear();
    int64_t lno = 0;
    for (int64_t l = 1; l <= items; ++l) {
      // Rejection-sample a pair whose supplier is new to this order.
      const std::pair<int64_t, int64_t>* pair = nullptr;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const auto& candidate = partsupp_pairs[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(num_active_pairs) - 1))];
        if (std::find(used_suppliers.begin(), used_suppliers.end(),
                      candidate.second) == used_suppliers.end()) {
          pair = &candidate;
          break;
        }
      }
      if (pair == nullptr) continue;  // tiny databases: skip extra items
      used_suppliers.push_back(pair->second);
      ++lno;
      lineitem->InsertUnchecked(
          Tuple{Value::Int64(static_cast<int64_t>(o)),
                Value::Int64(pair->first), Value::Int64(pair->second),
                Value::Int64(lno), Value::Int64(rng.Uniform(1, 50)),
                Value::Double(10.0 + rng.NextDouble() * 990.0)});
    }
  }
  return Status::OK();
}

}  // namespace silkroute::tpch
