// The TPC-H fragment of the paper's Fig. 1, with primary keys and the
// referential constraints the view-tree labeling consumes.
//
// Note: the paper's figure stars only `partkey` in PartSupp and only
// `orderkey` in LineItem; the actual TPC-H keys are composite —
// PartSupp(partkey, suppkey) and LineItem(orderkey, lno) — and we declare
// the composite keys (the figure's rendering is an abbreviation).
#ifndef SILKROUTE_TPCH_SCHEMA_H_
#define SILKROUTE_TPCH_SCHEMA_H_

#include "common/status.h"
#include "relational/database.h"

namespace silkroute::tpch {

/// Creates the eight TPC-H fragment tables (empty) in `db`.
Status CreateTpchSchema(Database* db);

}  // namespace silkroute::tpch

#endif  // SILKROUTE_TPCH_SCHEMA_H_
