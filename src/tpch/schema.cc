#include "tpch/schema.h"

namespace silkroute::tpch {

namespace {

TableSchema Region() {
  TableSchema s("Region", {
                              {"regionkey", DataType::kInt64, false},
                              {"name", DataType::kString, false},
                          });
  (void)s.SetPrimaryKey({"regionkey"});
  return s;
}

TableSchema Nation() {
  TableSchema s("Nation", {
                              {"nationkey", DataType::kInt64, false},
                              {"name", DataType::kString, false},
                              {"regionkey", DataType::kInt64, false},
                          });
  (void)s.SetPrimaryKey({"nationkey"});
  (void)s.AddForeignKey({{"regionkey"}, "Region", {"regionkey"}});
  return s;
}

TableSchema Supplier() {
  TableSchema s("Supplier", {
                                {"suppkey", DataType::kInt64, false},
                                {"name", DataType::kString, false},
                                {"addr", DataType::kString, false},
                                {"nationkey", DataType::kInt64, false},
                            });
  (void)s.SetPrimaryKey({"suppkey"});
  (void)s.AddForeignKey({{"nationkey"}, "Nation", {"nationkey"}});
  return s;
}

TableSchema Part() {
  TableSchema s("Part", {
                            {"partkey", DataType::kInt64, false},
                            {"name", DataType::kString, false},
                            {"mfgr", DataType::kString, false},
                            {"brand", DataType::kString, false},
                            {"size", DataType::kInt64, false},
                            {"retail", DataType::kDouble, false},
                        });
  (void)s.SetPrimaryKey({"partkey"});
  return s;
}

TableSchema PartSupp() {
  TableSchema s("PartSupp", {
                                {"partkey", DataType::kInt64, false},
                                {"suppkey", DataType::kInt64, false},
                                {"availqty", DataType::kInt64, false},
                            });
  (void)s.SetPrimaryKey({"partkey", "suppkey"});
  (void)s.AddForeignKey({{"partkey"}, "Part", {"partkey"}});
  (void)s.AddForeignKey({{"suppkey"}, "Supplier", {"suppkey"}});
  return s;
}

TableSchema Customer() {
  TableSchema s("Customer", {
                                {"custkey", DataType::kInt64, false},
                                {"name", DataType::kString, false},
                                {"addr", DataType::kString, false},
                                {"nationkey", DataType::kInt64, false},
                                {"ph", DataType::kString, false},
                            });
  (void)s.SetPrimaryKey({"custkey"});
  (void)s.AddForeignKey({{"nationkey"}, "Nation", {"nationkey"}});
  return s;
}

TableSchema Orders() {
  TableSchema s("Orders", {
                              {"orderkey", DataType::kInt64, false},
                              {"custkey", DataType::kInt64, false},
                              {"status", DataType::kString, false},
                              {"price", DataType::kDouble, false},
                              {"date", DataType::kString, false},
                          });
  (void)s.SetPrimaryKey({"orderkey"});
  (void)s.AddForeignKey({{"custkey"}, "Customer", {"custkey"}});
  return s;
}

TableSchema LineItem() {
  TableSchema s("LineItem", {
                                {"orderkey", DataType::kInt64, false},
                                {"partkey", DataType::kInt64, false},
                                {"suppkey", DataType::kInt64, false},
                                {"lno", DataType::kInt64, false},
                                {"qty", DataType::kInt64, false},
                                {"prc", DataType::kDouble, false},
                            });
  (void)s.SetPrimaryKey({"orderkey", "lno"});
  (void)s.AddForeignKey({{"orderkey"}, "Orders", {"orderkey"}});
  (void)s.AddForeignKey({{"partkey"}, "Part", {"partkey"}});
  (void)s.AddForeignKey({{"suppkey"}, "Supplier", {"suppkey"}});
  (void)s.AddForeignKey(
      {{"partkey", "suppkey"}, "PartSupp", {"partkey", "suppkey"}});
  return s;
}

}  // namespace

Status CreateTpchSchema(Database* db) {
  SILK_RETURN_IF_ERROR(db->CreateTable(Region()));
  SILK_RETURN_IF_ERROR(db->CreateTable(Nation()));
  SILK_RETURN_IF_ERROR(db->CreateTable(Supplier()));
  SILK_RETURN_IF_ERROR(db->CreateTable(Part()));
  SILK_RETURN_IF_ERROR(db->CreateTable(PartSupp()));
  SILK_RETURN_IF_ERROR(db->CreateTable(Customer()));
  SILK_RETURN_IF_ERROR(db->CreateTable(Orders()));
  SILK_RETURN_IF_ERROR(db->CreateTable(LineItem()));
  return Status::OK();
}

}  // namespace silkroute::tpch
