// Deterministic generator for the TPC-H fragment. Scale factor 1.0 yields a
// database in the tens of megabytes (the paper's Config B regime);
// scale 0.01 is the ~1 MB Config A regime. Row-count ratios follow TPC-H
// (orders 10x customers, ~4 line items per order, 2 partsupp per part).
//
// Distributional properties the experiments depend on are preserved:
//  - a fraction of suppliers have no parts (exercises left outer joins);
//  - a fraction of partsupp pairs have no pending line items;
//  - every line item references a valid (partkey, suppkey) pair, its order,
//    and transitively a customer and nation.
#ifndef SILKROUTE_TPCH_GENERATOR_H_
#define SILKROUTE_TPCH_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "relational/database.h"

namespace silkroute::tpch {

struct TpchConfig {
  double scale_factor = 0.01;  // 0.01 ~ Config A, 1.0 ~ Config B
  uint64_t seed = 20010521;    // SIGMOD 2001 opening day
  /// Fraction of suppliers that supply no parts.
  double supplier_no_parts_fraction = 0.1;
  /// Fraction of partsupp pairs with no pending line items.
  double partsupp_no_lineitem_fraction = 0.3;
};

struct TpchRowCounts {
  size_t region = 0;
  size_t nation = 0;
  size_t supplier = 0;
  size_t part = 0;
  size_t partsupp = 0;
  size_t customer = 0;
  size_t orders = 0;
  size_t lineitem = 0;
};

/// Row counts for a given scale factor.
TpchRowCounts CountsForScale(double scale_factor);

/// Creates the schema and fills `db` with generated data.
Status GenerateTpch(const TpchConfig& config, Database* db);

}  // namespace silkroute::tpch

#endif  // SILKROUTE_TPCH_GENERATOR_H_
