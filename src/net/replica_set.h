// ReplicaSet: a SqlExecutor that fans one logical backend across N
// interchangeable replicas — the piece that turns the federation's
// "remote + local fallback" into an actually redundant system. One slow
// or dead replica is no longer a backend outage; it is a routing event.
//
// Four mechanisms, each independently bounded (DESIGN.md §13):
//
//  - Health tracking. Every replica carries an EWMA of its successful
//    call latencies, a live in-flight count, and its own CircuitBreaker
//    (label "replica"): consecutive source failures eject it (breaker
//    OPEN), a jittered cool-down later the breaker admits a half-open
//    probe — one real query — whose outcome re-admits or re-ejects.
//    Cancelled hedge losers never count against a replica's breaker: the
//    cancellation was our choice, not its failure.
//
//  - Load-aware choice. Power-of-two-choices: draw two distinct replicas
//    from the admittable set, route to the one with fewer in-flight calls
//    (EWMA latency as the tiebreak). P2C needs no global coordination yet
//    provably avoids the herd a "pick the least loaded" scan creates when
//    every router sees the same stale minimum.
//
//  - Tail-latency hedging. If the primary has not answered after the
//    backend's tracked p95 latency (ring buffer of recent successes;
//    a fixed initial delay until warmed up), fire the same query at a
//    second replica. First successful response wins; the loser is
//    cancelled through its per-call CancelToken and unblocks within one
//    poll interval. Hedges spend from a token bucket refilled at
//    hedge_budget_ratio (default 5%) per request, so hedging can never
//    multiply load during a slowdown — exactly when it is most tempting.
//
//  - Retry budget. A failed attempt may fail over to another replica, but
//    each retry spends from a second token bucket refilled at
//    retry_budget_ratio per request. During a partial outage the set
//    degrades to one attempt per call instead of amplifying client load
//    by the replica count — the classic retry-storm guard.
//
// The set is itself a SqlExecutor, so it slots under FederatedExecutor as
// a backend: replica failover happens *inside* one backend call, and the
// backend breaker above only sees a failure when the whole set is
// exhausted. Healthy() reports whether any replica would currently be
// admitted, letting the router skip a fully ejected set without charging
// the skip to the backend breaker.
//
// Thread-safe; shared across service workers like every other executor.
#ifndef SILKROUTE_NET_REPLICA_SET_H_
#define SILKROUTE_NET_REPLICA_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "common/result.h"
#include "engine/executor.h"
#include "net/remote_executor.h"
#include "obs/metrics.h"
#include "service/circuit_breaker.h"

namespace silkroute::net {

/// A remote endpoint the set should own a RemoteSqlExecutor for.
struct ReplicaEndpoint {
  /// Metric label (`replica="..."`); must be unique within the set.
  std::string name;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// A caller-owned executor enrolled as a replica (tests, heterogeneous
/// backends). Must be thread-safe and outlive the set.
struct BorrowedReplica {
  std::string name;
  engine::SqlExecutor* executor = nullptr;
};

struct ReplicaSetOptions {
  /// Backend label for metric series and span annotations.
  std::string backend = "remote";
  /// Endpoints the set dials itself (one owned RemoteSqlExecutor each,
  /// configured from `remote` with host/port/backend overridden)...
  std::vector<ReplicaEndpoint> endpoints;
  /// ...and/or externally owned replicas. The set routes across the union.
  std::vector<BorrowedReplica> replicas;
  /// Template for owned RemoteSqlExecutors (pool sizes, dial backoff...).
  RemoteExecutorOptions remote;
  /// Per-replica ejection breaker. label_key is forced to "replica";
  /// metrics stay off here (the set exports its own labeled series).
  /// open_jitter_ms defaults to open_ms/2 when left at 0 so replicas
  /// ejected by one incident don't re-probe in lockstep.
  service::CircuitBreakerOptions breaker;
  /// Weight of the newest latency sample in the per-replica EWMA.
  double ewma_alpha = 0.3;

  /// Tail-latency hedging. The delay tracks the p95 of the last
  /// `latency_window` successful calls, clamped to [hedge_min_delay_ms,
  /// hedge_max_delay_ms]; until `hedge_warmup` samples exist the fixed
  /// hedge_initial_delay_ms applies.
  bool hedging = true;
  double hedge_initial_delay_ms = 30;
  double hedge_min_delay_ms = 1;
  double hedge_max_delay_ms = 1000;
  size_t hedge_warmup = 16;
  size_t latency_window = 128;
  /// Hedge token bucket: refilled by `hedge_budget_ratio` per request,
  /// capped at `hedge_budget_cap`; each hedge spends one token. The ratio
  /// is the hard ceiling on hedges as a fraction of traffic.
  double hedge_budget_ratio = 0.05;
  double hedge_budget_cap = 8;

  /// Retry (replica failover) token bucket, same mechanics.
  double retry_budget_ratio = 0.1;
  double retry_budget_cap = 10;
  /// Attempts per call including the first (each with its own hedge
  /// race); clamped to the replica count.
  int max_attempts = 3;

  /// Granularity of the hedge-wait loop's cancel/deadline checks.
  double poll_interval_ms = 10;
  /// Seed for the P2C draw RNG.
  uint64_t seed = 0x5EEDCAFEull;
  /// Borrowed service-wide token; cancelling it aborts in-flight calls.
  CancelToken* cancel = nullptr;
  /// silkroute_replica_*{backend=,replica=} series (borrowed, may be null).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Point-in-time view of one replica, for tests and debugging.
struct ReplicaStats {
  std::string name;
  int in_flight = 0;
  double ewma_ms = 0;
  uint64_t successes = 0;
  uint64_t failures = 0;
  uint64_t ejections = 0;
  service::BreakerState state = service::BreakerState::kClosed;
};

class ReplicaSet : public engine::SqlExecutor {
 public:
  explicit ReplicaSet(ReplicaSetOptions options);
  ~ReplicaSet() override;

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  Result<engine::Relation> ExecuteSql(std::string_view sql) override {
    return ExecuteSqlCancellable(sql, timeout_ms_, nullptr);
  }
  Result<engine::Relation> ExecuteSqlWithDeadline(
      std::string_view sql, double timeout_ms) override {
    return ExecuteSqlCancellable(sql, timeout_ms, nullptr);
  }
  Result<engine::Relation> ExecuteSqlCancellable(std::string_view sql,
                                                 double timeout_ms,
                                                 CancelToken* cancel) override;
  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }

  /// Asks replicas in order, skipping ejected ones, and returns the first
  /// answer. Version vectors from different replicas of one logical store
  /// are interchangeable for cache keying: a replica that lags serves a
  /// correspondingly older version vector together with correspondingly
  /// older data, so key and payload still agree. Failures are not charged
  /// to replica breakers — a missing fetch only bypasses the cache.
  Result<std::vector<std::pair<std::string, uint64_t>>> FetchTableVersions(
      const std::vector<std::string>& tables) override;

  /// True while at least one replica's breaker would admit a call.
  bool Healthy() const override;

  /// Cancels in-flight calls and shuts down owned remote executors.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  const std::string& backend() const { return options_.backend; }
  size_t replica_count() const { return replicas_.size(); }
  ReplicaStats replica_stats(size_t index) const;
  /// The replica's ejection breaker (tests drive its injected clock
  /// through ReplicaSetOptions::breaker::now_ms).
  service::CircuitBreaker* replica_breaker(size_t index);

  /// The hedge delay a call issued now would use.
  double CurrentHedgeDelayMs() const;

  uint64_t requests() const { return requests_.load(); }
  uint64_t hedges_fired() const { return hedges_fired_.load(); }
  uint64_t hedges_won() const { return hedges_won_.load(); }
  uint64_t hedges_cancelled() const { return hedges_cancelled_.load(); }
  uint64_t hedges_suppressed() const { return hedges_suppressed_.load(); }
  uint64_t retries() const { return retries_.load(); }
  uint64_t retry_budget_exhausted() const {
    return retry_budget_exhausted_.load();
  }
  uint64_t ejections() const { return ejections_.load(); }

 private:
  struct Replica;
  struct Attempt;

  /// Power-of-two-choices over replicas whose breaker admits a call,
  /// skipping indices marked true in `exclude` (failed earlier in this
  /// call, or the primary when choosing a hedge). Returns false when
  /// every eligible replica fast-fails.
  bool ChooseReplica(const std::vector<bool>& exclude, size_t* index,
                     service::CircuitBreaker::Decision* decision);
  /// (in_flight, ewma) ordering: fewer in-flight wins, EWMA breaks ties.
  bool BetterLoaded(const Replica& a, const Replica& b) const;

  /// One replica call on a worker thread, racing at most one sibling.
  void RunAttempt(Attempt* attempt, std::string_view sql, double timeout_ms);
  /// Applies a finished attempt's outcome to its replica: breaker record,
  /// EWMA + latency-window update, ejection accounting. Cancelled losers
  /// release their admission without recording an outcome.
  void SettleAttempt(Attempt* attempt);

  /// One primary (+ optional hedge) race against the deadline. Returns
  /// the winner's result; failed_any_replica marks replicas that genuinely
  /// failed (for the caller's exclude set).
  Result<engine::Relation> RunHedged(
      size_t primary, service::CircuitBreaker::Decision primary_decision,
      std::string_view sql, bool has_deadline,
      std::chrono::steady_clock::time_point deadline, CancelToken* cancel,
      std::vector<bool>* failed_replicas);

  void RecordLatencySample(double ms);

  /// Mutex-guarded token bucket (double tokens, deposits capped).
  class TokenBucket {
   public:
    TokenBucket(double ratio, double cap) : ratio_(ratio), cap_(cap) {}
    /// One request arrived: deposit `ratio` tokens, saturating at cap.
    void Deposit() {
      std::lock_guard<std::mutex> lock(mu_);
      tokens_ = std::min(cap_, tokens_ + ratio_);
    }
    /// Spends one token if available.
    bool TryTake() {
      std::lock_guard<std::mutex> lock(mu_);
      if (tokens_ < 1.0) return false;
      tokens_ -= 1.0;
      return true;
    }

   private:
    const double ratio_;
    const double cap_;
    std::mutex mu_;
    double tokens_ = 0;
  };

  ReplicaSetOptions options_;
  double timeout_ms_ = 0;
  CancelToken shutdown_;
  Random rng_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  TokenBucket hedge_budget_;
  TokenBucket retry_budget_;

  /// Ring buffer of recent successful-call latencies; p95 over it is the
  /// hedge delay.
  mutable std::mutex latency_mu_;
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> hedges_fired_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> hedges_cancelled_{0};
  std::atomic<uint64_t> hedges_suppressed_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> retry_budget_exhausted_{0};
  std::atomic<uint64_t> ejections_{0};

  // Set-level registry mirrors (null when metrics are disabled).
  obs::Counter* m_retry_exhausted_ = nullptr;
};

}  // namespace silkroute::net

#endif  // SILKROUTE_NET_REPLICA_SET_H_
