#include "net/wire.h"

#include <cstdio>
#include <cstring>

#include "engine/tuple_stream.h"

namespace silkroute::net {

namespace {

void PutU16(uint16_t v, std::string* out) {
  char buf[2] = {static_cast<char>(v & 0xFF), static_cast<char>(v >> 8)};
  out->append(buf, 2);
}

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint16_t>(static_cast<uint8_t>(p[1]))
                                << 8));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

/// Bounds-checked cursor over an immutable payload. Every Get* fails with
/// kInvalidArgument instead of reading past the end.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

  Status Need(size_t n, const char* what) {
    if (remaining() < n) {
      return Status::InvalidArgument(std::string("truncated ") + what + ": " +
                                     std::to_string(n) + " byte(s) needed, " +
                                     std::to_string(remaining()) + " left");
    }
    return Status::OK();
  }

  Result<uint32_t> U32(const char* what) {
    SILK_RETURN_IF_ERROR(Need(4, what));
    uint32_t v = GetU32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64(const char* what) {
    SILK_RETURN_IF_ERROR(Need(8, what));
    uint64_t v = GetU64(bytes_.data() + pos_);
    pos_ += 8;
    return v;
  }

  /// A u32 length prefix followed by that many bytes.
  Result<std::string_view> LengthPrefixed(const char* what) {
    auto len = U32(what);
    SILK_RETURN_IF_ERROR(len.status());
    if (*len > remaining()) {
      return Status::InvalidArgument(
          std::string("oversized length prefix for ") + what + ": " +
          std::to_string(*len) + " byte(s) claimed, " +
          std::to_string(remaining()) + " left");
    }
    std::string_view v = bytes_.substr(pos_, *len);
    pos_ += *len;
    return v;
  }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kRequest: return "request";
    case FrameType::kChunk: return "chunk";
    case FrameType::kEnd: return "end";
    case FrameType::kError: return "error";
    case FrameType::kStats: return "stats";
    case FrameType::kVersions: return "versions";
  }
  return "unknown";
}

uint64_t FrameHash(const FrameHeader& header, std::string_view payload) {
  // FNV-1a 64 over the 28 pre-hash header bytes, then the payload.
  std::string prefix;
  prefix.reserve(28);
  PutU32(kWireMagic, &prefix);
  prefix.push_back(static_cast<char>(header.version));
  prefix.push_back(static_cast<char>(header.type));
  PutU16(header.flags, &prefix);
  PutU64(header.request_id, &prefix);
  PutU64(header.budget_us, &prefix);
  PutU32(header.payload_len, &prefix);
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::string_view bytes) {
    for (char c : bytes) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
  };
  mix(prefix);
  mix(payload);
  return h;
}

void EncodeFrameHeader(const FrameHeader& header, std::string* out) {
  PutU32(kWireMagic, out);
  out->push_back(static_cast<char>(header.version));
  out->push_back(static_cast<char>(header.type));
  PutU16(header.flags, out);
  PutU64(header.request_id, out);
  PutU64(header.budget_us, out);
  PutU32(header.payload_len, out);
  PutU64(header.payload_hash, out);
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes,
                                      uint32_t max_payload) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::InvalidArgument(
        "truncated frame header: " + std::to_string(bytes.size()) + " of " +
        std::to_string(kFrameHeaderSize) + " byte(s)");
  }
  const char* p = bytes.data();
  uint32_t magic = GetU32(p);
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic 0x" + [&] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08X", magic);
      return std::string(buf);
    }());
  }
  FrameHeader header;
  header.version = static_cast<uint8_t>(p[4]);
  if (header.version != kWireVersion && header.version != kWireVersionLegacy) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(header.version));
  }
  uint8_t type = static_cast<uint8_t>(p[5]);
  uint8_t max_type = header.version >= 2
                         ? static_cast<uint8_t>(FrameType::kVersions)
                         : static_cast<uint8_t>(FrameType::kError);
  if (type < static_cast<uint8_t>(FrameType::kRequest) || type > max_type) {
    return Status::InvalidArgument("bad frame type " + std::to_string(type));
  }
  header.type = static_cast<FrameType>(type);
  header.flags = GetU16(p + 6);
  // v1 keeps the original strictness (all flags reserved); v2 defines
  // kFlagTrace and reserves the rest.
  uint16_t allowed = header.version >= 2 ? kFlagTrace : 0;
  if ((header.flags & ~allowed) != 0) {
    return Status::InvalidArgument("nonzero reserved frame flags " +
                                   std::to_string(header.flags));
  }
  header.request_id = GetU64(p + 8);
  header.budget_us = GetU64(p + 16);
  header.payload_len = GetU32(p + 24);
  header.payload_hash = GetU64(p + 28);
  if (header.payload_len > max_payload) {
    return Status::InvalidArgument(
        "oversized frame payload: " + std::to_string(header.payload_len) +
        " byte(s) exceeds cap " + std::to_string(max_payload));
  }
  return header;
}

void EncodeRequestPayload(std::string_view sql, std::string* out) {
  PutU32(static_cast<uint32_t>(sql.size()), out);
  out->append(sql);
}

Result<std::string> DecodeRequestPayload(std::string_view payload) {
  Reader reader(payload);
  auto sql = reader.LengthPrefixed("request sql");
  SILK_RETURN_IF_ERROR(sql.status());
  if (!reader.done()) {
    return Status::InvalidArgument(
        "trailing bytes after request sql: " +
        std::to_string(reader.remaining()));
  }
  return std::string(*sql);
}

void EncodeErrorPayload(const Status& status, std::string* out) {
  PutU32(static_cast<uint32_t>(status.code()), out);
  const std::string& message = status.message();
  PutU32(static_cast<uint32_t>(message.size()), out);
  out->append(message);
}

Status DecodeErrorPayload(std::string_view payload, Status* carried) {
  Reader reader(payload);
  auto code = reader.U32("error code");
  SILK_RETURN_IF_ERROR(code.status());
  if (*code == 0 ||
      *code > static_cast<uint32_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("bad error status code " +
                                   std::to_string(*code));
  }
  auto message = reader.LengthPrefixed("error message");
  SILK_RETURN_IF_ERROR(message.status());
  if (!reader.done()) {
    return Status::InvalidArgument(
        "trailing bytes after error message: " +
        std::to_string(reader.remaining()));
  }
  *carried = Status(static_cast<StatusCode>(*code), std::string(*message));
  return Status::OK();
}

void EncodeEndPayload(const EndPayload& end, std::string* out) {
  PutU64(end.rows, out);
  PutU64(end.relation_bytes, out);
}

Result<EndPayload> DecodeEndPayload(std::string_view payload) {
  if (payload.size() != 16) {
    return Status::InvalidArgument("end payload must be 16 byte(s), got " +
                                   std::to_string(payload.size()));
  }
  EndPayload end;
  end.rows = GetU64(payload.data());
  end.relation_bytes = GetU64(payload.data() + 8);
  return end;
}

namespace {

void PutLengthPrefixed(std::string_view bytes, std::string* out) {
  PutU32(static_cast<uint32_t>(bytes.size()), out);
  out->append(bytes);
}

/// Decodes one trace block from `reader`; must consume it exactly.
Result<std::vector<WireSpan>> DecodeTraceBlockFrom(Reader& reader) {
  auto count = reader.U32("trace span count");
  SILK_RETURN_IF_ERROR(count.status());
  if (*count > kMaxTraceSpans) {
    return Status::InvalidArgument("hostile trace span count " +
                                   std::to_string(*count));
  }
  // Each span needs at least three length prefixes, two timestamps, and an
  // annotation count (32 bytes); reject counts the payload cannot hold
  // before any allocation sized from them.
  if (*count > reader.remaining() / 32) {
    return Status::InvalidArgument("hostile trace span count " +
                                   std::to_string(*count));
  }
  std::vector<WireSpan> spans;
  spans.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    WireSpan span;
    auto id = reader.LengthPrefixed("trace span id");
    SILK_RETURN_IF_ERROR(id.status());
    span.id = std::string(*id);
    auto parent = reader.LengthPrefixed("trace span parent id");
    SILK_RETURN_IF_ERROR(parent.status());
    span.parent_id = std::string(*parent);
    auto name = reader.LengthPrefixed("trace span name");
    SILK_RETURN_IF_ERROR(name.status());
    span.name = std::string(*name);
    auto start_ns = reader.U64("trace span start_ns");
    SILK_RETURN_IF_ERROR(start_ns.status());
    span.start_ns = *start_ns;
    auto end_ns = reader.U64("trace span end_ns");
    SILK_RETURN_IF_ERROR(end_ns.status());
    span.end_ns = *end_ns;
    auto n_annotations = reader.U32("trace annotation count");
    SILK_RETURN_IF_ERROR(n_annotations.status());
    // Each annotation needs at least its two length prefixes.
    if (*n_annotations > reader.remaining() / 8) {
      return Status::InvalidArgument("hostile trace annotation count " +
                                     std::to_string(*n_annotations));
    }
    span.annotations.reserve(*n_annotations);
    for (uint32_t j = 0; j < *n_annotations; ++j) {
      auto key = reader.LengthPrefixed("trace annotation key");
      SILK_RETURN_IF_ERROR(key.status());
      auto value = reader.LengthPrefixed("trace annotation value");
      SILK_RETURN_IF_ERROR(value.status());
      span.annotations.emplace_back(std::string(*key), std::string(*value));
    }
    spans.push_back(std::move(span));
  }
  if (!reader.done()) {
    return Status::InvalidArgument(
        "trailing bytes after trace block: " +
        std::to_string(reader.remaining()));
  }
  return spans;
}

}  // namespace

void EncodeTracedRequestPayload(std::string_view sql,
                                const WireTraceContext& trace,
                                std::string* out) {
  EncodeRequestPayload(sql, out);
  PutLengthPrefixed(trace.trace_id, out);
  PutLengthPrefixed(trace.parent_span_id, out);
}

Result<TracedRequest> DecodeTracedRequestPayload(std::string_view payload) {
  Reader reader(payload);
  auto sql = reader.LengthPrefixed("request sql");
  SILK_RETURN_IF_ERROR(sql.status());
  auto trace_id = reader.LengthPrefixed("trace id");
  SILK_RETURN_IF_ERROR(trace_id.status());
  auto parent = reader.LengthPrefixed("parent span id");
  SILK_RETURN_IF_ERROR(parent.status());
  if (!reader.done()) {
    return Status::InvalidArgument(
        "trailing bytes after trace context: " +
        std::to_string(reader.remaining()));
  }
  TracedRequest request;
  request.sql = std::string(*sql);
  request.trace.trace_id = std::string(*trace_id);
  request.trace.parent_span_id = std::string(*parent);
  return request;
}

void EncodeVersionsRequestPayload(const std::vector<std::string>& tables,
                                  std::string* out) {
  PutU32(static_cast<uint32_t>(tables.size()), out);
  for (const std::string& table : tables) PutLengthPrefixed(table, out);
}

Result<std::vector<std::string>> DecodeVersionsRequestPayload(
    std::string_view payload) {
  Reader reader(payload);
  auto count = reader.U32("versions table count");
  SILK_RETURN_IF_ERROR(count.status());
  if (*count > kMaxVersionTables) {
    return Status::InvalidArgument("hostile versions table count " +
                                   std::to_string(*count));
  }
  std::vector<std::string> tables;
  tables.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto name = reader.LengthPrefixed("versions table name");
    SILK_RETURN_IF_ERROR(name.status());
    tables.emplace_back(*name);
  }
  if (!reader.done()) {
    return Status::InvalidArgument(
        "trailing bytes after versions request: " +
        std::to_string(reader.remaining()));
  }
  return tables;
}

void EncodeVersionsResponsePayload(
    const std::vector<std::pair<std::string, uint64_t>>& versions,
    std::string* out) {
  PutU32(static_cast<uint32_t>(versions.size()), out);
  for (const auto& [table, version] : versions) {
    PutLengthPrefixed(table, out);
    PutU64(version, out);
  }
}

Result<std::vector<std::pair<std::string, uint64_t>>>
DecodeVersionsResponsePayload(std::string_view payload) {
  Reader reader(payload);
  auto count = reader.U32("versions entry count");
  SILK_RETURN_IF_ERROR(count.status());
  if (*count > kMaxVersionTables) {
    return Status::InvalidArgument("hostile versions entry count " +
                                   std::to_string(*count));
  }
  std::vector<std::pair<std::string, uint64_t>> versions;
  versions.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto name = reader.LengthPrefixed("versions table name");
    SILK_RETURN_IF_ERROR(name.status());
    auto version = reader.U64("versions counter");
    SILK_RETURN_IF_ERROR(version.status());
    versions.emplace_back(std::string(*name), *version);
  }
  if (!reader.done()) {
    return Status::InvalidArgument(
        "trailing bytes after versions response: " +
        std::to_string(reader.remaining()));
  }
  return versions;
}

void EncodeTraceBlock(const std::vector<WireSpan>& spans, std::string* out) {
  PutU32(static_cast<uint32_t>(spans.size()), out);
  for (const auto& span : spans) {
    PutLengthPrefixed(span.id, out);
    PutLengthPrefixed(span.parent_id, out);
    PutLengthPrefixed(span.name, out);
    PutU64(span.start_ns, out);
    PutU64(span.end_ns, out);
    PutU32(static_cast<uint32_t>(span.annotations.size()), out);
    for (const auto& [key, value] : span.annotations) {
      PutLengthPrefixed(key, out);
      PutLengthPrefixed(value, out);
    }
  }
}

Result<std::vector<WireSpan>> DecodeTraceBlock(std::string_view bytes) {
  Reader reader(bytes);
  return DecodeTraceBlockFrom(reader);
}

void EncodeTracedEndPayload(const EndPayload& end,
                            const std::vector<WireSpan>& spans,
                            std::string* out) {
  EncodeEndPayload(end, out);
  EncodeTraceBlock(spans, out);
}

Result<TracedEnd> DecodeTracedEndPayload(std::string_view payload) {
  if (payload.size() < 16) {
    return Status::InvalidArgument(
        "traced end payload must start with the 16-byte base, got " +
        std::to_string(payload.size()));
  }
  TracedEnd traced;
  traced.end.rows = GetU64(payload.data());
  traced.end.relation_bytes = GetU64(payload.data() + 8);
  Reader reader(payload.substr(16));
  auto spans = DecodeTraceBlockFrom(reader);
  SILK_RETURN_IF_ERROR(spans.status());
  traced.spans = std::move(spans).value();
  return traced;
}

void SerializeRelation(const engine::Relation& relation, std::string* out) {
  PutU32(static_cast<uint32_t>(relation.schema.size()), out);
  for (const auto& column : relation.schema.columns()) {
    PutU32(static_cast<uint32_t>(column.qualifier.size()), out);
    out->append(column.qualifier);
    PutU32(static_cast<uint32_t>(column.name.size()), out);
    out->append(column.name);
  }
  PutU64(relation.rows.size(), out);
  size_t estimate = 0;
  for (const auto& row : relation.rows) estimate += row.ByteSize() + 8;
  out->reserve(out->size() + estimate);
  for (const auto& row : relation.rows) {
    engine::SerializeTuple(row, out);
  }
}

Result<engine::Relation> DeserializeRelation(std::string_view bytes) {
  Reader reader(bytes);
  auto ncols = reader.U32("column count");
  SILK_RETURN_IF_ERROR(ncols.status());
  // Each column needs at least its two length prefixes; a hostile count is
  // rejected before any allocation sized from it.
  if (*ncols > reader.remaining() / 8) {
    return Status::InvalidArgument("hostile column count " +
                                   std::to_string(*ncols));
  }
  engine::Relation relation;
  for (uint32_t i = 0; i < *ncols; ++i) {
    auto qualifier = reader.LengthPrefixed("column qualifier");
    SILK_RETURN_IF_ERROR(qualifier.status());
    auto name = reader.LengthPrefixed("column name");
    SILK_RETURN_IF_ERROR(name.status());
    relation.schema.Add(
        engine::OutputColumn{std::string(*qualifier), std::string(*name)});
  }
  auto nrows = reader.U64("row count");
  SILK_RETURN_IF_ERROR(nrows.status());
  // Each row is at least a 4-byte value count.
  if (*nrows > reader.remaining() / 4) {
    return Status::InvalidArgument("hostile row count " +
                                   std::to_string(*nrows));
  }
  relation.rows.reserve(static_cast<size_t>(*nrows));
  // DeserializeTuple still works on (const std::string&, size_t*); give it
  // the row region. The copy is bounded by kMaxFramePayload upstream.
  std::string row_bytes(bytes.substr(bytes.size() - reader.remaining()));
  size_t offset = 0;
  for (uint64_t i = 0; i < *nrows; ++i) {
    auto tuple = engine::DeserializeTuple(row_bytes, &offset);
    SILK_RETURN_IF_ERROR(tuple.status());
    if (tuple->size() != relation.schema.size()) {
      return Status::InvalidArgument(
          "row " + std::to_string(i) + " has " + std::to_string(tuple->size()) +
          " value(s) for " + std::to_string(relation.schema.size()) +
          " column(s)");
    }
    relation.rows.push_back(std::move(tuple).value());
  }
  if (offset != row_bytes.size()) {
    return Status::InvalidArgument(
        "trailing bytes after last row: " +
        std::to_string(row_bytes.size() - offset));
  }
  return relation;
}

}  // namespace silkroute::net
