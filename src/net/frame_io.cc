#include "net/frame_io.h"

namespace silkroute::net {

Result<Frame> ReadFrame(Socket* socket, const IoOptions& io,
                        uint32_t max_payload) {
  char header_bytes[kFrameHeaderSize];
  SILK_RETURN_IF_ERROR(socket->ReadFull(header_bytes, kFrameHeaderSize, io));
  auto header = DecodeFrameHeader(
      std::string_view(header_bytes, kFrameHeaderSize), max_payload);
  SILK_RETURN_IF_ERROR(header.status());
  Frame frame;
  frame.header = *header;
  if (frame.header.payload_len > 0) {
    frame.payload.resize(frame.header.payload_len);
    SILK_RETURN_IF_ERROR(
        socket->ReadFull(frame.payload.data(), frame.payload.size(), io));
  }
  // End-to-end integrity: corruption anywhere in the header tail or payload
  // that slipped past the field checks is caught here, before any byte is
  // interpreted as data.
  if (FrameHash(frame.header, frame.payload) != frame.header.payload_hash) {
    return Status::InvalidArgument("frame payload hash mismatch");
  }
  return frame;
}

Status WriteFrame(Socket* socket, FrameHeader header, std::string_view payload,
                  const IoOptions& io) {
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.payload_hash = FrameHash(header, payload);
  std::string bytes;
  bytes.reserve(kFrameHeaderSize + payload.size());
  EncodeFrameHeader(header, &bytes);
  bytes.append(payload);
  return socket->WriteFull(bytes.data(), bytes.size(), io);
}

}  // namespace silkroute::net
