#include "net/server.h"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <mutex>
#include <sstream>
#include <utility>

#include "net/frame_io.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace silkroute::net {

namespace {

/// Writing to a peer that already reset would raise SIGPIPE and kill the
/// process — exactly the failure mode a fault-tolerant server must absorb.
/// MSG_NOSIGNAL covers send(); this covers any straggler write path.
void IgnoreSigpipeOnce() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

}  // namespace

EngineServer::EngineServer(const Database* db, EngineServerOptions options)
    : db_(db),
      options_(std::move(options)),
      executor_(db),
      pool_(options_.workers, options_.metrics) {
  executor_.set_parallelism(options_.engine_threads);
  executor_.set_metrics_registry(options_.metrics);
  if (options_.metrics != nullptr) {
    m_requests_ = options_.metrics->counter("silkroute_server_requests_total");
    m_errors_ = options_.metrics->counter("silkroute_server_errors_total");
    m_frames_in_ =
        options_.metrics->counter("silkroute_server_frames_in_total");
    m_frames_out_ =
        options_.metrics->counter("silkroute_server_frames_out_total");
    m_connections_ = options_.metrics->gauge("silkroute_server_connections");
  }
}

EngineServer::~EngineServer() { Shutdown(); }

Status EngineServer::Start() {
  IgnoreSigpipeOnce();
  auto listener = Listener::Bind(options_.host, options_.port);
  SILK_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void EngineServer::AcceptLoop() {
  IoOptions io;
  io.cancel = &cancel_;
  io.poll_interval_ms = 50;
  while (!stopping_.load()) {
    auto accepted = listener_.Accept(io);
    if (!accepted.ok()) {
      if (stopping_.load() || cancel_.cancelled()) break;
      // Transient accept failure: keep serving.
      continue;
    }
    connections_accepted_.fetch_add(1);
    if (m_connections_ != nullptr) m_connections_->Add(1);
    ReapConnections(/*all=*/false);
    auto slot = std::make_unique<ConnectionSlot>();
    ConnectionSlot* raw = slot.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(std::move(slot));
    }
    raw->thread =
        std::thread([this, raw, sock = std::move(*accepted)]() mutable {
          ServeConnection(std::move(sock));
          if (m_connections_ != nullptr) m_connections_->Add(-1);
          raw->done.store(true);
        });
  }
}

void EngineServer::ReapConnections(bool all) {
  std::vector<std::unique_ptr<ConnectionSlot>> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || (*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& slot : finished) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void EngineServer::ServeConnection(Socket socket) {
  IoOptions io;
  io.cancel = &cancel_;
  while (!stopping_.load()) {
    auto frame = ReadFrame(&socket, io, options_.max_payload);
    if (!frame.ok()) {
      // EOF between requests is the normal end of a pooled connection;
      // garbage (kInvalidArgument) means the stream offset is lost — either
      // way the connection is done.
      return;
    }
    if (options_.emulate_legacy &&
        frame->header.version != kWireVersionLegacy) {
      // A pre-v2 server rejects the unknown version at header decode and
      // closes without an error frame; reproduce that byte-for-byte so the
      // client-side downgrade path is tested against the real symptom.
      return;
    }
    if (m_frames_in_ != nullptr) m_frames_in_->Add(1);
    if (!ServeRequest(&socket, *frame)) return;
  }
}

bool EngineServer::ServeRequest(Socket* socket, const Frame& request) {
  IoOptions io;
  io.cancel = &cancel_;

  auto send_error = [&](const Status& status) {
    requests_failed_.fetch_add(1);
    if (m_errors_ != nullptr) m_errors_->Add(1);
    std::string payload;
    EncodeErrorPayload(status, &payload);
    FrameHeader header;
    header.type = FrameType::kError;
    header.request_id = request.header.request_id;
    if (m_frames_out_ != nullptr) m_frames_out_->Add(1);
    return WriteFrame(socket, header, payload, io).ok();
  };

  if (request.header.type == FrameType::kStats) {
    // Live scrape over the wire: reply with a point-in-time Prometheus
    // snapshot of the server's registry (empty body when metrics are off).
    std::ostringstream text;
    if (options_.metrics != nullptr) {
      obs::WritePrometheusText(text, options_.metrics->Snapshot());
    }
    FrameHeader stats;
    stats.version = kWireVersion;
    stats.type = FrameType::kStats;
    stats.request_id = request.header.request_id;
    if (m_frames_out_ != nullptr) m_frames_out_->Add(1);
    return WriteFrame(socket, stats, text.str(), io).ok();
  }

  if (request.header.type == FrameType::kVersions) {
    // Table-version fetch for the client's result cache: answer from the
    // local tables' atomic counters. An unknown table is an error frame —
    // the client then publishes that plan uncached rather than keying on a
    // fabricated version.
    auto tables = DecodeVersionsRequestPayload(request.payload);
    if (!tables.ok()) {
      send_error(tables.status());
      return false;
    }
    auto versions = executor_.FetchTableVersions(*tables);
    if (!versions.ok()) {
      send_error(versions.status());
      return true;  // well-formed request, answerable connection
    }
    std::string payload;
    EncodeVersionsResponsePayload(*versions, &payload);
    FrameHeader reply;
    reply.version = kWireVersion;
    reply.type = FrameType::kVersions;
    reply.request_id = request.header.request_id;
    if (m_frames_out_ != nullptr) m_frames_out_->Add(1);
    return WriteFrame(socket, reply, payload, io).ok();
  }

  if (request.header.type != FrameType::kRequest) {
    // A client speaking the protocol wrong gets one error, then the
    // connection closes (the stream can no longer be trusted).
    send_error(Status::InvalidArgument(
        std::string("unexpected ") + FrameTypeToString(request.header.type) +
        " frame from client"));
    return false;
  }
  const bool traced = request.header.version >= 2 &&
                      (request.header.flags & kFlagTrace) != 0;
  std::string sql_text;
  WireTraceContext trace_context;
  if (traced) {
    auto decoded = DecodeTracedRequestPayload(request.payload);
    if (!decoded.ok()) {
      send_error(decoded.status());
      return false;
    }
    sql_text = std::move(decoded->sql);
    trace_context = std::move(decoded->trace);
  } else {
    auto sql = DecodeRequestPayload(request.payload);
    if (!sql.ok()) {
      send_error(sql.status());
      return false;
    }
    sql_text = std::move(*sql);
  }

  // Deadline propagation: re-anchor the client's remaining budget on this
  // host's clock. Work that cannot finish in time is aborted here — first
  // by the pre-execution check, then by the executor's own kTimeout.
  double budget_ms =
      static_cast<double>(request.header.budget_us) / 1000.0;
  bool has_deadline = request.header.budget_us > 0;
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(budget_ms));
  if (has_deadline && budget_ms <= 0) {
    deadline_rejects_.fetch_add(1);
    return send_error(Status::Timeout("deadline expired before execution"));
  }

  // Per-request tracer: queue-wait / execute / serialize phase spans hang
  // under one "server" root whose finished subtree ships back in the kEnd
  // frame for the client to stitch under its attempt span. The sink and
  // tracer live on this stack; the pool task finishes every span it owns
  // before fulfilling the slot, and this thread waits on the slot before
  // leaving the frame, so no span outlives its tracer.
  obs::CollectingSink trace_sink;
  obs::Tracer tracer(traced ? &trace_sink : nullptr);
  obs::SpanHandle server_span = obs::Tracer::Root(&tracer, "server");
  server_span.Annotate("sql", sql_text);
  if (!trace_context.trace_id.empty()) {
    server_span.Annotate("trace_id", trace_context.trace_id);
  }

  // Execute on the shared pool; this thread only waits and streams.
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<engine::Relation> result = Status::Internal("request not run");
  };
  auto slot = std::make_shared<Slot>();
  auto queue_span = std::make_shared<obs::SpanHandle>(
      obs::Tracer::Child(&tracer, &server_span, "phase:queue_wait"));
  auto queue_start = std::chrono::steady_clock::now();
  bool submitted = pool_.Submit([this, slot, sql = std::move(sql_text),
                                 has_deadline, deadline, budget_ms, queue_span,
                                 queue_start, tracer_ptr = &tracer,
                                 server_ptr = &server_span] {
    queue_span->AnnotateMs(
        "ms", std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - queue_start)
                  .count());
    queue_span->End();
    obs::SpanHandle execute_span =
        obs::Tracer::Child(tracer_ptr, server_ptr, "phase:execute");
    auto execute_start = std::chrono::steady_clock::now();
    Result<engine::Relation> result = [&]() -> Result<engine::Relation> {
      if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
        return Status::Timeout("deadline expired in server queue");
      }
      double remaining_ms = budget_ms;
      if (has_deadline) {
        remaining_ms = std::chrono::duration<double, std::milli>(
                           deadline - std::chrono::steady_clock::now())
                           .count();
        if (remaining_ms <= 0) {
          return Status::Timeout("deadline expired in server queue");
        }
      }
      return executor_.ExecuteSqlWithDeadline(sql,
                                              has_deadline ? remaining_ms : 0);
    }();
    execute_span.AnnotateMs(
        "ms", std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - execute_start)
                  .count());
    execute_span.Annotate("status",
                          StatusCodeToString(result.status().code()));
    execute_span.End();
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      slot->result = std::move(result);
      slot->done = true;
    }
    slot->cv.notify_all();
  });
  if (!submitted) {
    return send_error(Status::Unavailable("server is shutting down"));
  }
  Result<engine::Relation> result = [&] {
    std::unique_lock<std::mutex> lock(slot->mu);
    slot->cv.wait(lock, [&] { return slot->done; });
    return std::move(slot->result);
  }();

  if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
    deadline_rejects_.fetch_add(1);
    return send_error(Status::Timeout("deadline expired during execution"));
  }
  if (!result.ok()) return send_error(result.status());

  // Stream the relation: kChunk* then kEnd carrying the row/byte counts the
  // client cross-checks. The serialize span covers both the encode and the
  // chunk writes onto the wire, and ends before the kEnd payload is built
  // so the shipped subtree is complete.
  obs::SpanHandle serialize_span =
      obs::Tracer::Child(&tracer, &server_span, "phase:serialize");
  auto serialize_start = std::chrono::steady_clock::now();
  std::string bytes;
  SerializeRelation(*result, &bytes);
  EndPayload end;
  end.rows = result->rows.size();
  end.relation_bytes = bytes.size();
  size_t offset = 0;
  do {
    size_t len = std::min(options_.chunk_bytes, bytes.size() - offset);
    FrameHeader chunk;
    chunk.type = FrameType::kChunk;
    chunk.request_id = request.header.request_id;
    if (m_frames_out_ != nullptr) m_frames_out_->Add(1);
    IoOptions write_io = io;
    // A dead or stalled client must not hold this connection thread past
    // the request's own deadline (plus slack for the response transfer).
    if (has_deadline) {
      write_io.has_deadline = true;
      write_io.deadline = deadline + std::chrono::seconds(5);
    }
    if (!WriteFrame(socket, chunk,
                    std::string_view(bytes).substr(offset, len), write_io)
             .ok()) {
      requests_failed_.fetch_add(1);
      return false;
    }
    offset += len;
  } while (offset < bytes.size());
  serialize_span.AnnotateMs(
      "ms", std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - serialize_start)
                .count());
  serialize_span.Annotate("bytes", std::to_string(bytes.size()));
  serialize_span.End();
  std::string end_payload;
  FrameHeader end_header;
  end_header.type = FrameType::kEnd;
  end_header.request_id = request.header.request_id;
  if (traced) {
    // Finish the server root, then ship the whole recorded subtree back in
    // a v2 kEnd so the client can stitch it under its attempt span.
    server_span.Annotate("rows", std::to_string(result->rows.size()));
    server_span.End();
    std::vector<WireSpan> wire_spans;
    for (const obs::Span& span : trace_sink.spans()) {
      WireSpan ws;
      ws.id = span.id;
      ws.parent_id = span.parent_id;
      ws.name = span.name;
      ws.start_ns = span.start_ns;
      ws.end_ns = span.end_ns;
      for (const obs::Annotation& kv : span.annotations) {
        ws.annotations.emplace_back(kv.key, kv.value);
      }
      wire_spans.push_back(std::move(ws));
    }
    EncodeTracedEndPayload(end, wire_spans, &end_payload);
    end_header.version = kWireVersion;
    end_header.flags = kFlagTrace;
  } else {
    EncodeEndPayload(end, &end_payload);
  }
  if (m_frames_out_ != nullptr) m_frames_out_->Add(1);
  if (!WriteFrame(socket, end_header, end_payload, io).ok()) {
    requests_failed_.fetch_add(1);
    return false;
  }
  requests_served_.fetch_add(1);
  if (m_requests_ != nullptr) m_requests_->Add(1);
  return true;
}

void EngineServer::Shutdown() {
  if (!started_.exchange(false)) {
    // Never started (or already shut down): still make Shutdown idempotent
    // for a Start that failed after partial setup.
    stopping_.store(true);
    cancel_.Cancel();
    if (accept_thread_.joinable()) accept_thread_.join();
    ReapConnections(/*all=*/true);
    pool_.Shutdown();
    return;
  }
  stopping_.store(true);
  cancel_.Cancel();
  // The cancel token unblocks Accept's poll within one interval; close the
  // listener only after the accept thread is joined — closing while it
  // still polls the fd is a race (and the fd number could be reused).
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  ReapConnections(/*all=*/true);
  pool_.Shutdown();
}

}  // namespace silkroute::net
