// Wire protocol for the networked federation layer (DESIGN.md §12): a
// versioned, length-prefixed binary framing that carries component queries
// from a RemoteSqlExecutor to an EngineServer and result relations back.
//
// Frame layout (all integers little-endian, fixed width):
//
//   offset  size  field
//        0     4  magic        0x53524B31 ("SRK1")
//        4     1  version      kWireVersion (2) or kWireVersionLegacy (1)
//        5     1  type         FrameType
//        6     2  flags        v1: reserved, must be 0
//                              v2: kFlagTrace marks traced payload variants;
//                                  all other bits must be 0
//        8     8  request_id   echoed verbatim in every response frame
//       16     8  budget_us    remaining deadline budget at send time, in
//                              microseconds (0 = no deadline). The client
//                              re-computes the budget immediately before
//                              sending; the server derives its own absolute
//                              deadline on receipt and aborts work past it.
//       24     4  payload_len  bytes of payload following the header
//       28     8  payload_hash FNV-1a 64 over the first 28 header bytes and
//                              the payload. Random corruption of either the
//                              header tail or the payload can otherwise
//                              decode as plausible-but-wrong data (a flipped
//                              byte inside a string value survives every
//                              count cross-check); the hash turns all of it
//                              into a clean decode failure.
//
// Frame types:
//   kRequest  client -> server   payload: u32 sql_len + sql bytes; with
//                                kFlagTrace, followed by len-prefixed trace id
//                                and parent span id (distributed trace context)
//   kChunk    server -> client   payload: a slice of the serialized relation
//   kEnd      server -> client   payload: u64 row count + u64 total relation
//                                bytes — a cross-check that every chunk
//                                arrived intact; with kFlagTrace, followed by
//                                the server-side span subtree (trace block)
//   kError    server -> client   payload: u32 status code + u32 msg_len + msg
//   kStats    both directions    request: empty payload; response: Prometheus
//                                text-exposition snapshot of the server's
//                                metrics registry (live scrape over the wire)
//   kVersions both directions    request: u32 count + len-prefixed table
//                                names; response: u32 count + per table
//                                len-prefixed name + u64 version counter.
//                                Fetched once per publish to key the result
//                                cache (DESIGN.md §15); a legacy peer
//                                rejects the v2 frame and the client just
//                                publishes uncached.
//
// Version negotiation: v2 frames are only emitted when they carry v2-only
// content (trace context / kStats); plain query traffic stays v1, so a
// current client and a legacy server interoperate untraced. A legacy peer
// that receives a v2 frame rejects it at header decode — before executing
// anything — and the client downgrades that connection to v1 (DESIGN.md §14).
//
// Decoding is strict and bounds-checked everywhere: a bad magic, unknown
// version or type, non-zero flags, an oversized length prefix, or any
// truncation yields kInvalidArgument — never UB, never a partial value.
// Transport layers map decode failures to kUnavailable (a corrupt stream is
// indistinguishable from a broken peer), but the codec itself reports
// exactly what was wrong.
#ifndef SILKROUTE_NET_WIRE_H_
#define SILKROUTE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"

namespace silkroute::net {

inline constexpr uint32_t kWireMagic = 0x53524B31;  // "SRK1"
/// Current protocol version. Emitted only on frames that carry v2-only
/// content (trace context, kStats); everything else stays on
/// kWireVersionLegacy so old peers keep decoding plain traffic.
inline constexpr uint8_t kWireVersion = 2;
inline constexpr uint8_t kWireVersionLegacy = 1;
inline constexpr size_t kFrameHeaderSize = 36;
/// Hard cap on any single frame payload; a length prefix above this is
/// hostile (or garbage) and is rejected before any allocation.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// v2 flag: the payload carries the traced variant (trace context on
/// kRequest, a span-subtree trace block on kEnd). Illegal on v1 frames.
inline constexpr uint16_t kFlagTrace = 0x1;

enum class FrameType : uint8_t {
  kRequest = 1,
  kChunk = 2,
  kEnd = 3,
  kError = 4,
  kStats = 5,     // v2 only: live metrics scrape over the wire
  kVersions = 6,  // v2 only: table-version vector fetch (result cache keys)
};

const char* FrameTypeToString(FrameType type);

struct FrameHeader {
  // Plain traffic defaults to the legacy version; senders bump to
  // kWireVersion explicitly on frames that carry v2-only content.
  uint8_t version = kWireVersionLegacy;
  FrameType type = FrameType::kRequest;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint64_t budget_us = 0;
  uint32_t payload_len = 0;
  uint64_t payload_hash = 0;
};

/// FNV-1a 64 over the first 28 encoded header bytes (everything before the
/// hash field) followed by the payload. Frame I/O stamps this into
/// `payload_hash` on write and verifies it on read.
uint64_t FrameHash(const FrameHeader& header, std::string_view payload);

/// Appends the 36-byte encoded header to `out`.
void EncodeFrameHeader(const FrameHeader& header, std::string* out);

/// Decodes a header from exactly the first kFrameHeaderSize bytes of
/// `bytes`. `max_payload` caps payload_len (pass kMaxFramePayload or a
/// tighter bound). Strict: every defect is a distinct kInvalidArgument.
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes,
                                      uint32_t max_payload = kMaxFramePayload);

// --- Request payload -------------------------------------------------------

void EncodeRequestPayload(std::string_view sql, std::string* out);
Result<std::string> DecodeRequestPayload(std::string_view payload);

/// Distributed trace context carried on a traced kRequest (after the sql
/// block): the client's trace id and the span the server subtree should be
/// stitched under. Both are opaque strings to the wire.
struct WireTraceContext {
  std::string trace_id;
  std::string parent_span_id;
};

void EncodeTracedRequestPayload(std::string_view sql,
                                const WireTraceContext& trace,
                                std::string* out);

struct TracedRequest {
  std::string sql;
  WireTraceContext trace;
};

Result<TracedRequest> DecodeTracedRequestPayload(std::string_view payload);

// --- Error payload ---------------------------------------------------------

/// Encodes a non-OK status (code + message).
void EncodeErrorPayload(const Status& status, std::string* out);
/// Decodes the carried status into `*carried`. The return value is about
/// the payload itself: a code outside the StatusCode enum or a truncated
/// message is kInvalidArgument (and `*carried` is untouched).
Status DecodeErrorPayload(std::string_view payload, Status* carried);

// --- End payload -----------------------------------------------------------

struct EndPayload {
  uint64_t rows = 0;
  uint64_t relation_bytes = 0;  // total serialized relation size
};

void EncodeEndPayload(const EndPayload& end, std::string* out);
Result<EndPayload> DecodeEndPayload(std::string_view payload);

// --- Versions payload ------------------------------------------------------
// Table-version fetch for the result cache (kVersions, v2 only). The
// request names the tables a plan touches; the response carries each
// table's monotonic version counter (relational/table.h).

/// Hard cap on tables per versions frame; a count above this is hostile.
inline constexpr uint32_t kMaxVersionTables = 4096;

void EncodeVersionsRequestPayload(const std::vector<std::string>& tables,
                                  std::string* out);
Result<std::vector<std::string>> DecodeVersionsRequestPayload(
    std::string_view payload);

void EncodeVersionsResponsePayload(
    const std::vector<std::pair<std::string, uint64_t>>& versions,
    std::string* out);
Result<std::vector<std::pair<std::string, uint64_t>>>
DecodeVersionsResponsePayload(std::string_view payload);

// --- Trace block -----------------------------------------------------------
// A finished server-side span subtree shipped back on a traced kEnd frame:
// u32 span count, then per span len-prefixed id / parent id / name, u64
// start_ns / end_ns (server-local monotonic), u32 annotation count, and
// len-prefixed key/value pairs. Ids are the server Tracer's hierarchical ids;
// the client rewrites them into its own id space when stitching.

struct WireSpan {
  std::string id;
  std::string parent_id;  // empty on the subtree root
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// Hard cap on spans per trace block; a count above this is hostile.
inline constexpr uint32_t kMaxTraceSpans = 4096;

void EncodeTraceBlock(const std::vector<WireSpan>& spans, std::string* out);
/// Strict whole-buffer decode with hostile-count guards.
Result<std::vector<WireSpan>> DecodeTraceBlock(std::string_view bytes);

/// Traced kEnd payload: the 16-byte base followed by a trace block.
void EncodeTracedEndPayload(const EndPayload& end,
                            const std::vector<WireSpan>& spans,
                            std::string* out);

struct TracedEnd {
  EndPayload end;
  std::vector<WireSpan> spans;
};

Result<TracedEnd> DecodeTracedEndPayload(std::string_view payload);

// --- Relation codec --------------------------------------------------------
// Schema (column qualifiers/names) followed by row count and the rows in
// TupleStream's serialization format — the same bytes a TupleStream would
// hold, so the binding cost the paper measures is paid exactly once.

void SerializeRelation(const engine::Relation& relation, std::string* out);

/// Strict whole-buffer decode: trailing bytes after the last row, any
/// truncation, or hostile counts are kInvalidArgument.
Result<engine::Relation> DeserializeRelation(std::string_view bytes);

}  // namespace silkroute::net

#endif  // SILKROUTE_NET_WIRE_H_
