#include "net/flaky_proxy.h"

#include <algorithm>
#include <utility>

#include "common/random.h"

namespace silkroute::net {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kRefuse: return "refuse";
    case FaultKind::kReset: return "reset";
    case FaultKind::kGarbage: return "garbage";
    case FaultKind::kStall: return "stall";
  }
  return "unknown";
}

FlakyProxy::FlakyProxy(FlakyProxyOptions options)
    : options_(std::move(options)) {}

FlakyProxy::~FlakyProxy() { Shutdown(); }

Status FlakyProxy::Start() {
  auto listener = Listener::Bind("127.0.0.1", 0);
  SILK_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FlakyProxy::Shutdown() {
  if (stopping_.exchange(true)) return;
  cancel_.Cancel();
  // Cancel unblocks the accept poll; only close the listener once the
  // accept thread is joined (closing an fd another thread polls is a race).
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::unique_ptr<ConnectionSlot>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conns_);
  }
  for (auto& slot : conns) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

FaultPlan FlakyProxy::PlanFor(uint64_t index) const {
  // splitmix64-style hash of (seed, index) keeps plans independent of one
  // another and reproducible regardless of how many draws each plan takes.
  uint64_t z = options_.seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  Random rng(z ^ (z >> 31));

  FaultPlan plan;
  if (!rng.Bernoulli(options_.fault_probability)) return plan;
  if (!options_.allowed_kinds.empty()) {
    plan.kind = options_.allowed_kinds[static_cast<size_t>(rng.Uniform(
        0, static_cast<int64_t>(options_.allowed_kinds.size()) - 1))];
  } else {
    switch (rng.Uniform(0, 3)) {
      case 0: plan.kind = FaultKind::kRefuse; break;
      case 1: plan.kind = FaultKind::kReset; break;
      case 2: plan.kind = FaultKind::kGarbage; break;
      default: plan.kind = FaultKind::kStall; break;
    }
  }
  // Bias the trigger offset toward the start of the stream (squared uniform)
  // so frame headers and length prefixes are hit disproportionately often —
  // that is where torn/truncated/oversized-length bugs live.
  double u = rng.NextDouble();
  plan.at_byte = static_cast<uint64_t>(
      u * u * static_cast<double>(options_.fault_window_bytes));
  plan.garbage_len = static_cast<uint32_t>(rng.Uniform(1, 64));
  plan.stall_ms = rng.NextDouble() * options_.max_stall_ms;
  plan.on_response = rng.Bernoulli(0.5);
  return plan;
}

void FlakyProxy::AcceptLoop() {
  IoOptions io;
  io.cancel = &cancel_;
  io.poll_interval_ms = 20;
  while (!stopping_.load()) {
    auto client = listener_.Accept(io);
    if (!client.ok()) {
      if (stopping_.load() || cancel_.cancelled()) break;
      continue;
    }
    FaultPlan plan = PlanFor(connections_.fetch_add(1));
    // Reap finished connection threads before spawning a new one.
    {
      std::vector<std::unique_ptr<ConnectionSlot>> finished;
      std::lock_guard<std::mutex> lock(conn_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load()) {
          finished.push_back(std::move(*it));
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      for (auto& slot : finished) {
        if (slot->thread.joinable()) slot->thread.join();
      }
    }
    auto slot = std::make_unique<ConnectionSlot>();
    ConnectionSlot* raw = slot.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conns_.push_back(std::move(slot));
    }
    raw->thread =
        std::thread([this, raw, plan, sock = std::move(*client)]() mutable {
          ServeConnection(std::move(sock), plan);
          raw->done.store(true);
        });
  }
}

void FlakyProxy::ServeConnection(Socket client, FaultPlan plan) {
  if (plan.kind == FaultKind::kRefuse) {
    faults_injected_.fetch_add(1);
    return;  // closing the accepted socket = refused from the client's view
  }
  IoOptions dial_io = IoOptions::WithTimeout(2000);
  dial_io.cancel = &cancel_;
  auto upstream = Dial(options_.upstream_host, options_.upstream_port, dial_io);
  if (!upstream.ok()) return;

  // Two pumps, one per direction; the fault plan applies to exactly one of
  // them. Either pump breaking closes both sockets (a real proxy's RST
  // propagation) via the shared `broken` flag + socket Close.
  std::atomic<bool> broken{false};
  const FaultPlan* request_plan = plan.on_response ? nullptr : &plan;
  const FaultPlan* response_plan = plan.on_response ? &plan : nullptr;
  Socket* client_ptr = &client;
  Socket* upstream_ptr = &*upstream;
  std::thread response_pump([this, upstream_ptr, client_ptr, response_plan,
                             &broken] {
    Pump(upstream_ptr, client_ptr, response_plan, &broken);
  });
  Pump(client_ptr, upstream_ptr, request_plan, &broken);
  broken.store(true);
  // Half-close both sockets so the response pump's poll wakes with EOF
  // (shutdown, not close: the other thread still polls these fds).
  client.ShutdownBoth();
  upstream->ShutdownBoth();
  response_pump.join();
}

void FlakyProxy::Pump(Socket* from, Socket* to, const FaultPlan* plan,
                      std::atomic<bool>* broken) {
  Random garbage_rng(options_.seed ^ 0xDEADBEEFu);
  uint64_t forwarded = 0;
  bool fault_done = plan == nullptr || plan->kind == FaultKind::kNone;
  char buf[4096];
  IoOptions io;
  io.cancel = &cancel_;
  io.poll_interval_ms = 10;
  // Any pump exit tears down the whole connection: half-close both sockets
  // so the sibling pump (possibly blocked in poll) wakes with EOF instead
  // of waiting out the client's deadline.
  struct Teardown {
    Socket* a;
    Socket* b;
    std::atomic<bool>* broken;
    ~Teardown() {
      broken->store(true);
      a->ShutdownBoth();
      b->ShutdownBoth();
    }
  } teardown{from, to, broken};
  while (!stopping_.load() && !broken->load()) {
    // Read whatever is available (1..sizeof buf). ReadFull(1) then peeking
    // more would complicate things; a 1-byte granularity pump would be too
    // slow, so read up to the fault boundary when one is pending.
    size_t want = sizeof(buf);
    if (!fault_done && plan->at_byte > forwarded) {
      want = std::min<uint64_t>(want, plan->at_byte - forwarded);
    }
    size_t got = 0;
    Status status = from->ReadSome(buf, want, &got, io);
    if (!status.ok() || got == 0) break;

    if (!fault_done && forwarded + got >= plan->at_byte) {
      switch (plan->kind) {
        case FaultKind::kReset: {
          // Forward up to the boundary, then tear the connection — the
          // receiver sees a frame cut at an arbitrary byte.
          size_t keep = static_cast<size_t>(plan->at_byte - forwarded);
          if (keep > 0) (void)to->WriteFull(buf, keep, io);
          faults_injected_.fetch_add(1);
          return;  // Teardown resets both directions
        }
        case FaultKind::kGarbage: {
          // Corrupt garbage_len bytes starting at the boundary (within this
          // buffer) — magic, version, type, and length fields all live in
          // the first tens of bytes, so low offsets forge hostile lengths.
          size_t start = static_cast<size_t>(plan->at_byte - forwarded);
          size_t end = std::min(got, start + plan->garbage_len);
          for (size_t i = start; i < end; ++i) {
            buf[i] = static_cast<char>(garbage_rng.Next() & 0xFF);
          }
          faults_injected_.fetch_add(1);
          fault_done = true;
          break;
        }
        case FaultKind::kStall: {
          faults_injected_.fetch_add(1);
          fault_done = true;
          cancel_.SleepFor(plan->stall_ms);
          break;
        }
        case FaultKind::kNone:
        case FaultKind::kRefuse:
          fault_done = true;
          break;
      }
    }
    if (!to->WriteFull(buf, got, io).ok()) break;
    forwarded += got;
  }
}

}  // namespace silkroute::net
