// FlakyProxy: a seeded network fault injector for the chaos tests. It
// listens on an ephemeral port, forwards every connection to an upstream
// EngineServer, and — per its deterministic per-connection fault plan —
// refuses connections, resets them mid-stream (tearing frames at arbitrary
// byte offsets), corrupts forwarded bytes (hitting magic/length fields so
// the client sees truncated or oversized payloads), or stalls the pipe.
//
// Determinism: a proxy built from seed S injects the same fault sequence
// every run. Connection n's plan is drawn from an RNG seeded with
// hash(S, n), so the plan depends only on connection arrival order — which
// the chaos test keeps deterministic at concurrency 1 and bounded at 8.
//
// The proxy is intentionally layered *under* the wire protocol: it tears
// TCP bytes, not frames, which is exactly what a real flaky network does.
#ifndef SILKROUTE_NET_FLAKY_PROXY_H_
#define SILKROUTE_NET_FLAKY_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "net/socket.h"

namespace silkroute::net {

/// One connection's scripted failure.
enum class FaultKind : uint8_t {
  kNone = 0,      // transparent forwarding
  kRefuse,        // accept, then close immediately (connection refused-ish)
  kReset,         // forward `at_byte` bytes client->server, then close both
  kGarbage,       // corrupt forwarded bytes starting at `at_byte`
  kStall,         // pause forwarding `stall_ms` at `at_byte`, then continue
};

const char* FaultKindToString(FaultKind kind);

struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  /// Byte offset (in the client->server or server->client stream) where the
  /// fault triggers.
  uint64_t at_byte = 0;
  /// kGarbage: how many bytes to corrupt.
  uint32_t garbage_len = 0;
  /// kStall: how long to pause.
  double stall_ms = 0;
  /// Which direction carries the fault: false = client->server,
  /// true = server->client (faults on the response path).
  bool on_response = false;
};

struct FlakyProxyOptions {
  std::string upstream_host = "127.0.0.1";
  uint16_t upstream_port = 0;
  uint64_t seed = 1;
  /// Probability that a connection gets any fault at all.
  double fault_probability = 0.7;
  /// Upper bound for kStall pauses (kept small so chaos runs stay fast).
  double max_stall_ms = 100;
  /// Faults trigger within the first `fault_window_bytes` of a stream —
  /// biased low so length prefixes and headers get hit often.
  uint64_t fault_window_bytes = 4096;
  /// When non-empty, faulted connections draw their kind only from this
  /// list (uniformly). Lets a chaos test cast a proxy in a role — a
  /// stall-only "slow replica", a reset-biased "flapping replica" —
  /// while keeping every draw on the same seeded stream.
  std::vector<FaultKind> allowed_kinds;
};

class FlakyProxy {
 public:
  explicit FlakyProxy(FlakyProxyOptions options);
  ~FlakyProxy();

  FlakyProxy(const FlakyProxy&) = delete;
  FlakyProxy& operator=(const FlakyProxy&) = delete;

  /// Binds an ephemeral listener and starts proxying.
  Status Start();
  uint16_t port() const { return port_; }
  void Shutdown();

  /// The deterministic plan for connection `index` (0-based arrival order).
  /// Exposed so tests can assert which fault a given connection drew.
  FaultPlan PlanFor(uint64_t index) const;

  uint64_t connections() const { return connections_.load(); }
  uint64_t faults_injected() const { return faults_injected_.load(); }

 private:
  struct Pipe;

  void AcceptLoop();
  void ServeConnection(Socket client, FaultPlan plan);
  /// Pumps bytes one way, applying `plan` when it targets this direction.
  /// Returns when either side dies or the proxy shuts down.
  void Pump(Socket* from, Socket* to, const FaultPlan* plan,
            std::atomic<bool>* broken);

  FlakyProxyOptions options_;
  Listener listener_;
  uint16_t port_ = 0;
  CancelToken cancel_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  struct ConnectionSlot {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::vector<std::unique_ptr<ConnectionSlot>> conns_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace silkroute::net

#endif  // SILKROUTE_NET_FLAKY_PROXY_H_
