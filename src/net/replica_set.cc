#include "net/replica_set.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <thread>
#include <utility>

#include "obs/trace.h"

namespace silkroute::net {

namespace {

using Decision = service::CircuitBreaker::Decision;

bool IsSourceFailureCode(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

double MsUntil(std::chrono::steady_clock::time_point when,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(when - now).count();
}

}  // namespace

/// One replica: its executor (owned or borrowed), ejection breaker, and
/// live load/health accounting.
struct ReplicaSet::Replica {
  std::string name;
  engine::SqlExecutor* executor = nullptr;
  std::unique_ptr<RemoteSqlExecutor> owned;
  std::unique_ptr<service::CircuitBreaker> breaker;

  std::atomic<int> in_flight{0};
  mutable std::mutex mu;  // guards ewma_ms / has_ewma
  double ewma_ms = 0;
  bool has_ewma = false;
  std::atomic<uint64_t> successes{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> ejections{0};

  // Registry mirrors (null when metrics are disabled).
  obs::Gauge* m_in_flight = nullptr;
  obs::Gauge* m_ewma = nullptr;
  obs::Counter* m_ejections = nullptr;
  obs::Counter* m_hedges_fired = nullptr;
  obs::Counter* m_hedges_won = nullptr;
  obs::Counter* m_hedges_cancelled = nullptr;
};

/// One launched replica call inside a hedged race. The coordinator joins
/// the thread before the race returns, so everything here is stack-safe.
struct ReplicaSet::Attempt {
  Replica* replica = nullptr;
  size_t index = 0;
  Decision decision = Decision::kFastFail;
  bool is_hedge = false;
  bool launched = false;
  CancelToken cancel;
  std::atomic<bool> cancelled_by_us{false};
  std::thread thread;
  /// Child of the coordinator's current span; installed as the attempt
  /// thread's current span so the remote executor sends its id as trace
  /// context and stitches the server's subtree under it — hedge losers
  /// included. Ended by the coordinator after SettleAttempt.
  obs::SpanHandle span;

  // Completion state, guarded by the race mutex.
  std::mutex* race_mu = nullptr;
  std::condition_variable* race_cv = nullptr;
  bool done = false;
  Result<engine::Relation> result = Status::Unavailable("attempt not run");
  double elapsed_ms = 0;
};

ReplicaSet::ReplicaSet(ReplicaSetOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      hedge_budget_(options_.hedge_budget_ratio, options_.hedge_budget_cap),
      retry_budget_(options_.retry_budget_ratio, options_.retry_budget_cap) {
  service::CircuitBreakerOptions breaker = options_.breaker;
  breaker.label_key = "replica";
  breaker.metrics = nullptr;  // the set exports its own two-label series
  if (breaker.open_jitter_ms <= 0) {
    // Desynchronized half-open probes by default: replicas ejected by one
    // incident must not probe the recovering server in lockstep.
    breaker.open_jitter_ms = breaker.open_ms / 2;
  }

  auto add_replica = [&](std::string name, engine::SqlExecutor* executor,
                         std::unique_ptr<RemoteSqlExecutor> owned) {
    auto replica = std::make_unique<Replica>();
    replica->name = std::move(name);
    replica->owned = std::move(owned);
    replica->executor =
        replica->owned != nullptr ? replica->owned.get() : executor;
    replica->breaker = std::make_unique<service::CircuitBreaker>(
        replica->name, breaker);
    if (options_.metrics != nullptr) {
      auto name_for = [&](std::string_view base) {
        return obs::LabeledName(base, {{"backend", options_.backend},
                                       {"replica", replica->name}});
      };
      replica->m_in_flight =
          options_.metrics->gauge(name_for("silkroute_replica_in_flight"));
      replica->m_ewma =
          options_.metrics->gauge(name_for("silkroute_replica_ewma_ms"));
      replica->m_ejections = options_.metrics->counter(
          name_for("silkroute_replica_ejections_total"));
      replica->m_hedges_fired = options_.metrics->counter(
          name_for("silkroute_replica_hedges_fired_total"));
      replica->m_hedges_won = options_.metrics->counter(
          name_for("silkroute_replica_hedges_won_total"));
      replica->m_hedges_cancelled = options_.metrics->counter(
          name_for("silkroute_replica_hedges_cancelled_total"));
    }
    replicas_.push_back(std::move(replica));
  };

  for (const ReplicaEndpoint& endpoint : options_.endpoints) {
    RemoteExecutorOptions remote = options_.remote;
    remote.host = endpoint.host;
    remote.port = endpoint.port;
    remote.backend = options_.backend + "/" + endpoint.name;
    remote.cancel = options_.cancel;
    remote.metrics = options_.metrics;
    add_replica(endpoint.name, nullptr,
                std::make_unique<RemoteSqlExecutor>(std::move(remote)));
  }
  for (const BorrowedReplica& borrowed : options_.replicas) {
    add_replica(borrowed.name, borrowed.executor, nullptr);
  }
  latency_ring_.assign(std::max<size_t>(1, options_.latency_window), 0);
  if (options_.metrics != nullptr) {
    m_retry_exhausted_ = options_.metrics->counter(obs::LabeledName(
        "silkroute_replica_retry_budget_exhausted_total",
        {{"backend", options_.backend}}));
  }
}

ReplicaSet::~ReplicaSet() { Shutdown(); }

void ReplicaSet::Shutdown() {
  shutdown_.Cancel();
  for (auto& replica : replicas_) {
    if (replica->owned != nullptr) replica->owned->Shutdown();
  }
}

Result<std::vector<std::pair<std::string, uint64_t>>>
ReplicaSet::FetchTableVersions(const std::vector<std::string>& tables) {
  if (shutdown_.cancelled()) return Status::Unavailable("replica set is shut down");
  Status last = Status::Unavailable("no replica answered a versions fetch");
  for (auto& replica : replicas_) {
    if (replica->breaker->WouldFastFail()) continue;
    auto versions = replica->executor->FetchTableVersions(tables);
    if (versions.ok()) return versions;
    last = versions.status();
  }
  return last;
}

bool ReplicaSet::Healthy() const {
  for (const auto& replica : replicas_) {
    if (!replica->breaker->WouldFastFail()) return true;
  }
  return false;
}

service::CircuitBreaker* ReplicaSet::replica_breaker(size_t index) {
  return replicas_[index]->breaker.get();
}

ReplicaStats ReplicaSet::replica_stats(size_t index) const {
  const Replica& replica = *replicas_[index];
  ReplicaStats stats;
  stats.name = replica.name;
  stats.in_flight = replica.in_flight.load();
  {
    std::lock_guard<std::mutex> lock(replica.mu);
    stats.ewma_ms = replica.ewma_ms;
  }
  stats.successes = replica.successes.load();
  stats.failures = replica.failures.load();
  stats.ejections = replica.ejections.load();
  stats.state = replica.breaker->state();
  return stats;
}

bool ReplicaSet::BetterLoaded(const Replica& a, const Replica& b) const {
  int load_a = a.in_flight.load(std::memory_order_relaxed);
  int load_b = b.in_flight.load(std::memory_order_relaxed);
  if (load_a != load_b) return load_a < load_b;
  double ewma_a, ewma_b;
  {
    std::lock_guard<std::mutex> lock(a.mu);
    ewma_a = a.has_ewma ? a.ewma_ms : 0;
  }
  {
    std::lock_guard<std::mutex> lock(b.mu);
    ewma_b = b.has_ewma ? b.ewma_ms : 0;
  }
  return ewma_a <= ewma_b;
}

bool ReplicaSet::ChooseReplica(const std::vector<bool>& exclude,
                               size_t* index, Decision* decision) {
  std::vector<size_t> eligible;
  eligible.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (i >= exclude.size() || !exclude[i]) eligible.push_back(i);
  }
  if (eligible.empty()) return false;

  // Power-of-two-choices: the better-loaded of two random draws is asked
  // first; the breaker is the admission gate, so an ejected favorite
  // falls through to the other draw and then to a deterministic sweep of
  // the rest (a call is never refused while any replica would admit it).
  std::vector<size_t> order;
  order.reserve(eligible.size());
  if (eligible.size() == 1) {
    order.push_back(eligible[0]);
  } else {
    size_t pick_a = static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(eligible.size()) - 1));
    size_t pick_b = static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(eligible.size()) - 2));
    if (pick_b >= pick_a) ++pick_b;
    size_t a = eligible[pick_a];
    size_t b = eligible[pick_b];
    if (!BetterLoaded(*replicas_[a], *replicas_[b])) std::swap(a, b);
    order.push_back(a);
    order.push_back(b);
    for (size_t i : eligible) {
      if (i != a && i != b) order.push_back(i);
    }
  }
  for (size_t i : order) {
    Decision admitted = replicas_[i]->breaker->Admit();
    if (admitted != Decision::kFastFail) {
      *index = i;
      *decision = admitted;
      return true;
    }
  }
  return false;
}

void ReplicaSet::RecordLatencySample(double ms) {
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_ring_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
}

double ReplicaSet::CurrentHedgeDelayMs() const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (latency_count_ == 0 || latency_count_ < options_.hedge_warmup) {
      return options_.hedge_initial_delay_ms;
    }
    samples.assign(latency_ring_.begin(),
                   latency_ring_.begin() +
                       static_cast<ptrdiff_t>(latency_count_));
  }
  size_t rank = static_cast<size_t>(
      0.95 * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<ptrdiff_t>(rank),
                   samples.end());
  double p95 = samples[rank];
  return std::min(options_.hedge_max_delay_ms,
                  std::max(options_.hedge_min_delay_ms, p95));
}

void ReplicaSet::RunAttempt(Attempt* attempt, std::string_view sql,
                            double timeout_ms) {
  auto t0 = std::chrono::steady_clock::now();
  // The attempt span becomes this thread's current span: a traced remote
  // executor underneath sends its id over the wire and stitches the
  // server's phase spans back under it.
  obs::ScopedCurrentSpan scope(&attempt->span);
  auto result = attempt->replica->executor->ExecuteSqlCancellable(
      sql, timeout_ms, &attempt->cancel);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  attempt->replica->in_flight.fetch_sub(1);
  if (attempt->replica->m_in_flight != nullptr) {
    attempt->replica->m_in_flight->Add(-1);
  }
  {
    std::lock_guard<std::mutex> lock(*attempt->race_mu);
    attempt->result = std::move(result);
    attempt->elapsed_ms = elapsed_ms;
    attempt->done = true;
  }
  attempt->race_cv->notify_all();
}

void ReplicaSet::SettleAttempt(Attempt* attempt) {
  Replica* replica = attempt->replica;
  if (attempt->result.ok()) {
    replica->breaker->RecordSuccess(attempt->decision);
    replica->successes.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(replica->mu);
      replica->ewma_ms =
          replica->has_ewma
              ? options_.ewma_alpha * attempt->elapsed_ms +
                    (1 - options_.ewma_alpha) * replica->ewma_ms
              : attempt->elapsed_ms;
      replica->has_ewma = true;
      if (replica->m_ewma != nullptr) {
        replica->m_ewma->Set(static_cast<int64_t>(replica->ewma_ms + 0.5));
      }
    }
    RecordLatencySample(attempt->elapsed_ms);
    return;
  }
  if (attempt->cancelled_by_us.load()) {
    // We abandoned the call (hedge loser, deadline, shutdown): not the
    // replica's failure, so release a probe admission without recording
    // an outcome either way.
    replica->breaker->AbandonProbe(attempt->decision);
    return;
  }
  StatusCode code = attempt->result.status().code();
  if (!IsSourceFailureCode(code)) {
    // Deterministic error (bad SQL): every replica would fail it — not a
    // health signal.
    replica->breaker->AbandonProbe(attempt->decision);
    return;
  }
  replica->failures.fetch_add(1);
  size_t trips_before = replica->breaker->counters().trips;
  replica->breaker->RecordFailure(attempt->decision);
  if (replica->breaker->counters().trips > trips_before) {
    ejections_.fetch_add(1);
    replica->ejections.fetch_add(1);
    if (replica->m_ejections != nullptr) replica->m_ejections->Add(1);
    obs::AnnotateCurrent("replica.eject", replica->name);
  }
}

Result<engine::Relation> ReplicaSet::RunHedged(
    size_t primary, Decision primary_decision, std::string_view sql,
    bool has_deadline, std::chrono::steady_clock::time_point deadline,
    CancelToken* cancel, std::vector<bool>* failed_replicas) {
  std::mutex race_mu;
  std::condition_variable race_cv;
  Attempt attempts[2];
  for (Attempt& attempt : attempts) {
    attempt.race_mu = &race_mu;
    attempt.race_cv = &race_cv;
  }

  auto launch = [&](Attempt* attempt, size_t index, Decision decision,
                    bool is_hedge) {
    attempt->replica = replicas_[index].get();
    attempt->index = index;
    attempt->decision = decision;
    attempt->is_hedge = is_hedge;
    attempt->launched = true;
    obs::SpanHandle* parent = obs::CurrentSpan();
    if (parent != nullptr && parent->recording() &&
        parent->tracer() != nullptr) {
      attempt->span =
          obs::Tracer::Child(parent->tracer(), parent, "replica_attempt");
      attempt->span.Annotate("replica", attempt->replica->name);
      if (is_hedge) attempt->span.Annotate("hedge", "true");
    }
    attempt->replica->in_flight.fetch_add(1);
    if (attempt->replica->m_in_flight != nullptr) {
      attempt->replica->m_in_flight->Add(1);
    }
    double remaining_ms =
        has_deadline
            ? std::max(0.0, MsUntil(deadline, std::chrono::steady_clock::now()))
            : 0;
    attempt->thread = std::thread(
        [this, attempt, sql, remaining_ms] {
          RunAttempt(attempt, sql, remaining_ms);
        });
  };

  launch(&attempts[0], primary, primary_decision, /*is_hedge=*/false);
  auto t0 = std::chrono::steady_clock::now();
  auto hedge_at = t0 + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               CurrentHedgeDelayMs()));
  bool hedge_considered = !options_.hedging || replicas_.size() < 2;

  enum class Outcome { kWinner, kAllFailed, kCancelled, kDeadline };
  Outcome outcome = Outcome::kAllFailed;
  int winner = -1;
  {
    std::unique_lock<std::mutex> lock(race_mu);
    for (;;) {
      int ok_index = -1;
      bool any_running = false;
      for (int i = 0; i < 2; ++i) {
        if (!attempts[i].launched) continue;
        if (!attempts[i].done) {
          any_running = true;
        } else if (ok_index < 0 && attempts[i].result.ok()) {
          ok_index = i;
        }
      }
      if (ok_index >= 0) {
        outcome = Outcome::kWinner;
        winner = ok_index;
        break;
      }
      if (!any_running) {
        outcome = Outcome::kAllFailed;
        break;
      }
      if (shutdown_.cancelled() ||
          (cancel != nullptr && cancel->cancelled()) ||
          (options_.cancel != nullptr && options_.cancel->cancelled())) {
        outcome = Outcome::kCancelled;
        break;
      }
      auto now = std::chrono::steady_clock::now();
      if (has_deadline && now >= deadline) {
        outcome = Outcome::kDeadline;
        break;
      }
      if (!hedge_considered && now >= hedge_at && !attempts[0].done) {
        // The primary is past the tracked p95: race a second replica if
        // one is admittable and the hedge budget has a token.
        hedge_considered = true;
        std::vector<bool> exclude = *failed_replicas;
        exclude.resize(replicas_.size(), false);
        exclude[primary] = true;
        size_t hedge_index = 0;
        Decision hedge_decision = Decision::kFastFail;
        if (ChooseReplica(exclude, &hedge_index, &hedge_decision)) {
          if (hedge_budget_.TryTake()) {
            launch(&attempts[1], hedge_index, hedge_decision,
                   /*is_hedge=*/true);
            hedges_fired_.fetch_add(1);
            if (attempts[1].replica->m_hedges_fired != nullptr) {
              attempts[1].replica->m_hedges_fired->Add(1);
            }
            obs::AnnotateCurrent("replica.hedge",
                                 attempts[1].replica->name);
          } else {
            hedges_suppressed_.fetch_add(1);
            replicas_[hedge_index]->breaker->AbandonProbe(hedge_decision);
          }
        }
      }
      double wait_ms = options_.poll_interval_ms;
      if (!hedge_considered) {
        wait_ms = std::min(wait_ms, std::max(0.1, MsUntil(hedge_at, now)));
      }
      if (has_deadline) {
        wait_ms = std::min(wait_ms, std::max(0.1, MsUntil(deadline, now)));
      }
      race_cv.wait_for(lock,
                       std::chrono::duration<double, std::milli>(wait_ms));
    }

    // Cancel whatever is still running (the hedged-race loser, or both on
    // deadline/shutdown); they unblock within one poll interval.
    for (int i = 0; i < 2; ++i) {
      Attempt& attempt = attempts[i];
      if (!attempt.launched || attempt.done) continue;
      attempt.cancelled_by_us.store(true);
      attempt.cancel.Cancel();
      if (outcome == Outcome::kWinner) {
        hedges_cancelled_.fetch_add(1);
        if (attempt.replica->m_hedges_cancelled != nullptr) {
          attempt.replica->m_hedges_cancelled->Add(1);
        }
      }
    }
  }

  for (Attempt& attempt : attempts) {
    if (attempt.thread.joinable()) attempt.thread.join();
  }
  for (Attempt& attempt : attempts) {
    if (attempt.launched) SettleAttempt(&attempt);
  }
  for (Attempt& attempt : attempts) {
    // End attempt spans only after joins: any drained hedge-loser subtree
    // has been stitched by now, so the span's duration covers the whole
    // attempt including the salvage read.
    if (!attempt.launched) continue;
    if (attempt.span.recording()) {
      attempt.span.AnnotateMs("ms", attempt.elapsed_ms);
      attempt.span.Annotate(
          "status", StatusCodeToString(attempt.result.ok()
                                           ? StatusCode::kOk
                                           : attempt.result.status().code()));
      if (attempt.cancelled_by_us.load()) {
        attempt.span.Annotate("cancelled_by_us", "true");
      }
    }
    attempt.span.End();
  }
  for (Attempt& attempt : attempts) {
    // Genuine failures feed the caller's exclude set so a retry tries a
    // different replica; cancelled losers stay eligible.
    if (attempt.launched && !attempt.result.ok() &&
        !attempt.cancelled_by_us.load()) {
      if (attempt.index < failed_replicas->size()) {
        (*failed_replicas)[attempt.index] = true;
      }
    }
  }

  switch (outcome) {
    case Outcome::kWinner: {
      Attempt& win = attempts[winner];
      if (win.is_hedge) {
        hedges_won_.fetch_add(1);
        if (win.replica->m_hedges_won != nullptr) {
          win.replica->m_hedges_won->Add(1);
        }
      }
      obs::AnnotateCurrent("replica", win.replica->name);
      return std::move(win.result);
    }
    case Outcome::kAllFailed:
      // Prefer the primary's status (the hedge may have been refused for
      // unrelated reasons); it is never cancelled on this path.
      return attempts[0].result.status();
    case Outcome::kCancelled:
      return Status::Unavailable("replica set cancelled");
    case Outcome::kDeadline:
      return Status::Timeout("deadline exceeded during replica exchange");
  }
  return Status::Internal("unreachable replica race outcome");
}

Result<engine::Relation> ReplicaSet::ExecuteSqlCancellable(
    std::string_view sql, double timeout_ms, CancelToken* cancel) {
  if (replicas_.empty()) {
    return Status::InvalidArgument("replica set has no replicas");
  }
  if (shutdown_.cancelled()) {
    return Status::Unavailable("replica set is shut down");
  }
  requests_.fetch_add(1);
  hedge_budget_.Deposit();
  retry_budget_.Deposit();

  bool has_deadline = timeout_ms > 0;
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));

  int max_attempts = std::max(1, options_.max_attempts);
  max_attempts =
      std::min(max_attempts, static_cast<int>(replicas_.size()));
  std::vector<bool> failed(replicas_.size(), false);
  Status last = Status::Unavailable("no replica attempted");

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (shutdown_.cancelled() ||
        (cancel != nullptr && cancel->cancelled())) {
      return Status::Unavailable("replica set cancelled");
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return Status::Timeout("deadline exceeded before replica attempt");
    }
    size_t index = 0;
    Decision decision = Decision::kFastFail;
    if (!ChooseReplica(failed, &index, &decision)) {
      // Nothing admittable: everything is ejected or already failed this
      // call. Fail fast and clean — the layer above (backend breaker,
      // local fallback) owns what happens next.
      return attempt == 0
                 ? Status::Unavailable("all replicas of backend '" +
                                       options_.backend + "' are ejected")
                 : last;
    }
    auto result =
        RunHedged(index, decision, sql, has_deadline, deadline, cancel,
                  &failed);
    if (result.ok()) return result;
    last = result.status();
    if (!IsSourceFailureCode(last.code())) return result;
    if (last.code() == StatusCode::kTimeout) return result;
    if (attempt + 1 >= max_attempts) return result;
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return result;
    }
    if (!retry_budget_.TryTake()) {
      // Budget dry: during a partial outage the set degrades to one
      // attempt per call instead of multiplying client load by the
      // replica count.
      retry_budget_exhausted_.fetch_add(1);
      if (m_retry_exhausted_ != nullptr) m_retry_exhausted_->Add(1);
      obs::AnnotateCurrent("replica.retry_budget", "exhausted");
      return result;
    }
    retries_.fetch_add(1);
    obs::AnnotateCurrent("replica.retry", replicas_[index]->name);
  }
  return last;
}

}  // namespace silkroute::net
