// Thin RAII wrappers over POSIX loopback/TCP sockets with the blocking
// discipline the federation layer needs: every read and write is a
// poll-with-short-timeout loop that re-checks an absolute deadline and up
// to two CancelTokens between polls, so a service Shutdown (or an executor
// Shutdown) unblocks a thread stuck on a dead peer within one poll
// interval instead of hanging forever.
//
// Error mapping: connection-level failures (refused, reset, EOF mid-read)
// are kUnavailable — the transient, retryable class the resilience stack
// routes around; deadline expiry is kTimeout; cancellation surfaces as
// kUnavailable with a "cancelled" message (the caller is shutting down and
// drains the error anyway).
#ifndef SILKROUTE_NET_SOCKET_H_
#define SILKROUTE_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/cancel.h"
#include "common/result.h"

namespace silkroute::net {

/// Knobs for one blocking I/O call.
struct IoOptions {
  /// Absolute deadline; reads/writes past it fail with kTimeout.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  /// Checked between polls; any token cancelling aborts the wait.
  /// Borrowed, may be null. Convention: cancel = the owning executor's
  /// shutdown token, cancel2 = the borrowed service-wide token, cancel3 =
  /// a per-call token (hedged-race loser cancellation).
  CancelToken* cancel = nullptr;
  CancelToken* cancel2 = nullptr;
  CancelToken* cancel3 = nullptr;
  /// Poll granularity: the worst-case latency of a cancel/deadline check.
  double poll_interval_ms = 20;

  /// Convenience: deadline `timeout_ms` from now (0 = none).
  static IoOptions WithTimeout(double timeout_ms) {
    IoOptions io;
    if (timeout_ms > 0) {
      io.has_deadline = true;
      io.deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(timeout_ms));
    }
    return io;
  }
};

/// A connected stream socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();
  /// Half-closes both directions without invalidating the fd — safe to call
  /// from another thread to wake a concurrent ReadFull/ReadSome with EOF
  /// (Close would race fd reuse; shutdown does not).
  void ShutdownBoth();

  /// Reads exactly `n` bytes. kUnavailable on EOF/reset, kTimeout past the
  /// deadline, kUnavailable("...cancelled") on token cancellation.
  Status ReadFull(void* buf, size_t n, const IoOptions& io);
  /// Reads 1..n bytes (whatever is available), blocking until data, EOF, a
  /// deadline, or cancellation. EOF is OK with *got == 0 — the proxy pump's
  /// "peer finished" signal, not an error.
  Status ReadSome(void* buf, size_t n, size_t* got, const IoOptions& io);
  /// Writes exactly `n` bytes, same error discipline.
  Status WriteFull(const void* buf, size_t n, const IoOptions& io);

 private:
  int fd_ = -1;
};

/// Dials host:port. The whole connect (including the non-blocking connect
/// wait) honors `io`.
Result<Socket> Dial(const std::string& host, uint16_t port,
                    const IoOptions& io);

/// A listening socket bound to host:port (port 0 = ephemeral).
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener() { Close(); }

  static Result<Listener> Bind(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }
  /// The bound port (resolved after Bind, also for port 0).
  uint16_t port() const { return port_; }
  void Close();

  /// Accepts one connection; polls so `io` cancellation/deadline unblocks
  /// the accept loop.
  Result<Socket> Accept(const IoOptions& io);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace silkroute::net

#endif  // SILKROUTE_NET_SOCKET_H_
