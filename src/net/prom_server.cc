#include "net/prom_server.h"

#include <sstream>
#include <utility>

#include "obs/export.h"

namespace silkroute::net {

PromServer::PromServer(const obs::MetricsRegistry* registry, std::string host,
                       uint16_t port)
    : registry_(registry), host_(std::move(host)), port_(port) {}

PromServer::~PromServer() { Shutdown(); }

Status PromServer::Start() {
  auto listener = Listener::Bind(host_, port_);
  SILK_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void PromServer::AcceptLoop() {
  IoOptions io;
  io.cancel = &cancel_;
  while (!stopping_.load()) {
    auto socket = listener_.Accept(io);
    if (!socket.ok()) {
      if (stopping_.load()) return;
      continue;  // transient accept failure; keep serving scrapes
    }
    ServeOne(std::move(*socket));
  }
}

void PromServer::ServeOne(Socket socket) {
  // Drain the request head until the blank line (or 4 KiB — scrape
  // requests are tiny; anything bigger is garbage we answer anyway).
  IoOptions io = IoOptions::WithTimeout(2000);
  io.cancel = &cancel_;
  std::string head;
  char buf[512];
  while (head.size() < 4096 &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    size_t got = 0;
    Status status = socket.ReadSome(buf, sizeof(buf), &got, io);
    if (!status.ok() || got == 0) break;
    head.append(buf, got);
  }

  std::ostringstream body;
  obs::WritePrometheusText(body, registry_->Snapshot());
  std::string text = body.str();
  std::ostringstream reply;
  reply << "HTTP/1.0 200 OK\r\n"
        << "Content-Type: text/plain; version=0.0.4\r\n"
        << "Content-Length: " << text.size() << "\r\n"
        << "Connection: close\r\n\r\n"
        << text;
  std::string wire = reply.str();
  if (socket.WriteFull(wire.data(), wire.size(), io).ok()) {
    scrapes_served_.fetch_add(1);
  }
  // Socket closes on scope exit: HTTP/1.0 close-per-request.
}

void PromServer::Shutdown() {
  stopping_.store(true);
  cancel_.Cancel();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  started_.store(false);
}

}  // namespace silkroute::net
