// EngineServer: the networked backend half of the federation — a blocking
// socket server that executes component queries from the wire against a
// local Database and streams result relations back in chunk frames.
//
//   accept loop (1 thread)
//     └─ connection handler (1 thread per connection, reaped as they die)
//          read request frame ─► submit execution to WorkerPool ─► wait
//          ─► stream kChunk* + kEnd (or kError)
//
// The per-connection thread owns all framing I/O; only the query execution
// itself runs on the shared WorkerPool, so the pool bounds CPU concurrency
// while a slow client draining its response can never hold a pool worker
// hostage. A malformed request frame (bad magic/version/length) closes the
// connection — after garbage, the stream offset is unknowable.
//
// Deadline propagation (DESIGN.md §12): the request header carries the
// client's remaining budget in microseconds; the server re-anchors it on
// its own clock at receipt and (a) refuses to start work past the
// deadline, (b) forwards the remaining milliseconds to the executor, which
// enforces it as kTimeout mid-query. A dead client's deadline therefore
// bounds how long its abandoned query can burn a worker.
//
// Shutdown closes the listener, cancels in-flight socket waits through a
// shared CancelToken, joins every connection thread, and drains the pool.
#ifndef SILKROUTE_NET_SERVER_H_
#define SILKROUTE_NET_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "engine/executor.h"
#include "net/frame_io.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "relational/database.h"
#include "service/worker_pool.h"

namespace silkroute::net {

struct EngineServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available from port() after Start.
  uint16_t port = 0;
  /// Worker threads executing queries (framing I/O is per-connection).
  size_t workers = 4;
  /// Intra-query morsel parallelism of the server's executor.
  int engine_threads = 1;
  /// Response relations are streamed in chunks of this size.
  size_t chunk_bytes = 256 * 1024;
  /// Cap on accepted request frames (hostile lengths rejected above it).
  uint32_t max_payload = kMaxFramePayload;
  /// Per-series counters under silkroute_server_* (borrowed, may be null).
  obs::MetricsRegistry* metrics = nullptr;
  /// Behave like a wire-v1 peer: any v2 frame (traced request, kStats)
  /// closes the connection at header decode, exactly as a pre-v2 server
  /// would. For the version-negotiation interop tests (DESIGN.md §14).
  bool emulate_legacy = false;
};

class EngineServer {
 public:
  EngineServer(const Database* db, EngineServerOptions options);
  ~EngineServer();

  EngineServer(const EngineServer&) = delete;
  EngineServer& operator=(const EngineServer&) = delete;

  /// Binds, listens, and starts the accept loop.
  Status Start();
  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Stops accepting, cancels in-flight I/O, joins everything. Idempotent.
  void Shutdown();

  uint64_t requests_served() const { return requests_served_.load(); }
  uint64_t requests_failed() const { return requests_failed_.load(); }
  uint64_t deadline_rejects() const { return deadline_rejects_.load(); }
  uint64_t connections_accepted() const { return connections_accepted_.load(); }

 private:
  struct ConnectionSlot {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Socket socket);
  /// Handles one request frame; returns false when the connection must
  /// close (transport error or malformed frame).
  bool ServeRequest(Socket* socket, const Frame& request);
  /// Joins finished connection threads; with `all`, joins every thread.
  void ReapConnections(bool all);

  const Database* db_;
  const EngineServerOptions options_;
  engine::DatabaseExecutor executor_;
  service::WorkerPool pool_;
  Listener listener_;
  uint16_t port_ = 0;
  CancelToken cancel_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<ConnectionSlot>> connections_;

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_failed_{0};
  std::atomic<uint64_t> deadline_rejects_{0};
  std::atomic<uint64_t> connections_accepted_{0};

  // Registry mirrors (null when metrics are disabled).
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
  obs::Counter* m_frames_in_ = nullptr;
  obs::Counter* m_frames_out_ = nullptr;
  obs::Gauge* m_connections_ = nullptr;
};

}  // namespace silkroute::net

#endif  // SILKROUTE_NET_SERVER_H_
