// PromServer: a minimal HTTP scrape endpoint exposing a MetricsRegistry in
// Prometheus text exposition format (DESIGN.md §14). Long-running processes
// (`silkroute serve`, the publishing service under `--prom-port`) run one of
// these next to their real listener so a `curl`/Prometheus scrape sees live
// counters while requests are in flight.
//
// Deliberately tiny: one accept thread, one connection served at a time,
// HTTP/1.0 close-per-request semantics. The request line is read and
// discarded (any path scrapes — this is an internal diagnostics port, not a
// router); the reply is always `200 OK` with
// `Content-Type: text/plain; version=0.0.4` and a WritePrometheusText body
// snapshotted at scrape time. Scrapes are rare and cheap relative to query
// traffic, so serial handling keeps the code free of connection tracking.
#ifndef SILKROUTE_NET_PROM_SERVER_H_
#define SILKROUTE_NET_PROM_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/cancel.h"
#include "common/result.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace silkroute::net {

class PromServer {
 public:
  /// The registry is borrowed and must outlive the server.
  PromServer(const obs::MetricsRegistry* registry, std::string host,
             uint16_t port);
  ~PromServer();

  PromServer(const PromServer&) = delete;
  PromServer& operator=(const PromServer&) = delete;

  /// Binds and starts the accept thread. Port 0 binds an ephemeral port,
  /// available from port() afterwards.
  Status Start();
  uint16_t port() const { return port_; }

  /// Stops accepting, cancels an in-flight serve, joins. Idempotent.
  void Shutdown();

  /// Scrapes served since Start (for tests and the stats table).
  uint64_t scrapes_served() const { return scrapes_served_.load(); }

 private:
  void AcceptLoop();
  void ServeOne(Socket socket);

  const obs::MetricsRegistry* registry_;
  const std::string host_;
  uint16_t port_;
  Listener listener_;
  CancelToken cancel_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::atomic<uint64_t> scrapes_served_{0};
};

}  // namespace silkroute::net

#endif  // SILKROUTE_NET_PROM_SERVER_H_
