// RemoteSqlExecutor: a SqlExecutor whose backend is an EngineServer across
// the wire — the paper's actual middle-ware setting, where the XML
// publisher does not own the RDBMS it queries.
//
//  - connection pooling: completed calls park their connection for reuse
//    (bounded); concurrent callers each draw their own, so the executor is
//    safe to share across service workers via ExecuteSqlWithDeadline;
//  - reconnect with exponential backoff + jitter when dialing fails, capped
//    by the call's deadline and interruptible through the cancel tokens;
//  - deadline propagation: the remaining budget is sampled immediately
//    before the request frame is sent, so the server sees the true
//    remaining time, not the stale per-call timeout;
//  - poll-based reads (socket.h): Shutdown() — or the borrowed service
//    CancelToken — unblocks a thread stuck on a dead server within one
//    poll interval (the regression test for ISSUE 6's cancellation
//    satellite);
//  - strict decode: any malformed response frame counts a decode error,
//    poisons the connection, and surfaces as kUnavailable — the retryable
//    class, because a corrupt stream and a dead peer are the same event
//    from the client's side.
//
// One request never silently re-executes, with a single exception: a
// transport failure on a *pooled* connection retries once on a fresh dial.
// A parked connection may have died while idle (server restart, half-open
// TCP), and the engine serves read-only queries, so the re-send cannot
// double-apply anything — without it, the first call after a server
// restart always fails and (worse) counts as a backend failure against the
// federation's circuit breaker. Beyond that, once the request frame is on
// the wire any failure is returned to the caller (the ResilientExecutor /
// FederatedExecutor above decide about retries and failover).
#ifndef SILKROUTE_NET_REMOTE_EXECUTOR_H_
#define SILKROUTE_NET_REMOTE_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "common/result.h"
#include "engine/executor.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace silkroute::net {

struct RemoteExecutorOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Idle connections kept for reuse (concurrent calls may open more).
  size_t max_pooled_connections = 8;
  /// Idle connections parked longer than this are closed instead of
  /// reused (and swept opportunistically on every park/acquire), so a
  /// replica recovering from an outage is not greeted by a burst of stale
  /// fds that each cost a failed exchange before the pool self-heals.
  /// 0 disables the TTL.
  double pool_idle_ttl_ms = 30000;
  /// Dial attempts per call, with exponential backoff + jitter between.
  int connect_attempts = 3;
  double dial_timeout_ms = 1000;
  double backoff_initial_ms = 10;
  double backoff_multiplier = 2;
  double backoff_max_ms = 200;
  uint64_t jitter_seed = 0xC0FFEE;
  /// Cancel/deadline check granularity for blocking reads.
  double poll_interval_ms = 10;
  uint32_t max_payload = kMaxFramePayload;
  /// Borrowed service-wide token (e.g. PublishingService's); null = none.
  /// The executor's own Shutdown() token is always honored in addition.
  CancelToken* cancel = nullptr;
  /// Label for this backend's metric series and span annotations.
  std::string backend = "remote";
  /// silkroute_net_*_total{backend="..."} series (borrowed, may be null).
  obs::MetricsRegistry* metrics = nullptr;
  /// When a traced call is cancelled mid-read (a hedged-race loser), keep
  /// reading the doomed connection for up to this long to salvage the
  /// server's trace block from its kEnd frame, so cancelled attempts still
  /// show their server-side phase spans. 0 disables the drain.
  double trace_drain_ms = 250;
};

class RemoteSqlExecutor : public engine::SqlExecutor {
 public:
  explicit RemoteSqlExecutor(RemoteExecutorOptions options);
  ~RemoteSqlExecutor() override;

  Result<engine::Relation> ExecuteSql(std::string_view sql) override {
    return ExecuteSqlWithDeadline(sql, timeout_ms_);
  }
  /// Thread-safe (the service's shared-executor contract).
  Result<engine::Relation> ExecuteSqlWithDeadline(
      std::string_view sql, double timeout_ms) override {
    return ExecuteSqlCancellable(sql, timeout_ms, nullptr);
  }
  /// Thread-safe; `cancel` aborts this call's dials/reads within one poll
  /// interval without touching the executor (the hedged-race loser path).
  Result<engine::Relation> ExecuteSqlCancellable(std::string_view sql,
                                                 double timeout_ms,
                                                 CancelToken* cancel) override;
  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }

  /// Fetches the tables' version counters from the server over a v2
  /// kVersions exchange (one round-trip per publish). Declines fast with
  /// kUnavailable against a known-legacy peer — the publisher then runs
  /// uncached, never keyed on guessed versions. Thread-safe.
  Result<std::vector<std::pair<std::string, uint64_t>>> FetchTableVersions(
      const std::vector<std::string>& tables) override;

  const std::string& backend() const { return options_.backend; }

  /// Cancels every in-flight read/connect and fails all future calls with
  /// kUnavailable. Idempotent; the destructor calls it.
  void Shutdown();

  uint64_t reconnects() const { return reconnects_.load(); }
  uint64_t decode_errors() const { return decode_errors_.load(); }
  uint64_t requests_sent() const { return requests_sent_.load(); }
  uint64_t pool_pruned() const { return pool_pruned_.load(); }
  /// Server trace subtrees stitched under a client span (incl. drained).
  uint64_t trace_stitches() const { return trace_stitches_.load(); }
  /// Cancelled calls whose trace block was salvaged by the bounded drain.
  uint64_t trace_drains() const { return trace_drains_.load(); }
  /// Negotiated peer wire version: 0 = unknown, 1 = legacy, 2 = v2.
  int peer_version() const { return peer_version_.load(); }
  size_t pooled_connections() const;

 private:
  /// Pops an idle connection (`*from_pool` = true) or dials with backoff;
  /// kUnavailable when every attempt failed or the deadline/cancel cut the
  /// loop short.
  Result<Socket> AcquireConnection(const IoOptions& io, bool* from_pool);
  /// Dials a fresh connection with backoff, never touching the pool.
  Result<Socket> DialWithBackoff(const IoOptions& io);
  void ReleaseConnection(Socket socket);
  /// One request/response exchange on an open connection. With `traced`,
  /// the request carries the current span's trace context (wire v2 +
  /// kFlagTrace) and a traced kEnd's span subtree is stitched under the
  /// current span.
  Result<engine::Relation> Exchange(Socket* socket, std::string_view sql,
                                    const IoOptions& io, bool has_deadline,
                                    std::chrono::steady_clock::time_point
                                        deadline,
                                    bool traced);
  /// Best-effort bounded read of the doomed connection after a cancelled
  /// traced call, to salvage the trace block from the server's kEnd.
  void DrainTraceBlock(Socket* socket, uint64_t request_id,
                       obs::SpanHandle* attempt, obs::Tracer* tracer,
                       uint64_t send_ns);

  /// An idle connection plus the instant it was parked, for TTL pruning.
  struct PooledConnection {
    Socket socket;
    std::chrono::steady_clock::time_point parked_at;
  };

  /// Drops idle connections older than the TTL. Requires pool_mu_.
  void PruneIdleLocked(std::chrono::steady_clock::time_point now);

  RemoteExecutorOptions options_;
  double timeout_ms_ = 0;
  CancelToken shutdown_;
  Random jitter_;
  std::atomic<uint64_t> next_request_id_{1};
  /// Wire version negotiation (DESIGN.md §14): 0 = unknown (send v2 when
  /// tracing), 1 = legacy peer (never send v2 again), 2 = confirmed v2.
  /// Set to 1 after a v2 exchange dies unanswered and an untraced retry
  /// succeeds; set to 2 the first time a traced kEnd arrives.
  std::atomic<int> peer_version_{0};

  mutable std::mutex pool_mu_;
  std::vector<PooledConnection> idle_;

  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> requests_sent_{0};
  std::atomic<uint64_t> pool_pruned_{0};
  std::atomic<uint64_t> trace_stitches_{0};
  std::atomic<uint64_t> trace_drains_{0};

  // Registry mirrors (null when metrics are disabled).
  obs::Counter* m_reconnects_ = nullptr;
  obs::Counter* m_decode_errors_ = nullptr;
  obs::Counter* m_frames_in_ = nullptr;
  obs::Counter* m_frames_out_ = nullptr;
  obs::Counter* m_pool_pruned_ = nullptr;
};

/// Dials an EngineServer and asks for its live metrics snapshot via a v2
/// kStats frame (the CLI's `--scrape` mode). Returns the Prometheus text
/// exposition body; kUnavailable against a legacy (pre-v2) server.
Result<std::string> FetchServerStats(const std::string& host, uint16_t port,
                                     double timeout_ms);

}  // namespace silkroute::net

#endif  // SILKROUTE_NET_REMOTE_EXECUTOR_H_
