#include "net/remote_executor.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "net/frame_io.h"

namespace silkroute::net {

namespace {

/// Converts a wire trace block back into obs spans and stitches them under
/// `attempt` (the client-side attempt span), re-based at `offset_ns` on the
/// client tracer's clock.
void StitchServerSpans(obs::SpanHandle* attempt, obs::Tracer* tracer,
                       std::vector<WireSpan> wire_spans, uint64_t offset_ns) {
  std::vector<obs::Span> spans;
  spans.reserve(wire_spans.size());
  for (WireSpan& ws : wire_spans) {
    obs::Span span;
    span.id = std::move(ws.id);
    span.parent_id = std::move(ws.parent_id);
    span.name = std::move(ws.name);
    span.start_ns = ws.start_ns;
    span.end_ns = ws.end_ns;
    span.annotations.reserve(ws.annotations.size());
    for (auto& kv : ws.annotations) {
      span.annotations.push_back(
          obs::Annotation{std::move(kv.first), std::move(kv.second)});
    }
    spans.push_back(std::move(span));
  }
  tracer->StitchSubtree(attempt, std::move(spans), offset_ns);
}

}  // namespace

RemoteSqlExecutor::RemoteSqlExecutor(RemoteExecutorOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {
  if (options_.metrics != nullptr) {
    auto labeled = [&](const char* base) {
      return options_.metrics->counter(
          obs::LabeledName(base, {{"backend", options_.backend}}));
    };
    m_reconnects_ = labeled("silkroute_net_reconnects_total");
    m_decode_errors_ = labeled("silkroute_net_decode_errors_total");
    m_frames_in_ = labeled("silkroute_net_frames_in_total");
    m_frames_out_ = labeled("silkroute_net_frames_out_total");
    m_pool_pruned_ = labeled("silkroute_net_pool_pruned_total");
  }
}

RemoteSqlExecutor::~RemoteSqlExecutor() { Shutdown(); }

void RemoteSqlExecutor::Shutdown() {
  shutdown_.Cancel();
  std::lock_guard<std::mutex> lock(pool_mu_);
  idle_.clear();
}

size_t RemoteSqlExecutor::pooled_connections() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return idle_.size();
}

void RemoteSqlExecutor::PruneIdleLocked(
    std::chrono::steady_clock::time_point now) {
  if (options_.pool_idle_ttl_ms <= 0) return;
  auto ttl = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(options_.pool_idle_ttl_ms));
  size_t before = idle_.size();
  // Connections park in LIFO order, so expired entries cluster at the
  // front (oldest parked first).
  auto it = idle_.begin();
  while (it != idle_.end() && now - it->parked_at > ttl) ++it;
  idle_.erase(idle_.begin(), it);
  size_t pruned = before - idle_.size();
  if (pruned > 0) {
    pool_pruned_.fetch_add(pruned);
    if (m_pool_pruned_ != nullptr) m_pool_pruned_->Add(pruned);
  }
}

Result<Socket> RemoteSqlExecutor::AcquireConnection(const IoOptions& io,
                                                    bool* from_pool) {
  *from_pool = false;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    PruneIdleLocked(std::chrono::steady_clock::now());
    if (!idle_.empty()) {
      Socket socket = std::move(idle_.back().socket);
      idle_.pop_back();
      *from_pool = true;
      return socket;
    }
  }
  return DialWithBackoff(io);
}

Result<Socket> RemoteSqlExecutor::DialWithBackoff(const IoOptions& io) {
  // Dial with exponential backoff + jitter; every wait is bounded by the
  // call deadline and interruptible through both cancel tokens.
  double backoff_ms = options_.backoff_initial_ms;
  Status last = Status::Unavailable("no dial attempt made");
  for (int attempt = 0; attempt < std::max(1, options_.connect_attempts);
       ++attempt) {
    if (shutdown_.cancelled() ||
        (options_.cancel != nullptr && options_.cancel->cancelled()) ||
        (io.cancel3 != nullptr && io.cancel3->cancelled())) {
      return Status::Unavailable("remote executor cancelled while dialing");
    }
    if (io.has_deadline && std::chrono::steady_clock::now() >= io.deadline) {
      return Status::Timeout("deadline exceeded while dialing " +
                             options_.host);
    }
    if (attempt > 0) {
      reconnects_.fetch_add(1);
      if (m_reconnects_ != nullptr) m_reconnects_->Add(1);
      // Full jitter: sleep uniform in [0, backoff], through the shutdown
      // token so Shutdown() cuts the wait short.
      double sleep_ms = jitter_.NextDouble() * backoff_ms;
      if (io.has_deadline) {
        double remaining_ms =
            std::chrono::duration<double, std::milli>(
                io.deadline - std::chrono::steady_clock::now())
                .count();
        sleep_ms = std::min(sleep_ms, std::max(0.0, remaining_ms));
      }
      if (!shutdown_.SleepFor(sleep_ms)) {
        return Status::Unavailable("remote executor cancelled while dialing");
      }
      backoff_ms = std::min(backoff_ms * options_.backoff_multiplier,
                            options_.backoff_max_ms);
    }
    IoOptions dial_io = io;
    if (options_.dial_timeout_ms > 0) {
      auto dial_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(
                  options_.dial_timeout_ms));
      if (!dial_io.has_deadline || dial_deadline < dial_io.deadline) {
        dial_io.has_deadline = true;
        dial_io.deadline = dial_deadline;
      }
    }
    auto socket = Dial(options_.host, options_.port, dial_io);
    if (socket.ok()) return std::move(*socket);
    last = socket.status();
  }
  return Status::Unavailable("dialing " + options_.host + " failed after " +
                             std::to_string(options_.connect_attempts) +
                             " attempts: " + last.message());
}

void RemoteSqlExecutor::ReleaseConnection(Socket socket) {
  if (shutdown_.cancelled()) return;
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(pool_mu_);
  PruneIdleLocked(now);
  if (idle_.size() < options_.max_pooled_connections) {
    idle_.push_back(PooledConnection{std::move(socket), now});
  }
}

Result<engine::Relation> RemoteSqlExecutor::ExecuteSqlCancellable(
    std::string_view sql, double timeout_ms, CancelToken* cancel) {
  if (shutdown_.cancelled()) {
    return Status::Unavailable("remote executor is shut down");
  }
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Unavailable("call cancelled");
  }
  IoOptions io;
  io.cancel = &shutdown_;
  io.cancel2 = options_.cancel;
  io.cancel3 = cancel;
  io.poll_interval_ms = options_.poll_interval_ms;
  bool has_deadline = timeout_ms > 0;
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  if (has_deadline) {
    io.has_deadline = true;
    io.deadline = deadline;
  }

  // Trace only when the caller installed a recording span AND the peer is
  // not known-legacy; a legacy peer closes the connection on any v2 frame.
  obs::SpanHandle* current = obs::CurrentSpan();
  bool traced = current != nullptr && current->recording() &&
                current->tracer() != nullptr && peer_version_.load() != 1;

  bool from_pool = false;
  auto socket = AcquireConnection(io, &from_pool);
  SILK_RETURN_IF_ERROR(socket.status());
  auto result = Exchange(&*socket, sql, io, has_deadline, deadline, traced);
  if (!result.ok() && from_pool &&
      result.status().code() == StatusCode::kUnavailable) {
    // The parked connection died while idle (server restart, half-open
    // TCP). Its siblings in the pool are as old or older — drop them all —
    // and retry once on a fresh dial. Queries are read-only, so the
    // re-send cannot double-apply; without this, the first call after a
    // server restart is a guaranteed spurious backend failure.
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      idle_.clear();
    }
    auto fresh = DialWithBackoff(io);
    SILK_RETURN_IF_ERROR(fresh.status());
    socket = std::move(fresh);
    result = Exchange(&*socket, sql, io, has_deadline, deadline, traced);
  }
  if (!result.ok() && traced && peer_version_.load() == 0 &&
      result.status().code() == StatusCode::kUnavailable &&
      !shutdown_.cancelled() &&
      (cancel == nullptr || !cancel->cancelled())) {
    // Version negotiation, the downgrade half (DESIGN.md §14): a legacy
    // peer rejects the v2 header at decode — before executing anything —
    // and closes, so the untraced re-send on a fresh connection cannot
    // double-apply. If it succeeds, remember the peer is legacy and stop
    // sending v2 for the lifetime of this executor.
    auto fresh = DialWithBackoff(io);
    if (fresh.ok()) {
      auto retried =
          Exchange(&*fresh, sql, io, has_deadline, deadline, /*traced=*/false);
      if (retried.ok()) {
        peer_version_.store(1);
        if (current != nullptr) {
          current->Annotate("wire_downgrade", "legacy peer, trace dropped");
        }
        socket = std::move(fresh);
        result = std::move(retried);
      }
    }
  }
  if (result.ok()) {
    // Only a connection that completed a full exchange is safe to reuse:
    // after any failure the stream offset is unknown.
    ReleaseConnection(std::move(*socket));
  }
  return result;
}

Result<engine::Relation> RemoteSqlExecutor::Exchange(
    Socket* socket, std::string_view sql, const IoOptions& io,
    bool has_deadline, std::chrono::steady_clock::time_point deadline,
    bool traced) {
  obs::SpanHandle* attempt = traced ? obs::CurrentSpan() : nullptr;
  obs::Tracer* tracer = attempt != nullptr ? attempt->tracer() : nullptr;
  if (attempt == nullptr || !attempt->recording() || tracer == nullptr) {
    traced = false;
  }

  // Sample the remaining budget immediately before the send, so queue/dial
  // time already spent is subtracted from what the server sees.
  uint64_t budget_us = 0;
  if (has_deadline) {
    auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
                         deadline - std::chrono::steady_clock::now())
                         .count();
    if (remaining <= 0) {
      return Status::Timeout("deadline exceeded before request send");
    }
    budget_us = static_cast<uint64_t>(remaining);
  }
  uint64_t request_id = next_request_id_.fetch_add(1);

  FrameHeader header;
  header.type = FrameType::kRequest;
  header.request_id = request_id;
  header.budget_us = budget_us;
  std::string payload;
  uint64_t send_ns = 0;
  if (traced) {
    // Trace context rides the request as a v2 frame: trace id (the client
    // root's ordinal) plus this attempt span's id, under which the server's
    // subtree is stitched when its kEnd comes back.
    header.version = kWireVersion;
    header.flags = kFlagTrace;
    WireTraceContext context;
    const std::string& span_id = attempt->id();
    auto dot = span_id.find('.');
    context.trace_id =
        dot == std::string::npos ? span_id : span_id.substr(0, dot);
    context.parent_span_id = span_id;
    EncodeTracedRequestPayload(sql, context, &payload);
    send_ns = tracer->NowNs();
  } else {
    EncodeRequestPayload(sql, &payload);
  }
  SILK_RETURN_IF_ERROR(WriteFrame(socket, header, payload, io));
  requests_sent_.fetch_add(1);
  if (m_frames_out_ != nullptr) m_frames_out_->Add(1);

  // Collect kChunk frames until kEnd (success) or kError. Decode failures
  // and protocol violations are kUnavailable: a peer speaking garbage is a
  // broken peer.
  std::string relation_bytes;
  while (true) {
    auto frame = ReadFrame(socket, io, options_.max_payload);
    if (!frame.ok()) {
      if (traced && io.cancel3 != nullptr && io.cancel3->cancelled() &&
          !shutdown_.cancelled() && options_.trace_drain_ms > 0) {
        // A hedged-race loser: the per-call token aborted this read, but
        // the server is still finishing and its kEnd carries the trace
        // block. Salvage it within a small bounded window so cancelled
        // attempts still show their server-side phase spans, then return
        // the original cancelled status unchanged.
        DrainTraceBlock(socket, request_id, attempt, tracer, send_ns);
      }
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        decode_errors_.fetch_add(1);
        if (m_decode_errors_ != nullptr) m_decode_errors_->Add(1);
        return Status::Unavailable("malformed frame from " + options_.host +
                                   ": " + frame.status().message());
      }
      return frame.status();
    }
    if (m_frames_in_ != nullptr) m_frames_in_->Add(1);
    if (frame->header.request_id != request_id) {
      decode_errors_.fetch_add(1);
      if (m_decode_errors_ != nullptr) m_decode_errors_->Add(1);
      return Status::Unavailable(
          "response request_id mismatch (got " +
          std::to_string(frame->header.request_id) + ", want " +
          std::to_string(request_id) + ")");
    }
    switch (frame->header.type) {
      case FrameType::kChunk: {
        if (relation_bytes.size() + frame->payload.size() >
            static_cast<size_t>(options_.max_payload)) {
          decode_errors_.fetch_add(1);
          if (m_decode_errors_ != nullptr) m_decode_errors_->Add(1);
          return Status::Unavailable("response relation exceeds max payload");
        }
        relation_bytes.append(frame->payload);
        break;
      }
      case FrameType::kEnd: {
        const bool end_traced = frame->header.version >= 2 &&
                                (frame->header.flags & kFlagTrace) != 0;
        std::vector<WireSpan> server_spans;
        Result<EndPayload> end = [&]() -> Result<EndPayload> {
          if (end_traced) {
            auto decoded = DecodeTracedEndPayload(frame->payload);
            if (!decoded.ok()) return decoded.status();
            server_spans = std::move(decoded->spans);
            return decoded->end;
          }
          return DecodeEndPayload(frame->payload);
        }();
        if (!end.ok()) {
          decode_errors_.fetch_add(1);
          if (m_decode_errors_ != nullptr) m_decode_errors_->Add(1);
          return Status::Unavailable("malformed end payload: " +
                                     end.status().message());
        }
        if (end_traced) peer_version_.store(2);
        if (traced && !server_spans.empty()) {
          trace_stitches_.fetch_add(1);
          StitchServerSpans(attempt, tracer, std::move(server_spans),
                            send_ns);
        }
        if (end->relation_bytes != relation_bytes.size()) {
          decode_errors_.fetch_add(1);
          if (m_decode_errors_ != nullptr) m_decode_errors_->Add(1);
          return Status::Unavailable(
              "relation byte count mismatch (got " +
              std::to_string(relation_bytes.size()) + ", end frame says " +
              std::to_string(end->relation_bytes) + ")");
        }
        auto relation = DeserializeRelation(relation_bytes);
        if (!relation.ok()) {
          decode_errors_.fetch_add(1);
          if (m_decode_errors_ != nullptr) m_decode_errors_->Add(1);
          return Status::Unavailable("malformed relation from " +
                                     options_.host + ": " +
                                     relation.status().message());
        }
        if (relation->rows.size() != end->rows) {
          decode_errors_.fetch_add(1);
          if (m_decode_errors_ != nullptr) m_decode_errors_->Add(1);
          return Status::Unavailable(
              "relation row count mismatch (got " +
              std::to_string(relation->rows.size()) + ", end frame says " +
              std::to_string(end->rows) + ")");
        }
        return relation;
      }
      case FrameType::kError: {
        Status carried = Status::OK();
        Status decode = DecodeErrorPayload(frame->payload, &carried);
        if (!decode.ok()) {
          decode_errors_.fetch_add(1);
          if (m_decode_errors_ != nullptr) m_decode_errors_->Add(1);
          return Status::Unavailable("malformed error payload: " +
                                     decode.message());
        }
        // The server's status passes through verbatim (kTimeout stays
        // kTimeout so deadline semantics survive the wire).
        return carried;
      }
      case FrameType::kRequest:
      case FrameType::kStats: {
        decode_errors_.fetch_add(1);
        if (m_decode_errors_ != nullptr) m_decode_errors_->Add(1);
        return Status::Unavailable(
            std::string("unexpected ") +
            FrameTypeToString(frame->header.type) + " frame from server");
      }
    }
  }
}

void RemoteSqlExecutor::DrainTraceBlock(Socket* socket, uint64_t request_id,
                                        obs::SpanHandle* attempt,
                                        obs::Tracer* tracer,
                                        uint64_t send_ns) {
  // Fresh IoOptions: the per-call cancel token already fired, so only the
  // shutdown tokens and a small absolute deadline bound this salvage read.
  IoOptions drain = IoOptions::WithTimeout(options_.trace_drain_ms);
  drain.cancel = &shutdown_;
  drain.cancel2 = options_.cancel;
  drain.poll_interval_ms = options_.poll_interval_ms;
  while (true) {
    auto frame = ReadFrame(socket, drain, options_.max_payload);
    if (!frame.ok()) return;
    if (m_frames_in_ != nullptr) m_frames_in_->Add(1);
    if (frame->header.request_id != request_id) return;
    if (frame->header.type == FrameType::kChunk) continue;
    if (frame->header.type == FrameType::kEnd &&
        frame->header.version >= 2 &&
        (frame->header.flags & kFlagTrace) != 0) {
      auto decoded = DecodeTracedEndPayload(frame->payload);
      if (decoded.ok() && !decoded->spans.empty()) {
        peer_version_.store(2);
        trace_drains_.fetch_add(1);
        trace_stitches_.fetch_add(1);
        if (attempt != nullptr) attempt->Annotate("trace_drained", "true");
        StitchServerSpans(attempt, tracer, std::move(decoded->spans),
                          send_ns);
      }
    }
    return;  // kEnd/kError either way: the exchange is over
  }
}

Result<std::vector<std::pair<std::string, uint64_t>>>
RemoteSqlExecutor::FetchTableVersions(const std::vector<std::string>& tables) {
  if (shutdown_.cancelled()) {
    return Status::Unavailable("remote executor is shut down");
  }
  if (peer_version_.load() == 1) {
    // kVersions exists only on the v2 wire; a known-legacy peer would
    // close the connection. Declining here lets the publisher run uncached
    // without burning a dial.
    return Status::Unavailable("legacy peer: no table versions on v1 wire");
  }
  IoOptions io;
  io.cancel = &shutdown_;
  io.cancel2 = options_.cancel;
  io.poll_interval_ms = options_.poll_interval_ms;
  double timeout_ms = timeout_ms_ > 0 ? timeout_ms_ : options_.dial_timeout_ms;
  if (timeout_ms > 0) {
    io.has_deadline = true;
    io.deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(timeout_ms));
  }

  auto exchange = [&](Socket* socket)
      -> Result<std::vector<std::pair<std::string, uint64_t>>> {
    std::string payload;
    EncodeVersionsRequestPayload(tables, &payload);
    FrameHeader header;
    header.version = kWireVersion;
    header.type = FrameType::kVersions;
    header.request_id = next_request_id_.fetch_add(1);
    SILK_RETURN_IF_ERROR(WriteFrame(socket, header, payload, io));
    requests_sent_.fetch_add(1);
    if (m_frames_out_ != nullptr) m_frames_out_->Add(1);
    auto reply = ReadFrame(socket, io, options_.max_payload);
    SILK_RETURN_IF_ERROR(reply.status());
    if (m_frames_in_ != nullptr) m_frames_in_->Add(1);
    if (reply->header.type == FrameType::kError) {
      Status carried = Status::OK();
      SILK_RETURN_IF_ERROR(DecodeErrorPayload(reply->payload, &carried));
      if (!carried.ok()) return carried;
      return Status::Unavailable("error frame carrying an OK status");
    }
    if (reply->header.type != FrameType::kVersions) {
      return Status::Unavailable(
          std::string("unexpected ") + FrameTypeToString(reply->header.type) +
          " frame in reply to versions request");
    }
    auto versions = DecodeVersionsResponsePayload(reply->payload);
    if (!versions.ok()) {
      decode_errors_.fetch_add(1);
      if (m_decode_errors_ != nullptr) m_decode_errors_->Add(1);
      return Status::Unavailable("malformed versions response: " +
                                 versions.status().message());
    }
    peer_version_.store(2);  // a kVersions answer proves a v2 peer
    return versions;
  };

  bool from_pool = false;
  auto socket = AcquireConnection(io, &from_pool);
  SILK_RETURN_IF_ERROR(socket.status());
  auto result = exchange(&*socket);
  if (!result.ok() && from_pool &&
      result.status().code() == StatusCode::kUnavailable) {
    // Same idle-death retry as ExecuteSql: the fetch is read-only, so a
    // one-shot re-send on a fresh dial cannot double-apply anything.
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      idle_.clear();
    }
    auto fresh = DialWithBackoff(io);
    SILK_RETURN_IF_ERROR(fresh.status());
    socket = std::move(fresh);
    result = exchange(&*socket);
  }
  if (result.ok()) ReleaseConnection(std::move(*socket));
  return result;
}

Result<std::string> FetchServerStats(const std::string& host, uint16_t port,
                                     double timeout_ms) {
  IoOptions io = IoOptions::WithTimeout(timeout_ms);
  auto socket = Dial(host, port, io);
  SILK_RETURN_IF_ERROR(socket.status());
  FrameHeader header;
  header.version = kWireVersion;  // kStats exists only on the v2 wire
  header.type = FrameType::kStats;
  header.request_id = 1;
  SILK_RETURN_IF_ERROR(WriteFrame(&*socket, header, "", io));
  auto reply = ReadFrame(&*socket, io, kMaxFramePayload);
  if (!reply.ok()) {
    if (reply.status().code() == StatusCode::kUnavailable) {
      return Status::Unavailable(
          "stats scrape failed (legacy pre-v2 server, or server down): " +
          reply.status().message());
    }
    return reply.status();
  }
  if (reply->header.type == FrameType::kError) {
    Status carried = Status::OK();
    SILK_RETURN_IF_ERROR(DecodeErrorPayload(reply->payload, &carried));
    if (!carried.ok()) return carried;
    return Status::Unavailable("error frame carrying an OK status");
  }
  if (reply->header.type != FrameType::kStats) {
    return Status::Unavailable(
        std::string("unexpected ") + FrameTypeToString(reply->header.type) +
        " frame in reply to stats request");
  }
  return reply->payload;
}

}  // namespace silkroute::net
