// Frame-level socket I/O shared by EngineServer, RemoteSqlExecutor, and
// the tests: one call reads (header + payload) or writes a whole frame
// under the socket layer's deadline/cancel discipline.
#ifndef SILKROUTE_NET_FRAME_IO_H_
#define SILKROUTE_NET_FRAME_IO_H_

#include <string>

#include "net/socket.h"
#include "net/wire.h"

namespace silkroute::net {

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Reads one frame. Transport failures keep the socket layer's codes
/// (kUnavailable / kTimeout); a malformed header is kInvalidArgument from
/// the strict decoder — the caller decides whether to treat that as a
/// broken peer.
Result<Frame> ReadFrame(Socket* socket, const IoOptions& io,
                        uint32_t max_payload = kMaxFramePayload);

/// Writes header + payload. `header.payload_len` is filled from `payload`.
Status WriteFrame(Socket* socket, FrameHeader header,
                  std::string_view payload, const IoOptions& io);

}  // namespace silkroute::net

#endif  // SILKROUTE_NET_FRAME_IO_H_
