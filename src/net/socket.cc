#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace silkroute::net {

namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

bool Cancelled(const IoOptions& io) {
  return (io.cancel != nullptr && io.cancel->cancelled()) ||
         (io.cancel2 != nullptr && io.cancel2->cancelled()) ||
         (io.cancel3 != nullptr && io.cancel3->cancelled());
}

/// Milliseconds until the deadline; negative when already past.
double DeadlineRemainingMs(const IoOptions& io) {
  return std::chrono::duration<double, std::milli>(
             io.deadline - std::chrono::steady_clock::now())
      .count();
}

/// One bounded poll step. Returns:
///  - OK with *ready=true when the fd is ready for `events`,
///  - OK with *ready=false when the poll interval elapsed uneventfully,
///  - kTimeout / kUnavailable("...cancelled") on deadline / cancellation,
///  - kUnavailable when the peer hung up or errored.
Status PollStep(int fd, short events, const IoOptions& io, bool* ready) {
  *ready = false;
  if (Cancelled(io)) return Status::Unavailable("socket wait cancelled");
  double wait_ms = io.poll_interval_ms;
  if (io.has_deadline) {
    double remaining = DeadlineRemainingMs(io);
    if (remaining <= 0) return Status::Timeout("socket deadline exceeded");
    wait_ms = std::min(wait_ms, remaining);
  }
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  int rc = poll(&pfd, 1, std::max(1, static_cast<int>(wait_ms)));
  if (rc < 0) {
    if (errno == EINTR) return Status::OK();
    return Status::Unavailable(std::string("poll: ") + std::strerror(errno));
  }
  if (rc == 0) return Status::OK();
  if ((pfd.revents & POLLNVAL) != 0) {
    return Status::Unavailable("socket closed under poll");
  }
  // POLLERR/POLLHUP still allow a final read to drain buffered bytes (and
  // observe the EOF/reset); report ready and let read()/write() decide.
  *ready = true;
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::ReadSome(void* buf, size_t n, size_t* got, const IoOptions& io) {
  *got = 0;
  for (;;) {
    if (fd_ < 0) return Status::Unavailable("socket closed");
    bool ready = false;
    SILK_RETURN_IF_ERROR(PollStep(fd_, POLLIN, io, &ready));
    if (!ready) continue;
    ssize_t rc = ::read(fd_, buf, n);
    if (rc >= 0) {
      *got = static_cast<size_t>(rc);
      return Status::OK();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
    return Status::Unavailable(std::string("read: ") + std::strerror(errno));
  }
}

Status Socket::ReadFull(void* buf, size_t n, const IoOptions& io) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    if (fd_ < 0) return Status::Unavailable("socket closed");
    bool ready = false;
    SILK_RETURN_IF_ERROR(PollStep(fd_, POLLIN, io, &ready));
    if (!ready) continue;
    ssize_t rc = ::read(fd_, p + got, n - got);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      return Status::Unavailable("connection closed after " +
                                 std::to_string(got) + " of " +
                                 std::to_string(n) + " byte(s)");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
    return Status::Unavailable(std::string("read: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status Socket::WriteFull(const void* buf, size_t n, const IoOptions& io) {
  const char* p = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < n) {
    if (fd_ < 0) return Status::Unavailable("socket closed");
    bool ready = false;
    SILK_RETURN_IF_ERROR(PollStep(fd_, POLLOUT, io, &ready));
    if (!ready) continue;
#ifdef MSG_NOSIGNAL
    ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
#else
    ssize_t rc = ::write(fd_, p + sent, n - sent);
#endif
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 &&
        (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    return Status::Unavailable(std::string("write: ") +
                               std::strerror(rc < 0 ? errno : EPIPE));
  }
  return Status::OK();
}

Result<Socket> Dial(const std::string& host, uint16_t port,
                    const IoOptions& io) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  Socket sock(fd);
  SILK_RETURN_IF_ERROR(SetNonBlocking(fd));
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::Unavailable(std::string("connect to ") + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
  }
  if (rc != 0) {
    // Wait for the non-blocking connect to resolve.
    for (;;) {
      bool ready = false;
      SILK_RETURN_IF_ERROR(PollStep(fd, POLLOUT, io, &ready));
      if (ready) break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return Status::Unavailable(std::string("connect to ") + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  return sock;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Bind(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  Listener listener;
  listener.fd_ = fd;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  SILK_RETURN_IF_ERROR(SetNonBlocking(fd));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Unavailable(std::string("bind ") + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
  }
  if (listen(fd, 64) != 0) {
    return Status::Unavailable(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> Listener::Accept(const IoOptions& io) {
  for (;;) {
    if (fd_ < 0) return Status::Unavailable("listener closed");
    bool ready = false;
    SILK_RETURN_IF_ERROR(PollStep(fd_, POLLIN, io, &ready));
    if (!ready) continue;
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      Status nb = SetNonBlocking(fd);
      if (!nb.ok()) return nb;
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      continue;
    }
    return Status::Unavailable(std::string("accept: ") + std::strerror(errno));
  }
}

}  // namespace silkroute::net
