// RXL parser: character-level recursive descent, since the construct clause
// embeds XML-template syntax inside the query language.
#ifndef SILKROUTE_RXL_PARSER_H_
#define SILKROUTE_RXL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "rxl/ast.h"

namespace silkroute::rxl {

/// Parses an RXL view query.
Result<RxlQuery> ParseRxl(std::string_view text);

}  // namespace silkroute::rxl

#endif  // SILKROUTE_RXL_PARSER_H_
