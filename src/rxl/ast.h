// RXL (Relational to XML transformation Language) abstract syntax, after
// the paper's Sec. 2: a query is a block with SQL-style `from` and `where`
// clauses and an XML-template `construct` clause. Templates nest blocks in
// braces; parallel sibling blocks express union; explicit Skolem terms
// (`<tag ID=F($v.field, ...)>`) control element fusion.
#ifndef SILKROUTE_RXL_AST_H_
#define SILKROUTE_RXL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace silkroute::rxl {

/// `from Table $var`.
struct TableBinding {
  std::string table;
  std::string var;
};

/// `$var.field` — a column of a bound tuple variable.
struct FieldRef {
  std::string var;
  std::string field;

  std::string ToString() const { return "$" + var + "." + field; }
  bool operator==(const FieldRef& o) const {
    return var == o.var && field == o.field;
  }
  bool operator<(const FieldRef& o) const {
    return var != o.var ? var < o.var : field < o.field;
  }
};

enum class CondOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CondOpToString(CondOp op);

/// One side of a where-clause comparison.
struct Operand {
  enum class Kind { kField, kLiteral };
  Kind kind = Kind::kField;
  FieldRef field;  // when kField
  Value literal;   // when kLiteral

  std::string ToString() const {
    return kind == Kind::kField ? field.ToString() : literal.ToString();
  }
};

struct Condition {
  Operand lhs;
  CondOp op = CondOp::kEq;
  Operand rhs;

  std::string ToString() const {
    return lhs.ToString() + " " + CondOpToString(op) + " " + rhs.ToString();
  }
  /// True for `$a.x = $b.y` with two field operands.
  bool IsFieldJoin() const {
    return op == CondOp::kEq && lhs.kind == Operand::Kind::kField &&
           rhs.kind == Operand::Kind::kField;
  }
};

/// Explicit Skolem term `F($v.x, $w.y)`.
struct SkolemTerm {
  std::string function;
  std::vector<FieldRef> args;

  std::string ToString() const;
};

struct Element;
struct Block;

/// Content inside an element template.
struct Content {
  enum class Kind { kElement, kFieldRef, kText, kBlock };
  Kind kind = Kind::kText;

  std::unique_ptr<Element> element;  // kElement
  FieldRef field;                    // kFieldRef
  std::string text;                  // kText
  std::unique_ptr<Block> block;      // kBlock
};

struct Element {
  std::string tag;
  std::optional<SkolemTerm> skolem;  // explicit ID=... term, if any
  std::vector<Content> content;

  std::unique_ptr<Element> Clone() const;
};

Content CloneContent(const Content& content);

/// A block: optional from/where plus one or more constructed elements.
struct Block {
  std::vector<TableBinding> from;
  std::vector<Condition> where;
  std::vector<Content> construct;  // elements / nested blocks at this level

  std::unique_ptr<Block> Clone() const;
};

struct RxlQuery {
  Block root;

  /// Pretty-prints the query in RXL concrete syntax (round-trips through
  /// the parser).
  std::string ToString() const;
};

std::string BlockToString(const Block& block, int indent);

}  // namespace silkroute::rxl

#endif  // SILKROUTE_RXL_AST_H_
