#include "rxl/parser.h"

#include <cctype>
#include <cstdlib>

namespace silkroute::rxl {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<RxlQuery> Parse() {
    RxlQuery query;
    SILK_ASSIGN_OR_RETURN(query.root, ParseBlock());
    SkipSpace();
    if (pos_ < text_.size()) {
      return Err("trailing input after query");
    }
    return query;
  }

 private:
  Status Err(std::string msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        continue;
      }
      // Line comments: `-- ...`.
      if (text_.substr(pos_, 2) == "--") {
        size_t end = text_.find('\n', pos_);
        pos_ = end == std::string_view::npos ? text_.size() : end + 1;
        continue;
      }
      break;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool LookaheadWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;  // prefix of a longer identifier
    }
    return true;
  }

  bool ConsumeWord(std::string_view word) {
    if (!LookaheadWord(word)) return false;
    pos_ += word.size();
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseIdentifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<FieldRef> ParseFieldRef() {
    SkipSpace();
    if (Peek() != '$') return Err("expected '$'");
    ++pos_;
    FieldRef ref;
    SILK_ASSIGN_OR_RETURN(ref.var, ParseIdentifier());
    if (!ConsumeChar('.')) return Err("expected '.' after tuple variable");
    SILK_ASSIGN_OR_RETURN(ref.field, ParseIdentifier());
    return ref;
  }

  Result<Operand> ParseOperand() {
    SkipSpace();
    Operand op;
    char c = Peek();
    if (c == '$') {
      op.kind = Operand::Kind::kField;
      SILK_ASSIGN_OR_RETURN(op.field, ParseFieldRef());
      return op;
    }
    op.kind = Operand::Kind::kLiteral;
    if (c == '\'') {
      ++pos_;
      std::string s;
      while (pos_ < text_.size()) {
        if (text_[pos_] == '\'') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
            s.push_back('\'');
            pos_ += 2;
            continue;
          }
          ++pos_;
          op.literal = Value::String(std::move(s));
          return op;
        }
        s.push_back(text_[pos_++]);
      }
      return Err("unterminated string literal");
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      size_t start = pos_;
      if (c == '-') ++pos_;
      bool is_float = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        if (text_[pos_] == '.') is_float = true;
        ++pos_;
      }
      std::string num(text_.substr(start, pos_ - start));
      if (is_float) {
        op.literal = Value::Double(std::strtod(num.c_str(), nullptr));
      } else {
        op.literal = Value::Int64(std::strtoll(num.c_str(), nullptr, 10));
      }
      return op;
    }
    return Err("expected operand");
  }

  Result<CondOp> ParseCondOp() {
    SkipSpace();
    if (text_.substr(pos_, 2) == "<>") {
      pos_ += 2;
      return CondOp::kNe;
    }
    if (text_.substr(pos_, 2) == "<=") {
      pos_ += 2;
      return CondOp::kLe;
    }
    if (text_.substr(pos_, 2) == ">=") {
      pos_ += 2;
      return CondOp::kGe;
    }
    char c = Peek();
    if (c == '=') {
      ++pos_;
      return CondOp::kEq;
    }
    if (c == '<') {
      ++pos_;
      return CondOp::kLt;
    }
    if (c == '>') {
      ++pos_;
      return CondOp::kGt;
    }
    return Err("expected comparison operator");
  }

  Result<Block> ParseBlock() {
    Block block;
    if (ConsumeWord("from")) {
      do {
        TableBinding binding;
        SILK_ASSIGN_OR_RETURN(binding.table, ParseIdentifier());
        SkipSpace();
        if (Peek() != '$') return Err("expected '$variable' in from clause");
        ++pos_;
        SILK_ASSIGN_OR_RETURN(binding.var, ParseIdentifier());
        block.from.push_back(std::move(binding));
      } while (ConsumeChar(','));
    }
    if (ConsumeWord("where")) {
      do {
        Condition cond;
        SILK_ASSIGN_OR_RETURN(cond.lhs, ParseOperand());
        SILK_ASSIGN_OR_RETURN(cond.op, ParseCondOp());
        SILK_ASSIGN_OR_RETURN(cond.rhs, ParseOperand());
        block.where.push_back(std::move(cond));
      } while (ConsumeChar(','));
    }
    if (!ConsumeWord("construct")) {
      return Err("expected 'construct'");
    }
    SILK_ASSIGN_OR_RETURN(block.construct,
                          ParseContents(/*inside_element=*/false));
    if (block.construct.empty()) {
      return Err("construct clause is empty");
    }
    return block;
  }

  /// Parses a run of contents. Stops (without consuming) at '}' and, when
  /// inside an element, at '</'.
  Result<std::vector<Content>> ParseContents(bool inside_element) {
    std::vector<Content> contents;
    while (true) {
      // Literal text is only meaningful inside an element; elsewhere skip
      // whitespace eagerly.
      if (!inside_element) SkipSpace();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (c == '}') break;
      if (c == '<') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
          if (!inside_element) return Err("unexpected close tag");
          break;
        }
        Content content;
        content.kind = Content::Kind::kElement;
        SILK_ASSIGN_OR_RETURN(content.element, ParseElement());
        contents.push_back(std::move(content));
        continue;
      }
      if (c == '{') {
        ++pos_;
        Content content;
        content.kind = Content::Kind::kBlock;
        auto block = std::make_unique<Block>();
        SILK_ASSIGN_OR_RETURN(*block, ParseBlock());
        content.block = std::move(block);
        if (!ConsumeChar('}')) return Err("expected '}'");
        contents.push_back(std::move(content));
        continue;
      }
      if (c == '$') {
        Content content;
        content.kind = Content::Kind::kFieldRef;
        SILK_ASSIGN_OR_RETURN(content.field, ParseFieldRef());
        contents.push_back(std::move(content));
        continue;
      }
      if (c == '"' && inside_element) {
        // Quoted literal text (the form ToString emits): supports escaped
        // quote, backslash, newline, and tab; preserves whitespace exactly.
        ++pos_;
        std::string text;
        bool closed = false;
        while (pos_ < text_.size()) {
          char ch = text_[pos_++];
          if (ch == '"') {
            closed = true;
            break;
          }
          if (ch == '\\' && pos_ < text_.size()) {
            char esc = text_[pos_++];
            switch (esc) {
              case 'n':
                text.push_back('\n');
                break;
              case 't':
                text.push_back('\t');
                break;
              default:
                text.push_back(esc);
            }
            continue;
          }
          text.push_back(ch);
        }
        if (!closed) return Err("unterminated quoted text");
        Content content;
        content.kind = Content::Kind::kText;
        content.text = std::move(text);
        contents.push_back(std::move(content));
        continue;
      }
      if (!inside_element) {
        // At block level only elements, nested blocks, and field refs are
        // allowed.
        break;
      }
      // Literal text until the next markup character (or a quoted-text
      // opener).
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '<' && text_[pos_] != '{' &&
             text_[pos_] != '$' && text_[pos_] != '}' && text_[pos_] != '"') {
        ++pos_;
      }
      std::string raw(text_.substr(start, pos_ - start));
      // Drop whitespace-only runs (formatting noise).
      bool all_space = true;
      for (char ch : raw) {
        if (!std::isspace(static_cast<unsigned char>(ch))) {
          all_space = false;
          break;
        }
      }
      if (!all_space) {
        Content content;
        content.kind = Content::Kind::kText;
        content.text = std::move(raw);
        contents.push_back(std::move(content));
      }
    }
    return contents;
  }

  Result<std::unique_ptr<Element>> ParseElement() {
    if (Peek() != '<') return Err("expected '<'");
    ++pos_;
    auto element = std::make_unique<Element>();
    SILK_ASSIGN_OR_RETURN(element->tag, ParseIdentifier());
    SkipSpace();
    // Optional explicit Skolem term: ID=F($v.x, ...).
    if (ConsumeWord("ID")) {
      if (!ConsumeChar('=')) return Err("expected '=' after ID");
      SkolemTerm term;
      SILK_ASSIGN_OR_RETURN(term.function, ParseIdentifier());
      if (!ConsumeChar('(')) return Err("expected '(' in Skolem term");
      SkipSpace();
      if (Peek() != ')') {
        do {
          SILK_ASSIGN_OR_RETURN(FieldRef arg, ParseFieldRef());
          term.args.push_back(std::move(arg));
        } while (ConsumeChar(','));
      }
      if (!ConsumeChar(')')) return Err("expected ')' in Skolem term");
      element->skolem = std::move(term);
      SkipSpace();
    }
    if (text_.substr(pos_, 2) == "/>") {
      pos_ += 2;
      return element;
    }
    if (!ConsumeChar('>')) return Err("expected '>'");
    SILK_ASSIGN_OR_RETURN(element->content,
                          ParseContents(/*inside_element=*/true));
    SkipSpace();
    if (text_.substr(pos_, 2) != "</") {
      return Err("expected close tag for <" + element->tag + ">");
    }
    pos_ += 2;
    SILK_ASSIGN_OR_RETURN(std::string close_name, ParseIdentifier());
    if (close_name != element->tag) {
      return Err("mismatched close tag </" + close_name + "> for <" +
                 element->tag + ">");
    }
    if (!ConsumeChar('>')) return Err("expected '>' in close tag");
    return element;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<RxlQuery> ParseRxl(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace silkroute::rxl
