#include "rxl/ast.h"

#include "common/string_util.h"

namespace silkroute::rxl {

const char* CondOpToString(CondOp op) {
  switch (op) {
    case CondOp::kEq:
      return "=";
    case CondOp::kNe:
      return "<>";
    case CondOp::kLt:
      return "<";
    case CondOp::kLe:
      return "<=";
    case CondOp::kGt:
      return ">";
    case CondOp::kGe:
      return ">=";
  }
  return "?";
}

std::string SkolemTerm::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const auto& a : args) parts.push_back(a.ToString());
  return function + "(" + Join(parts, ", ") + ")";
}

namespace {

std::string Pad(int indent) { return std::string(static_cast<size_t>(indent) * 2, ' '); }

std::string ContentToString(const Content& c, int indent);

std::string ElementToString(const Element& e, int indent) {
  std::string out = Pad(indent) + "<" + e.tag;
  if (e.skolem) out += " ID=" + e.skolem->ToString();
  out += ">\n";
  for (const auto& c : e.content) out += ContentToString(c, indent + 1);
  out += Pad(indent) + "</" + e.tag + ">\n";
  return out;
}

std::string QuoteText(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += "\"";
  return out;
}

std::string ContentToString(const Content& c, int indent) {
  switch (c.kind) {
    case Content::Kind::kElement:
      return ElementToString(*c.element, indent);
    case Content::Kind::kFieldRef:
      return Pad(indent) + c.field.ToString() + "\n";
    case Content::Kind::kText:
      return Pad(indent) + QuoteText(c.text) + "\n";
    case Content::Kind::kBlock:
      return Pad(indent) + "{\n" + BlockToString(*c.block, indent + 1) +
             Pad(indent) + "}\n";
  }
  return "";
}

}  // namespace

Content CloneContent(const Content& content) {
  Content out;
  out.kind = content.kind;
  switch (content.kind) {
    case Content::Kind::kElement:
      out.element = content.element->Clone();
      break;
    case Content::Kind::kFieldRef:
      out.field = content.field;
      break;
    case Content::Kind::kText:
      out.text = content.text;
      break;
    case Content::Kind::kBlock:
      out.block = content.block->Clone();
      break;
  }
  return out;
}

std::unique_ptr<Element> Element::Clone() const {
  auto out = std::make_unique<Element>();
  out->tag = tag;
  out->skolem = skolem;
  out->content.reserve(content.size());
  for (const auto& c : content) out->content.push_back(CloneContent(c));
  return out;
}

std::unique_ptr<Block> Block::Clone() const {
  auto out = std::make_unique<Block>();
  out->from = from;
  out->where = where;
  out->construct.reserve(construct.size());
  for (const auto& c : construct) out->construct.push_back(CloneContent(c));
  return out;
}

std::string BlockToString(const Block& block, int indent) {
  std::string out;
  if (!block.from.empty()) {
    std::vector<std::string> bindings;
    bindings.reserve(block.from.size());
    for (const auto& b : block.from) {
      bindings.push_back(b.table + " $" + b.var);
    }
    out += Pad(indent) + "from " + Join(bindings, ", ") + "\n";
  }
  if (!block.where.empty()) {
    std::vector<std::string> conds;
    conds.reserve(block.where.size());
    for (const auto& c : block.where) conds.push_back(c.ToString());
    out += Pad(indent) + "where " + Join(conds, ",\n" + Pad(indent + 3)) + "\n";
  }
  out += Pad(indent) + "construct\n";
  for (const auto& c : block.construct) out += ContentToString(c, indent + 1);
  return out;
}

std::string RxlQuery::ToString() const { return BlockToString(root, 0); }

}  // namespace silkroute::rxl
