// MeasuredCostOracle: overlays an observed-cost workload profile
// (obs::WorkloadProfile) on a synthetic CostOracle. For a SQL text the
// profile has seen at least `min_samples` times, the estimate is priced
// from measurement — EWMA query+bind+tag milliseconds scaled into the
// synthetic oracle's abstract cost units, observed row and wire-byte EWMAs
// replacing the cardinality model — so genPlan's relative-cost comparisons
// rank component merges by what they actually cost on this workload.
// Unseen queries (every newly merged candidate the greedy search probes)
// fall through to the synthetic oracle, keeping the search total: the
// overlay never makes the planner blind, only better informed.
#ifndef SILKROUTE_ENGINE_MEASURED_ORACLE_H_
#define SILKROUTE_ENGINE_MEASURED_ORACLE_H_

#include <cstdint>

#include "engine/estimator.h"
#include "obs/profile.h"

namespace silkroute::engine {

class MeasuredCostOracle : public CostOracle {
 public:
  struct Options {
    /// Overlay only once the profile holds this many query samples for the
    /// text; below it the synthetic estimate stands.
    uint64_t min_samples = 1;
    /// Conversion from observed milliseconds to the synthetic oracle's
    /// abstract cost units, so measured and synthetic plan costs stay on
    /// one scale during a partially-profiled search.
    double cost_units_per_ms = 1000.0;
  };

  /// Neither pointer is owned; both must outlive the oracle. A null
  /// profile degrades to a pure passthrough.
  MeasuredCostOracle(CostOracle* synthetic, const obs::WorkloadProfile* profile,
                     Options options)
      : synthetic_(synthetic), profile_(profile), options_(options) {}
  MeasuredCostOracle(CostOracle* synthetic, const obs::WorkloadProfile* profile)
      : MeasuredCostOracle(synthetic, profile, Options()) {}

  Result<QueryEstimate> EstimateSql(std::string_view sql) override;

  /// How many estimates were served from measurement (diagnostics).
  uint64_t overlay_hits() const { return overlay_hits_; }

 private:
  CostOracle* const synthetic_;
  const obs::WorkloadProfile* const profile_;
  const Options options_;
  uint64_t overlay_hits_ = 0;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_MEASURED_ORACLE_H_
