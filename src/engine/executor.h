// QueryExecutor: executes a sql::Query against a Database and materializes
// the result. The physical plan is derived with textbook heuristics:
//
//  - comma-separated FROM lists are joined greedily along equijoin conjuncts
//    extracted from WHERE (hash joins), single-table conjuncts are pushed
//    down, the remainder is a residual filter;
//  - explicit JOIN ... ON uses a hash join when the ON condition is a
//    conjunction containing column equalities, a *disjunctive hash join*
//    when it is an OR of such conjunctions (the shape SilkRoute's unified
//    outer-join queries produce), and a nested loop otherwise;
//  - UNION ALL concatenates; ORDER BY sorts the materialized result.
#ifndef SILKROUTE_ENGINE_EXECUTOR_H_
#define SILKROUTE_ENGINE_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "engine/rel_schema.h"
#include "relational/database.h"
#include "relational/tuple.h"
#include "sql/ast.h"

namespace silkroute::engine {

/// A materialized intermediate or final relation.
struct Relation {
  RelSchema schema;
  std::vector<Tuple> rows;

  size_t ByteSize() const {
    size_t total = 0;
    for (const auto& r : rows) total += r.ByteSize();
    return total;
  }
};

/// Counters the executor accumulates across one query.
struct ExecStats {
  uint64_t rows_scanned = 0;      // base-table rows read
  uint64_t rows_joined = 0;       // rows emitted by join operators
  uint64_t rows_sorted = 0;       // rows passed through ORDER BY
  uint64_t nested_loop_joins = 0; // fallback joins taken (should be rare)
  uint64_t hash_joins = 0;
  uint64_t index_probes = 0;      // rows fetched through a secondary index
};

/// Abstract connection to the target RDBMS: one ExecuteSql call per
/// component query. The middle-ware's fault-tolerance stack is built from
/// implementations of this interface — QueryExecutor / DatabaseExecutor at
/// the bottom, FaultInjectingExecutor (fault_injection.h) simulating an
/// unreliable wire, ResilientExecutor (resilient_executor.h) adding retries
/// on top.
class SqlExecutor {
 public:
  virtual ~SqlExecutor() = default;

  virtual Result<Relation> ExecuteSql(std::string_view sql) = 0;

  /// Wall-clock cap per ExecuteSql call in milliseconds (the paper capped
  /// each sub-query at five minutes); exceeding it yields kTimeout.
  /// 0 disables.
  virtual void set_timeout_ms(double timeout_ms) = 0;

  /// Executes with an explicit per-call deadline instead of mutating
  /// executor state, so one executor can serve concurrent callers with
  /// different deadlines (the set_timeout_ms / ExecuteSql pair races when
  /// shared). The default shims onto the stateful pair and is therefore
  /// only single-thread safe; every executor meant to be shared across
  /// service workers overrides it.
  virtual Result<Relation> ExecuteSqlWithDeadline(std::string_view sql,
                                                  double timeout_ms) {
    set_timeout_ms(timeout_ms);
    return ExecuteSql(sql);
  }
};

class QueryExecutor : public SqlExecutor {
 public:
  explicit QueryExecutor(const Database* db) : db_(db) {}

  /// Executes a parsed query.
  Result<Relation> Execute(const sql::Query& query);

  /// Parses and executes SQL text (the middle-ware entry point). The
  /// deadline is re-armed on every call: the timeout caps one query, not
  /// the lifetime of the executor.
  Result<Relation> ExecuteSql(std::string_view sql) override;

  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  Result<Relation> ExecuteCore(const sql::SelectCore& core);
  Result<Relation> EvalTableRef(const sql::TableRef& ref);
  Result<Relation> EvalJoin(const sql::JoinRef& join);
  Result<Relation> JoinRelations(sql::JoinType type, Relation left,
                                 Relation right, const sql::Expr& on);
  Result<Relation> HashJoin(sql::JoinType type, Relation& left,
                            Relation& right,
                            const std::vector<std::pair<size_t, size_t>>& keys,
                            const sql::Expr* residual);
  Result<Relation> DisjunctiveHashJoin(sql::JoinType type, Relation& left,
                                       Relation& right, const sql::Expr& on);
  Result<Relation> NestedLoopJoin(sql::JoinType type, Relation& left,
                                  Relation& right, const sql::Expr& on);
  Result<Relation> JoinFromList(const sql::SelectCore& core);
  Status MaterializeBaseTable(const Table& table,
                              const std::vector<const sql::Expr*>& filters,
                              Relation* out);
  Status ApplyOrderBy(const sql::Query& query, const Relation& pre_projection,
                      Relation* result);

  Status CheckDeadline() const;

  const Database* db_;
  ExecStats stats_;
  double timeout_ms_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;

  // Rows of the pre-projection relation aligned 1:1 with the latest core's
  // output rows, so ORDER BY can reference non-projected columns.
  Relation last_preprojection_;
};

/// SqlExecutor over a local Database: a fresh QueryExecutor per call, so
/// per-query state (deadline, stats) can never leak across component
/// queries of a plan. ExecuteSqlWithDeadline is fully thread-safe (the
/// database is read-only during publishing); the stateful pair remains
/// single-thread only.
class DatabaseExecutor : public SqlExecutor {
 public:
  explicit DatabaseExecutor(const Database* db) : db_(db) {}

  Result<Relation> ExecuteSql(std::string_view sql) override {
    return ExecuteSqlWithDeadline(sql, timeout_ms_);
  }

  Result<Relation> ExecuteSqlWithDeadline(std::string_view sql,
                                          double timeout_ms) override {
    QueryExecutor executor(db_);
    if (timeout_ms > 0) executor.set_timeout_ms(timeout_ms);
    auto result = executor.ExecuteSql(sql);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_ = executor.stats();
    }
    return result;
  }

  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }

  /// Stats of the most recent query (last writer wins under concurrency).
  ExecStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

 private:
  const Database* db_;
  double timeout_ms_ = 0;
  mutable std::mutex stats_mu_;
  ExecStats stats_;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_EXECUTOR_H_
