// QueryExecutor: executes a sql::Query against a Database and materializes
// the result. The physical plan is derived with textbook heuristics:
//
//  - comma-separated FROM lists are joined greedily along equijoin conjuncts
//    extracted from WHERE (hash joins), single-table conjuncts are pushed
//    down, the remainder is a residual filter;
//  - explicit JOIN ... ON uses a hash join when the ON condition is a
//    conjunction containing column equalities, a *disjunctive hash join*
//    when it is an OR of such conjunctions (the shape SilkRoute's unified
//    outer-join queries produce), and a nested loop otherwise;
//  - UNION ALL concatenates; ORDER BY sorts the materialized result.
#ifndef SILKROUTE_ENGINE_EXECUTOR_H_
#define SILKROUTE_ENGINE_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "engine/rel_schema.h"
#include "obs/metrics.h"
#include "relational/database.h"
#include "relational/tuple.h"
#include "sql/ast.h"

namespace silkroute::engine {

class BoundExpr;

/// A materialized intermediate or final relation.
struct Relation {
  RelSchema schema;
  std::vector<Tuple> rows;

  size_t ByteSize() const {
    size_t total = 0;
    for (const auto& r : rows) total += r.ByteSize();
    return total;
  }
};

/// Counters the executor accumulates across one query.
struct ExecStats {
  uint64_t rows_scanned = 0;      // base-table rows read
  uint64_t rows_joined = 0;       // rows emitted by join operators
  uint64_t rows_sorted = 0;       // rows passed through ORDER BY
  uint64_t nested_loop_joins = 0; // fallback joins taken (should be rare)
  uint64_t hash_joins = 0;
  uint64_t index_probes = 0;      // rows fetched through a secondary index
  uint64_t keys_encoded = 0;      // packed keys built (join/sort/distinct)
  uint64_t bytes_encoded = 0;     // bytes of packed-key encoding produced
  // The two counters below depend on the parallelism configuration (all
  // others are invariant across worker counts — the differential tests
  // pin that).
  uint64_t morsels_dispatched = 0; // parallel tasks dispatched (0 = serial)
  uint64_t parallel_fallbacks = 0; // operators forced serial at parallelism>1
};

class MorselPool;

/// Intra-query parallelism knobs (DESIGN.md §11). Defaults are fully
/// serial; parallel execution requires both parallelism > 1 and a pool.
struct ExecutorOptions {
  /// Total lanes an operator may use (the calling thread is one of them).
  int parallelism = 1;
  /// Rows per morsel. Small enough to balance skewed filters, large
  /// enough that per-task overhead stays invisible.
  size_t morsel_rows = 2048;
  /// Inputs below this many rows run serially even at parallelism > 1 —
  /// dispatch overhead would dominate.
  size_t parallel_threshold = 4096;
  /// Borrowed worker pool (morsel.h); ignored unless parallelism > 1.
  /// Callers size it with parallelism - 1 workers.
  MorselPool* pool = nullptr;
};

/// Abstract connection to the target RDBMS: one ExecuteSql call per
/// component query. The middle-ware's fault-tolerance stack is built from
/// implementations of this interface — QueryExecutor / DatabaseExecutor at
/// the bottom, FaultInjectingExecutor (fault_injection.h) simulating an
/// unreliable wire, ResilientExecutor (resilient_executor.h) adding retries
/// on top.
class SqlExecutor {
 public:
  virtual ~SqlExecutor() = default;

  virtual Result<Relation> ExecuteSql(std::string_view sql) = 0;

  /// Wall-clock cap per ExecuteSql call in milliseconds (the paper capped
  /// each sub-query at five minutes); exceeding it yields kTimeout.
  /// 0 disables.
  virtual void set_timeout_ms(double timeout_ms) = 0;

  /// Executes with an explicit per-call deadline instead of mutating
  /// executor state, so one executor can serve concurrent callers with
  /// different deadlines (the set_timeout_ms / ExecuteSql pair races when
  /// shared). The default shims onto the stateful pair and is therefore
  /// only single-thread safe; every executor meant to be shared across
  /// service workers overrides it.
  virtual Result<Relation> ExecuteSqlWithDeadline(std::string_view sql,
                                                  double timeout_ms) {
    set_timeout_ms(timeout_ms);
    return ExecuteSql(sql);
  }

  /// Executes with a per-call deadline and a cooperative per-call cancel
  /// token: cancelling it abandons *this call only*, leaving the executor
  /// usable — how a hedged race cancels its loser (net/replica_set.h). The
  /// default ignores the token, which is correct for executors whose calls
  /// are short and local; transports that can block on a dead peer
  /// override it.
  virtual Result<Relation> ExecuteSqlCancellable(std::string_view sql,
                                                 double timeout_ms,
                                                 CancelToken* cancel) {
    (void)cancel;
    return ExecuteSqlWithDeadline(sql, timeout_ms);
  }

  /// Load/health hint for routers above: false means the executor knows a
  /// call would fail fast right now (e.g. every replica of a replica set
  /// is ejected), so the caller may skip it without charging the failure
  /// to its own breakers. Must be cheap and side-effect-free; the default
  /// is always-healthy.
  virtual bool Healthy() const { return true; }

  /// Current version counters of `tables` (sorted by name on return) —
  /// the freshness half of every result-cache key (engine/result_cache.h,
  /// relational/table.h). The publisher fetches one vector per publish,
  /// before executing any component query, so a concurrent writer can
  /// only make entries conservatively stale (a future miss), never
  /// wrongly fresh. The default declines — an executor that cannot vouch
  /// for versions (e.g. a legacy remote peer) disables caching rather
  /// than serving stale documents. Must be thread-safe in executors meant
  /// to be shared across service workers.
  virtual Result<std::vector<std::pair<std::string, uint64_t>>>
  FetchTableVersions(const std::vector<std::string>& tables) {
    (void)tables;
    return Status::Unimplemented("table versions not supported");
  }
};

class QueryExecutor : public SqlExecutor {
 public:
  explicit QueryExecutor(const Database* db) : db_(db) {}

  /// Executes a parsed query.
  Result<Relation> Execute(const sql::Query& query);

  /// Parses and executes SQL text (the middle-ware entry point). The
  /// deadline is re-armed on every call: the timeout caps one query, not
  /// the lifetime of the executor.
  Result<Relation> ExecuteSql(std::string_view sql) override;

  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }

  /// Installs the parallelism configuration (call before Execute; the
  /// options apply to every subsequent query, including derived-table
  /// sub-queries, which inherit them).
  void set_exec_options(const ExecutorOptions& options) { opts_ = options; }
  const ExecutorOptions& exec_options() const { return opts_; }

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  /// `allow_fusion` permits the final greedy join to skip materializing its
  /// wide output (see JoinFromList); the caller clears it when ORDER BY may
  /// need the aligned pre-projection rows.
  Result<Relation> ExecuteCore(const sql::SelectCore& core, bool allow_fusion);
  Result<Relation> EvalTableRef(const sql::TableRef& ref);
  Result<Relation> EvalJoin(const sql::JoinRef& join);
  Result<Relation> JoinRelations(sql::JoinType type, Relation left,
                                 Relation right, const sql::Expr& on);
  /// `left_table` / `right_table`, when non-null, are the base tables
  /// whose rows() the corresponding row span borrows (borrowed scans in
  /// JoinFromList): join keys for that side are then encoded straight
  /// from the table's columnar shards (EncodeTableJoinKey), byte-identical
  /// to the row path, so probes, chains, and stats never change.
  Result<Relation> HashJoin(sql::JoinType type, const RelSchema& left_schema,
                            const std::vector<Tuple>& left_rows,
                            const RelSchema& right_schema,
                            const std::vector<Tuple>& right_rows,
                            const std::vector<std::pair<size_t, size_t>>& keys,
                            const sql::Expr* residual,
                            const Table* left_table = nullptr,
                            const Table* right_table = nullptr);
  Result<Relation> DisjunctiveHashJoin(sql::JoinType type, Relation& left,
                                       Relation& right, const sql::Expr& on);
  Result<Relation> NestedLoopJoin(sql::JoinType type, Relation& left,
                                  Relation& right, const sql::Expr& on);
  /// Returns the joined relation. When the whole FROM list reduces to one
  /// unfiltered base-table scan, the returned relation's `rows` stay empty
  /// and `*borrowed_rows` points at the table's own rows instead (stable
  /// for the executor's lifetime — the database outlives the query), so
  /// single-table queries never copy the table. Otherwise `*borrowed_rows`
  /// is null and the rows are owned as usual. `*borrowed_table` is the
  /// table behind `*borrowed_rows` when that table's columnar layout is
  /// exact (Table::columnar_exact) — downstream operators may then read
  /// cells straight from its shards; null otherwise.
  ///
  /// When `allow_fusion` is set, the select list is all column refs, and no
  /// residual predicate survives the joins, the final greedy join emits
  /// row-id pairs and the projection is applied straight off the input
  /// rows: the wide concatenated tuples are never built. In that case
  /// `*fused` is set and the returned rows carry the *projected* values in
  /// select-list order (while `schema` still describes the wide shape for
  /// expression binding).
  Result<Relation> JoinFromList(const sql::SelectCore& core, bool allow_fusion,
                                const std::vector<Tuple>** borrowed_rows,
                                const Table** borrowed_table, bool* fused);
  /// Inner hash join emitting (left row id, right row id) pairs in the same
  /// order HashJoin would emit rows, without materializing output tuples.
  Result<std::vector<std::pair<uint32_t, uint32_t>>> HashJoinPairs(
      const std::vector<Tuple>& left_rows, const std::vector<Tuple>& right_rows,
      const std::vector<std::pair<size_t, size_t>>& keys,
      const Table* left_table = nullptr, const Table* right_table = nullptr);
  /// Morsel-parallel hash join (DESIGN.md §11): partitioned index build,
  /// then probe morsels into per-morsel output runs concatenated in morsel
  /// order — the identical tuple stream to the serial HashJoin.
  Result<Relation> HashJoinParallel(
      sql::JoinType type, RelSchema out_schema,
      const std::vector<Tuple>& left_rows,
      const std::vector<Tuple>& right_rows,
      const std::vector<size_t>& left_cols,
      const std::vector<size_t>& right_cols, const BoundExpr* residual,
      size_t right_width, const Table* left_table, const Table* right_table);
  Result<std::vector<std::pair<uint32_t, uint32_t>>> HashJoinPairsParallel(
      const std::vector<Tuple>& left_rows,
      const std::vector<Tuple>& right_rows,
      const std::vector<size_t>& left_cols,
      const std::vector<size_t>& right_cols,
      const Table* left_table, const Table* right_table);
  Status MaterializeBaseTable(const Table& table,
                              const std::vector<const sql::Expr*>& filters,
                              Relation* out);
  /// Columnar filtered scan that defers row materialization: when the table's
  /// columnar layout is exact, no index probe applies, and every filter
  /// compiles to a column-vs-literal predicate, evaluates the predicates over
  /// the shards and records the surviving global row ids (ascending) in
  /// `scan_selection_`, setting `scan_selection_active_`. Returns true when
  /// the selection path ran; false means the caller must materialize rows
  /// the usual way. Callers that keep the selection borrow the table's rows
  /// and let the projection gather survivor cells straight from the shards —
  /// the full-width survivor tuples are never copied.
  Result<bool> TryColumnarSelectionScan(
      const Table& table, const std::vector<const sql::Expr*>& filters,
      const RelSchema& schema);
  Status ApplyOrderBy(const sql::Query& query,
                      const RelSchema& preproj_schema,
                      const std::vector<Tuple>& preproj_rows,
                      Relation* result);

  Status CheckDeadline() const;

  /// True when `rows` input rows should be processed in parallel morsels.
  bool UseParallel(size_t rows) const {
    return opts_.parallelism > 1 && opts_.pool != nullptr &&
           rows >= opts_.parallel_threshold;
  }
  /// Number of morsels covering `rows` input rows.
  size_t MorselCount(size_t rows) const;
  /// Dispatches `count` tasks onto the pool (the calling thread
  /// participates) with per-task queue-wait/run spans under the current
  /// span when tracing is on. Returns the lowest-index task failure.
  Status RunTasks(const char* what, size_t count,
                  const std::function<Status(size_t)>& fn);
  /// Splits [0, rows) into morsels and runs fn(morsel, begin, end) via
  /// RunTasks.
  Status RunMorsels(const char* what, size_t rows,
                    const std::function<Status(size_t, size_t, size_t)>& fn);

  const Database* db_;
  ExecutorOptions opts_;
  ExecStats stats_;
  double timeout_ms_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;

  // Rows of the pre-projection relation aligned 1:1 with the latest core's
  // output rows, so ORDER BY can reference non-projected columns.
  // last_preprojection_rows_ points at last_preprojection_.rows when owned,
  // or straight at a base table's rows when the scan was borrowed; null
  // when no aligned pre-projection exists.
  Relation last_preprojection_;
  const std::vector<Tuple>* last_preprojection_rows_ = nullptr;

  // Survivor global row ids produced by TryColumnarSelectionScan for the
  // current core, valid only while scan_selection_active_ is set. ExecuteCore
  // consumes (moves) the vector immediately after JoinFromList returns, so
  // recursive cores (derived tables) can never observe a stale selection.
  std::vector<uint32_t> scan_selection_;
  bool scan_selection_active_ = false;
};

/// SqlExecutor over a local Database: a fresh QueryExecutor per call, so
/// per-query state (deadline, stats) can never leak across component
/// queries of a plan. ExecuteSqlWithDeadline is fully thread-safe (the
/// database is read-only during publishing); the stateful pair remains
/// single-thread only.
class DatabaseExecutor : public SqlExecutor {
 public:
  // Out-of-line (owns the MorselPool, incomplete here).
  explicit DatabaseExecutor(const Database* db);
  ~DatabaseExecutor() override;

  Result<Relation> ExecuteSql(std::string_view sql) override {
    return ExecuteSqlWithDeadline(sql, timeout_ms_);
  }

  Result<Relation> ExecuteSqlWithDeadline(std::string_view sql,
                                          double timeout_ms) override {
    QueryExecutor executor(db_);
    executor.set_exec_options(exec_options_);
    if (timeout_ms > 0) executor.set_timeout_ms(timeout_ms);
    auto result = executor.ExecuteSql(sql);
    const ExecStats& s = executor.stats();
    if (keys_encoded_counter_ != nullptr && s.keys_encoded > 0) {
      keys_encoded_counter_->Add(s.keys_encoded);
      key_bytes_counter_->Add(s.bytes_encoded);
    }
    if (morsels_counter_ != nullptr && s.morsels_dispatched > 0) {
      morsels_counter_->Add(s.morsels_dispatched);
    }
    if (fallbacks_counter_ != nullptr && s.parallel_fallbacks > 0) {
      fallbacks_counter_->Add(s.parallel_fallbacks);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_ = s;
    }
    return result;
  }

  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }

  /// Local tables answer version fetches directly (Table::version() is an
  /// atomic read; thread-safe against concurrent queries).
  Result<std::vector<std::pair<std::string, uint64_t>>> FetchTableVersions(
      const std::vector<std::string>& tables) override;

  /// Intra-query parallelism for every query through this connection:
  /// lazily spawns an owned MorselPool with parallelism-1 workers (shared
  /// by concurrent callers; morsel batches interleave). <= 1 reverts to
  /// serial. Wire before publishing starts, like set_metrics_registry —
  /// not safe to race with in-flight ExecuteSql calls.
  void set_parallelism(int parallelism);

  /// Overrides morsel sizing (tests force tiny morsels/thresholds so small
  /// fixtures still exercise every parallel path).
  void set_morsel_rows(size_t morsel_rows, size_t parallel_threshold) {
    exec_options_.morsel_rows = morsel_rows;
    exec_options_.parallel_threshold = parallel_threshold;
  }

  /// Mirrors cumulative packed-key counters into `registry` (nullable to
  /// turn accounting off). Counters are resolved here once; the per-query
  /// hot path then pays only relaxed atomic adds. Morsel counters exist
  /// only at parallelism > 1, so serial deployments expose exactly the
  /// pre-parallelism metric set.
  void set_metrics_registry(obs::MetricsRegistry* registry) {
    registry_ = registry;
    ResolveCounters();
  }

  /// Stats of the most recent query (last writer wins under concurrency).
  ExecStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

 private:
  void ResolveCounters();

  const Database* db_;
  double timeout_ms_ = 0;
  ExecutorOptions exec_options_;
  std::unique_ptr<MorselPool> pool_;
  // Wired before publishing starts (set_metrics_registry is not safe to
  // race with in-flight ExecuteSql calls).
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* keys_encoded_counter_ = nullptr;
  obs::Counter* key_bytes_counter_ = nullptr;
  obs::Counter* morsels_counter_ = nullptr;
  obs::Counter* fallbacks_counter_ = nullptr;
  mutable std::mutex stats_mu_;
  ExecStats stats_;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_EXECUTOR_H_
