// QueryExecutor: executes a sql::Query against a Database and materializes
// the result. The physical plan is derived with textbook heuristics:
//
//  - comma-separated FROM lists are joined greedily along equijoin conjuncts
//    extracted from WHERE (hash joins), single-table conjuncts are pushed
//    down, the remainder is a residual filter;
//  - explicit JOIN ... ON uses a hash join when the ON condition is a
//    conjunction containing column equalities, a *disjunctive hash join*
//    when it is an OR of such conjunctions (the shape SilkRoute's unified
//    outer-join queries produce), and a nested loop otherwise;
//  - UNION ALL concatenates; ORDER BY sorts the materialized result.
#ifndef SILKROUTE_ENGINE_EXECUTOR_H_
#define SILKROUTE_ENGINE_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "engine/rel_schema.h"
#include "obs/metrics.h"
#include "relational/database.h"
#include "relational/tuple.h"
#include "sql/ast.h"

namespace silkroute::engine {

/// A materialized intermediate or final relation.
struct Relation {
  RelSchema schema;
  std::vector<Tuple> rows;

  size_t ByteSize() const {
    size_t total = 0;
    for (const auto& r : rows) total += r.ByteSize();
    return total;
  }
};

/// Counters the executor accumulates across one query.
struct ExecStats {
  uint64_t rows_scanned = 0;      // base-table rows read
  uint64_t rows_joined = 0;       // rows emitted by join operators
  uint64_t rows_sorted = 0;       // rows passed through ORDER BY
  uint64_t nested_loop_joins = 0; // fallback joins taken (should be rare)
  uint64_t hash_joins = 0;
  uint64_t index_probes = 0;      // rows fetched through a secondary index
  uint64_t keys_encoded = 0;      // packed keys built (join/sort/distinct)
  uint64_t bytes_encoded = 0;     // bytes of packed-key encoding produced
};

/// Abstract connection to the target RDBMS: one ExecuteSql call per
/// component query. The middle-ware's fault-tolerance stack is built from
/// implementations of this interface — QueryExecutor / DatabaseExecutor at
/// the bottom, FaultInjectingExecutor (fault_injection.h) simulating an
/// unreliable wire, ResilientExecutor (resilient_executor.h) adding retries
/// on top.
class SqlExecutor {
 public:
  virtual ~SqlExecutor() = default;

  virtual Result<Relation> ExecuteSql(std::string_view sql) = 0;

  /// Wall-clock cap per ExecuteSql call in milliseconds (the paper capped
  /// each sub-query at five minutes); exceeding it yields kTimeout.
  /// 0 disables.
  virtual void set_timeout_ms(double timeout_ms) = 0;

  /// Executes with an explicit per-call deadline instead of mutating
  /// executor state, so one executor can serve concurrent callers with
  /// different deadlines (the set_timeout_ms / ExecuteSql pair races when
  /// shared). The default shims onto the stateful pair and is therefore
  /// only single-thread safe; every executor meant to be shared across
  /// service workers overrides it.
  virtual Result<Relation> ExecuteSqlWithDeadline(std::string_view sql,
                                                  double timeout_ms) {
    set_timeout_ms(timeout_ms);
    return ExecuteSql(sql);
  }
};

class QueryExecutor : public SqlExecutor {
 public:
  explicit QueryExecutor(const Database* db) : db_(db) {}

  /// Executes a parsed query.
  Result<Relation> Execute(const sql::Query& query);

  /// Parses and executes SQL text (the middle-ware entry point). The
  /// deadline is re-armed on every call: the timeout caps one query, not
  /// the lifetime of the executor.
  Result<Relation> ExecuteSql(std::string_view sql) override;

  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  /// `allow_fusion` permits the final greedy join to skip materializing its
  /// wide output (see JoinFromList); the caller clears it when ORDER BY may
  /// need the aligned pre-projection rows.
  Result<Relation> ExecuteCore(const sql::SelectCore& core, bool allow_fusion);
  Result<Relation> EvalTableRef(const sql::TableRef& ref);
  Result<Relation> EvalJoin(const sql::JoinRef& join);
  Result<Relation> JoinRelations(sql::JoinType type, Relation left,
                                 Relation right, const sql::Expr& on);
  Result<Relation> HashJoin(sql::JoinType type, const RelSchema& left_schema,
                            const std::vector<Tuple>& left_rows,
                            const RelSchema& right_schema,
                            const std::vector<Tuple>& right_rows,
                            const std::vector<std::pair<size_t, size_t>>& keys,
                            const sql::Expr* residual);
  Result<Relation> DisjunctiveHashJoin(sql::JoinType type, Relation& left,
                                       Relation& right, const sql::Expr& on);
  Result<Relation> NestedLoopJoin(sql::JoinType type, Relation& left,
                                  Relation& right, const sql::Expr& on);
  /// Returns the joined relation. When the whole FROM list reduces to one
  /// unfiltered base-table scan, the returned relation's `rows` stay empty
  /// and `*borrowed_rows` points at the table's own rows instead (stable
  /// for the executor's lifetime — the database outlives the query), so
  /// single-table queries never copy the table. Otherwise `*borrowed_rows`
  /// is null and the rows are owned as usual.
  ///
  /// When `allow_fusion` is set, the select list is all column refs, and no
  /// residual predicate survives the joins, the final greedy join emits
  /// row-id pairs and the projection is applied straight off the input
  /// rows: the wide concatenated tuples are never built. In that case
  /// `*fused` is set and the returned rows carry the *projected* values in
  /// select-list order (while `schema` still describes the wide shape for
  /// expression binding).
  Result<Relation> JoinFromList(const sql::SelectCore& core, bool allow_fusion,
                                const std::vector<Tuple>** borrowed_rows,
                                bool* fused);
  /// Inner hash join emitting (left row id, right row id) pairs in the same
  /// order HashJoin would emit rows, without materializing output tuples.
  Result<std::vector<std::pair<uint32_t, uint32_t>>> HashJoinPairs(
      const std::vector<Tuple>& left_rows, const std::vector<Tuple>& right_rows,
      const std::vector<std::pair<size_t, size_t>>& keys);
  Status MaterializeBaseTable(const Table& table,
                              const std::vector<const sql::Expr*>& filters,
                              Relation* out);
  Status ApplyOrderBy(const sql::Query& query,
                      const RelSchema& preproj_schema,
                      const std::vector<Tuple>& preproj_rows,
                      Relation* result);

  Status CheckDeadline() const;

  const Database* db_;
  ExecStats stats_;
  double timeout_ms_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;

  // Rows of the pre-projection relation aligned 1:1 with the latest core's
  // output rows, so ORDER BY can reference non-projected columns.
  // last_preprojection_rows_ points at last_preprojection_.rows when owned,
  // or straight at a base table's rows when the scan was borrowed; null
  // when no aligned pre-projection exists.
  Relation last_preprojection_;
  const std::vector<Tuple>* last_preprojection_rows_ = nullptr;
};

/// SqlExecutor over a local Database: a fresh QueryExecutor per call, so
/// per-query state (deadline, stats) can never leak across component
/// queries of a plan. ExecuteSqlWithDeadline is fully thread-safe (the
/// database is read-only during publishing); the stateful pair remains
/// single-thread only.
class DatabaseExecutor : public SqlExecutor {
 public:
  explicit DatabaseExecutor(const Database* db) : db_(db) {}

  Result<Relation> ExecuteSql(std::string_view sql) override {
    return ExecuteSqlWithDeadline(sql, timeout_ms_);
  }

  Result<Relation> ExecuteSqlWithDeadline(std::string_view sql,
                                          double timeout_ms) override {
    QueryExecutor executor(db_);
    if (timeout_ms > 0) executor.set_timeout_ms(timeout_ms);
    auto result = executor.ExecuteSql(sql);
    const ExecStats& s = executor.stats();
    if (keys_encoded_counter_ != nullptr && s.keys_encoded > 0) {
      keys_encoded_counter_->Add(s.keys_encoded);
      key_bytes_counter_->Add(s.bytes_encoded);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_ = s;
    }
    return result;
  }

  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }

  /// Mirrors cumulative packed-key counters into `registry` (nullable to
  /// turn accounting off). Counters are resolved here once; the per-query
  /// hot path then pays only relaxed atomic adds.
  void set_metrics_registry(obs::MetricsRegistry* registry) {
    if (registry == nullptr) {
      keys_encoded_counter_ = nullptr;
      key_bytes_counter_ = nullptr;
      return;
    }
    key_bytes_counter_ =
        registry->counter("silkroute_engine_key_bytes_encoded_total");
    keys_encoded_counter_ =
        registry->counter("silkroute_engine_keys_encoded_total");
  }

  /// Stats of the most recent query (last writer wins under concurrency).
  ExecStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

 private:
  const Database* db_;
  double timeout_ms_ = 0;
  // Wired before publishing starts (set_metrics_registry is not safe to
  // race with in-flight ExecuteSql calls).
  obs::Counter* keys_encoded_counter_ = nullptr;
  obs::Counter* key_bytes_counter_ = nullptr;
  mutable std::mutex stats_mu_;
  ExecStats stats_;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_EXECUTOR_H_
