#include "engine/tuple_stream.h"

#include <cstring>

namespace silkroute::engine {

namespace {

enum : uint8_t {
  kTagNull = 0,
  kTagInt64 = 1,
  kTagDouble = 2,
  kTagString = 3,
};

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetU32(const std::string& buf, size_t* off, uint32_t* v) {
  if (*off + 4 > buf.size()) return false;
  std::memcpy(v, buf.data() + *off, 4);
  *off += 4;
  return true;
}

bool GetU64(const std::string& buf, size_t* off, uint64_t* v) {
  if (*off + 8 > buf.size()) return false;
  std::memcpy(v, buf.data() + *off, 8);
  *off += 8;
  return true;
}

}  // namespace

void SerializeTuple(const Tuple& tuple, std::string* out) {
  PutU32(static_cast<uint32_t>(tuple.size()), out);
  for (const Value& v : tuple.values()) {
    if (v.is_null()) {
      out->push_back(static_cast<char>(kTagNull));
    } else if (v.is_int64()) {
      out->push_back(static_cast<char>(kTagInt64));
      PutU64(static_cast<uint64_t>(v.AsInt64()), out);
    } else if (v.is_double()) {
      out->push_back(static_cast<char>(kTagDouble));
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      PutU64(bits, out);
    } else {
      out->push_back(static_cast<char>(kTagString));
      const std::string& s = v.AsString();
      PutU32(static_cast<uint32_t>(s.size()), out);
      out->append(s);
    }
  }
}

Result<Tuple> DeserializeTuple(const std::string& buffer, size_t* offset) {
  uint32_t n;
  if (!GetU32(buffer, offset, &n)) {
    return Status::InvalidArgument("truncated tuple header");
  }
  // Hostile count check before reserve: every value costs at least its
  // 1-byte tag, so a count beyond the remaining bytes is forged — reject
  // it instead of attempting a multi-gigabyte allocation.
  if (n > buffer.size() - *offset) {
    return Status::InvalidArgument(
        "tuple claims " + std::to_string(n) + " values but only " +
        std::to_string(buffer.size() - *offset) + " byte(s) remain");
  }
  Tuple tuple;
  tuple.mutable_values().reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (*offset >= buffer.size()) {
      return Status::InvalidArgument("truncated tuple field tag");
    }
    uint8_t tag = static_cast<uint8_t>(buffer[*offset]);
    ++*offset;
    switch (tag) {
      case kTagNull:
        tuple.Append(Value::Null());
        break;
      case kTagInt64: {
        uint64_t bits;
        if (!GetU64(buffer, offset, &bits)) {
          return Status::InvalidArgument("truncated int64 field");
        }
        tuple.Append(Value::Int64(static_cast<int64_t>(bits)));
        break;
      }
      case kTagDouble: {
        uint64_t bits;
        if (!GetU64(buffer, offset, &bits)) {
          return Status::InvalidArgument("truncated double field");
        }
        double d;
        std::memcpy(&d, &bits, 8);
        tuple.Append(Value::Double(d));
        break;
      }
      case kTagString: {
        uint32_t len;
        if (!GetU32(buffer, offset, &len)) {
          return Status::InvalidArgument("truncated string length");
        }
        // Overflow-safe form of `*offset + len > buffer.size()`: a hostile
        // len near UINT32_MAX must not wrap the left-hand side.
        if (len > buffer.size() - *offset) {
          return Status::InvalidArgument("truncated string payload (wants " +
                                         std::to_string(len) + " byte(s))");
        }
        tuple.Append(Value::String(buffer.substr(*offset, len)));
        *offset += len;
        break;
      }
      default:
        return Status::InvalidArgument("bad field tag " + std::to_string(tag));
    }
  }
  return tuple;
}

TupleStream::TupleStream(Relation relation)
    : schema_(std::move(relation.schema)), num_tuples_(relation.rows.size()) {
  // Server-side binding: serialize everything up front. Reserve using an
  // estimate to avoid repeated growth.
  auto buffer = std::make_shared<std::string>();
  size_t estimate = 0;
  for (const auto& r : relation.rows) estimate += r.ByteSize() + 8;
  buffer->reserve(estimate);
  for (const auto& r : relation.rows) SerializeTuple(r, buffer.get());
  buffer_ = std::move(buffer);
}

std::optional<Tuple> TupleStream::Next() {
  if (offset_ >= buffer_->size()) return std::nullopt;
  auto t = DeserializeTuple(*buffer_, &offset_);
  if (!t.ok()) return std::nullopt;  // corrupt stream treated as EOS
  return std::move(t).value();
}

}  // namespace silkroute::engine
