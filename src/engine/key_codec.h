// Order-preserving byte encoding for Value rows — the packed-key execution
// hot path. Instead of dispatching through std::variant and Value::Compare
// per cell in every join probe, sort comparison, and DISTINCT check, the
// executor encodes each key row once into a flat byte string whose memcmp
// order equals the row's Value::Compare order. Comparing, hashing, and
// deduplicating keys then become single cache-friendly byte passes.
//
// Encoding (one self-delimiting segment per value, concatenated per row):
//
//   NULL     0x00
//   numeric  0x01 + 8 bytes: the value's double image, sign-flipped into
//            an unsigned big-endian integer whose order matches numeric
//            order (int64 and double widen to this common form, so 3 and
//            3.0 encode identically — exactly Value::Compare / Value::Hash
//            cross-type semantics). When the image magnitude reaches 2^53
//            — the first point where distinct int64s collapse onto one
//            double — the segment appends 8 more bytes: the value's exact
//            int64 in offset-binary (doubles clamp into int64, saturating
//            beyond ±2^63). Tie presence is a pure function of the image,
//            so equal-image segments have equal lengths and composite keys
//            stay self-delimiting.
//   string   0x02 + body with 0x00 escaped as {0x00 0xFF} + {0x00 0x00}
//            terminator (prefixes order correctly; no segment is a strict
//            prefix of a different one)
//
// Tag order 0x00 < 0x01 < 0x02 reproduces NULL < numerics < strings.
//
// With the tiebreaker, memcmp order matches int64-vs-int64 Value::Compare
// exactly over the whole domain (INT64_MIN..INT64_MAX), where the image
// alone used to collapse ±2^53-and-beyond neighbours into one key. The
// remaining (unavoidable) divergence is mixed-type: Value::Compare widens
// an int64 beyond 2^53 to its inexact double image and calls it equal to
// that double, a relation that is not transitive (2^53 == 2^53.0 ==
// 2^53+1 but 2^53 < 2^53+1), so no byte encoding can agree with it
// everywhere. Here such cross-type near-ties resolve to a stable order by
// exact integer value; an int64 and a double still encode byte-equal iff
// the double is exactly that integer.
#ifndef SILKROUTE_ENGINE_KEY_CODEC_H_
#define SILKROUTE_ENGINE_KEY_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relational/columnar.h"
#include "relational/table.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace silkroute::engine {

/// Appends the order-preserving encoding of `v` to `out`.
/// memcmp(Encode(a), Encode(b)) agrees in sign with a.Compare(b).
void EncodeValue(const Value& v, std::string* out);

/// Like EncodeValue but with every emitted byte complemented, so memcmp
/// order is reversed (ORDER BY ... DESC segments). Safe to mix ascending
/// and descending segments in one composite key: segments are
/// self-delimiting, so the first byte difference between two equal-arity
/// keys always falls inside the differing segment.
void EncodeValueDescending(const Value& v, std::string* out);

/// Encodes `row[cols[0]], row[cols[1]], ...` as a join key. Returns false
/// without touching `out` beyond partial writes if any key column is SQL
/// NULL — equality joins never match NULLs (SqlEquals semantics), so such
/// rows are skipped rather than encoded.
bool EncodeJoinKey(const Tuple& row, const std::vector<size_t>& cols,
                   std::string* out);

/// Encodes every column of `row` (NULLs allowed). Two whole-row encodings
/// are byte-equal iff the rows compare equal under Tuple::Compare — the
/// DISTINCT identity, where NULL == NULL.
void EncodeRowKey(const Tuple& row, std::string* out);

/// Appends the encoding of shard cell (col, pos) straight from the typed
/// column arrays — byte-identical to EncodeValue(shard.ValueAt(col, pos))
/// with no Value materialized (key_codec_test pins the identity over the
/// full type corpus, tiebreaker regime included).
void EncodeShardValue(const ColumnarShard& shard, size_t col, size_t pos,
                      std::string* out);

/// Descending counterpart (every byte complemented), for sort keys
/// encoded straight from column data. Byte-identical to
/// EncodeValueDescending on the materialized Value.
void EncodeShardValueDescending(const ColumnarShard& shard, size_t col,
                                size_t pos, std::string* out);

/// Join key for table-global row `row` encoded from the table's columnar
/// shards — byte-identical to EncodeJoinKey on the materialized tuple,
/// including the false-on-NULL-key contract. Caller guarantees
/// table.columnar_exact().
bool EncodeTableJoinKey(const Table& table, size_t row,
                        const std::vector<size_t>& cols, std::string* out);

/// The 8-byte payload a non-null numeric Value contributes to its encoded
/// segment, as a host integer: unsigned comparison of two payloads equals
/// numeric order. Lets all-numeric sort keys pack into machine words and
/// skip the byte buffer entirely. Precondition: v.is_int64() or
/// v.is_double().
uint64_t OrderedNumericBits(const Value& v);

/// True when OrderedNumericBits alone is order-exact for `v` among
/// numerics — i.e. the encoded segment carries no tiebreaker. False at
/// image magnitudes >= 2^53; word-packed sort keys must fall back to the
/// byte path there so the two paths order giant keys identically.
/// Precondition: v.is_int64() or v.is_double().
bool NumericFitsWord(const Value& v);

/// Bump-pointer arena giving encoded keys stable, contiguous storage for
/// the duration of one query operator. Interned keys are returned as
/// string_views into large chunks, so a hash table over them touches
/// tightly packed memory instead of one heap node per key. Views stay
/// valid until the arena is destroyed; the arena never reallocates a
/// chunk in place.
class KeyArena {
 public:
  explicit KeyArena(size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes) {}

  /// Copies `bytes` into the arena and returns a stable view of the copy.
  std::string_view Intern(std::string_view bytes);

  uint64_t keys_interned() const { return keys_; }
  uint64_t bytes_interned() const { return bytes_; }

 private:
  size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cur_ = nullptr;
  size_t cur_left_ = 0;
  uint64_t keys_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_KEY_CODEC_H_
