// FaultInjectingExecutor: simulates an unreliable connection to the remote
// RDBMS (the paper's middle-ware reaches its source over a wire protocol;
// the mediation line of related work treats source unavailability as the
// normal case). It wraps an inner SqlExecutor and, driven by a
// deterministic seeded policy, injects
//
//  - transient or permanent Unavailable (or other) errors,
//  - fixed latency per query and per-row "trickle" latency,
//  - truncated streams: the connection drops after N transferred rows —
//    the wire format is length-prefixed, so a dropped connection is always
//    *detected* (kUnavailable with truncation context), never silently
//    returned as partial data,
//  - seeded coin-flip flakiness.
//
// Rules match per table name and/or per query index (the arrival order of
// distinct SQL texts — retries of a query keep its index, degraded
// sub-queries get fresh ones), so tests can target one component of a plan.
#ifndef SILKROUTE_ENGINE_FAULT_INJECTION_H_
#define SILKROUTE_ENGINE_FAULT_INJECTION_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "engine/executor.h"

namespace silkroute::engine {

/// One fault-injection rule. All matchers must hold for the rule to apply;
/// a defaulted matcher ("" / -1) holds for every query.
struct FaultRule {
  // --- Matchers ---------------------------------------------------------
  /// Case-insensitive identifier match against the SQL text ("" = any).
  std::string table;
  /// Index of the distinct SQL text in arrival order (-1 = any). Retries
  /// re-use the first occurrence's index.
  int query_index = -1;
  /// Apply to only the first N matching executions (-1 = all). N=1 with
  /// `fail` makes a transient error; -1 makes a permanent one.
  int times = -1;

  // --- Injected behaviours ---------------------------------------------
  /// Fail with `code` before touching the inner executor.
  bool fail = false;
  /// Fail with `code` with this probability (seeded, deterministic).
  double flake_probability = 0;
  StatusCode code = StatusCode::kUnavailable;
  std::string message = "injected fault";
  /// Drop the connection after transferring this many rows (-1 = off).
  /// Surfaces as kUnavailable naming the truncation point.
  int truncate_after_rows = -1;
  /// Latency added to each matching execution, in milliseconds.
  double latency_ms = 0;
  /// Trickling stream: extra latency per transferred row, in milliseconds.
  double per_row_delay_ms = 0;
};

struct FaultPolicy {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;
};

struct FaultStats {
  int executions = 0;         // ExecuteSql calls seen
  int injected_failures = 0;  // fail / flake errors returned
  int truncated_streams = 0;  // connections dropped mid-stream
  double injected_latency_ms = 0;
};

/// Thread-safe when driven through ExecuteSqlWithDeadline: the policy
/// bookkeeping (arrival indexes, rule counters, rng, stats) is guarded by a
/// mutex, while the inner execution runs outside the lock so one sick query
/// cannot serialize the whole worker pool. The stateful
/// set_timeout_ms/ExecuteSql pair remains single-thread only.
class FaultInjectingExecutor : public SqlExecutor {
 public:
  FaultInjectingExecutor(SqlExecutor* inner, FaultPolicy policy);

  Result<Relation> ExecuteSql(std::string_view sql) override {
    return ExecuteSqlWithDeadline(sql, timeout_ms_);
  }
  Result<Relation> ExecuteSqlWithDeadline(std::string_view sql,
                                          double timeout_ms) override;
  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }

  /// Version fetches pass through un-faulted: fault schedules target
  /// component queries by SQL text, and a failed fetch merely bypasses the
  /// cache (not the behaviour under test).
  Result<std::vector<std::pair<std::string, uint64_t>>> FetchTableVersions(
      const std::vector<std::string>& tables) override {
    return inner_->FetchTableVersions(tables);
  }

  FaultStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Replaces the real sleep used for injected latency (tests pass a
  /// recorder; injected latency is then charged to stats only).
  void set_sleep_fn(std::function<void(double)> sleep_fn) {
    sleep_fn_ = std::move(sleep_fn);
  }

 private:
  int IndexOf(const std::string& sql);  // caller holds mu_
  void Sleep(double ms);

  SqlExecutor* inner_;
  FaultPolicy policy_;
  double timeout_ms_ = 0;
  Random rng_;
  mutable std::mutex mu_;
  FaultStats stats_;
  std::map<std::string, int> sql_index_;   // SQL text -> arrival index
  std::vector<int> rule_applications_;     // per-rule matched-execution count
  std::function<void(double)> sleep_fn_;   // null = real sleep
};

/// True if `sql` references `table` as a whole identifier, ignoring case.
bool SqlReferencesTable(std::string_view sql, std::string_view table);

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_FAULT_INJECTION_H_
