#include "engine/executor.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "engine/expr_eval.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace silkroute::engine {

namespace {

using sql::BinaryOp;
using sql::Expr;

/// Collects every column reference in an expression tree.
void CollectColumnRefs(const Expr& e, std::vector<const sql::ColumnRefExpr*>* out) {
  switch (e.kind()) {
    case Expr::Kind::kColumnRef:
      out->push_back(static_cast<const sql::ColumnRefExpr*>(&e));
      return;
    case Expr::Kind::kLiteral:
      return;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(e);
      CollectColumnRefs(b.left(), out);
      CollectColumnRefs(b.right(), out);
      return;
    }
    case Expr::Kind::kNot:
      CollectColumnRefs(static_cast<const sql::NotExpr&>(e).operand(), out);
      return;
    case Expr::Kind::kIsNull:
      CollectColumnRefs(static_cast<const sql::IsNullExpr&>(e).operand(), out);
      return;
  }
}

/// Which single relation (by index into `schemas`) does `e` reference?
/// Returns -1 if it references none or more than one, or a ref is ambiguous.
int SoleReferencedRelation(const Expr& e,
                           const std::vector<const RelSchema*>& schemas) {
  std::vector<const sql::ColumnRefExpr*> refs;
  CollectColumnRefs(e, &refs);
  int sole = -2;  // -2: none seen yet
  for (const auto* ref : refs) {
    int owner = -1;
    for (size_t i = 0; i < schemas.size(); ++i) {
      if (schemas[i]->Resolve(ref->qualifier(), ref->name()).ok()) {
        if (owner >= 0) return -1;  // ambiguous across relations
        owner = static_cast<int>(i);
      }
    }
    if (owner < 0) return -1;  // unresolved here; defer to residual binding
    if (sole == -2) {
      sole = owner;
    } else if (sole != owner) {
      return -1;
    }
  }
  return sole == -2 ? -1 : sole;
}

struct EquiPair {
  const sql::ColumnRefExpr* left;
  const sql::ColumnRefExpr* right;
};

/// If `e` is `colA = colB`, returns the two refs.
bool AsColumnEquality(const Expr& e, EquiPair* out) {
  if (e.kind() != Expr::Kind::kBinary) return false;
  const auto& b = static_cast<const sql::BinaryExpr&>(e);
  if (b.op() != BinaryOp::kEq) return false;
  if (b.left().kind() != Expr::Kind::kColumnRef ||
      b.right().kind() != Expr::Kind::kColumnRef) {
    return false;
  }
  out->left = static_cast<const sql::ColumnRefExpr*>(&b.left());
  out->right = static_cast<const sql::ColumnRefExpr*>(&b.right());
  return true;
}

struct KeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0;
    for (const auto& v : key) h = h * 1315423911u + v.Hash();
    return h;
  }
};
struct KeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};
using HashTable =
    std::unordered_multimap<std::vector<Value>, size_t, KeyHash, KeyEq>;

Tuple NullPadded(const Tuple& left, size_t right_width) {
  Tuple out = left;
  for (size_t i = 0; i < right_width; ++i) out.Append(Value::Null());
  return out;
}

}  // namespace

Result<Relation> QueryExecutor::ExecuteSql(std::string_view sql_text) {
  // The timeout caps each query, not the executor: re-arm the deadline so a
  // reused executor does not charge query N+1 for query N's elapsed time.
  has_deadline_ = false;
  SILK_ASSIGN_OR_RETURN(sql::QueryPtr q, sql::ParseQuery(sql_text));
  auto result = Execute(*q);
  // Attach this query's physical-plan counters to the enclosing attempt
  // span, if one is installed (the string building is gated on the span so
  // untraced runs pay only the thread-local load).
  if (result.ok() && obs::CurrentSpan() != nullptr) {
    obs::AnnotateCurrent("rows_scanned", std::to_string(stats_.rows_scanned));
    obs::AnnotateCurrent("rows_joined", std::to_string(stats_.rows_joined));
    obs::AnnotateCurrent("hash_joins", std::to_string(stats_.hash_joins));
    obs::AnnotateCurrent("nested_loop_joins",
                         std::to_string(stats_.nested_loop_joins));
    obs::AnnotateCurrent("index_probes", std::to_string(stats_.index_probes));
    obs::AnnotateCurrent("result_rows",
                         std::to_string(result.value().rows.size()));
  }
  return result;
}

Status QueryExecutor::CheckDeadline() const {
  if (!has_deadline_) return Status::OK();
  if (std::chrono::steady_clock::now() > deadline_) {
    return Status::Timeout("query exceeded " +
                           std::to_string(timeout_ms_) + " ms");
  }
  return Status::OK();
}

Result<Relation> QueryExecutor::Execute(const sql::Query& query) {
  if (query.cores.empty()) {
    return Status::InvalidArgument("query has no SELECT cores");
  }
  if (timeout_ms_ > 0 && !has_deadline_) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::microseconds(
                    static_cast<int64_t>(timeout_ms_ * 1000));
  }
  Relation result;
  for (size_t i = 0; i < query.cores.size(); ++i) {
    SILK_ASSIGN_OR_RETURN(Relation part, ExecuteCore(query.cores[i]));
    if (i == 0) {
      result = std::move(part);
    } else {
      if (part.schema.size() != result.schema.size()) {
        return Status::InvalidArgument(
            "UNION operands have different arities (" +
            std::to_string(result.schema.size()) + " vs " +
            std::to_string(part.schema.size()) + ")");
      }
      result.rows.insert(result.rows.end(),
                         std::make_move_iterator(part.rows.begin()),
                         std::make_move_iterator(part.rows.end()));
    }
  }
  if (!query.order_by.empty()) {
    const Relation& preproj =
        query.cores.size() == 1 ? last_preprojection_ : result;
    SILK_RETURN_IF_ERROR(ApplyOrderBy(query, preproj, &result));
  }
  last_preprojection_ = Relation();  // release memory
  return result;
}

Result<Relation> QueryExecutor::ExecuteCore(const sql::SelectCore& core) {
  SILK_ASSIGN_OR_RETURN(Relation combined, JoinFromList(core));

  if (core.select_star) {
    last_preprojection_ = combined;
    return combined;
  }

  // Bind projection expressions.
  std::vector<BoundExprPtr> exprs;
  RelSchema out_schema;
  exprs.reserve(core.select_list.size());
  for (const auto& item : core.select_list) {
    SILK_ASSIGN_OR_RETURN(BoundExprPtr bound,
                          BindExpr(*item.expr, combined.schema));
    exprs.push_back(std::move(bound));
    if (!item.alias.empty()) {
      out_schema.Add({"", item.alias});
    } else if (item.expr->kind() == Expr::Kind::kColumnRef) {
      const auto& c = static_cast<const sql::ColumnRefExpr&>(*item.expr);
      out_schema.Add({c.qualifier(), c.name()});
    } else {
      out_schema.Add({"", "col" + std::to_string(out_schema.size() + 1)});
    }
  }

  Relation out;
  out.schema = std::move(out_schema);
  out.rows.reserve(combined.rows.size());
  for (const auto& row : combined.rows) {
    Tuple projected;
    projected.mutable_values().reserve(exprs.size());
    for (const auto& e : exprs) projected.Append(e->Eval(row));
    out.rows.push_back(std::move(projected));
  }
  if (core.distinct) {
    struct RowHash {
      size_t operator()(const Tuple& t) const {
        size_t h = 0;
        for (const auto& v : t.values()) h = h * 1315423911u + v.Hash();
        return h;
      }
    };
    struct RowEq {
      bool operator()(const Tuple& a, const Tuple& b) const {
        return a.Compare(b) == 0;
      }
    };
    std::unordered_set<Tuple, RowHash, RowEq> seen;
    seen.reserve(out.rows.size());
    std::vector<Tuple> unique;
    unique.reserve(out.rows.size());
    for (auto& row : out.rows) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    out.rows = std::move(unique);
    // DISTINCT breaks row alignment; ORDER BY must use the output schema.
    last_preprojection_ = Relation();
  } else {
    last_preprojection_ = std::move(combined);
  }
  return out;
}

Result<Relation> QueryExecutor::JoinFromList(const sql::SelectCore& core) {
  if (core.from.empty()) {
    // `select <literals>`: one empty source row.
    Relation r;
    r.rows.emplace_back();
    return r;
  }

  // Evaluate each FROM item. Base tables are deferred (schema only) so the
  // pushdown filters below can drive an index probe or a filtered scan
  // instead of copying the whole table.
  std::vector<Relation> items;
  std::vector<const Table*> deferred_base(core.from.size(), nullptr);
  items.reserve(core.from.size());
  for (const auto& ref : core.from) {
    if (ref->kind() == sql::TableRef::Kind::kBaseTable) {
      const auto& base = static_cast<const sql::BaseTableRef&>(*ref);
      SILK_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(base.table()));
      Relation rel;
      for (const auto& col : table->schema().columns()) {
        rel.schema.Add({base.binding_name(), col.name});
      }
      deferred_base[items.size()] = table;
      items.push_back(std::move(rel));
      continue;
    }
    SILK_ASSIGN_OR_RETURN(Relation rel, EvalTableRef(*ref));
    items.push_back(std::move(rel));
  }

  // Classify WHERE conjuncts.
  std::vector<const Expr*> conjuncts;
  if (core.where) CollectConjuncts(*core.where, &conjuncts);

  std::vector<const RelSchema*> schemas;
  schemas.reserve(items.size());
  for (const auto& it : items) schemas.push_back(&it.schema);

  struct JoinPred {
    const Expr* expr;
    int item_a;
    const sql::ColumnRefExpr* ref_a;
    int item_b;
    const sql::ColumnRefExpr* ref_b;
    bool used = false;
  };
  std::vector<JoinPred> join_preds;
  std::vector<const Expr*> residual;
  std::vector<std::vector<const Expr*>> pushdown(items.size());

  for (const Expr* c : conjuncts) {
    int sole = SoleReferencedRelation(*c, schemas);
    if (sole >= 0) {
      pushdown[static_cast<size_t>(sole)].push_back(c);
      continue;
    }
    EquiPair pair;
    if (AsColumnEquality(*c, &pair)) {
      int owner_l = SoleReferencedRelation(*pair.left, schemas);
      int owner_r = SoleReferencedRelation(*pair.right, schemas);
      if (owner_l >= 0 && owner_r >= 0 && owner_l != owner_r) {
        join_preds.push_back({c, owner_l, pair.left, owner_r, pair.right});
        continue;
      }
    }
    residual.push_back(c);
  }

  // Push single-item filters down. Deferred base tables materialize here,
  // through an index probe when a literal-equality filter has one.
  for (size_t i = 0; i < items.size(); ++i) {
    if (deferred_base[i] != nullptr) {
      SILK_RETURN_IF_ERROR(
          MaterializeBaseTable(*deferred_base[i], pushdown[i], &items[i]));
      continue;
    }
    if (pushdown[i].empty()) continue;
    std::vector<BoundExprPtr> filters;
    for (const Expr* e : pushdown[i]) {
      SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*e, items[i].schema));
      filters.push_back(std::move(b));
    }
    std::vector<Tuple> kept;
    kept.reserve(items[i].rows.size());
    for (auto& row : items[i].rows) {
      bool pass = true;
      for (const auto& f : filters) {
        if (f->Test(row) != Tribool::kTrue) {
          pass = false;
          break;
        }
      }
      if (pass) kept.push_back(std::move(row));
    }
    items[i].rows = std::move(kept);
  }

  // Greedy hash-join order: start with item 0, repeatedly join the smallest
  // connected unjoined item.
  std::vector<bool> joined(items.size(), false);
  std::vector<int> item_of;  // which joined item each original index maps to
  Relation current = std::move(items[0]);
  joined[0] = true;
  std::vector<size_t> joined_set = {0};
  size_t num_joined = 1;

  auto pred_connects = [&](const JoinPred& p, size_t candidate) {
    bool a_in = joined[static_cast<size_t>(p.item_a)];
    bool b_in = joined[static_cast<size_t>(p.item_b)];
    return (!p.used) &&
           ((a_in && static_cast<size_t>(p.item_b) == candidate) ||
            (b_in && static_cast<size_t>(p.item_a) == candidate));
  };

  while (num_joined < items.size()) {
    // Choose the smallest connected candidate.
    int best = -1;
    for (size_t cand = 0; cand < items.size(); ++cand) {
      if (joined[cand]) continue;
      bool connected = std::any_of(join_preds.begin(), join_preds.end(),
                                   [&](const JoinPred& p) {
                                     return pred_connects(p, cand);
                                   });
      if (!connected) continue;
      if (best < 0 ||
          items[cand].rows.size() < items[static_cast<size_t>(best)].rows.size()) {
        best = static_cast<int>(cand);
      }
    }
    bool cross_product = false;
    if (best < 0) {
      // No connected item: cross product with the first unjoined one.
      for (size_t cand = 0; cand < items.size(); ++cand) {
        if (!joined[cand]) {
          best = static_cast<int>(cand);
          break;
        }
      }
      cross_product = true;
    }
    size_t cand = static_cast<size_t>(best);
    Relation& right = items[cand];

    if (cross_product) {
      Relation combined;
      combined.schema = RelSchema::Concat(current.schema, right.schema);
      combined.rows.reserve(current.rows.size() * right.rows.size());
      for (const auto& l : current.rows) {
        SILK_RETURN_IF_ERROR(CheckDeadline());
        for (const auto& r : right.rows) {
          combined.rows.push_back(Tuple::Concat(l, r));
        }
      }
      current = std::move(combined);
    } else {
      // Gather all usable predicates between the joined set and `cand`.
      std::vector<std::pair<size_t, size_t>> keys;
      for (auto& p : join_preds) {
        if (!pred_connects(p, cand)) continue;
        const sql::ColumnRefExpr* left_ref =
            joined[static_cast<size_t>(p.item_a)] ? p.ref_a : p.ref_b;
        const sql::ColumnRefExpr* right_ref =
            joined[static_cast<size_t>(p.item_a)] ? p.ref_b : p.ref_a;
        auto li = current.schema.Resolve(left_ref->qualifier(), left_ref->name());
        auto ri = right.schema.Resolve(right_ref->qualifier(), right_ref->name());
        if (!li.ok() || !ri.ok()) continue;
        keys.emplace_back(*li, *ri);
        p.used = true;
      }
      SILK_ASSIGN_OR_RETURN(
          current, HashJoin(sql::JoinType::kInner, current, right, keys,
                            /*residual=*/nullptr));
    }
    joined[cand] = true;
    ++num_joined;
  }

  // Residual predicates (including any join predicates never used).
  std::vector<const Expr*> leftover = residual;
  for (const auto& p : join_preds) {
    if (!p.used) leftover.push_back(p.expr);
  }
  if (!leftover.empty()) {
    std::vector<BoundExprPtr> filters;
    for (const Expr* e : leftover) {
      SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*e, current.schema));
      filters.push_back(std::move(b));
    }
    std::vector<Tuple> kept;
    kept.reserve(current.rows.size());
    for (auto& row : current.rows) {
      bool pass = true;
      for (const auto& f : filters) {
        if (f->Test(row) != Tribool::kTrue) {
          pass = false;
          break;
        }
      }
      if (pass) kept.push_back(std::move(row));
    }
    current.rows = std::move(kept);
  }
  return current;
}

Status QueryExecutor::MaterializeBaseTable(
    const Table& table, const std::vector<const sql::Expr*>& filters,
    Relation* out) {
  // Look for a literal-equality filter with an index on its column.
  const Table::Index* index = nullptr;
  const Value* probe = nullptr;
  for (const sql::Expr* e : filters) {
    if (e->kind() != Expr::Kind::kBinary) continue;
    const auto& b = static_cast<const sql::BinaryExpr&>(*e);
    if (b.op() != BinaryOp::kEq) continue;
    const sql::ColumnRefExpr* col = nullptr;
    const sql::LiteralExpr* lit = nullptr;
    if (b.left().kind() == Expr::Kind::kColumnRef &&
        b.right().kind() == Expr::Kind::kLiteral) {
      col = static_cast<const sql::ColumnRefExpr*>(&b.left());
      lit = static_cast<const sql::LiteralExpr*>(&b.right());
    } else if (b.right().kind() == Expr::Kind::kColumnRef &&
               b.left().kind() == Expr::Kind::kLiteral) {
      col = static_cast<const sql::ColumnRefExpr*>(&b.right());
      lit = static_cast<const sql::LiteralExpr*>(&b.left());
    } else {
      continue;
    }
    const Table::Index* candidate = table.GetIndex(col->name());
    if (candidate != nullptr && !lit->value().is_null()) {
      index = candidate;
      probe = &lit->value();
      break;
    }
  }

  std::vector<BoundExprPtr> bound;
  bound.reserve(filters.size());
  for (const sql::Expr* e : filters) {
    SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*e, out->schema));
    bound.push_back(std::move(b));
  }
  auto passes = [&bound](const Tuple& row) {
    for (const auto& f : bound) {
      if (f->Test(row) != Tribool::kTrue) return false;
    }
    return true;
  };

  if (index != nullptr) {
    auto [begin, end] = index->equal_range(*probe);
    for (auto it = begin; it != end; ++it) {
      ++stats_.rows_scanned;
      ++stats_.index_probes;
      const Tuple& row = table.rows()[it->second];
      if (passes(row)) out->rows.push_back(row);
    }
    return Status::OK();
  }
  stats_.rows_scanned += table.num_rows();
  for (const Tuple& row : table.rows()) {
    if (passes(row)) out->rows.push_back(row);
  }
  return Status::OK();
}

Result<Relation> QueryExecutor::EvalTableRef(const sql::TableRef& ref) {
  switch (ref.kind()) {
    case sql::TableRef::Kind::kBaseTable: {
      const auto& base = static_cast<const sql::BaseTableRef&>(ref);
      SILK_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(base.table()));
      Relation rel;
      for (const auto& col : table->schema().columns()) {
        rel.schema.Add({base.binding_name(), col.name});
      }
      rel.rows = table->rows();  // copy: intermediate results are mutable
      stats_.rows_scanned += rel.rows.size();
      return rel;
    }
    case sql::TableRef::Kind::kDerivedTable: {
      const auto& derived = static_cast<const sql::DerivedTableRef&>(ref);
      // Note: uses a nested executor so last_preprojection_ of the outer
      // query is not clobbered. The deadline is inherited as-is.
      QueryExecutor sub(db_);
      sub.timeout_ms_ = timeout_ms_;
      sub.has_deadline_ = has_deadline_;
      sub.deadline_ = deadline_;
      SILK_ASSIGN_OR_RETURN(Relation rel, sub.Execute(derived.query()));
      stats_.rows_scanned += sub.stats_.rows_scanned;
      stats_.rows_joined += sub.stats_.rows_joined;
      stats_.rows_sorted += sub.stats_.rows_sorted;
      stats_.hash_joins += sub.stats_.hash_joins;
      stats_.nested_loop_joins += sub.stats_.nested_loop_joins;
      rel.schema = rel.schema.WithQualifier(derived.alias());
      return rel;
    }
    case sql::TableRef::Kind::kJoin:
      return EvalJoin(static_cast<const sql::JoinRef&>(ref));
  }
  return Status::Internal("unknown table ref kind");
}

Result<Relation> QueryExecutor::EvalJoin(const sql::JoinRef& join) {
  SILK_ASSIGN_OR_RETURN(Relation left, EvalTableRef(join.left()));
  SILK_ASSIGN_OR_RETURN(Relation right, EvalTableRef(join.right()));
  return JoinRelations(join.join_type(), std::move(left), std::move(right),
                       join.on());
}

Result<Relation> QueryExecutor::JoinRelations(sql::JoinType type,
                                              Relation left, Relation right,
                                              const sql::Expr& on) {
  // Case 1: conjunction with at least one column equality -> hash join.
  {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(on, &conjuncts);
    std::vector<std::pair<size_t, size_t>> keys;
    std::vector<const Expr*> residual_parts;
    for (const Expr* c : conjuncts) {
      EquiPair pair;
      if (AsColumnEquality(*c, &pair)) {
        auto li = left.schema.Resolve(pair.left->qualifier(), pair.left->name());
        auto ri =
            right.schema.Resolve(pair.right->qualifier(), pair.right->name());
        if (li.ok() && ri.ok()) {
          keys.emplace_back(*li, *ri);
          continue;
        }
        // Try swapped orientation.
        li = left.schema.Resolve(pair.right->qualifier(), pair.right->name());
        ri = right.schema.Resolve(pair.left->qualifier(), pair.left->name());
        if (li.ok() && ri.ok()) {
          keys.emplace_back(*li, *ri);
          continue;
        }
      }
      residual_parts.push_back(c);
    }
    if (!keys.empty()) {
      sql::ExprPtr residual_expr;
      if (!residual_parts.empty()) {
        std::vector<sql::ExprPtr> clones;
        clones.reserve(residual_parts.size());
        for (const Expr* e : residual_parts) clones.push_back(e->Clone());
        residual_expr = sql::AndAll(std::move(clones));
      }
      return HashJoin(type, left, right, keys, residual_expr.get());
    }
  }

  // Case 2: OR of conjunctions, each with column equalities -> disjunctive
  // hash join (the unified outer-join query shape).
  {
    auto result = DisjunctiveHashJoin(type, left, right, on);
    if (result.ok()) return result;
    // fall through to nested loop on decomposition failure
  }

  return NestedLoopJoin(type, left, right, on);
}

Result<Relation> QueryExecutor::HashJoin(
    sql::JoinType type, Relation& left, Relation& right,
    const std::vector<std::pair<size_t, size_t>>& keys,
    const sql::Expr* residual) {
  Relation out;
  out.schema = RelSchema::Concat(left.schema, right.schema);

  BoundExprPtr residual_bound;
  if (residual != nullptr) {
    SILK_ASSIGN_OR_RETURN(residual_bound, BindExpr(*residual, out.schema));
  }

  HashTable table;
  table.reserve(right.rows.size());
  for (size_t r = 0; r < right.rows.size(); ++r) {
    std::vector<Value> key;
    key.reserve(keys.size());
    bool has_null = false;
    for (const auto& [li, ri] : keys) {
      const Value& v = right.rows[r][ri];
      if (v.is_null()) {
        has_null = true;
        break;
      }
      key.push_back(v);
    }
    if (!has_null) table.emplace(std::move(key), r);
  }

  ++stats_.hash_joins;
  const size_t right_width = right.schema.size();
  size_t deadline_check = 0;
  std::vector<size_t> match_ids;
  for (const auto& lrow : left.rows) {
    if ((++deadline_check & 0xFF) == 0) {
      SILK_RETURN_IF_ERROR(CheckDeadline());
    }
    std::vector<Value> key;
    key.reserve(keys.size());
    bool has_null = false;
    for (const auto& [li, ri] : keys) {
      const Value& v = lrow[li];
      if (v.is_null()) {
        has_null = true;
        break;
      }
      key.push_back(v);
    }
    bool matched = false;
    if (!has_null) {
      // equal_range order is a hash-table implementation detail; sort the
      // matches so equal-key output is deterministic in right-row order
      // (fused streams rely on it).
      match_ids.clear();
      auto [begin, end] = table.equal_range(key);
      for (auto it = begin; it != end; ++it) match_ids.push_back(it->second);
      std::sort(match_ids.begin(), match_ids.end());
      for (size_t r : match_ids) {
        Tuple combined = Tuple::Concat(lrow, right.rows[r]);
        if (residual_bound &&
            residual_bound->Test(combined) != Tribool::kTrue) {
          continue;
        }
        matched = true;
        out.rows.push_back(std::move(combined));
      }
    }
    if (!matched && type == sql::JoinType::kLeftOuter) {
      out.rows.push_back(NullPadded(lrow, right_width));
    }
  }
  stats_.rows_joined += out.rows.size();
  return out;
}

Result<Relation> QueryExecutor::DisjunctiveHashJoin(sql::JoinType type,
                                                    Relation& left,
                                                    Relation& right,
                                                    const sql::Expr& on) {
  std::vector<const Expr*> disjuncts;
  CollectDisjuncts(on, &disjuncts);
  if (disjuncts.size() < 2) {
    return Status::Unimplemented("not a disjunction");
  }

  struct Disjunct {
    std::vector<std::pair<size_t, size_t>> keys;  // (left idx, right idx)
    std::vector<BoundExprPtr> left_filters;
    std::vector<BoundExprPtr> right_filters;
    HashTable table;
  };
  std::vector<Disjunct> plans;
  plans.reserve(disjuncts.size());

  for (const Expr* d : disjuncts) {
    Disjunct plan;
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(*d, &conjuncts);
    for (const Expr* c : conjuncts) {
      EquiPair pair;
      if (AsColumnEquality(*c, &pair)) {
        auto li = left.schema.Resolve(pair.left->qualifier(), pair.left->name());
        auto ri =
            right.schema.Resolve(pair.right->qualifier(), pair.right->name());
        if (li.ok() && ri.ok()) {
          plan.keys.emplace_back(*li, *ri);
          continue;
        }
        li = left.schema.Resolve(pair.right->qualifier(), pair.right->name());
        ri = right.schema.Resolve(pair.left->qualifier(), pair.left->name());
        if (li.ok() && ri.ok()) {
          plan.keys.emplace_back(*li, *ri);
          continue;
        }
      }
      // Single-side predicate?
      std::vector<const RelSchema*> schemas = {&left.schema, &right.schema};
      int sole = SoleReferencedRelation(*c, schemas);
      if (sole == 0) {
        SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*c, left.schema));
        plan.left_filters.push_back(std::move(b));
      } else if (sole == 1) {
        SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*c, right.schema));
        plan.right_filters.push_back(std::move(b));
      } else {
        return Status::Unimplemented(
            "disjunct has a cross-side non-equality predicate");
      }
    }
    if (plan.keys.empty()) {
      return Status::Unimplemented("disjunct has no column equality");
    }
    plans.push_back(std::move(plan));
  }

  // Build one hash table per disjunct.
  for (auto& plan : plans) {
    plan.table.reserve(right.rows.size());
    for (size_t r = 0; r < right.rows.size(); ++r) {
      bool pass = true;
      for (const auto& f : plan.right_filters) {
        if (f->Test(right.rows[r]) != Tribool::kTrue) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      std::vector<Value> key;
      key.reserve(plan.keys.size());
      bool has_null = false;
      for (const auto& [li, ri] : plan.keys) {
        const Value& v = right.rows[r][ri];
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      if (!has_null) plan.table.emplace(std::move(key), r);
    }
  }

  ++stats_.hash_joins;
  Relation out;
  out.schema = RelSchema::Concat(left.schema, right.schema);
  const size_t right_width = right.schema.size();
  std::vector<size_t> match_ids;
  size_t deadline_check = 0;
  for (const auto& lrow : left.rows) {
    if ((++deadline_check & 0xFF) == 0) {
      SILK_RETURN_IF_ERROR(CheckDeadline());
    }
    match_ids.clear();
    for (const auto& plan : plans) {
      bool pass = true;
      for (const auto& f : plan.left_filters) {
        if (f->Test(lrow) != Tribool::kTrue) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      std::vector<Value> key;
      key.reserve(plan.keys.size());
      bool has_null = false;
      for (const auto& [li, ri] : plan.keys) {
        const Value& v = lrow[li];
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      if (has_null) continue;
      auto [begin, end] = plan.table.equal_range(key);
      for (auto it = begin; it != end; ++it) match_ids.push_back(it->second);
    }
    // Deduplicate matches across disjuncts.
    std::sort(match_ids.begin(), match_ids.end());
    match_ids.erase(std::unique(match_ids.begin(), match_ids.end()),
                    match_ids.end());
    if (match_ids.empty()) {
      if (type == sql::JoinType::kLeftOuter) {
        out.rows.push_back(NullPadded(lrow, right_width));
      }
      continue;
    }
    for (size_t r : match_ids) {
      out.rows.push_back(Tuple::Concat(lrow, right.rows[r]));
    }
  }
  stats_.rows_joined += out.rows.size();
  return out;
}

Result<Relation> QueryExecutor::NestedLoopJoin(sql::JoinType type,
                                               Relation& left, Relation& right,
                                               const sql::Expr& on) {
  Relation out;
  out.schema = RelSchema::Concat(left.schema, right.schema);
  SILK_ASSIGN_OR_RETURN(BoundExprPtr pred, BindExpr(on, out.schema));
  ++stats_.nested_loop_joins;
  const size_t right_width = right.schema.size();
  for (const auto& lrow : left.rows) {
    SILK_RETURN_IF_ERROR(CheckDeadline());
    bool matched = false;
    for (const auto& rrow : right.rows) {
      Tuple combined = Tuple::Concat(lrow, rrow);
      if (pred->Test(combined) == Tribool::kTrue) {
        matched = true;
        out.rows.push_back(std::move(combined));
      }
    }
    if (!matched && type == sql::JoinType::kLeftOuter) {
      out.rows.push_back(NullPadded(lrow, right_width));
    }
  }
  stats_.rows_joined += out.rows.size();
  return out;
}

Status QueryExecutor::ApplyOrderBy(const sql::Query& query,
                                   const Relation& pre_projection,
                                   Relation* result) {
  const size_t n = result->rows.size();
  // Bind each key against the output schema; fall back to the
  // pre-projection schema (single-core queries only).
  struct Key {
    BoundExprPtr expr;
    bool ascending;
    bool from_preprojection;
  };
  std::vector<Key> bound_keys;
  for (const auto& o : query.order_by) {
    auto out_bound = BindExpr(*o.expr, result->schema);
    if (out_bound.ok()) {
      bound_keys.push_back({std::move(out_bound).value(), o.ascending, false});
      continue;
    }
    if (query.cores.size() == 1 && pre_projection.rows.size() == n) {
      auto pre_bound = BindExpr(*o.expr, pre_projection.schema);
      if (pre_bound.ok()) {
        bound_keys.push_back({std::move(pre_bound).value(), o.ascending, true});
        continue;
      }
    }
    return Status::InvalidArgument("cannot resolve ORDER BY key '" +
                                   o.expr->ToSql() + "'");
  }

  // Materialize key tuples and sort a permutation.
  std::vector<std::vector<Value>> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i].reserve(bound_keys.size());
    for (const auto& k : bound_keys) {
      const Tuple& row =
          k.from_preprojection ? pre_projection.rows[i] : result->rows[i];
      keys[i].push_back(k.expr->Eval(row));
    }
  }
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < bound_keys.size(); ++k) {
      int c = keys[a][k].Compare(keys[b][k]);
      if (c != 0) return bound_keys[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  std::vector<Tuple> sorted;
  sorted.reserve(n);
  for (size_t i : perm) sorted.push_back(std::move(result->rows[i]));
  result->rows = std::move(sorted);
  stats_.rows_sorted += n;
  return Status::OK();
}

}  // namespace silkroute::engine
