#include "engine/executor.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "engine/expr_eval.h"
#include "engine/key_codec.h"
#include "relational/columnar.h"
#include "engine/morsel.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace silkroute::engine {

namespace {

using sql::BinaryOp;
using sql::Expr;

/// Collects every column reference in an expression tree.
void CollectColumnRefs(const Expr& e, std::vector<const sql::ColumnRefExpr*>* out) {
  switch (e.kind()) {
    case Expr::Kind::kColumnRef:
      out->push_back(static_cast<const sql::ColumnRefExpr*>(&e));
      return;
    case Expr::Kind::kLiteral:
      return;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(e);
      CollectColumnRefs(b.left(), out);
      CollectColumnRefs(b.right(), out);
      return;
    }
    case Expr::Kind::kNot:
      CollectColumnRefs(static_cast<const sql::NotExpr&>(e).operand(), out);
      return;
    case Expr::Kind::kIsNull:
      CollectColumnRefs(static_cast<const sql::IsNullExpr&>(e).operand(), out);
      return;
  }
}

/// Which single relation (by index into `schemas`) does `e` reference?
/// Returns -1 if it references none or more than one, or a ref is ambiguous.
int SoleReferencedRelation(const Expr& e,
                           const std::vector<const RelSchema*>& schemas) {
  std::vector<const sql::ColumnRefExpr*> refs;
  CollectColumnRefs(e, &refs);
  int sole = -2;  // -2: none seen yet
  for (const auto* ref : refs) {
    int owner = -1;
    for (size_t i = 0; i < schemas.size(); ++i) {
      if (schemas[i]->Resolve(ref->qualifier(), ref->name()).ok()) {
        if (owner >= 0) return -1;  // ambiguous across relations
        owner = static_cast<int>(i);
      }
    }
    if (owner < 0) return -1;  // unresolved here; defer to residual binding
    if (sole == -2) {
      sole = owner;
    } else if (sole != owner) {
      return -1;
    }
  }
  return sole == -2 ? -1 : sole;
}

struct EquiPair {
  const sql::ColumnRefExpr* left;
  const sql::ColumnRefExpr* right;
};

/// If `e` is `colA = colB`, returns the two refs.
bool AsColumnEquality(const Expr& e, EquiPair* out) {
  if (e.kind() != Expr::Kind::kBinary) return false;
  const auto& b = static_cast<const sql::BinaryExpr&>(e);
  if (b.op() != BinaryOp::kEq) return false;
  if (b.left().kind() != Expr::Kind::kColumnRef ||
      b.right().kind() != Expr::Kind::kColumnRef) {
    return false;
  }
  out->left = static_cast<const sql::ColumnRefExpr*>(&b.left());
  out->right = static_cast<const sql::ColumnRefExpr*>(&b.right());
  return true;
}

// ---------------------------------------------------------------------------
// Compiled column predicates (DESIGN.md §16). A pushed-down filter of the
// shape `col <op> literal` (either orientation), `col IS [NOT] NULL`, or a
// NOT over those compiles into a ColPred: one branch-light comparison
// against pre-classified literal payloads, evaluated straight off a
// shard's typed arrays with no BoundExpr dispatch and no Value
// materialized per row. Semantics replicate BoundExpr::Test over
// Value::Compare exactly: a NULL cell fails every comparison (three-valued
// unknown), int64-vs-int64 compares exactly, mixed numerics widen to
// double, numerics order before strings.
// ---------------------------------------------------------------------------

enum class ColOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIsNull,
  kIsNotNull,
  kNever,  // comparison against a NULL literal: no row ever passes
};

struct ColPred {
  enum class LitKind { kInt, kDouble, kString, kNone };

  size_t col = 0;
  ColOp op = ColOp::kNever;
  LitKind lit_kind = LitKind::kNone;
  int64_t lit_i = 0;     // kInt payload
  double lit_num = 0.0;  // widened numeric payload (kInt and kDouble)
  std::string lit_s;     // kString payload
};

/// `not (col <op> lit)` strengthens to the inverted comparison: for
/// non-null cells the inversion is exact, and a NULL cell fails both the
/// original (kUnknown) and the inversion, matching NotBound's kUnknown
/// pass-through. kNever stays kNever (NOT unknown is unknown).
ColOp InvertColOp(ColOp op) {
  switch (op) {
    case ColOp::kEq: return ColOp::kNe;
    case ColOp::kNe: return ColOp::kEq;
    case ColOp::kLt: return ColOp::kGe;
    case ColOp::kLe: return ColOp::kGt;
    case ColOp::kGt: return ColOp::kLe;
    case ColOp::kGe: return ColOp::kLt;
    case ColOp::kIsNull: return ColOp::kIsNotNull;
    case ColOp::kIsNotNull: return ColOp::kIsNull;
    case ColOp::kNever: return ColOp::kNever;
  }
  return ColOp::kNever;
}

bool FillLiteral(const Value& v, ColPred* out) {
  if (v.is_null()) {
    // `col <op> NULL` is kUnknown for every row; only kTrue passes.
    out->op = ColOp::kNever;
    out->lit_kind = ColPred::LitKind::kNone;
    return true;
  }
  if (v.is_int64()) {
    out->lit_kind = ColPred::LitKind::kInt;
    out->lit_i = v.AsInt64();
    out->lit_num = static_cast<double>(out->lit_i);
  } else if (v.is_double()) {
    out->lit_kind = ColPred::LitKind::kDouble;
    out->lit_num = v.AsDouble();
  } else {
    out->lit_kind = ColPred::LitKind::kString;
    out->lit_s = v.AsString();
  }
  return true;
}

/// Compiles `e` into a single ColPred. Returns false when the expression
/// is not of a compilable shape (the caller then keeps the whole filter
/// set on the legacy bound-expression path).
bool CompileColPred(const Expr& e, const RelSchema& schema, ColPred* out) {
  switch (e.kind()) {
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(e);
      ColOp op;
      switch (b.op()) {
        case BinaryOp::kEq: op = ColOp::kEq; break;
        case BinaryOp::kNe: op = ColOp::kNe; break;
        case BinaryOp::kLt: op = ColOp::kLt; break;
        case BinaryOp::kLe: op = ColOp::kLe; break;
        case BinaryOp::kGt: op = ColOp::kGt; break;
        case BinaryOp::kGe: op = ColOp::kGe; break;
        default: return false;  // And/Or arrive pre-split into conjuncts
      }
      const sql::ColumnRefExpr* col = nullptr;
      const sql::LiteralExpr* lit = nullptr;
      if (b.left().kind() == Expr::Kind::kColumnRef &&
          b.right().kind() == Expr::Kind::kLiteral) {
        col = static_cast<const sql::ColumnRefExpr*>(&b.left());
        lit = static_cast<const sql::LiteralExpr*>(&b.right());
      } else if (b.right().kind() == Expr::Kind::kColumnRef &&
                 b.left().kind() == Expr::Kind::kLiteral) {
        col = static_cast<const sql::ColumnRefExpr*>(&b.right());
        lit = static_cast<const sql::LiteralExpr*>(&b.left());
        // lit <op> col reads as col <flipped-op> lit.
        if (op == ColOp::kLt) op = ColOp::kGt;
        else if (op == ColOp::kLe) op = ColOp::kGe;
        else if (op == ColOp::kGt) op = ColOp::kLt;
        else if (op == ColOp::kGe) op = ColOp::kLe;
      } else {
        return false;
      }
      auto idx = schema.Resolve(col->qualifier(), col->name());
      if (!idx.ok()) return false;
      out->col = *idx;
      out->op = op;
      FillLiteral(lit->value(), out);  // may override op to kNever
      return true;
    }
    case Expr::Kind::kIsNull: {
      const auto& isn = static_cast<const sql::IsNullExpr&>(e);
      if (isn.operand().kind() != Expr::Kind::kColumnRef) return false;
      const auto& col =
          static_cast<const sql::ColumnRefExpr&>(isn.operand());
      auto idx = schema.Resolve(col.qualifier(), col.name());
      if (!idx.ok()) return false;
      out->col = *idx;
      out->op = isn.negated() ? ColOp::kIsNotNull : ColOp::kIsNull;
      out->lit_kind = ColPred::LitKind::kNone;
      return true;
    }
    case Expr::Kind::kNot: {
      const auto& n = static_cast<const sql::NotExpr&>(e);
      if (!CompileColPred(n.operand(), schema, out)) return false;
      out->op = InvertColOp(out->op);
      return true;
    }
    default:
      return false;
  }
}

/// All-or-nothing: every filter must compile or none is used, so a scan is
/// either fully columnar or fully legacy (never a mix with different
/// short-circuit order).
bool CompileColumnPreds(const std::vector<const Expr*>& filters,
                        const RelSchema& schema, std::vector<ColPred>* out) {
  out->clear();
  out->reserve(filters.size());
  for (const Expr* e : filters) {
    ColPred p;
    if (!CompileColPred(*e, schema, &p)) return false;
    out->push_back(std::move(p));
  }
  return true;
}

/// One predicate against cell `pos` of a shard column. Mirrors
/// BinaryBound::Test over Value::Compare: NULL cells fail comparisons,
/// pass/fail IS NULL directly.
bool EvalColPred(const ColumnVector& cv, size_t pos, const ColPred& p) {
  switch (p.op) {
    case ColOp::kIsNull: return cv.IsNull(pos);
    case ColOp::kIsNotNull: return !cv.IsNull(pos);
    case ColOp::kNever: return false;
    default: break;
  }
  if (cv.IsNull(pos)) return false;
  int c;
  if (cv.type() != DataType::kString) {
    if (p.lit_kind == ColPred::LitKind::kString) {
      c = -1;  // numerics order before strings
    } else if (p.lit_kind == ColPred::LitKind::kInt && cv.CellIsInt64(pos)) {
      const int64_t a = cv.Int64At(pos);
      c = a < p.lit_i ? -1 : (a > p.lit_i ? 1 : 0);
    } else {
      const double a = cv.NumericAt(pos);
      c = a < p.lit_num ? -1 : (a > p.lit_num ? 1 : 0);
    }
  } else {
    if (p.lit_kind != ColPred::LitKind::kString) {
      c = 1;  // strings order after numerics
    } else {
      const int r = cv.StringAt(pos).compare(p.lit_s);
      c = r < 0 ? -1 : (r > 0 ? 1 : 0);
    }
  }
  switch (p.op) {
    case ColOp::kEq: return c == 0;
    case ColOp::kNe: return c != 0;
    case ColOp::kLt: return c < 0;
    case ColOp::kLe: return c <= 0;
    case ColOp::kGt: return c > 0;
    case ColOp::kGe: return c >= 0;
    default: return false;
  }
}

/// A literal-equality filter with an index on its column, if any: the index
/// path beats every flavour of full scan, so both MaterializeBaseTable and
/// the columnar selection scan consult this first.
struct IndexProbe {
  const Table::Index* index = nullptr;
  const Value* probe = nullptr;
};

IndexProbe FindIndexProbe(const Table& table,
                          const std::vector<const Expr*>& filters) {
  for (const sql::Expr* e : filters) {
    if (e->kind() != Expr::Kind::kBinary) continue;
    const auto& b = static_cast<const sql::BinaryExpr&>(*e);
    if (b.op() != BinaryOp::kEq) continue;
    const sql::ColumnRefExpr* col = nullptr;
    const sql::LiteralExpr* lit = nullptr;
    if (b.left().kind() == Expr::Kind::kColumnRef &&
        b.right().kind() == Expr::Kind::kLiteral) {
      col = static_cast<const sql::ColumnRefExpr*>(&b.left());
      lit = static_cast<const sql::LiteralExpr*>(&b.right());
    } else if (b.right().kind() == Expr::Kind::kColumnRef &&
               b.left().kind() == Expr::Kind::kLiteral) {
      col = static_cast<const sql::ColumnRefExpr*>(&b.right());
      lit = static_cast<const sql::LiteralExpr*>(&b.left());
    } else {
      continue;
    }
    const Table::Index* candidate = table.GetIndex(col->name());
    if (candidate != nullptr && !lit->value().is_null()) {
      return {candidate, &lit->value()};
    }
  }
  return {};
}

/// One side of a hash join: the rows plus, when they borrow a base table
/// whose columnar layout is exact, the table itself — keys then encode
/// straight from the shard columns (EncodeTableJoinKey), byte-identical
/// to the row encoding, so chains, probes, and key counters never change.
struct JoinSide {
  const std::vector<Tuple>* rows;
  const Table* table = nullptr;

  size_t size() const { return rows->size(); }
  bool EncodeKey(size_t i, const std::vector<size_t>& cols,
                 std::string* out) const {
    if (table != nullptr) return EncodeTableJoinKey(*table, i, cols, out);
    return EncodeJoinKey((*rows)[i], cols, out);
  }
};

/// Chained hash index over packed join keys (key_codec.h): one map entry
/// per distinct key, rows with equal keys threaded through `next_` links
/// in insertion order. Probes therefore walk matches in ascending build-
/// row order for free — hash-table iteration order never leaks out — and
/// key bytes live contiguously in the arena instead of one
/// vector<Value> node per build row. Row ids are uint32 (a build side
/// anywhere near 4B rows would have exhausted memory long before).
class EncodedKeyIndex {
 public:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  void Reserve(size_t rows) {
    map_.reserve(rows);
    next_.assign(rows, kNil);
  }

  void Insert(std::string_view key, uint32_t row) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      map_.emplace(arena_.Intern(key), Chain{row, row});
    } else {
      next_[it->second.tail] = row;
      it->second.tail = row;
    }
  }

  /// Head of the chain for `key`, or kNil; advance with NextRow.
  uint32_t Find(std::string_view key) const {
    auto it = map_.find(key);
    return it == map_.end() ? kNil : it->second.head;
  }
  uint32_t NextRow(uint32_t row) const { return next_[row]; }

 private:
  struct Chain {
    uint32_t head;
    uint32_t tail;
  };
  KeyArena arena_;
  std::unordered_map<std::string_view, Chain> map_;
  std::vector<uint32_t> next_;
};

Tuple NullPadded(const Tuple& left, size_t right_width) {
  Tuple out = left;
  for (size_t i = 0; i < right_width; ++i) out.Append(Value::Null());
  return out;
}

/// Parallel-build counterpart of EncodedKeyIndex (DESIGN.md §11): the key
/// space is hash-partitioned and each partition holds its own map + arena,
/// so partition builds run on separate threads with no shared mutable
/// state except the next_ chain array — which is race-free because a row's
/// slot is written only by the one partition its key hashes into. Chains
/// are in ascending global row order exactly as in the serial index
/// (each partition inserts its rows in row order and a key lives in
/// exactly one partition), so probe output is invariant under the
/// partition count and equals the serial build's output byte for byte.
class PartitionedKeyIndex {
 public:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  /// `partitions` must be a power of two.
  PartitionedKeyIndex(size_t rows, uint32_t partitions)
      : mask_(partitions - 1), parts_(partitions), next_(rows, kNil) {
    const size_t per_part = rows / partitions + 1;
    for (auto& p : parts_) p.map.reserve(per_part);
  }

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(parts_.size());
  }

  uint32_t PartitionOf(std::string_view key) const {
    return static_cast<uint32_t>(std::hash<std::string_view>()(key)) & mask_;
  }

  /// Caller guarantees p == PartitionOf(key) and ascending `row` order
  /// within each partition. Distinct partitions may insert concurrently.
  void Insert(uint32_t p, std::string_view key, uint32_t row) {
    Part& part = parts_[p];
    auto it = part.map.find(key);
    if (it == part.map.end()) {
      part.map.emplace(part.arena.Intern(key), Chain{row, row});
    } else {
      next_[it->second.tail] = row;
      it->second.tail = row;
    }
  }

  uint32_t Find(std::string_view key) const {
    const Part& part = parts_[PartitionOf(key)];
    auto it = part.map.find(key);
    return it == part.map.end() ? kNil : it->second.head;
  }
  uint32_t NextRow(uint32_t row) const { return next_[row]; }

 private:
  struct Chain {
    uint32_t head;
    uint32_t tail;
  };
  struct Part {
    KeyArena arena;
    std::unordered_map<std::string_view, Chain> map;
  };
  uint32_t mask_;
  std::vector<Part> parts_;
  std::vector<uint32_t> next_;
};

/// Build keys of one morsel of build-side rows: the encoded key bytes
/// back-to-back, plus, per row of the morsel, its span into `buf`
/// (len == kNullKey marks a NULL-keyed row that is never indexed) and the
/// partition its key hashes to. `by_part[p]` lists the morsel-local row
/// offsets in partition p, in row order.
struct KeyMorsel {
  static constexpr uint32_t kNullKey = 0xFFFFFFFFu;
  std::string buf;
  std::vector<uint32_t> offsets;
  std::vector<uint32_t> lens;
  std::vector<std::vector<uint32_t>> by_part;
  uint64_t keys = 0;
  uint64_t bytes = 0;

  std::string_view KeyAt(size_t local) const {
    return std::string_view(buf.data() + offsets[local], lens[local]);
  }
};

/// Smallest power of two >= n (n >= 1).
uint32_t CeilPow2(uint32_t n) {
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Sorts `recs` by the strict *total* order `less` as `num_runs`
/// independently sorted runs followed by pairwise parallel merges.
/// Totality (every executor comparator ends in an input-index tiebreak)
/// makes the sorted permutation unique, so the result is element-for-
/// element the serial std::sort outcome regardless of the run count or
/// thread schedule. `dispatch(count, fn)` runs fn(0..count) across the
/// pool (QueryExecutor::RunTasks bound by the caller).
template <typename Rec, typename Less, typename Dispatch>
Status ParallelSortMerge(std::vector<Rec>* recs, size_t num_runs,
                         const Less& less, const Dispatch& dispatch) {
  const size_t n = recs->size();
  if (num_runs < 2 || n < num_runs * 2) {
    std::sort(recs->begin(), recs->end(), less);
    return Status::OK();
  }
  const size_t chunk = (n + num_runs - 1) / num_runs;
  std::vector<size_t> bounds;  // run boundaries, bounds.front()=0, back()=n
  for (size_t b = 0; b < n; b += chunk) bounds.push_back(b);
  bounds.push_back(n);

  SILK_RETURN_IF_ERROR(dispatch(bounds.size() - 1, [&](size_t r) -> Status {
    std::sort(recs->begin() + static_cast<ptrdiff_t>(bounds[r]),
              recs->begin() + static_cast<ptrdiff_t>(bounds[r + 1]), less);
    return Status::OK();
  }));

  std::vector<Rec> scratch(n);
  std::vector<Rec>* src = recs;
  std::vector<Rec>* dst = &scratch;
  while (bounds.size() > 2) {
    const size_t runs = bounds.size() - 1;
    const size_t out_runs = (runs + 1) / 2;
    std::vector<size_t> next_bounds;
    next_bounds.reserve(out_runs + 1);
    for (size_t k = 0; k < runs; k += 2) next_bounds.push_back(bounds[k]);
    next_bounds.push_back(n);
    SILK_RETURN_IF_ERROR(dispatch(out_runs, [&](size_t k) -> Status {
      const size_t a = bounds[2 * k];
      const size_t b = bounds[2 * k + 1];
      if (2 * k + 2 <= bounds.size() - 1) {
        const size_t c = bounds[2 * k + 2];
        std::merge(src->begin() + static_cast<ptrdiff_t>(a),
                   src->begin() + static_cast<ptrdiff_t>(b),
                   src->begin() + static_cast<ptrdiff_t>(b),
                   src->begin() + static_cast<ptrdiff_t>(c),
                   dst->begin() + static_cast<ptrdiff_t>(a), less);
      } else {
        // Odd tail run: carried over unmerged.
        std::copy(src->begin() + static_cast<ptrdiff_t>(a),
                  src->begin() + static_cast<ptrdiff_t>(b),
                  dst->begin() + static_cast<ptrdiff_t>(a));
      }
      return Status::OK();
    }));
    bounds = std::move(next_bounds);
    std::swap(src, dst);
  }
  if (src != recs) *recs = std::move(*src);
  return Status::OK();
}

struct IndexBuildCounters {
  uint64_t keys = 0;
  uint64_t bytes = 0;
};

/// Two-phase parallel index build. Phase A encodes every build key in
/// morsels (per-morsel buffers, no shared writes); phase B runs one task
/// per partition, inserting that partition's rows in ascending global row
/// order. `run_morsels` / `run_tasks` are the executor's dispatchers.
template <typename RunMorselsFn, typename RunTasksFn>
Status BuildPartitionedIndex(const JoinSide& build,
                             const std::vector<size_t>& cols,
                             size_t morsel_rows,
                             const RunMorselsFn& run_morsels,
                             const RunTasksFn& run_tasks,
                             PartitionedKeyIndex* index,
                             IndexBuildCounters* counters) {
  const size_t n = build.size();
  const size_t morsel = morsel_rows > 0 ? morsel_rows : 1;
  const size_t count = (n + morsel - 1) / morsel;
  const uint32_t partitions = index->num_partitions();
  std::vector<KeyMorsel> morsels(count);
  SILK_RETURN_IF_ERROR(run_morsels(
      "join_build_encode", n, [&](size_t m, size_t begin, size_t end) -> Status {
        KeyMorsel& km = morsels[m];
        km.offsets.resize(end - begin);
        km.lens.resize(end - begin);
        km.by_part.resize(partitions);
        for (size_t i = begin; i < end; ++i) {
          const size_t local = i - begin;
          const uint32_t off = static_cast<uint32_t>(km.buf.size());
          km.offsets[local] = off;
          if (!build.EncodeKey(i, cols, &km.buf)) {
            km.buf.resize(off);  // drop the partial NULL-keyed write
            km.lens[local] = KeyMorsel::kNullKey;
            continue;
          }
          km.lens[local] = static_cast<uint32_t>(km.buf.size() - off);
          ++km.keys;
          km.bytes += km.lens[local];
          km.by_part[index->PartitionOf(km.KeyAt(local))].push_back(
              static_cast<uint32_t>(local));
        }
        return Status::OK();
      }));
  for (const KeyMorsel& km : morsels) {
    counters->keys += km.keys;
    counters->bytes += km.bytes;
  }
  return run_tasks("join_build_insert", partitions, [&](size_t p) -> Status {
    for (size_t m = 0; m < count; ++m) {
      const KeyMorsel& km = morsels[m];
      if (km.by_part.empty()) continue;
      const size_t begin = m * morsel;
      for (uint32_t local : km.by_part[p]) {
        index->Insert(static_cast<uint32_t>(p), km.KeyAt(local),
                      static_cast<uint32_t>(begin + local));
      }
    }
    return Status::OK();
  });
}

}  // namespace

Result<Relation> QueryExecutor::ExecuteSql(std::string_view sql_text) {
  // The timeout caps each query, not the executor: re-arm the deadline so a
  // reused executor does not charge query N+1 for query N's elapsed time.
  has_deadline_ = false;
  SILK_ASSIGN_OR_RETURN(sql::QueryPtr q, sql::ParseQuery(sql_text));
  auto result = Execute(*q);
  // Attach this query's physical-plan counters to the enclosing attempt
  // span, if one is installed (the string building is gated on the span so
  // untraced runs pay only the thread-local load).
  if (result.ok() && obs::CurrentSpan() != nullptr) {
    obs::AnnotateCurrent("rows_scanned", std::to_string(stats_.rows_scanned));
    obs::AnnotateCurrent("rows_joined", std::to_string(stats_.rows_joined));
    obs::AnnotateCurrent("hash_joins", std::to_string(stats_.hash_joins));
    obs::AnnotateCurrent("nested_loop_joins",
                         std::to_string(stats_.nested_loop_joins));
    obs::AnnotateCurrent("index_probes", std::to_string(stats_.index_probes));
    obs::AnnotateCurrent("keys_encoded", std::to_string(stats_.keys_encoded));
    obs::AnnotateCurrent("bytes_encoded",
                         std::to_string(stats_.bytes_encoded));
    obs::AnnotateCurrent("result_rows",
                         std::to_string(result.value().rows.size()));
  }
  return result;
}

Status QueryExecutor::CheckDeadline() const {
  if (!has_deadline_) return Status::OK();
  if (std::chrono::steady_clock::now() > deadline_) {
    return Status::Timeout("query exceeded " +
                           std::to_string(timeout_ms_) + " ms");
  }
  return Status::OK();
}

size_t QueryExecutor::MorselCount(size_t rows) const {
  const size_t morsel = opts_.morsel_rows > 0 ? opts_.morsel_rows : 1;
  return (rows + morsel - 1) / morsel;
}

Status QueryExecutor::RunTasks(const char* what, size_t count,
                               const std::function<Status(size_t)>& fn) {
  stats_.morsels_dispatched += count;
  // Per-morsel spans parent under the span current on the *dispatching*
  // thread (the pool threads have no thread-local span installed).
  // Starting children is thread-safe — the child ordinal is atomic — and
  // each span is annotated and ended by the one thread that ran the task.
  obs::SpanHandle* parent = obs::CurrentSpan();
  obs::Tracer* tracer =
      parent != nullptr && parent->recording() ? parent->tracer() : nullptr;
  const auto submitted = std::chrono::steady_clock::now();
  if (tracer == nullptr) return opts_.pool->ParallelFor(count, fn);
  auto traced = [&](size_t i) -> Status {
    const auto started = std::chrono::steady_clock::now();
    obs::SpanHandle span = obs::Tracer::Child(tracer, parent, "morsel");
    span.Annotate("op", what);
    span.AnnotateMs("queue_wait_ms",
                    std::chrono::duration<double, std::milli>(
                        started - submitted)
                        .count());
    Status s = fn(i);
    span.AnnotateMs("run_ms", std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - started)
                                  .count());
    span.End();
    return s;
  };
  return opts_.pool->ParallelFor(count, traced);
}

Status QueryExecutor::RunMorsels(
    const char* what, size_t rows,
    const std::function<Status(size_t, size_t, size_t)>& fn) {
  const size_t morsel = opts_.morsel_rows > 0 ? opts_.morsel_rows : 1;
  return RunTasks(what, MorselCount(rows), [&](size_t m) -> Status {
    const size_t begin = m * morsel;
    const size_t end = std::min(rows, begin + morsel);
    return fn(m, begin, end);
  });
}

Result<Relation> QueryExecutor::Execute(const sql::Query& query) {
  if (query.cores.empty()) {
    return Status::InvalidArgument("query has no SELECT cores");
  }
  if (timeout_ms_ > 0 && !has_deadline_) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::microseconds(
                    static_cast<int64_t>(timeout_ms_ * 1000));
  }
  Relation result;
  // With no ORDER BY the aligned pre-projection rows are never consulted,
  // so the final join of each core may fuse with the projection.
  const bool allow_fusion = query.order_by.empty();
  for (size_t i = 0; i < query.cores.size(); ++i) {
    SILK_ASSIGN_OR_RETURN(Relation part,
                          ExecuteCore(query.cores[i], allow_fusion));
    if (i == 0) {
      result = std::move(part);
    } else {
      if (part.schema.size() != result.schema.size()) {
        return Status::InvalidArgument(
            "UNION operands have different arities (" +
            std::to_string(result.schema.size()) + " vs " +
            std::to_string(part.schema.size()) + ")");
      }
      result.rows.insert(result.rows.end(),
                         std::make_move_iterator(part.rows.begin()),
                         std::make_move_iterator(part.rows.end()));
    }
  }
  if (!query.order_by.empty()) {
    const bool single = query.cores.size() == 1;
    const RelSchema& preproj_schema =
        single ? last_preprojection_.schema : result.schema;
    const std::vector<Tuple>& preproj_rows =
        single ? (last_preprojection_rows_ != nullptr
                      ? *last_preprojection_rows_
                      : last_preprojection_.rows)
               : result.rows;
    SILK_RETURN_IF_ERROR(
        ApplyOrderBy(query, preproj_schema, preproj_rows, &result));
  }
  last_preprojection_ = Relation();  // release memory
  last_preprojection_rows_ = nullptr;
  return result;
}

Result<Relation> QueryExecutor::ExecuteCore(const sql::SelectCore& core,
                                            bool allow_fusion) {
  const std::vector<Tuple>* borrowed = nullptr;
  const Table* borrowed_table = nullptr;
  bool fused = false;
  scan_selection_active_ = false;
  SILK_ASSIGN_OR_RETURN(
      Relation combined,
      JoinFromList(core, allow_fusion && !core.select_star, &borrowed,
                   &borrowed_table, &fused));
  // Selection-borrowed scan (TryColumnarSelectionScan via JoinFromList):
  // `borrowed` spans the FULL table and `selection` lists the surviving
  // global row ids in ascending order. Consume the member state here so
  // recursive cores (derived tables) can never observe it.
  bool have_selection = scan_selection_active_;
  std::vector<uint32_t> selection = std::move(scan_selection_);
  scan_selection_active_ = false;
  scan_selection_.clear();

  if (core.select_star) {
    if (borrowed != nullptr) {
      last_preprojection_.schema = combined.schema;
      last_preprojection_.rows.clear();
      last_preprojection_rows_ = borrowed;  // aligned: result copies these rows
      combined.rows = *borrowed;
    } else {
      last_preprojection_ = combined;
      last_preprojection_rows_ = &last_preprojection_.rows;
    }
    return combined;
  }

  // Bind projection expressions.
  std::vector<BoundExprPtr> exprs;
  RelSchema out_schema;
  exprs.reserve(core.select_list.size());
  for (const auto& item : core.select_list) {
    SILK_ASSIGN_OR_RETURN(BoundExprPtr bound,
                          BindExpr(*item.expr, combined.schema));
    exprs.push_back(std::move(bound));
    if (!item.alias.empty()) {
      out_schema.Add({"", item.alias});
    } else if (item.expr->kind() == Expr::Kind::kColumnRef) {
      const auto& c = static_cast<const sql::ColumnRefExpr&>(*item.expr);
      out_schema.Add({c.qualifier(), c.name()});
    } else {
      out_schema.Add({"", "col" + std::to_string(out_schema.size() + 1)});
    }
  }

  // Pure column projections (the shape SilkRoute's view composer emits)
  // copy cells by index instead of dispatching a bound expression per cell.
  std::vector<size_t> direct_cols;
  direct_cols.reserve(core.select_list.size());
  bool all_direct = true;
  for (const auto& item : core.select_list) {
    if (item.expr->kind() != Expr::Kind::kColumnRef) {
      all_direct = false;
      break;
    }
    const auto& c = static_cast<const sql::ColumnRefExpr&>(*item.expr);
    auto idx = combined.schema.Resolve(c.qualifier(), c.name());
    if (!idx.ok()) {
      all_direct = false;
      break;
    }
    direct_cols.push_back(*idx);
  }

  if (have_selection && !all_direct) {
    // Rare shape behind a selection scan (expression projection):
    // materialize the survivors so the generic paths below see exactly
    // the filtered rows — same copies MaterializeBaseTable would have
    // made, so this never regresses the pre-selection behaviour.
    combined.rows.reserve(selection.size());
    for (uint32_t gid : selection) combined.rows.push_back((*borrowed)[gid]);
    borrowed = nullptr;
    borrowed_table = nullptr;
    have_selection = false;
  }
  const std::vector<Tuple>& in_rows =
      borrowed != nullptr ? *borrowed : combined.rows;

  Relation out;
  out.schema = std::move(out_schema);
  if (fused) {
    // JoinFromList already produced the projected rows.
    out.rows = std::move(combined.rows);
  } else if (all_direct && borrowed_table != nullptr) {
    // Borrowed base scan + pure column projection: gather the selected
    // cells straight from the table's columnar shards (row_loc maps each
    // global row to its shard position) instead of walking the row-store
    // tuples. ValueAt reproduces the stored Value representation exactly
    // (columnar_exact is a precondition of borrowed_table), so the
    // projected stream is unchanged. With a selection the gather visits
    // only the surviving global ids, in order — filter and projection
    // fuse with no intermediate row copy at all.
    const Table& t = *borrowed_table;
    const size_t n = have_selection ? selection.size() : in_rows.size();
    auto project_range = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const Table::RowLoc loc =
            t.row_loc(have_selection ? selection[i] : i);
        const ColumnarShard& shard = t.shard(loc.shard);
        Tuple projected;
        projected.mutable_values().reserve(direct_cols.size());
        for (size_t c : direct_cols) {
          projected.Append(shard.ValueAt(c, loc.pos));
        }
        out.rows[i] = std::move(projected);
      }
    };
    out.rows.resize(n);
    if (UseParallel(n)) {
      SILK_RETURN_IF_ERROR(RunMorsels(
          "project", n, [&](size_t, size_t begin, size_t end) -> Status {
            project_range(begin, end);
            return Status::OK();
          }));
    } else {
      project_range(0, n);
    }
  } else if (all_direct) {
    if (UseParallel(in_rows.size())) {
      // Disjoint index ranges write disjoint slots of the preallocated
      // output, so morsels share nothing; slot order == input order.
      out.rows.resize(in_rows.size());
      SILK_RETURN_IF_ERROR(RunMorsels(
          "project", in_rows.size(),
          [&](size_t, size_t begin, size_t end) -> Status {
            for (size_t i = begin; i < end; ++i) {
              Tuple projected;
              projected.mutable_values().reserve(direct_cols.size());
              for (size_t c : direct_cols) {
                projected.Append(in_rows[i].values()[c]);
              }
              out.rows[i] = std::move(projected);
            }
            return Status::OK();
          }));
    } else {
      out.rows.reserve(in_rows.size());
      for (const auto& row : in_rows) {
        Tuple projected;
        projected.mutable_values().reserve(direct_cols.size());
        for (size_t c : direct_cols) projected.Append(row.values()[c]);
        out.rows.push_back(std::move(projected));
      }
    }
  } else if (UseParallel(in_rows.size())) {
    // BoundExpr::Eval is const and stateless, so one bound tree serves all
    // morsel threads concurrently.
    out.rows.resize(in_rows.size());
    SILK_RETURN_IF_ERROR(RunMorsels(
        "project", in_rows.size(),
        [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t i = begin; i < end; ++i) {
            Tuple projected;
            projected.mutable_values().reserve(exprs.size());
            for (const auto& e : exprs) projected.Append(e->Eval(in_rows[i]));
            out.rows[i] = std::move(projected);
          }
          return Status::OK();
        }));
  } else {
    out.rows.reserve(in_rows.size());
    for (const auto& row : in_rows) {
      Tuple projected;
      projected.mutable_values().reserve(exprs.size());
      for (const auto& e : exprs) projected.Append(e->Eval(row));
      out.rows.push_back(std::move(projected));
    }
  }
  if (core.distinct) {
    // Dedup on packed whole-row keys: each row is encoded once into a
    // contiguous byte string, so hashing and equality are single byte
    // passes instead of a variant walk of t.values() per probe. NULL ==
    // NULL here, as before (Tuple::Compare identity, not SqlEquals).
    if (UseParallel(out.rows.size())) {
      // Parallel phase: encode whole-row keys per morsel into private
      // buffers. Serial phase: first-occurrence scan in row order — the
      // dedup decision depends on every earlier row, so it stays on one
      // thread, but it only touches packed bytes, never Values.
      const size_t n = out.rows.size();
      const size_t morsel = opts_.morsel_rows > 0 ? opts_.morsel_rows : 1;
      struct RowKeys {
        std::string buf;
        std::vector<uint32_t> offsets;  // n_local + 1 fence offsets
      };
      std::vector<RowKeys> morsels(MorselCount(n));
      SILK_RETURN_IF_ERROR(RunMorsels(
          "distinct_encode", n,
          [&](size_t m, size_t begin, size_t end) -> Status {
            RowKeys& rk = morsels[m];
            rk.offsets.reserve(end - begin + 1);
            rk.offsets.push_back(0);
            for (size_t i = begin; i < end; ++i) {
              EncodeRowKey(out.rows[i], &rk.buf);
              rk.offsets.push_back(static_cast<uint32_t>(rk.buf.size()));
            }
            return Status::OK();
          }));
      std::unordered_set<std::string_view> seen;
      seen.reserve(n);
      std::vector<Tuple> unique;
      unique.reserve(n);
      for (size_t m = 0; m < morsels.size(); ++m) {
        const RowKeys& rk = morsels[m];
        const size_t begin = m * morsel;
        stats_.bytes_encoded += rk.buf.size();
        for (size_t local = 0; local + 1 < rk.offsets.size(); ++local) {
          ++stats_.keys_encoded;
          // rk.buf is stable now, so the set can view it directly.
          std::string_view key(rk.buf.data() + rk.offsets[local],
                               rk.offsets[local + 1] - rk.offsets[local]);
          if (seen.insert(key).second) {
            unique.push_back(std::move(out.rows[begin + local]));
          }
        }
      }
      out.rows = std::move(unique);
    } else {
      KeyArena arena;
      std::unordered_set<std::string_view> seen;
      seen.reserve(out.rows.size());
      std::vector<Tuple> unique;
      unique.reserve(out.rows.size());
      std::string scratch;
      for (auto& row : out.rows) {
        scratch.clear();
        EncodeRowKey(row, &scratch);
        ++stats_.keys_encoded;
        stats_.bytes_encoded += scratch.size();
        if (seen.find(scratch) == seen.end()) {
          seen.insert(arena.Intern(scratch));
          unique.push_back(std::move(row));
        }
      }
      out.rows = std::move(unique);
    }
    // DISTINCT breaks row alignment; ORDER BY must use the output schema.
    last_preprojection_ = Relation();
    last_preprojection_rows_ = nullptr;
  } else if (fused || have_selection) {
    // Fusion and selection scans are only allowed when nothing downstream
    // reads the pre-projection rows (no ORDER BY in the enclosing query);
    // with a selection the borrowed rows span the whole table and are not
    // aligned with the output.
    last_preprojection_ = Relation();
    last_preprojection_rows_ = nullptr;
  } else if (borrowed != nullptr) {
    last_preprojection_.schema = std::move(combined.schema);
    last_preprojection_.rows.clear();
    last_preprojection_rows_ = borrowed;
  } else {
    last_preprojection_ = std::move(combined);
    last_preprojection_rows_ = &last_preprojection_.rows;
  }
  return out;
}

Result<Relation> QueryExecutor::JoinFromList(
    const sql::SelectCore& core, bool allow_fusion,
    const std::vector<Tuple>** borrowed_rows, const Table** borrowed_table,
    bool* fused) {
  *borrowed_rows = nullptr;
  *borrowed_table = nullptr;
  *fused = false;
  if (core.from.empty()) {
    // `select <literals>`: one empty source row.
    Relation r;
    r.rows.emplace_back();
    return r;
  }

  // Evaluate each FROM item. Base tables are deferred (schema only) so the
  // pushdown filters below can drive an index probe or a filtered scan
  // instead of copying the whole table.
  std::vector<Relation> items;
  std::vector<const Table*> deferred_base(core.from.size(), nullptr);
  // borrowed[i] non-null: items[i].rows stay empty and the item reads the
  // base table's rows in place — no per-query copy of the table.
  std::vector<const std::vector<Tuple>*> borrowed(core.from.size(), nullptr);
  items.reserve(core.from.size());
  for (const auto& ref : core.from) {
    if (ref->kind() == sql::TableRef::Kind::kBaseTable) {
      const auto& base = static_cast<const sql::BaseTableRef&>(*ref);
      SILK_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(base.table()));
      Relation rel;
      for (const auto& col : table->schema().columns()) {
        rel.schema.Add({base.binding_name(), col.name});
      }
      deferred_base[items.size()] = table;
      items.push_back(std::move(rel));
      continue;
    }
    SILK_ASSIGN_OR_RETURN(Relation rel, EvalTableRef(*ref));
    items.push_back(std::move(rel));
  }

  // Classify WHERE conjuncts.
  std::vector<const Expr*> conjuncts;
  if (core.where) CollectConjuncts(*core.where, &conjuncts);

  std::vector<const RelSchema*> schemas;
  schemas.reserve(items.size());
  for (const auto& it : items) schemas.push_back(&it.schema);

  struct JoinPred {
    const Expr* expr;
    int item_a;
    const sql::ColumnRefExpr* ref_a;
    int item_b;
    const sql::ColumnRefExpr* ref_b;
    bool used = false;
  };
  std::vector<JoinPred> join_preds;
  std::vector<const Expr*> residual;
  std::vector<std::vector<const Expr*>> pushdown(items.size());

  for (const Expr* c : conjuncts) {
    int sole = SoleReferencedRelation(*c, schemas);
    if (sole >= 0) {
      pushdown[static_cast<size_t>(sole)].push_back(c);
      continue;
    }
    EquiPair pair;
    if (AsColumnEquality(*c, &pair)) {
      int owner_l = SoleReferencedRelation(*pair.left, schemas);
      int owner_r = SoleReferencedRelation(*pair.right, schemas);
      if (owner_l >= 0 && owner_r >= 0 && owner_l != owner_r) {
        join_preds.push_back({c, owner_l, pair.left, owner_r, pair.right});
        continue;
      }
    }
    residual.push_back(c);
  }

  // Push single-item filters down. Deferred base tables materialize here,
  // through an index probe when a literal-equality filter has one.
  for (size_t i = 0; i < items.size(); ++i) {
    if (deferred_base[i] != nullptr) {
      if (pushdown[i].empty()) {
        // Unfiltered scan: borrow the table's rows instead of copying them.
        // Everything downstream reads the item until its rows land in an
        // owned join output, and the database outlives the query.
        borrowed[i] = &deferred_base[i]->rows();
        stats_.rows_scanned += borrowed[i]->size();
        continue;
      }
      if (allow_fusion && items.size() == 1 && residual.empty()) {
        // Single-table filtered scan feeding a pure projection (no joins,
        // no residual, no ORDER BY behind us — allow_fusion guarantees
        // nothing downstream reads aligned pre-projection rows): skip row
        // materialization entirely. The selection scan records surviving
        // global row ids; the table is borrowed and ExecuteCore's
        // projection gathers survivor cells straight from the shards, so
        // full-width survivor tuples are never copied.
        SILK_ASSIGN_OR_RETURN(
            const bool selected,
            TryColumnarSelectionScan(*deferred_base[i], pushdown[i],
                                     items[i].schema));
        if (selected) {
          borrowed[i] = &deferred_base[i]->rows();
          continue;
        }
      }
      SILK_RETURN_IF_ERROR(
          MaterializeBaseTable(*deferred_base[i], pushdown[i], &items[i]));
      continue;
    }
    if (pushdown[i].empty()) continue;
    std::vector<BoundExprPtr> filters;
    for (const Expr* e : pushdown[i]) {
      SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*e, items[i].schema));
      filters.push_back(std::move(b));
    }
    std::vector<Tuple> kept;
    kept.reserve(items[i].rows.size());
    for (auto& row : items[i].rows) {
      bool pass = true;
      for (const auto& f : filters) {
        if (f->Test(row) != Tribool::kTrue) {
          pass = false;
          break;
        }
      }
      if (pass) kept.push_back(std::move(row));
    }
    items[i].rows = std::move(kept);
  }

  auto rows_of = [&](size_t i) -> const std::vector<Tuple>& {
    return borrowed[i] != nullptr ? *borrowed[i] : items[i].rows;
  };
  // The base table behind a borrowed item, when its columnar layout can
  // stand in for the rows (join keys then encode from shard columns).
  auto table_of = [&](size_t i) -> const Table* {
    return borrowed[i] != nullptr && deferred_base[i]->columnar_exact()
               ? deferred_base[i]
               : nullptr;
  };

  // Projection fusion: when every select item is a plain column ref, the
  // final greedy join can emit row-id pairs and project straight off its
  // inputs, skipping the wide concatenated tuples entirely (provided no
  // residual predicate survives — checked after the join loop).
  const bool can_fuse =
      allow_fusion && items.size() > 1 &&
      std::all_of(core.select_list.begin(), core.select_list.end(),
                  [](const sql::SelectItem& item) {
                    return item.expr->kind() == Expr::Kind::kColumnRef;
                  });
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  bool have_pairs = false;
  size_t pair_cand = 0;
  std::vector<size_t> fuse_cols;  // select columns in the wide schema

  // Greedy hash-join order: start with item 0, repeatedly join the smallest
  // connected unjoined item.
  std::vector<bool> joined(items.size(), false);
  std::vector<int> item_of;  // which joined item each original index maps to
  Relation current;
  current.schema = std::move(items[0].schema);
  const std::vector<Tuple>* current_borrow = borrowed[0];
  const Table* current_table = table_of(0);
  if (current_borrow == nullptr) current.rows = std::move(items[0].rows);
  auto current_rows = [&]() -> const std::vector<Tuple>& {
    return current_borrow != nullptr ? *current_borrow : current.rows;
  };
  joined[0] = true;
  std::vector<size_t> joined_set = {0};
  size_t num_joined = 1;

  auto pred_connects = [&](const JoinPred& p, size_t candidate) {
    bool a_in = joined[static_cast<size_t>(p.item_a)];
    bool b_in = joined[static_cast<size_t>(p.item_b)];
    return (!p.used) &&
           ((a_in && static_cast<size_t>(p.item_b) == candidate) ||
            (b_in && static_cast<size_t>(p.item_a) == candidate));
  };

  while (num_joined < items.size()) {
    // Choose the smallest connected candidate.
    int best = -1;
    for (size_t cand = 0; cand < items.size(); ++cand) {
      if (joined[cand]) continue;
      bool connected = std::any_of(join_preds.begin(), join_preds.end(),
                                   [&](const JoinPred& p) {
                                     return pred_connects(p, cand);
                                   });
      if (!connected) continue;
      if (best < 0 ||
          rows_of(cand).size() < rows_of(static_cast<size_t>(best)).size()) {
        best = static_cast<int>(cand);
      }
    }
    bool cross_product = false;
    if (best < 0) {
      // No connected item: cross product with the first unjoined one.
      for (size_t cand = 0; cand < items.size(); ++cand) {
        if (!joined[cand]) {
          best = static_cast<int>(cand);
          break;
        }
      }
      cross_product = true;
    }
    size_t cand = static_cast<size_t>(best);
    Relation& right = items[cand];

    if (cross_product) {
      Relation combined;
      combined.schema = RelSchema::Concat(current.schema, right.schema);
      const std::vector<Tuple>& lrows = current_rows();
      const std::vector<Tuple>& rrows = rows_of(cand);
      if (UseParallel(lrows.size()) || UseParallel(rrows.size())) {
        ++stats_.parallel_fallbacks;  // cross products stay serial
      }
      combined.rows.reserve(lrows.size() * rrows.size());
      for (const auto& l : lrows) {
        SILK_RETURN_IF_ERROR(CheckDeadline());
        for (const auto& r : rrows) {
          combined.rows.push_back(Tuple::Concat(l, r));
        }
      }
      current = std::move(combined);
      current_borrow = nullptr;
      current_table = nullptr;
    } else {
      // Gather all usable predicates between the joined set and `cand`.
      std::vector<std::pair<size_t, size_t>> keys;
      for (auto& p : join_preds) {
        if (!pred_connects(p, cand)) continue;
        const sql::ColumnRefExpr* left_ref =
            joined[static_cast<size_t>(p.item_a)] ? p.ref_a : p.ref_b;
        const sql::ColumnRefExpr* right_ref =
            joined[static_cast<size_t>(p.item_a)] ? p.ref_b : p.ref_a;
        auto li = current.schema.Resolve(left_ref->qualifier(), left_ref->name());
        auto ri = right.schema.Resolve(right_ref->qualifier(), right_ref->name());
        if (!li.ok() || !ri.ok()) continue;
        keys.emplace_back(*li, *ri);
        p.used = true;
      }
      if (can_fuse && num_joined + 1 == items.size()) {
        RelSchema wide = RelSchema::Concat(current.schema, right.schema);
        fuse_cols.clear();
        bool resolved = true;
        for (const auto& item : core.select_list) {
          const auto& c = static_cast<const sql::ColumnRefExpr&>(*item.expr);
          auto idx = wide.Resolve(c.qualifier(), c.name());
          if (!idx.ok()) {
            resolved = false;
            break;
          }
          fuse_cols.push_back(*idx);
        }
        if (resolved) {
          SILK_ASSIGN_OR_RETURN(
              pairs, HashJoinPairs(current_rows(), rows_of(cand), keys,
                                   current_table, table_of(cand)));
          have_pairs = true;
          pair_cand = cand;
          joined[cand] = true;
          ++num_joined;
          continue;  // num_joined == items.size(): exits the loop
        }
      }
      SILK_ASSIGN_OR_RETURN(
          current, HashJoin(sql::JoinType::kInner, current.schema,
                            current_rows(), right.schema, rows_of(cand), keys,
                            /*residual=*/nullptr, current_table,
                            table_of(cand)));
      current_borrow = nullptr;
      current_table = nullptr;
    }
    joined[cand] = true;
    ++num_joined;
  }

  // Residual predicates (including any join predicates never used).
  std::vector<const Expr*> leftover = residual;
  for (const auto& p : join_preds) {
    if (!p.used) leftover.push_back(p.expr);
  }
  if (have_pairs) {
    const std::vector<Tuple>& lrows = current_rows();
    const std::vector<Tuple>& rrows = rows_of(pair_cand);
    const size_t left_width = current.schema.size();
    if (leftover.empty()) {
      // Project straight off the join inputs: the wide tuples never exist.
      std::vector<Tuple> projected;
      if (UseParallel(pairs.size())) {
        projected.resize(pairs.size());
        SILK_RETURN_IF_ERROR(RunMorsels(
            "project", pairs.size(),
            [&](size_t, size_t begin, size_t end) -> Status {
              for (size_t i = begin; i < end; ++i) {
                const auto& [li, ri] = pairs[i];
                Tuple t;
                t.mutable_values().reserve(fuse_cols.size());
                for (size_t c : fuse_cols) {
                  t.Append(c < left_width ? lrows[li].values()[c]
                                          : rrows[ri].values()[c - left_width]);
                }
                projected[i] = std::move(t);
              }
              return Status::OK();
            }));
      } else {
        projected.reserve(pairs.size());
        for (const auto& [li, ri] : pairs) {
          Tuple t;
          t.mutable_values().reserve(fuse_cols.size());
          for (size_t c : fuse_cols) {
            t.Append(c < left_width ? lrows[li].values()[c]
                                    : rrows[ri].values()[c - left_width]);
          }
          projected.push_back(std::move(t));
        }
      }
      current.schema =
          RelSchema::Concat(current.schema, items[pair_cand].schema);
      current.rows = std::move(projected);
      *fused = true;
      return current;
    }
    // A residual predicate needs the wide rows after all: materialize them
    // from the pairs (same order HashJoin would have emitted).
    std::vector<Tuple> wide;
    if (UseParallel(pairs.size())) {
      wide.resize(pairs.size());
      SILK_RETURN_IF_ERROR(RunMorsels(
          "materialize", pairs.size(),
          [&](size_t, size_t begin, size_t end) -> Status {
            for (size_t i = begin; i < end; ++i) {
              wide[i] = Tuple::Concat(lrows[pairs[i].first],
                                      rrows[pairs[i].second]);
            }
            return Status::OK();
          }));
    } else {
      wide.reserve(pairs.size());
      for (const auto& [li, ri] : pairs) {
        wide.push_back(Tuple::Concat(lrows[li], rrows[ri]));
      }
    }
    current.schema = RelSchema::Concat(current.schema, items[pair_cand].schema);
    current.rows = std::move(wide);
    current_borrow = nullptr;
  }
  if (!leftover.empty()) {
    std::vector<BoundExprPtr> filters;
    for (const Expr* e : leftover) {
      SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*e, current.schema));
      filters.push_back(std::move(b));
    }
    auto passes = [&filters](const Tuple& row) {
      for (const auto& f : filters) {
        if (f->Test(row) != Tribool::kTrue) return false;
      }
      return true;
    };
    std::vector<Tuple> kept;
    if (UseParallel(current_rows().size())) {
      // Filter morsels: survivors collect into per-morsel runs; the runs
      // concatenate in morsel order, which is input row order.
      const std::vector<Tuple>& in_rows = current_rows();
      const bool own = current_borrow == nullptr;
      std::vector<std::vector<Tuple>> runs(MorselCount(in_rows.size()));
      SILK_RETURN_IF_ERROR(RunMorsels(
          "filter", in_rows.size(),
          [&](size_t m, size_t begin, size_t end) -> Status {
            for (size_t i = begin; i < end; ++i) {
              if (!passes(in_rows[i])) continue;
              if (own) {
                runs[m].push_back(std::move(current.rows[i]));
              } else {
                runs[m].push_back(in_rows[i]);
              }
            }
            return Status::OK();
          }));
      size_t total = 0;
      for (const auto& run : runs) total += run.size();
      kept.reserve(total);
      for (auto& run : runs) {
        for (Tuple& t : run) kept.push_back(std::move(t));
      }
      current_borrow = nullptr;
    } else if (current_borrow != nullptr) {
      // Borrowed rows belong to the table: copy the survivors.
      kept.reserve(current_rows().size());
      for (const auto& row : *current_borrow) {
        if (passes(row)) kept.push_back(row);
      }
      current_borrow = nullptr;
    } else {
      kept.reserve(current_rows().size());
      for (auto& row : current.rows) {
        if (passes(row)) kept.push_back(std::move(row));
      }
    }
    current.rows = std::move(kept);
  }
  *borrowed_rows = current_borrow;
  *borrowed_table = current_borrow != nullptr ? current_table : nullptr;
  return current;
}

Status QueryExecutor::MaterializeBaseTable(
    const Table& table, const std::vector<const sql::Expr*>& filters,
    Relation* out) {
  // Look for a literal-equality filter with an index on its column.
  const IndexProbe ip = FindIndexProbe(table, filters);

  if (ip.index != nullptr) {
    std::vector<BoundExprPtr> bound;
    bound.reserve(filters.size());
    for (const sql::Expr* e : filters) {
      SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*e, out->schema));
      bound.push_back(std::move(b));
    }
    auto [begin, end] = ip.index->equal_range(*ip.probe);
    for (auto it = begin; it != end; ++it) {
      ++stats_.rows_scanned;
      ++stats_.index_probes;
      const Tuple& row = table.rows()[it->second];
      bool pass = true;
      for (const auto& f : bound) {
        if (f->Test(row) != Tribool::kTrue) {
          pass = false;
          break;
        }
      }
      if (pass) out->rows.push_back(row);
    }
    return Status::OK();
  }

  // Columnar scan: the selection pass evaluates compiled column-vs-literal
  // predicates over the shards' typed arrays and yields surviving global
  // row ids in ascending order; materializing rows in that order
  // reproduces the row-major scan's tuple stream byte for byte at any
  // shard count.
  SILK_ASSIGN_OR_RETURN(const bool columnar,
                        TryColumnarSelectionScan(table, filters, out->schema));
  if (columnar) {
    scan_selection_active_ = false;
    const std::vector<uint32_t> sel = std::move(scan_selection_);
    scan_selection_.clear();
    const std::vector<Tuple>& rows = table.rows();
    const size_t out_base = out->rows.size();
    if (UseParallel(sel.size())) {
      // Disjoint selection ranges copy into disjoint output slots; slot
      // order equals selection order equals global row order.
      out->rows.resize(out_base + sel.size());
      SILK_RETURN_IF_ERROR(RunMorsels(
          "scan_emit", sel.size(),
          [&](size_t, size_t begin, size_t end) -> Status {
            for (size_t i = begin; i < end; ++i) {
              out->rows[out_base + i] = rows[sel[i]];
            }
            return Status::OK();
          }));
      return Status::OK();
    }
    out->rows.reserve(out_base + sel.size());
    for (uint32_t gid : sel) out->rows.push_back(rows[gid]);
    return Status::OK();
  }
  stats_.rows_scanned += table.num_rows();

  std::vector<BoundExprPtr> bound;
  bound.reserve(filters.size());
  for (const sql::Expr* e : filters) {
    SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*e, out->schema));
    bound.push_back(std::move(b));
  }
  auto passes = [&bound](const Tuple& row) {
    for (const auto& f : bound) {
      if (f->Test(row) != Tribool::kTrue) return false;
    }
    return true;
  };
  if (UseParallel(table.num_rows()) && !bound.empty()) {
    // Scan morsels: each claims a fixed row range, filters into a private
    // run, and the runs concatenate in morsel order == table row order.
    const std::vector<Tuple>& rows = table.rows();
    std::vector<std::vector<Tuple>> runs(MorselCount(rows.size()));
    SILK_RETURN_IF_ERROR(RunMorsels(
        "scan_filter", rows.size(),
        [&](size_t m, size_t begin, size_t end) -> Status {
          for (size_t i = begin; i < end; ++i) {
            if (passes(rows[i])) runs[m].push_back(rows[i]);
          }
          return Status::OK();
        }));
    size_t total = 0;
    for (const auto& run : runs) total += run.size();
    out->rows.reserve(out->rows.size() + total);
    for (auto& run : runs) {
      for (Tuple& t : run) out->rows.push_back(std::move(t));
    }
    return Status::OK();
  }
  for (const Tuple& row : table.rows()) {
    if (passes(row)) out->rows.push_back(row);
  }
  return Status::OK();
}

Result<bool> QueryExecutor::TryColumnarSelectionScan(
    const Table& table, const std::vector<const sql::Expr*>& filters,
    const RelSchema& schema) {
  if (!table.columnar_exact()) return false;
  // An index probe beats any full scan; leave those filters to
  // MaterializeBaseTable's index path.
  if (FindIndexProbe(table, filters).index != nullptr) return false;
  std::vector<ColPred> preds;
  if (!CompileColumnPreds(filters, schema, &preds)) return false;

  stats_.rows_scanned += table.num_rows();
  scan_selection_.clear();
  scan_selection_active_ = true;
  const size_t n = table.num_rows();
  if (n == 0) return true;
  if (std::any_of(preds.begin(), preds.end(), [](const ColPred& p) {
        return p.op == ColOp::kNever;
      })) {
    return true;  // a NULL-literal comparison passes no rows
  }
  // Predicate evaluation reads the shard's typed arrays directly — no
  // bound-expression dispatch and no per-row Value materialization. Shards
  // are the unit of dispatch: each task owns (shard, chunk) ranges and
  // writes disjoint slots of a survivor bitmap indexed by table-global row
  // id, so parallel evaluation shares no mutable state. Walking the bitmap
  // in ascending global id afterwards yields the same survivor order a
  // row-major scan would, at any shard count.
  std::vector<uint8_t> keep(n, 0);
  struct ShardChunk {
    uint32_t shard;
    uint32_t begin;
    uint32_t end;
  };
  const size_t step = opts_.morsel_rows > 0 ? opts_.morsel_rows : 1;
  std::vector<ShardChunk> chunks;
  for (uint32_t s = 0; s < table.shard_count(); ++s) {
    const size_t shard_rows = table.shard(s).size();
    for (size_t b = 0; b < shard_rows; b += step) {
      chunks.push_back({s, static_cast<uint32_t>(b),
                        static_cast<uint32_t>(std::min(shard_rows, b + step))});
    }
  }
  auto eval_chunk = [&](size_t ci) -> Status {
    const ShardChunk& ch = chunks[ci];
    const ColumnarShard& shard = table.shard(ch.shard);
    for (size_t pos = ch.begin; pos < ch.end; ++pos) {
      bool pass = true;
      for (const ColPred& p : preds) {
        if (!EvalColPred(shard.column(p.col), pos, p)) {
          pass = false;
          break;
        }
      }
      if (pass) keep[shard.global_id(pos)] = 1;
    }
    return Status::OK();
  };
  if (UseParallel(n)) {
    SILK_RETURN_IF_ERROR(RunTasks("scan_filter", chunks.size(), eval_chunk));
  } else {
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      SILK_RETURN_IF_ERROR(eval_chunk(ci));
    }
  }
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += keep[i];
  scan_selection_.reserve(total);
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) scan_selection_.push_back(static_cast<uint32_t>(i));
  }
  return true;
}

Result<Relation> QueryExecutor::EvalTableRef(const sql::TableRef& ref) {
  switch (ref.kind()) {
    case sql::TableRef::Kind::kBaseTable: {
      const auto& base = static_cast<const sql::BaseTableRef&>(ref);
      SILK_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(base.table()));
      Relation rel;
      for (const auto& col : table->schema().columns()) {
        rel.schema.Add({base.binding_name(), col.name});
      }
      rel.rows = table->rows();  // copy: intermediate results are mutable
      stats_.rows_scanned += rel.rows.size();
      return rel;
    }
    case sql::TableRef::Kind::kDerivedTable: {
      const auto& derived = static_cast<const sql::DerivedTableRef&>(ref);
      // Note: uses a nested executor so last_preprojection_ of the outer
      // query is not clobbered. The deadline is inherited as-is.
      QueryExecutor sub(db_);
      sub.timeout_ms_ = timeout_ms_;
      sub.has_deadline_ = has_deadline_;
      sub.deadline_ = deadline_;
      sub.opts_ = opts_;  // derived tables parallelize like their parent
      SILK_ASSIGN_OR_RETURN(Relation rel, sub.Execute(derived.query()));
      stats_.rows_scanned += sub.stats_.rows_scanned;
      stats_.rows_joined += sub.stats_.rows_joined;
      stats_.rows_sorted += sub.stats_.rows_sorted;
      stats_.hash_joins += sub.stats_.hash_joins;
      stats_.nested_loop_joins += sub.stats_.nested_loop_joins;
      stats_.index_probes += sub.stats_.index_probes;
      stats_.keys_encoded += sub.stats_.keys_encoded;
      stats_.bytes_encoded += sub.stats_.bytes_encoded;
      stats_.morsels_dispatched += sub.stats_.morsels_dispatched;
      stats_.parallel_fallbacks += sub.stats_.parallel_fallbacks;
      rel.schema = rel.schema.WithQualifier(derived.alias());
      return rel;
    }
    case sql::TableRef::Kind::kJoin:
      return EvalJoin(static_cast<const sql::JoinRef&>(ref));
  }
  return Status::Internal("unknown table ref kind");
}

Result<Relation> QueryExecutor::EvalJoin(const sql::JoinRef& join) {
  SILK_ASSIGN_OR_RETURN(Relation left, EvalTableRef(join.left()));
  SILK_ASSIGN_OR_RETURN(Relation right, EvalTableRef(join.right()));
  return JoinRelations(join.join_type(), std::move(left), std::move(right),
                       join.on());
}

Result<Relation> QueryExecutor::JoinRelations(sql::JoinType type,
                                              Relation left, Relation right,
                                              const sql::Expr& on) {
  // Case 1: conjunction with at least one column equality -> hash join.
  {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(on, &conjuncts);
    std::vector<std::pair<size_t, size_t>> keys;
    std::vector<const Expr*> residual_parts;
    for (const Expr* c : conjuncts) {
      EquiPair pair;
      if (AsColumnEquality(*c, &pair)) {
        auto li = left.schema.Resolve(pair.left->qualifier(), pair.left->name());
        auto ri =
            right.schema.Resolve(pair.right->qualifier(), pair.right->name());
        if (li.ok() && ri.ok()) {
          keys.emplace_back(*li, *ri);
          continue;
        }
        // Try swapped orientation.
        li = left.schema.Resolve(pair.right->qualifier(), pair.right->name());
        ri = right.schema.Resolve(pair.left->qualifier(), pair.left->name());
        if (li.ok() && ri.ok()) {
          keys.emplace_back(*li, *ri);
          continue;
        }
      }
      residual_parts.push_back(c);
    }
    if (!keys.empty()) {
      sql::ExprPtr residual_expr;
      if (!residual_parts.empty()) {
        std::vector<sql::ExprPtr> clones;
        clones.reserve(residual_parts.size());
        for (const Expr* e : residual_parts) clones.push_back(e->Clone());
        residual_expr = sql::AndAll(std::move(clones));
      }
      return HashJoin(type, left.schema, left.rows, right.schema, right.rows,
                      keys, residual_expr.get());
    }
  }

  // Case 2: OR of conjunctions, each with column equalities -> disjunctive
  // hash join (the unified outer-join query shape).
  {
    auto result = DisjunctiveHashJoin(type, left, right, on);
    if (result.ok()) return result;
    // fall through to nested loop on decomposition failure
  }

  return NestedLoopJoin(type, left, right, on);
}

Result<Relation> QueryExecutor::HashJoin(
    sql::JoinType type, const RelSchema& left_schema,
    const std::vector<Tuple>& left_rows, const RelSchema& right_schema,
    const std::vector<Tuple>& right_rows,
    const std::vector<std::pair<size_t, size_t>>& keys,
    const sql::Expr* residual, const Table* left_table,
    const Table* right_table) {
  Relation out;
  out.schema = RelSchema::Concat(left_schema, right_schema);

  BoundExprPtr residual_bound;
  if (residual != nullptr) {
    SILK_ASSIGN_OR_RETURN(residual_bound, BindExpr(*residual, out.schema));
  }

  std::vector<size_t> left_cols;
  std::vector<size_t> right_cols;
  left_cols.reserve(keys.size());
  right_cols.reserve(keys.size());
  for (const auto& [li, ri] : keys) {
    left_cols.push_back(li);
    right_cols.push_back(ri);
  }

  const size_t right_width = right_schema.size();
  if (opts_.parallelism > 1 && opts_.pool != nullptr &&
      (left_rows.size() >= opts_.parallel_threshold ||
       right_rows.size() >= opts_.parallel_threshold)) {
    return HashJoinParallel(type, std::move(out.schema), left_rows,
                            right_rows, left_cols, right_cols,
                            residual_bound.get(), right_width, left_table,
                            right_table);
  }

  const JoinSide build{&right_rows, right_table};
  const JoinSide probe{&left_rows, left_table};
  EncodedKeyIndex index;
  index.Reserve(right_rows.size());
  std::string scratch;
  for (size_t r = 0; r < right_rows.size(); ++r) {
    scratch.clear();
    // EncodeKey returns false on a NULL key column: such rows can
    // never match, so they are simply not indexed.
    if (!build.EncodeKey(r, right_cols, &scratch)) continue;
    ++stats_.keys_encoded;
    stats_.bytes_encoded += scratch.size();
    index.Insert(scratch, static_cast<uint32_t>(r));
  }

  ++stats_.hash_joins;
  size_t deadline_check = 0;
  for (size_t l = 0; l < left_rows.size(); ++l) {
    const Tuple& lrow = left_rows[l];
    if ((++deadline_check & 0xFF) == 0) {
      SILK_RETURN_IF_ERROR(CheckDeadline());
    }
    scratch.clear();
    bool matched = false;
    if (probe.EncodeKey(l, left_cols, &scratch)) {
      ++stats_.keys_encoded;
      stats_.bytes_encoded += scratch.size();
      // The chain yields matches in ascending right-row order (rows were
      // inserted in row order), so equal-key output is deterministic in
      // right-row order — which fused streams rely on — without the sort
      // the multimap's equal_range used to need.
      for (uint32_t r = index.Find(scratch); r != EncodedKeyIndex::kNil;
           r = index.NextRow(r)) {
        Tuple combined = Tuple::Concat(lrow, right_rows[r]);
        if (residual_bound &&
            residual_bound->Test(combined) != Tribool::kTrue) {
          continue;
        }
        matched = true;
        out.rows.push_back(std::move(combined));
      }
    }
    if (!matched && type == sql::JoinType::kLeftOuter) {
      out.rows.push_back(NullPadded(lrow, right_width));
    }
  }
  stats_.rows_joined += out.rows.size();
  return out;
}

Result<std::vector<std::pair<uint32_t, uint32_t>>> QueryExecutor::HashJoinPairs(
    const std::vector<Tuple>& left_rows, const std::vector<Tuple>& right_rows,
    const std::vector<std::pair<size_t, size_t>>& keys,
    const Table* left_table, const Table* right_table) {
  std::vector<size_t> left_cols;
  std::vector<size_t> right_cols;
  left_cols.reserve(keys.size());
  right_cols.reserve(keys.size());
  for (const auto& [li, ri] : keys) {
    left_cols.push_back(li);
    right_cols.push_back(ri);
  }

  if (opts_.parallelism > 1 && opts_.pool != nullptr &&
      (left_rows.size() >= opts_.parallel_threshold ||
       right_rows.size() >= opts_.parallel_threshold)) {
    return HashJoinPairsParallel(left_rows, right_rows, left_cols, right_cols,
                                 left_table, right_table);
  }

  const JoinSide build{&right_rows, right_table};
  const JoinSide probe{&left_rows, left_table};
  EncodedKeyIndex index;
  index.Reserve(right_rows.size());
  std::string scratch;
  for (size_t r = 0; r < right_rows.size(); ++r) {
    scratch.clear();
    if (!build.EncodeKey(r, right_cols, &scratch)) continue;
    ++stats_.keys_encoded;
    stats_.bytes_encoded += scratch.size();
    index.Insert(scratch, static_cast<uint32_t>(r));
  }

  ++stats_.hash_joins;
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  size_t deadline_check = 0;
  for (uint32_t l = 0; l < left_rows.size(); ++l) {
    if ((++deadline_check & 0xFF) == 0) {
      SILK_RETURN_IF_ERROR(CheckDeadline());
    }
    scratch.clear();
    if (!probe.EncodeKey(l, left_cols, &scratch)) continue;
    ++stats_.keys_encoded;
    stats_.bytes_encoded += scratch.size();
    for (uint32_t r = index.Find(scratch); r != EncodedKeyIndex::kNil;
         r = index.NextRow(r)) {
      pairs.emplace_back(l, r);
    }
  }
  stats_.rows_joined += pairs.size();
  return pairs;
}

Result<Relation> QueryExecutor::HashJoinParallel(
    sql::JoinType type, RelSchema out_schema,
    const std::vector<Tuple>& left_rows, const std::vector<Tuple>& right_rows,
    const std::vector<size_t>& left_cols, const std::vector<size_t>& right_cols,
    const BoundExpr* residual, size_t right_width, const Table* left_table,
    const Table* right_table) {
  const uint32_t partitions =
      CeilPow2(static_cast<uint32_t>(opts_.parallelism));
  PartitionedKeyIndex index(right_rows.size(), partitions);
  IndexBuildCounters build;
  SILK_RETURN_IF_ERROR(BuildPartitionedIndex(
      JoinSide{&right_rows, right_table}, right_cols, opts_.morsel_rows,
      [this](const char* what, size_t rows,
             const std::function<Status(size_t, size_t, size_t)>& fn) {
        return RunMorsels(what, rows, fn);
      },
      [this](const char* what, size_t count,
             const std::function<Status(size_t)>& fn) {
        return RunTasks(what, count, fn);
      },
      &index, &build));
  stats_.keys_encoded += build.keys;
  stats_.bytes_encoded += build.bytes;

  ++stats_.hash_joins;
  const size_t n = left_rows.size();
  // One output run per probe morsel; concatenating the runs in morsel
  // order reproduces the serial probe loop's row order exactly (each run
  // is the serial output for its row range, chains yield right rows in
  // ascending row order).
  const JoinSide probe{&left_rows, left_table};
  std::vector<std::vector<Tuple>> runs(MorselCount(n));
  std::vector<std::array<uint64_t, 2>> probe_counts(runs.size());
  SILK_RETURN_IF_ERROR(RunMorsels(
      "join_probe", n, [&](size_t m, size_t begin, size_t end) -> Status {
        std::vector<Tuple>& out_run = runs[m];
        std::array<uint64_t, 2>& counts = probe_counts[m];
        std::string scratch;
        size_t deadline_check = 0;
        for (size_t i = begin; i < end; ++i) {
          if ((++deadline_check & 0xFF) == 0) {
            SILK_RETURN_IF_ERROR(CheckDeadline());
          }
          const Tuple& lrow = left_rows[i];
          scratch.clear();
          bool matched = false;
          if (probe.EncodeKey(i, left_cols, &scratch)) {
            ++counts[0];
            counts[1] += scratch.size();
            for (uint32_t r = index.Find(scratch);
                 r != PartitionedKeyIndex::kNil; r = index.NextRow(r)) {
              Tuple combined = Tuple::Concat(lrow, right_rows[r]);
              if (residual != nullptr &&
                  residual->Test(combined) != Tribool::kTrue) {
                continue;
              }
              matched = true;
              out_run.push_back(std::move(combined));
            }
          }
          if (!matched && type == sql::JoinType::kLeftOuter) {
            out_run.push_back(NullPadded(lrow, right_width));
          }
        }
        return Status::OK();
      }));

  for (const auto& counts : probe_counts) {
    stats_.keys_encoded += counts[0];
    stats_.bytes_encoded += counts[1];
  }
  Relation out;
  out.schema = std::move(out_schema);
  size_t total = 0;
  for (const auto& run : runs) total += run.size();
  out.rows.reserve(total);
  for (auto& run : runs) {
    for (Tuple& t : run) out.rows.push_back(std::move(t));
  }
  stats_.rows_joined += total;
  return out;
}

Result<std::vector<std::pair<uint32_t, uint32_t>>>
QueryExecutor::HashJoinPairsParallel(const std::vector<Tuple>& left_rows,
                                     const std::vector<Tuple>& right_rows,
                                     const std::vector<size_t>& left_cols,
                                     const std::vector<size_t>& right_cols,
                                     const Table* left_table,
                                     const Table* right_table) {
  const uint32_t partitions =
      CeilPow2(static_cast<uint32_t>(opts_.parallelism));
  PartitionedKeyIndex index(right_rows.size(), partitions);
  IndexBuildCounters build;
  SILK_RETURN_IF_ERROR(BuildPartitionedIndex(
      JoinSide{&right_rows, right_table}, right_cols, opts_.morsel_rows,
      [this](const char* what, size_t rows,
             const std::function<Status(size_t, size_t, size_t)>& fn) {
        return RunMorsels(what, rows, fn);
      },
      [this](const char* what, size_t count,
             const std::function<Status(size_t)>& fn) {
        return RunTasks(what, count, fn);
      },
      &index, &build));
  stats_.keys_encoded += build.keys;
  stats_.bytes_encoded += build.bytes;

  ++stats_.hash_joins;
  const size_t n = left_rows.size();
  const JoinSide probe{&left_rows, left_table};
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> runs(MorselCount(n));
  std::vector<std::array<uint64_t, 2>> probe_counts(runs.size());
  SILK_RETURN_IF_ERROR(RunMorsels(
      "join_probe", n, [&](size_t m, size_t begin, size_t end) -> Status {
        auto& out_run = runs[m];
        std::array<uint64_t, 2>& counts = probe_counts[m];
        std::string scratch;
        size_t deadline_check = 0;
        for (size_t i = begin; i < end; ++i) {
          if ((++deadline_check & 0xFF) == 0) {
            SILK_RETURN_IF_ERROR(CheckDeadline());
          }
          scratch.clear();
          if (!probe.EncodeKey(i, left_cols, &scratch)) continue;
          ++counts[0];
          counts[1] += scratch.size();
          for (uint32_t r = index.Find(scratch);
               r != PartitionedKeyIndex::kNil; r = index.NextRow(r)) {
            out_run.emplace_back(static_cast<uint32_t>(i), r);
          }
        }
        return Status::OK();
      }));

  for (const auto& counts : probe_counts) {
    stats_.keys_encoded += counts[0];
    stats_.bytes_encoded += counts[1];
  }
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  size_t total = 0;
  for (const auto& run : runs) total += run.size();
  pairs.reserve(total);
  for (const auto& run : runs) {
    pairs.insert(pairs.end(), run.begin(), run.end());
  }
  stats_.rows_joined += total;
  return pairs;
}

Result<Relation> QueryExecutor::DisjunctiveHashJoin(sql::JoinType type,
                                                    Relation& left,
                                                    Relation& right,
                                                    const sql::Expr& on) {
  std::vector<const Expr*> disjuncts;
  CollectDisjuncts(on, &disjuncts);
  if (disjuncts.size() < 2) {
    return Status::Unimplemented("not a disjunction");
  }

  struct Disjunct {
    std::vector<size_t> left_cols;   // key columns on the probe side
    std::vector<size_t> right_cols;  // key columns on the build side
    std::vector<BoundExprPtr> left_filters;
    std::vector<BoundExprPtr> right_filters;
    EncodedKeyIndex index;
  };
  std::vector<Disjunct> plans;
  plans.reserve(disjuncts.size());

  for (const Expr* d : disjuncts) {
    Disjunct plan;
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(*d, &conjuncts);
    for (const Expr* c : conjuncts) {
      EquiPair pair;
      if (AsColumnEquality(*c, &pair)) {
        auto li = left.schema.Resolve(pair.left->qualifier(), pair.left->name());
        auto ri =
            right.schema.Resolve(pair.right->qualifier(), pair.right->name());
        if (li.ok() && ri.ok()) {
          plan.left_cols.push_back(*li);
          plan.right_cols.push_back(*ri);
          continue;
        }
        li = left.schema.Resolve(pair.right->qualifier(), pair.right->name());
        ri = right.schema.Resolve(pair.left->qualifier(), pair.left->name());
        if (li.ok() && ri.ok()) {
          plan.left_cols.push_back(*li);
          plan.right_cols.push_back(*ri);
          continue;
        }
      }
      // Single-side predicate?
      std::vector<const RelSchema*> schemas = {&left.schema, &right.schema};
      int sole = SoleReferencedRelation(*c, schemas);
      if (sole == 0) {
        SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*c, left.schema));
        plan.left_filters.push_back(std::move(b));
      } else if (sole == 1) {
        SILK_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*c, right.schema));
        plan.right_filters.push_back(std::move(b));
      } else {
        return Status::Unimplemented(
            "disjunct has a cross-side non-equality predicate");
      }
    }
    if (plan.left_cols.empty()) {
      return Status::Unimplemented("disjunct has no column equality");
    }
    plans.push_back(std::move(plan));
  }

  if (UseParallel(left.rows.size()) || UseParallel(right.rows.size())) {
    ++stats_.parallel_fallbacks;  // disjunctive joins stay serial
  }

  // Build one packed-key index per disjunct.
  std::string scratch;
  for (auto& plan : plans) {
    plan.index.Reserve(right.rows.size());
    for (size_t r = 0; r < right.rows.size(); ++r) {
      bool pass = true;
      for (const auto& f : plan.right_filters) {
        if (f->Test(right.rows[r]) != Tribool::kTrue) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      scratch.clear();
      if (!EncodeJoinKey(right.rows[r], plan.right_cols, &scratch)) continue;
      ++stats_.keys_encoded;
      stats_.bytes_encoded += scratch.size();
      plan.index.Insert(scratch, static_cast<uint32_t>(r));
    }
  }

  ++stats_.hash_joins;
  Relation out;
  out.schema = RelSchema::Concat(left.schema, right.schema);
  const size_t right_width = right.schema.size();
  std::vector<uint32_t> match_ids;
  size_t deadline_check = 0;
  for (const auto& lrow : left.rows) {
    if ((++deadline_check & 0xFF) == 0) {
      SILK_RETURN_IF_ERROR(CheckDeadline());
    }
    match_ids.clear();
    for (const auto& plan : plans) {
      bool pass = true;
      for (const auto& f : plan.left_filters) {
        if (f->Test(lrow) != Tribool::kTrue) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      scratch.clear();
      if (!EncodeJoinKey(lrow, plan.left_cols, &scratch)) continue;
      ++stats_.keys_encoded;
      stats_.bytes_encoded += scratch.size();
      for (uint32_t r = plan.index.Find(scratch);
           r != EncodedKeyIndex::kNil; r = plan.index.NextRow(r)) {
        match_ids.push_back(r);
      }
    }
    // Each disjunct's chain is already ascending, but the per-disjunct
    // match lists are concatenated and two disjuncts can select the same
    // right row, so this normalization pass is still required: it both
    // dedups across disjuncts and restores global right-row order (pinned
    // by the DisjunctiveJoinStreamOrder regression test).
    std::sort(match_ids.begin(), match_ids.end());
    match_ids.erase(std::unique(match_ids.begin(), match_ids.end()),
                    match_ids.end());
    if (match_ids.empty()) {
      if (type == sql::JoinType::kLeftOuter) {
        out.rows.push_back(NullPadded(lrow, right_width));
      }
      continue;
    }
    for (size_t r : match_ids) {
      out.rows.push_back(Tuple::Concat(lrow, right.rows[r]));
    }
  }
  stats_.rows_joined += out.rows.size();
  return out;
}

Result<Relation> QueryExecutor::NestedLoopJoin(sql::JoinType type,
                                               Relation& left, Relation& right,
                                               const sql::Expr& on) {
  Relation out;
  out.schema = RelSchema::Concat(left.schema, right.schema);
  SILK_ASSIGN_OR_RETURN(BoundExprPtr pred, BindExpr(on, out.schema));
  ++stats_.nested_loop_joins;
  if (UseParallel(left.rows.size()) || UseParallel(right.rows.size())) {
    ++stats_.parallel_fallbacks;  // nested loops stay serial
  }
  const size_t right_width = right.schema.size();
  for (const auto& lrow : left.rows) {
    SILK_RETURN_IF_ERROR(CheckDeadline());
    bool matched = false;
    for (const auto& rrow : right.rows) {
      Tuple combined = Tuple::Concat(lrow, rrow);
      if (pred->Test(combined) == Tribool::kTrue) {
        matched = true;
        out.rows.push_back(std::move(combined));
      }
    }
    if (!matched && type == sql::JoinType::kLeftOuter) {
      out.rows.push_back(NullPadded(lrow, right_width));
    }
  }
  stats_.rows_joined += out.rows.size();
  return out;
}

Status QueryExecutor::ApplyOrderBy(const sql::Query& query,
                                   const RelSchema& preproj_schema,
                                   const std::vector<Tuple>& preproj_rows,
                                   Relation* result) {
  const size_t n = result->rows.size();
  // Bind each key against the output schema; fall back to the
  // pre-projection schema (single-core queries only).
  struct Key {
    BoundExprPtr expr;  // null when direct_col applies
    bool ascending;
    bool from_preprojection;
    int direct_col = -1;  // plain column ref: read the cell, skip Eval
  };
  std::vector<Key> bound_keys;
  for (const auto& o : query.order_by) {
    // A bare column ref resolves against the same schemas BindExpr would
    // use; encoding then reads the cell in place instead of paying a
    // bound-expression dispatch and a Value copy per row.
    if (o.expr->kind() == Expr::Kind::kColumnRef) {
      const auto& c = static_cast<const sql::ColumnRefExpr&>(*o.expr);
      auto idx = result->schema.Resolve(c.qualifier(), c.name());
      if (idx.ok()) {
        bound_keys.push_back(
            {nullptr, o.ascending, false, static_cast<int>(*idx)});
        continue;
      }
      if (query.cores.size() == 1 && preproj_rows.size() == n) {
        idx = preproj_schema.Resolve(c.qualifier(), c.name());
        if (idx.ok()) {
          bound_keys.push_back(
              {nullptr, o.ascending, true, static_cast<int>(*idx)});
          continue;
        }
      }
    }
    auto out_bound = BindExpr(*o.expr, result->schema);
    if (out_bound.ok()) {
      bound_keys.push_back({std::move(out_bound).value(), o.ascending, false});
      continue;
    }
    if (query.cores.size() == 1 && preproj_rows.size() == n) {
      auto pre_bound = BindExpr(*o.expr, preproj_schema);
      if (pre_bound.ok()) {
        bound_keys.push_back({std::move(pre_bound).value(), o.ascending, true});
        continue;
      }
    }
    return Status::InvalidArgument("cannot resolve ORDER BY key '" +
                                   o.expr->ToSql() + "'");
  }

  // Fast path: at most two keys, all direct columns holding only non-null
  // numerics (the shape the view composer's skolem-key ORDER BYs take).
  // Each key packs into one machine word whose unsigned order equals the
  // encoded-segment order, so the sort runs over flat PODs and never
  // builds a byte buffer.
  if (!bound_keys.empty() && bound_keys.size() <= 2 &&
      std::all_of(bound_keys.begin(), bound_keys.end(),
                  [](const Key& k) { return k.direct_col >= 0; })) {
    bool numeric = true;
    for (const auto& k : bound_keys) {
      const std::vector<Tuple>& src =
          k.from_preprojection ? preproj_rows : result->rows;
      const size_t col = static_cast<size_t>(k.direct_col);
      for (size_t i = 0; i < n && numeric; ++i) {
        const Value& v = src[i].values()[col];
        // Tiebreaker-carrying magnitudes (>= 2^53) must take the byte
        // path: the word alone would order them differently.
        if (!(v.is_int64() || v.is_double()) || !NumericFitsWord(v)) {
          numeric = false;
        }
      }
      if (!numeric) break;
    }
    if (numeric) {
      struct WordRec {
        uint64_t k0;
        uint64_t k1;
        uint32_t idx;
      };
      std::vector<WordRec> recs(n);
      auto encode_word_range = [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          uint64_t words[2] = {0, 0};
          for (size_t j = 0; j < bound_keys.size(); ++j) {
            const Key& k = bound_keys[j];
            const Tuple& row =
                k.from_preprojection ? preproj_rows[i] : result->rows[i];
            uint64_t bits = OrderedNumericBits(
                row.values()[static_cast<size_t>(k.direct_col)]);
            words[j] = k.ascending ? bits : ~bits;
          }
          recs[i] = {words[0], words[1], static_cast<uint32_t>(i)};
        }
      };
      auto word_less = [](const WordRec& a, const WordRec& b) {
        if (a.k0 != b.k0) return a.k0 < b.k0;
        if (a.k1 != b.k1) return a.k1 < b.k1;
        return a.idx < b.idx;  // stable order on full ties
      };
      if (UseParallel(n)) {
        SILK_RETURN_IF_ERROR(RunMorsels(
            "sort_encode", n, [&](size_t, size_t begin, size_t end) -> Status {
              encode_word_range(begin, end);
              return Status::OK();
            }));
        stats_.keys_encoded += n;
        stats_.bytes_encoded += n * 8 * bound_keys.size();
        // word_less is total (idx tiebreak), so the sorted permutation is
        // unique: run-sort + merge equals the serial sort exactly.
        SILK_RETURN_IF_ERROR(ParallelSortMerge(
            &recs, static_cast<size_t>(opts_.parallelism), word_less,
            [&](size_t count, const std::function<Status(size_t)>& fn) {
              return RunTasks("sort_runs", count, fn);
            }));
        std::vector<Tuple> sorted(n);
        SILK_RETURN_IF_ERROR(RunMorsels(
            "sort_gather", n,
            [&](size_t, size_t begin, size_t end) -> Status {
              // recs is a permutation: each output slot moves from a
              // distinct input slot, so morsels never touch the same row.
              for (size_t i = begin; i < end; ++i) {
                sorted[i] = std::move(result->rows[recs[i].idx]);
              }
              return Status::OK();
            }));
        result->rows = std::move(sorted);
        stats_.rows_sorted += n;
        return Status::OK();
      }
      encode_word_range(0, n);
      stats_.keys_encoded += n;
      stats_.bytes_encoded += n * 8 * bound_keys.size();
      std::sort(recs.begin(), recs.end(), word_less);
      std::vector<Tuple> sorted;
      sorted.reserve(n);
      for (const WordRec& r : recs) {
        sorted.push_back(std::move(result->rows[r.idx]));
      }
      result->rows = std::move(sorted);
      stats_.rows_sorted += n;
      return Status::OK();
    }
  }

  // Encode one packed sort key per row (key_codec.h): ascending segments
  // use the order-preserving encoding directly, descending segments are
  // byte-complemented, so the whole composite key sorts by memcmp —
  // no variant dispatch in the comparator. Keys are packed back-to-back
  // in one flat buffer; `ends[i]` marks where row i's key stops.
  std::string buf;
  std::vector<size_t> ends(n + 1, 0);
  auto encode_key = [&](size_t i, std::string* out) {
    for (const auto& k : bound_keys) {
      const Tuple& row =
          k.from_preprojection ? preproj_rows[i] : result->rows[i];
      if (k.direct_col >= 0) {
        const Value& v = row.values()[static_cast<size_t>(k.direct_col)];
        if (k.ascending) {
          EncodeValue(v, out);
        } else {
          EncodeValueDescending(v, out);
        }
        continue;
      }
      Value v = k.expr->Eval(row);
      if (k.ascending) {
        EncodeValue(v, out);
      } else {
        EncodeValueDescending(v, out);
      }
    }
  };
  if (UseParallel(n)) {
    // Encode into per-morsel buffers, then stitch them into the flat key
    // buffer at prefix-summed bases — byte-identical to the serial
    // append-in-row-order buffer.
    const size_t morsel = opts_.morsel_rows > 0 ? opts_.morsel_rows : 1;
    struct KeyBuf {
      std::string buf;
      std::vector<uint32_t> local_ends;
    };
    std::vector<KeyBuf> kbufs(MorselCount(n));
    SILK_RETURN_IF_ERROR(RunMorsels(
        "sort_encode", n, [&](size_t m, size_t begin, size_t end) -> Status {
          KeyBuf& kb = kbufs[m];
          kb.local_ends.reserve(end - begin);
          for (size_t i = begin; i < end; ++i) {
            encode_key(i, &kb.buf);
            kb.local_ends.push_back(static_cast<uint32_t>(kb.buf.size()));
          }
          return Status::OK();
        }));
    std::vector<size_t> bases(kbufs.size());
    size_t total = 0;
    for (size_t m = 0; m < kbufs.size(); ++m) {
      bases[m] = total;
      total += kbufs[m].buf.size();
    }
    buf.resize(total);
    SILK_RETURN_IF_ERROR(RunTasks(
        "sort_concat", kbufs.size(), [&](size_t m) -> Status {
          const KeyBuf& kb = kbufs[m];
          if (!kb.buf.empty()) {
            std::memcpy(buf.data() + bases[m], kb.buf.data(), kb.buf.size());
          }
          const size_t begin = m * morsel;
          for (size_t local = 0; local < kb.local_ends.size(); ++local) {
            ends[begin + local + 1] = bases[m] + kb.local_ends[local];
          }
          return Status::OK();
        }));
  } else {
    buf.reserve(n * 9 * bound_keys.size());  // a numeric segment is 9 bytes
    for (size_t i = 0; i < n; ++i) {
      encode_key(i, &buf);
      ends[i + 1] = buf.size();
    }
  }
  stats_.keys_encoded += n;
  stats_.bytes_encoded += buf.size();
  const char* base = buf.data();
  // Sort flat records instead of a bare permutation: each record inlines
  // the first eight key bytes (big-endian, zero-padded) so the vast
  // majority of comparisons resolve on one integer compare without
  // touching the key buffer.
  struct SortRec {
    uint64_t prefix;
    uint64_t off;
    uint32_t len;
    uint32_t idx;
  };
  std::vector<SortRec> recs(n);
  auto build_recs = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const size_t off = ends[i];
      const size_t len = ends[i + 1] - off;
      const auto* p = reinterpret_cast<const unsigned char*>(base + off);
      const size_t m = len < 8 ? len : 8;
      uint64_t prefix = 0;
      for (size_t b = 0; b < m; ++b) prefix = (prefix << 8) | p[b];
      prefix <<= 8 * (8 - m);
      recs[i] = {prefix, off, static_cast<uint32_t>(len),
                 static_cast<uint32_t>(i)};
    }
  };
  auto rec_less = [base](const SortRec& a, const SortRec& b) {
    if (a.prefix != b.prefix) return a.prefix < b.prefix;
    if (a.len > 8 && b.len > 8) {
      const size_t m = (a.len < b.len ? a.len : b.len) - 8;
      const int c = std::memcmp(base + a.off + 8, base + b.off + 8, m);
      if (c != 0) return c < 0;
    }
    if (a.len != b.len) return a.len < b.len;
    // Index tiebreak keeps equal-key rows in input order — the
    // same result stable_sort gave, without its merge buffer.
    return a.idx < b.idx;
  };
  if (UseParallel(n)) {
    SILK_RETURN_IF_ERROR(RunMorsels(
        "sort_prefix", n, [&](size_t, size_t begin, size_t end) -> Status {
          build_recs(begin, end);
          return Status::OK();
        }));
    SILK_RETURN_IF_ERROR(ParallelSortMerge(
        &recs, static_cast<size_t>(opts_.parallelism), rec_less,
        [&](size_t count, const std::function<Status(size_t)>& fn) {
          return RunTasks("sort_runs", count, fn);
        }));
    std::vector<Tuple> sorted(n);
    SILK_RETURN_IF_ERROR(RunMorsels(
        "sort_gather", n, [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t i = begin; i < end; ++i) {
            sorted[i] = std::move(result->rows[recs[i].idx]);
          }
          return Status::OK();
        }));
    result->rows = std::move(sorted);
    stats_.rows_sorted += n;
    return Status::OK();
  }
  build_recs(0, n);
  std::sort(recs.begin(), recs.end(), rec_less);
  std::vector<Tuple> sorted;
  sorted.reserve(n);
  for (const SortRec& r : recs) {
    sorted.push_back(std::move(result->rows[r.idx]));
  }
  result->rows = std::move(sorted);
  stats_.rows_sorted += n;
  return Status::OK();
}

DatabaseExecutor::DatabaseExecutor(const Database* db) : db_(db) {}

DatabaseExecutor::~DatabaseExecutor() = default;

Result<std::vector<std::pair<std::string, uint64_t>>>
DatabaseExecutor::FetchTableVersions(const std::vector<std::string>& tables) {
  std::vector<std::pair<std::string, uint64_t>> versions;
  versions.reserve(tables.size());
  for (const std::string& name : tables) {
    SILK_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(name));
    versions.emplace_back(name, table->version());
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

void DatabaseExecutor::set_parallelism(int parallelism) {
  exec_options_.parallelism = parallelism < 1 ? 1 : parallelism;
  if (exec_options_.parallelism > 1) {
    // parallelism-1 workers: the dispatching thread claims morsels too.
    if (pool_ == nullptr ||
        pool_->workers() != exec_options_.parallelism - 1) {
      pool_ = std::make_unique<MorselPool>(exec_options_.parallelism - 1);
    }
    exec_options_.pool = pool_.get();
  } else {
    exec_options_.pool = nullptr;
    pool_.reset();
  }
  ResolveCounters();
}

void DatabaseExecutor::ResolveCounters() {
  if (registry_ == nullptr) {
    keys_encoded_counter_ = nullptr;
    key_bytes_counter_ = nullptr;
    morsels_counter_ = nullptr;
    fallbacks_counter_ = nullptr;
    return;
  }
  keys_encoded_counter_ =
      registry_->counter("silkroute_engine_keys_encoded_total");
  key_bytes_counter_ =
      registry_->counter("silkroute_engine_key_bytes_encoded_total");
  // Morsel metrics register only when this connection can actually run
  // parallel plans, so serial deployments expose exactly the metric set
  // they did before parallelism existed.
  if (exec_options_.parallelism > 1) {
    morsels_counter_ =
        registry_->counter("silkroute_engine_morsels_dispatched_total");
    fallbacks_counter_ =
        registry_->counter("silkroute_engine_parallel_fallbacks_total");
  } else {
    morsels_counter_ = nullptr;
    fallbacks_counter_ = nullptr;
  }
}

}  // namespace silkroute::engine
