#include "engine/resilient_executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/timer.h"

namespace silkroute::engine {

bool IsRetryableStatusCode(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

ResilientExecutor::ResilientExecutor(SqlExecutor* inner, RetryOptions options)
    : inner_(inner),
      options_(std::move(options)),
      jitter_(options_.jitter_seed) {
  options_.max_attempts = std::max(options_.max_attempts, 1);
  if (options_.metrics != nullptr) {
    attempts_total_ =
        options_.metrics->counter("silkroute_executor_attempts_total");
    retries_total_ =
        options_.metrics->counter("silkroute_executor_retries_total");
    attempt_us_ = options_.metrics->histogram("silkroute_executor_attempt_us");
    backoff_us_ = options_.metrics->histogram("silkroute_executor_backoff_us");
  }
}

void ResilientExecutor::Sleep(double ms) {
  if (ms <= 0) return;
  if (options_.sleep_fn) {
    options_.sleep_fn(ms);
  } else if (options_.cancel != nullptr) {
    // Interruptible: a shutdown wakes the sleeper instead of waiting out
    // the backoff (up to max_backoff_ms = 1 s by default).
    options_.cancel->SleepFor(ms);
  } else {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms));
  }
}

bool ResilientExecutor::ConsumeRetry() {
  if (options_.shared_budget != nullptr) {
    return options_.shared_budget->TryConsume();
  }
  if (budget_used_ >= options_.retry_budget) return false;
  ++budget_used_;
  return true;
}

double ResilientExecutor::DeadlineRemainingMs() const {
  if (!options_.has_deadline) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double, std::milli>(
             options_.deadline - std::chrono::steady_clock::now())
      .count();
}

Result<Relation> ResilientExecutor::ExecuteSql(std::string_view sql) {
  report_.queries.emplace_back();
  // The report may reallocate inside nested calls; index, don't hold a ref.
  size_t slot = report_.queries.size() - 1;
  report_.queries[slot].query_index = static_cast<int>(slot);
  report_.queries[slot].sql = std::string(sql);

  for (int attempt = 1;; ++attempt) {
    report_.queries[slot].attempts = attempt;

    // Clamp this attempt's timeout to the end-to-end deadline so a slow
    // attempt cannot overshoot the request budget.
    double timeout_ms = options_.query_deadline_ms;
    double remaining = DeadlineRemainingMs();
    if (std::isfinite(remaining)) {
      if (remaining <= 0) {
        Status expired = Status::Timeout(
            "deadline expired before attempt " + std::to_string(attempt) +
            " of query #" + std::to_string(slot));
        report_.queries[slot].final_status = expired;
        ++report_.queries[slot].timeout_attempts;
        return expired;
      }
      timeout_ms = timeout_ms > 0 ? std::min(timeout_ms, remaining)
                                  : remaining;
    }

    // One span per attempt, parented under the thread's current span (the
    // phase:query span); the inner executor and fault injection annotate
    // it through the thread-local while it is installed.
    obs::SpanHandle attempt_span =
        obs::Tracer::Child(options_.tracer, obs::CurrentSpan(), "attempt");
    attempt_span.AnnotateCount("attempt", static_cast<uint64_t>(attempt));
    Timer attempt_timer;
    Result<Relation> result = [&] {
      obs::ScopedCurrentSpan scope(&attempt_span);
      return inner_->ExecuteSqlWithDeadline(sql, timeout_ms);
    }();
    if (attempt_us_ != nullptr) {
      attempts_total_->Add();
      attempt_us_->RecordMicros(attempt_timer.ElapsedMicros());
    }
    attempt_span.Annotate(
        "status", StatusCodeToString(result.ok() ? StatusCode::kOk
                                                 : result.status().code()));
    attempt_span.End();
    if (result.ok()) {
      report_.queries[slot].final_status = Status::OK();
      return result;
    }
    Status status = result.status();
    report_.queries[slot].final_status = status;

    bool retryable = IsRetryableStatusCode(status.code());
    if (status.code() == StatusCode::kTimeout) {
      // A timeout is retried at most once: the deadline caps the query
      // itself, so a second timeout means the query is too heavy for the
      // source and the caller should degrade the plan instead.
      ++report_.queries[slot].timeout_attempts;
      if (report_.queries[slot].timeout_attempts > 1) retryable = false;
    }
    if (!retryable || attempt >= options_.max_attempts) return status;
    // A cancelled executor abandons retries and surfaces the last error:
    // the service is shutting down, nobody will consume a late success.
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return status;
    }

    if (!ConsumeRetry()) {
      int budget = options_.shared_budget != nullptr
                       ? options_.shared_budget->budget()
                       : options_.retry_budget;
      return Status::ResourceExhausted(
          "retry budget (" + std::to_string(budget) +
          ") exhausted at query #" + std::to_string(slot) +
          " attempt " + std::to_string(attempt) + "; last error: " +
          status.ToString());
    }

    double backoff =
        options_.initial_backoff_ms *
        std::pow(options_.backoff_multiplier, static_cast<double>(attempt - 1));
    backoff = std::min(backoff, options_.max_backoff_ms);
    // Full-range jitter in [0.5, 1.0]x keeps retries de-synchronized while
    // staying deterministic under the seed.
    backoff *= 0.5 + 0.5 * jitter_.NextDouble();
    // Sleeping past the deadline would waste the whole backoff on a doomed
    // request; fail it as a timeout right away.
    remaining = DeadlineRemainingMs();
    if (std::isfinite(remaining) && backoff >= remaining) {
      Status expired = Status::Timeout(
          "deadline would expire during the " + std::to_string(backoff) +
          " ms backoff of query #" + std::to_string(slot) + "; last error: " +
          status.ToString());
      report_.queries[slot].final_status = expired;
      ++report_.queries[slot].timeout_attempts;
      return expired;
    }
    report_.queries[slot].backoff_ms += backoff;
    if (retries_total_ != nullptr) {
      retries_total_->Add();
      backoff_us_->RecordMicros(backoff * 1000.0);
    }
    obs::SpanHandle backoff_span =
        obs::Tracer::Child(options_.tracer, obs::CurrentSpan(), "backoff");
    backoff_span.AnnotateMs("ms", backoff);
    Sleep(backoff);
    backoff_span.End();
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return status;
    }
  }
}

}  // namespace silkroute::engine
