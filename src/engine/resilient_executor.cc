#include "engine/resilient_executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace silkroute::engine {

bool IsRetryableStatusCode(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

ResilientExecutor::ResilientExecutor(SqlExecutor* inner, RetryOptions options)
    : inner_(inner),
      options_(std::move(options)),
      jitter_(options_.jitter_seed) {
  options_.max_attempts = std::max(options_.max_attempts, 1);
}

void ResilientExecutor::Sleep(double ms) {
  if (ms <= 0) return;
  if (options_.sleep_fn) {
    options_.sleep_fn(ms);
  } else {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms));
  }
}

Result<Relation> ResilientExecutor::ExecuteSql(std::string_view sql) {
  report_.queries.emplace_back();
  // The report may reallocate inside nested calls; index, don't hold a ref.
  size_t slot = report_.queries.size() - 1;
  report_.queries[slot].query_index = static_cast<int>(slot);
  report_.queries[slot].sql = std::string(sql);

  for (int attempt = 1;; ++attempt) {
    report_.queries[slot].attempts = attempt;
    inner_->set_timeout_ms(options_.query_deadline_ms);
    auto result = inner_->ExecuteSql(sql);
    if (result.ok()) {
      report_.queries[slot].final_status = Status::OK();
      return result;
    }
    Status status = result.status();
    report_.queries[slot].final_status = status;

    bool retryable = IsRetryableStatusCode(status.code());
    if (status.code() == StatusCode::kTimeout) {
      // A timeout is retried at most once: the deadline caps the query
      // itself, so a second timeout means the query is too heavy for the
      // source and the caller should degrade the plan instead.
      ++report_.queries[slot].timeout_attempts;
      if (report_.queries[slot].timeout_attempts > 1) retryable = false;
    }
    if (!retryable || attempt >= options_.max_attempts) return status;

    if (budget_used_ >= options_.retry_budget) {
      return Status::ResourceExhausted(
          "retry budget (" + std::to_string(options_.retry_budget) +
          ") exhausted at query #" + std::to_string(slot) +
          " attempt " + std::to_string(attempt) + "; last error: " +
          status.ToString());
    }
    ++budget_used_;

    double backoff =
        options_.initial_backoff_ms *
        std::pow(options_.backoff_multiplier, static_cast<double>(attempt - 1));
    backoff = std::min(backoff, options_.max_backoff_ms);
    // Full-range jitter in [0.5, 1.0]x keeps retries de-synchronized while
    // staying deterministic under the seed.
    backoff *= 0.5 + 0.5 * jitter_.NextDouble();
    report_.queries[slot].backoff_ms += backoff;
    Sleep(backoff);
  }
}

}  // namespace silkroute::engine
