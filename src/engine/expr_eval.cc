#include "engine/expr_eval.h"

#include <cstdlib>
#include <iostream>

namespace silkroute::engine {

namespace {

using sql::BinaryOp;

Tribool FromBool(bool b) { return b ? Tribool::kTrue : Tribool::kFalse; }

class ColumnBound final : public BoundExpr {
 public:
  explicit ColumnBound(size_t index) : index_(index) {}
  Value Eval(const Tuple& row) const override { return row[index_]; }

 private:
  size_t index_;
};

class LiteralBound final : public BoundExpr {
 public:
  explicit LiteralBound(Value v) : value_(std::move(v)) {}
  Value Eval(const Tuple& row) const override { return value_; }

 private:
  Value value_;
};

class BinaryBound final : public BoundExpr {
 public:
  BinaryBound(BinaryOp op, BoundExprPtr left, BoundExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Value Eval(const Tuple& row) const override {
    switch (op_) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr: {
        Tribool t = Test(row);
        if (t == Tribool::kUnknown) return Value::Null();
        return Value::Int64(t == Tribool::kTrue ? 1 : 0);
      }
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        Tribool t = Test(row);
        if (t == Tribool::kUnknown) return Value::Null();
        return Value::Int64(t == Tribool::kTrue ? 1 : 0);
      }
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv: {
        Value l = left_->Eval(row);
        Value r = right_->Eval(row);
        if (l.is_null() || r.is_null()) return Value::Null();
        if (l.is_int64() && r.is_int64() && op_ != BinaryOp::kDiv) {
          int64_t a = l.AsInt64(), b = r.AsInt64();
          switch (op_) {
            case BinaryOp::kAdd:
              return Value::Int64(a + b);
            case BinaryOp::kSub:
              return Value::Int64(a - b);
            case BinaryOp::kMul:
              return Value::Int64(a * b);
            default:
              break;
          }
        }
        double a = l.AsNumeric(), b = r.AsNumeric();
        switch (op_) {
          case BinaryOp::kAdd:
            return Value::Double(a + b);
          case BinaryOp::kSub:
            return Value::Double(a - b);
          case BinaryOp::kMul:
            return Value::Double(a * b);
          case BinaryOp::kDiv:
            return Value::Double(b == 0 ? 0 : a / b);
          default:
            break;
        }
      }
    }
    return Value::Null();
  }

  Tribool Test(const Tuple& row) const override {
    switch (op_) {
      case BinaryOp::kAnd: {
        Tribool l = left_->Test(row);
        if (l == Tribool::kFalse) return Tribool::kFalse;
        Tribool r = right_->Test(row);
        if (r == Tribool::kFalse) return Tribool::kFalse;
        if (l == Tribool::kUnknown || r == Tribool::kUnknown) {
          return Tribool::kUnknown;
        }
        return Tribool::kTrue;
      }
      case BinaryOp::kOr: {
        Tribool l = left_->Test(row);
        if (l == Tribool::kTrue) return Tribool::kTrue;
        Tribool r = right_->Test(row);
        if (r == Tribool::kTrue) return Tribool::kTrue;
        if (l == Tribool::kUnknown || r == Tribool::kUnknown) {
          return Tribool::kUnknown;
        }
        return Tribool::kFalse;
      }
      default: {
        Value l = left_->Eval(row);
        Value r = right_->Eval(row);
        if (l.is_null() || r.is_null()) return Tribool::kUnknown;
        int c = l.Compare(r);
        switch (op_) {
          case BinaryOp::kEq:
            return FromBool(c == 0);
          case BinaryOp::kNe:
            return FromBool(c != 0);
          case BinaryOp::kLt:
            return FromBool(c < 0);
          case BinaryOp::kLe:
            return FromBool(c <= 0);
          case BinaryOp::kGt:
            return FromBool(c > 0);
          case BinaryOp::kGe:
            return FromBool(c >= 0);
          default: {
            // Arithmetic used as predicate: nonzero is true.
            Value v = Eval(row);
            if (v.is_null()) return Tribool::kUnknown;
            return FromBool(v.AsNumeric() != 0);
          }
        }
      }
    }
  }

 private:
  BinaryOp op_;
  BoundExprPtr left_;
  BoundExprPtr right_;
};

class NotBound final : public BoundExpr {
 public:
  explicit NotBound(BoundExprPtr operand) : operand_(std::move(operand)) {}

  Value Eval(const Tuple& row) const override {
    Tribool t = Test(row);
    if (t == Tribool::kUnknown) return Value::Null();
    return Value::Int64(t == Tribool::kTrue ? 1 : 0);
  }

  Tribool Test(const Tuple& row) const override {
    Tribool t = operand_->Test(row);
    if (t == Tribool::kUnknown) return Tribool::kUnknown;
    return t == Tribool::kTrue ? Tribool::kFalse : Tribool::kTrue;
  }

 private:
  BoundExprPtr operand_;
};

class IsNullBound final : public BoundExpr {
 public:
  IsNullBound(BoundExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}

  Value Eval(const Tuple& row) const override {
    return Value::Int64(Test(row) == Tribool::kTrue ? 1 : 0);
  }

  Tribool Test(const Tuple& row) const override {
    bool is_null = operand_->Eval(row).is_null();
    return FromBool(negated_ ? !is_null : is_null);
  }

 private:
  BoundExprPtr operand_;
  bool negated_;
};

}  // namespace

Tribool BoundExpr::Test(const Tuple& row) const {
  Value v = Eval(row);
  if (v.is_null()) return Tribool::kUnknown;
  if (v.is_string()) return Tribool::kTrue;  // non-null string is truthy
  return v.AsNumeric() != 0 ? Tribool::kTrue : Tribool::kFalse;
}

Result<BoundExprPtr> BindExpr(const sql::Expr& expr, const RelSchema& schema) {
  using Kind = sql::Expr::Kind;
  switch (expr.kind()) {
    case Kind::kColumnRef: {
      const auto& c = static_cast<const sql::ColumnRefExpr&>(expr);
      SILK_ASSIGN_OR_RETURN(size_t idx, schema.Resolve(c.qualifier(), c.name()));
      return BoundExprPtr(std::make_unique<ColumnBound>(idx));
    }
    case Kind::kLiteral: {
      const auto& l = static_cast<const sql::LiteralExpr&>(expr);
      return BoundExprPtr(std::make_unique<LiteralBound>(l.value()));
    }
    case Kind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      SILK_ASSIGN_OR_RETURN(BoundExprPtr left, BindExpr(b.left(), schema));
      SILK_ASSIGN_OR_RETURN(BoundExprPtr right, BindExpr(b.right(), schema));
      return BoundExprPtr(std::make_unique<BinaryBound>(
          b.op(), std::move(left), std::move(right)));
    }
    case Kind::kNot: {
      const auto& n = static_cast<const sql::NotExpr&>(expr);
      SILK_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(n.operand(), schema));
      return BoundExprPtr(std::make_unique<NotBound>(std::move(operand)));
    }
    case Kind::kIsNull: {
      const auto& n = static_cast<const sql::IsNullExpr&>(expr);
      SILK_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(n.operand(), schema));
      return BoundExprPtr(
          std::make_unique<IsNullBound>(std::move(operand), n.negated()));
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace silkroute::engine
