// RelSchema: the schema of an intermediate relation during execution —
// a list of (qualifier, name) output columns with resolution rules for
// qualified and unqualified column references.
#ifndef SILKROUTE_ENGINE_REL_SCHEMA_H_
#define SILKROUTE_ENGINE_REL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace silkroute::engine {

struct OutputColumn {
  std::string qualifier;  // table binding name; empty for computed columns
  std::string name;

  std::string FullName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

class RelSchema {
 public:
  RelSchema() = default;
  explicit RelSchema(std::vector<OutputColumn> columns)
      : columns_(std::move(columns)) {}

  const std::vector<OutputColumn>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const OutputColumn& column(size_t i) const { return columns_[i]; }

  void Add(OutputColumn col) { columns_.push_back(std::move(col)); }

  /// Resolves a column reference. A qualified ref `q.n` matches columns with
  /// qualifier q and name n. An unqualified ref `n` matches any column named
  /// n; it is an error if that is ambiguous.
  Result<size_t> Resolve(const std::string& qualifier,
                         const std::string& name) const;

  /// Concatenation (for joins): right columns appended after left.
  static RelSchema Concat(const RelSchema& left, const RelSchema& right);

  /// Re-qualifies every column with `alias` (for derived tables).
  RelSchema WithQualifier(const std::string& alias) const;

  std::string ToString() const;

 private:
  std::vector<OutputColumn> columns_;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_REL_SCHEMA_H_
