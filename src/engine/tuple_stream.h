// TupleStream: the middle-ware's cursor over a query result, modelled after
// JDBC. The paper's "total time" includes binding and transferring every
// result tuple to the client; we reproduce that cost with a real wire
// round-trip: the server side serializes each row to a length-prefixed
// binary format, and Next() deserializes it on the client side. The work is
// proportional to bytes moved (NULL padding included), exactly the quantity
// that penalizes wide unified plans in the paper.
#ifndef SILKROUTE_ENGINE_TUPLE_STREAM_H_
#define SILKROUTE_ENGINE_TUPLE_STREAM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"
#include "relational/tuple.h"

namespace silkroute::engine {

/// Serializes one tuple to the wire format, appending to `out`.
void SerializeTuple(const Tuple& tuple, std::string* out);

/// Deserializes one tuple starting at `*offset`; advances `*offset`.
Result<Tuple> DeserializeTuple(const std::string& buffer, size_t* offset);

class TupleStream {
 public:
  /// Takes a materialized result and runs the server-side binding
  /// (serialization) immediately — the stream then owns only wire bytes.
  explicit TupleStream(Relation relation);

  /// Adopts already-bound wire bytes shared with a cache entry
  /// (engine/result_cache.h): a cache hit constructs its stream without
  /// re-executing *or* re-serializing, and without copying the buffer —
  /// the shared_ptr keeps the bytes alive past eviction.
  TupleStream(RelSchema schema, std::shared_ptr<const std::string> wire,
              size_t num_tuples)
      : schema_(std::move(schema)),
        buffer_(std::move(wire)),
        num_tuples_(num_tuples) {}

  const RelSchema& schema() const { return schema_; }

  /// Client-side fetch: deserializes and returns the next tuple, or
  /// nullopt at end of stream.
  std::optional<Tuple> Next();

  /// Rewinds to the first tuple (used by tests).
  void Rewind() { offset_ = 0; }

  size_t wire_bytes() const { return buffer_->size(); }
  size_t num_tuples() const { return num_tuples_; }

  /// The bound wire buffer, shareable with a cache entry at no copy.
  const std::shared_ptr<const std::string>& shared_wire() const {
    return buffer_;
  }

 private:
  RelSchema schema_;
  std::shared_ptr<const std::string> buffer_;
  size_t offset_ = 0;
  size_t num_tuples_ = 0;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_TUPLE_STREAM_H_
