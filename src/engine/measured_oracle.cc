#include "engine/measured_oracle.h"

#include <algorithm>

namespace silkroute::engine {

Result<QueryEstimate> MeasuredCostOracle::EstimateSql(std::string_view sql) {
  // The synthetic estimate is always computed: it keeps the request
  // accounting of the paper's Sec. 5.1 comparable across runs, and it is
  // the fallback for anything the workload has not measured yet.
  SILK_ASSIGN_OR_RETURN(QueryEstimate est, synthetic_->EstimateSql(sql));
  if (profile_ == nullptr) return est;
  auto observed = profile_->Lookup(sql);
  if (!observed.has_value() ||
      observed->query.count < options_.min_samples) {
    return est;
  }
  ++overlay_hits_;
  double measured_ms = observed->query.ewma_ms + observed->bind.ewma_ms +
                       observed->tag.ewma_ms;
  est.cost = measured_ms * options_.cost_units_per_ms;
  est.rows = observed->rows_ewma;
  // Preserve data_size() == observed wire bytes: width = bytes / rows.
  est.width_bytes = observed->rows_ewma > 0
                        ? observed->wire_bytes_ewma / observed->rows_ewma
                        : observed->wire_bytes_ewma;
  return est;
}

}  // namespace silkroute::engine
