// Table statistics: row counts, per-column distinct counts, widths, and null
// fractions. These feed the CostEstimator, which plays the role of the
// target RDBMS's optimizer in the paper's greedy plan-generation algorithm.
#ifndef SILKROUTE_ENGINE_STATS_H_
#define SILKROUTE_ENGINE_STATS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace silkroute::engine {

struct ColumnStats {
  size_t distinct_count = 0;
  double avg_width_bytes = 8.0;
  double null_fraction = 0.0;
};

struct TableStats {
  size_t row_count = 0;
  std::vector<ColumnStats> columns;  // aligned with the table schema
  double avg_row_width_bytes = 0.0;
};

/// Statistics for all tables of one database instance, collected with a
/// single exact pass (the analogue of ANALYZE).
class DatabaseStats {
 public:
  static DatabaseStats Collect(const Database& db);

  bool HasTable(const std::string& table) const {
    return tables_.count(table) > 0;
  }
  Result<const TableStats*> GetTable(const std::string& table) const;

  /// Distinct count of `table.column`; `fallback` if unknown.
  double DistinctCount(const std::string& table, const std::string& column,
                       double fallback = 10.0) const;

  /// Per-column statistics, or nullptr if unknown.
  const ColumnStats* GetColumn(const std::string& table,
                               const std::string& column) const;

  /// Row count of `table`, 0 if unknown.
  double RowCount(const std::string& table) const;

 private:
  std::map<std::string, TableStats> tables_;
  std::map<std::string, std::map<std::string, size_t>> column_index_;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_STATS_H_
