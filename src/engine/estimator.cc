#include "engine/estimator.h"

#include <algorithm>
#include <cmath>

#include "sql/parser.h"

namespace silkroute::engine {

namespace {

using sql::BinaryOp;
using sql::Expr;

constexpr double kDefaultDistinct = 10.0;
constexpr double kDefaultWidth = 8.0;
constexpr double kMiscSelectivity = 1.0 / 3.0;

double SortCost(double rows, double width) {
  if (rows < 2) return 0;
  return rows * std::log2(rows) * (width / 64.0);
}

}  // namespace

Result<QueryEstimate> CostEstimator::EstimateSql(std::string_view sql_text) {
  SILK_ASSIGN_OR_RETURN(sql::QueryPtr q, sql::ParseQuery(sql_text));
  return Estimate(*q);
}

Result<QueryEstimate> CostEstimator::Estimate(const sql::Query& query) {
  ++num_requests_;
  SILK_ASSIGN_OR_RETURN(EstRel rel, EstimateQueryRel(query));
  QueryEstimate out;
  out.rows = rel.rows;
  out.cost = rel.cost;
  out.width_bytes = rel.width;
  return out;
}

Result<CostEstimator::EstRel> CostEstimator::EstimateQueryRel(
    const sql::Query& query) {
  if (query.cores.empty()) {
    return Status::InvalidArgument("query has no SELECT cores");
  }
  EstRel total;
  bool first = true;
  for (const auto& core : query.cores) {
    SILK_ASSIGN_OR_RETURN(EstRel part, EstimateCore(core));
    if (first) {
      total = std::move(part);
      first = false;
    } else {
      total.rows += part.rows;
      total.cost += part.cost;
      total.width = std::max(total.width, part.width);
    }
  }
  if (!query.order_by.empty()) {
    total.cost += SortCost(total.rows, total.width);
  }
  return total;
}

Result<CostEstimator::EstRel> CostEstimator::EstimateCore(
    const sql::SelectCore& core) {
  // Estimate the FROM product.
  EstRel combined;
  combined.rows = 1;
  for (const auto& ref : core.from) {
    SILK_ASSIGN_OR_RETURN(EstRel item, EstimateTableRef(*ref));
    combined.cost += item.cost + item.rows;  // scan / hash-build work
    combined.rows *= std::max(item.rows, 1.0);
    combined.width += item.width;
    for (const auto& c : item.schema.columns()) combined.schema.Add(c);
    combined.prov.insert(combined.prov.end(), item.prov.begin(),
                         item.prov.end());
  }

  // Apply WHERE selectivity.
  if (core.where) {
    std::vector<const Expr*> conjuncts;
    sql::CollectConjuncts(*core.where, &conjuncts);
    for (const Expr* c : conjuncts) {
      combined.rows *= Selectivity(*c, combined);
    }
    combined.rows = std::max(combined.rows, 1.0);
  }
  combined.cost += combined.rows;  // output materialization

  if (core.select_star) return combined;

  // Projection: recompute width, schema, and provenance.
  EstRel out;
  out.rows = combined.rows;
  out.cost = combined.cost;
  for (const auto& item : core.select_list) {
    Provenance prov;
    double width = kDefaultWidth;
    std::string out_name;
    std::string out_qual;
    if (item.expr->kind() == Expr::Kind::kColumnRef) {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(*item.expr);
      auto idx = combined.schema.Resolve(ref.qualifier(), ref.name());
      if (idx.ok()) {
        prov = combined.prov[*idx];
        width = WidthOf(combined, ref);
      }
      out_name = item.alias.empty() ? ref.name() : item.alias;
      if (item.alias.empty()) out_qual = ref.qualifier();
    } else {
      if (item.expr->kind() == Expr::Kind::kLiteral) {
        const auto& lit = static_cast<const sql::LiteralExpr&>(*item.expr);
        width = static_cast<double>(lit.value().ByteSize());
      }
      out_name = item.alias.empty()
                     ? "col" + std::to_string(out.schema.size() + 1)
                     : item.alias;
    }
    out.schema.Add({out_qual, out_name});
    out.prov.push_back(prov);
    out.width += width;
  }
  if (core.distinct) {
    // Cap at the product of per-column distinct counts, and charge the
    // hashing pass.
    double cap = 1;
    bool have_cap = false;
    for (const auto& item : core.select_list) {
      if (item.expr->kind() != Expr::Kind::kColumnRef) continue;
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(*item.expr);
      cap *= std::max(DistinctOf(combined, ref), 1.0);
      have_cap = true;
      if (cap > out.rows) break;  // no tighter than the input
    }
    if (have_cap) out.rows = std::min(out.rows, cap);
    out.cost += out.rows;
  }
  return out;
}

Result<CostEstimator::EstRel> CostEstimator::EstimateTableRef(
    const sql::TableRef& ref) {
  switch (ref.kind()) {
    case sql::TableRef::Kind::kBaseTable: {
      const auto& base = static_cast<const sql::BaseTableRef&>(ref);
      SILK_ASSIGN_OR_RETURN(const TableSchema* schema,
                            catalog_->GetTable(base.table()));
      EstRel rel;
      rel.rows = stats_->RowCount(base.table());
      rel.cost = rel.rows;  // scan
      for (const auto& col : schema->columns()) {
        rel.schema.Add({base.binding_name(), col.name});
        rel.prov.emplace_back(std::make_pair(base.table(), col.name));
        const ColumnStats* cs = stats_->GetColumn(base.table(), col.name);
        rel.width += cs != nullptr ? cs->avg_width_bytes : kDefaultWidth;
      }
      return rel;
    }
    case sql::TableRef::Kind::kDerivedTable: {
      const auto& derived = static_cast<const sql::DerivedTableRef&>(ref);
      SILK_ASSIGN_OR_RETURN(EstRel rel, EstimateQueryRel(derived.query()));
      rel.schema = rel.schema.WithQualifier(derived.alias());
      return rel;
    }
    case sql::TableRef::Kind::kJoin: {
      const auto& join = static_cast<const sql::JoinRef&>(ref);
      SILK_ASSIGN_OR_RETURN(EstRel left, EstimateTableRef(join.left()));
      SILK_ASSIGN_OR_RETURN(EstRel right, EstimateTableRef(join.right()));
      EstRel out;
      out.schema = RelSchema::Concat(left.schema, right.schema);
      out.prov = left.prov;
      out.prov.insert(out.prov.end(), right.prov.begin(), right.prov.end());
      out.width = left.width + right.width;
      double sel = Selectivity(join.on(), out);
      double inner_rows =
          std::max(left.rows, 1.0) * std::max(right.rows, 1.0) * sel;
      out.rows = join.join_type() == sql::JoinType::kLeftOuter
                     ? std::max(left.rows, inner_rows)
                     : inner_rows;
      out.rows = std::max(out.rows, 1.0);
      // Hash join: build right, probe left, emit output.
      out.cost = left.cost + right.cost + left.rows + right.rows + out.rows;
      return out;
    }
  }
  return Status::Internal("unknown table ref kind");
}

double CostEstimator::Selectivity(const sql::Expr& pred,
                                  const EstRel& rel) const {
  switch (pred.kind()) {
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(pred);
      if (b.op() == BinaryOp::kOr) {
        std::vector<const Expr*> disjuncts;
        sql::CollectDisjuncts(pred, &disjuncts);
        double s = 0;
        for (const Expr* d : disjuncts) s += Selectivity(*d, rel);
        return std::min(s, 1.0);
      }
      if (b.op() == BinaryOp::kAnd) {
        std::vector<const Expr*> conjuncts;
        sql::CollectConjuncts(pred, &conjuncts);
        double s = 1;
        for (const Expr* c : conjuncts) s *= Selectivity(*c, rel);
        return s;
      }
      if (b.op() == BinaryOp::kEq) {
        const bool l_col = b.left().kind() == Expr::Kind::kColumnRef;
        const bool r_col = b.right().kind() == Expr::Kind::kColumnRef;
        if (l_col && r_col) {
          double dl = DistinctOf(
              rel, static_cast<const sql::ColumnRefExpr&>(b.left()));
          double dr = DistinctOf(
              rel, static_cast<const sql::ColumnRefExpr&>(b.right()));
          return 1.0 / std::max({dl, dr, 1.0});
        }
        if (l_col || r_col) {
          const auto& ref = static_cast<const sql::ColumnRefExpr&>(
              l_col ? b.left() : b.right());
          return 1.0 / std::max(DistinctOf(rel, ref), 1.0);
        }
        return kMiscSelectivity;
      }
      return kMiscSelectivity;
    }
    case Expr::Kind::kIsNull:
      return kMiscSelectivity;
    case Expr::Kind::kNot:
      return std::max(
          0.0, 1.0 - Selectivity(
                         static_cast<const sql::NotExpr&>(pred).operand(),
                         rel));
    default:
      return kMiscSelectivity;
  }
}

double CostEstimator::DistinctOf(const EstRel& rel,
                                 const sql::ColumnRefExpr& ref) const {
  auto idx = rel.schema.Resolve(ref.qualifier(), ref.name());
  if (!idx.ok()) return kDefaultDistinct;
  const Provenance& p = rel.prov[*idx];
  if (!p) return kDefaultDistinct;
  return stats_->DistinctCount(p->first, p->second, kDefaultDistinct);
}

double CostEstimator::WidthOf(const EstRel& rel,
                              const sql::ColumnRefExpr& ref) const {
  auto idx = rel.schema.Resolve(ref.qualifier(), ref.name());
  if (!idx.ok()) return kDefaultWidth;
  const Provenance& p = rel.prov[*idx];
  if (!p) return kDefaultWidth;
  const ColumnStats* cs = stats_->GetColumn(p->first, p->second);
  return cs != nullptr ? cs->avg_width_bytes : kDefaultWidth;
}

}  // namespace silkroute::engine
