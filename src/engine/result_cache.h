// ResultCache: the component-query result cache behind incremental view
// maintenance (DESIGN.md §15). The middle-ware scenario is read-heavy —
// one materialized XML view published over and over against slowly-changing
// relational bases — so re-executing every component query on every publish
// wastes almost all of the work. This cache remembers, per component query,
// the *bound* result (the TupleStream's wire bytes, serialization already
// paid) keyed by the normalized SQL text plus the version vector of the
// tables the query names. Table versions are monotonic mutation counters
// (relational/table.h), so any write to a named table changes the key and
// the stale entry simply stops being reachable: invalidation is structural,
// never an explicit (and racy) purge.
//
// Two entry levels share one store and one byte budget:
//
//  - fragment entries ('F' keyspace): one component query's RelSchema +
//    wire bytes + tuple count. A hit builds a TupleStream that *borrows*
//    the bytes (shared_ptr), skipping SQL execution and binding;
//  - document entries ('D' keyspace): the finished XML of a whole publish,
//    keyed by the plan fingerprint (every component's normalized SQL plus
//    the tagging options) and the full version vector. A hit streams the
//    document straight out — the unchanged-view republish costs a map
//    lookup and a write.
//
// A republish after a partial delta therefore misses on the document key,
// re-runs only the component queries whose tables bumped, serves every
// untouched component from its fragment entry, and lets the deterministic
// tagger merge splice cached and fresh fragments back into one document —
// byte-identical to a cold publish because the tagger consumes identical
// streams in identical order either way.
//
// Keys are packed with the order-preserving key codec (DESIGN.md §10):
// self-delimiting segments, so (sql, table, version, table, version...)
// tuples can never collide across boundaries. Entries are immutable once
// inserted (shared_ptr<const>), which is what makes concurrent readers +
// eviction safe: an evicted entry lives on until its last borrowing
// TupleStream drops it.
//
// Thread-safe via sharding: keys hash across kShards independent maps,
// each with its own mutex, LRU list, and slice of the byte budget, so
// 8-worker PublishingService traffic does not serialize on one lock.
// Eviction is LRU with a frequency second chance: a tail entry that was
// hit since its last brush with eviction gets its frequency halved and
// moves back to the front; cold entries leave immediately.
#ifndef SILKROUTE_ENGINE_RESULT_CACHE_H_
#define SILKROUTE_ENGINE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/rel_schema.h"
#include "obs/metrics.h"

namespace silkroute::engine {

/// (table name, Table::version()) pairs, sorted by name — the freshness
/// half of every cache key. Executors produce it (SqlExecutor::
/// FetchTableVersions); remote backends ship it over the wire.
using TableVersionVector = std::vector<std::pair<std::string, uint64_t>>;

/// One immutable cached payload. Fragment entries use schema / bytes /
/// num_tuples; document entries use bytes (the XML) plus the counters the
/// publisher needs to rebuild PlanMetrics on a hit (rows, wire_bytes, ...,
/// packed as name/value pairs so the engine layer stays ignorant of the
/// publisher's metric struct).
struct CacheEntry {
  RelSchema schema;
  std::shared_ptr<const std::string> bytes;
  size_t num_tuples = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;

  size_t ByteSize() const;
};

class ResultCache {
 public:
  struct Options {
    /// Total byte budget across all shards. Entries larger than one
    /// shard's slice are rejected at admission (never admitted only to
    /// evict everything else).
    size_t budget_bytes = 64ull << 20;
    size_t shards = 8;
    /// Mirrors silkroute_cache_* series (borrowed, may be null).
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit ResultCache(Options options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Packed fragment key: 'F' + encoded normalized SQL + encoded (table,
  /// version) segments. `sql` must already be normalized (NormalizeSql);
  /// `versions` must be sorted by table name.
  static std::string FragmentKey(std::string_view normalized_sql,
                                 const TableVersionVector& versions);

  /// Packed document key: 'D' + encoded plan fingerprint (the publisher
  /// concatenates every component's normalized SQL and the tagging
  /// options) + encoded (table, version) segments over *all* tables the
  /// plan touches.
  static std::string DocumentKey(std::string_view plan_fingerprint,
                                 const TableVersionVector& versions);

  /// Returns the entry (bumping its recency/frequency) or null on miss.
  std::shared_ptr<const CacheEntry> Lookup(const std::string& key);

  /// Admits `entry` under `key`, evicting colder entries if the shard is
  /// over budget. Re-inserting an existing key replaces the payload.
  /// Oversized entries (> shard budget) are dropped, counted in
  /// admission_rejects.
  void Insert(const std::string& key, CacheEntry entry);

  /// Counts cached fragments spliced into a republished document (the
  /// incremental-maintenance path's signature metric).
  void RecordSplices(uint64_t n);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t admission_rejects = 0;
    uint64_t splices = 0;
    size_t resident_bytes = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  size_t budget_bytes() const { return options_.budget_bytes; }

 private:
  struct Node {
    std::string key;
    std::shared_ptr<const CacheEntry> entry;
    size_t bytes = 0;
    uint32_t freq = 0;
  };
  struct Shard {
    std::mutex mu;
    std::list<Node> lru;  // front = most recent
    std::unordered_map<std::string_view, std::list<Node>::iterator> index;
    size_t resident_bytes = 0;
  };

  Shard& ShardFor(const std::string& key);

  const Options options_;
  const size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> splices_{0};

  // Registry mirrors (null when metrics are disabled).
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;  // cumulative bytes admitted
  obs::Counter* m_splices_ = nullptr;
  obs::Gauge* m_resident_ = nullptr;
  obs::Gauge* m_entries_ = nullptr;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_RESULT_CACHE_H_
