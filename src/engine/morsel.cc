#include "engine/morsel.h"

#include <algorithm>

namespace silkroute::engine {

MorselPool::MorselPool(int workers) {
  threads_.reserve(workers > 0 ? static_cast<size_t>(workers) : 0);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

MorselPool::~MorselPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void MorselPool::RunSome(Batch* batch) {
  for (;;) {
    const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->n) return;
    Status s = (*batch->fn)(i);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(batch->mu);
      if (batch->first_error.ok() || i < batch->first_error_index) {
        batch->first_error = std::move(s);
        batch->first_error_index = i;
      }
    }
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch->n) {
      // Last task: wake the submitter. The lock pairs with the submitter's
      // predicate check so the notify cannot slip between its test and its
      // wait.
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->cv.notify_all();
    }
  }
}

void MorselPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;  // active batches drain through their callers
      batch = queue_.front();
      if (batch->next.load(std::memory_order_relaxed) >= batch->n) {
        // Fully claimed; still running on other threads, but there is
        // nothing left to pick up.
        queue_.pop_front();
        continue;
      }
    }
    RunSome(batch.get());
  }
}

Status MorselPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (threads_.empty() || n == 1) {
    // Degenerate batch: run inline, keeping first-error-by-index.
    for (size_t i = 0; i < n; ++i) {
      Status s = fn(i);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(batch);
  }
  cv_.notify_all();
  RunSome(batch.get());  // the caller is a lane too: the batch never starves
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&batch] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
  }
  {
    // The batch may already have been popped by a worker that saw it fully
    // claimed; erase is a no-op then.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(queue_.begin(), queue_.end(), batch);
    if (it != queue_.end()) queue_.erase(it);
  }
  return std::move(batch->first_error);
}

}  // namespace silkroute::engine
