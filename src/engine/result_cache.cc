#include "engine/result_cache.h"

#include <algorithm>
#include <functional>

#include "engine/key_codec.h"
#include "relational/value.h"

namespace silkroute::engine {

namespace {

/// Fixed per-entry overhead charged against the budget: list node, map
/// slot, shared_ptr control block. An estimate — the budget bounds order
/// of magnitude, not malloc bytes.
constexpr size_t kEntryOverhead = 128;

/// One packed key from a namespace byte, a text segment, and the version
/// vector. EncodeValue's segments are self-delimiting (DESIGN.md §10), so
/// (text, t1, v1, t2, v2, ...) tuples can never collide across segment
/// boundaries, and two keys are byte-equal iff every part matches.
std::string PackKey(char space, std::string_view text,
                    const TableVersionVector& versions) {
  std::string key;
  key.reserve(1 + text.size() + versions.size() * 24 + 16);
  key.push_back(space);
  EncodeValue(Value::String(std::string(text)), &key);
  for (const auto& [table, version] : versions) {
    EncodeValue(Value::String(table), &key);
    EncodeValue(Value::Int64(static_cast<int64_t>(version)), &key);
  }
  return key;
}

}  // namespace

size_t CacheEntry::ByteSize() const {
  size_t total = bytes != nullptr ? bytes->size() : 0;
  for (const auto& col : schema.columns()) {
    total += col.qualifier.size() + col.name.size() + 8;
  }
  for (const auto& [name, value] : counters) {
    (void)value;
    total += name.size() + 16;
  }
  return total;
}

ResultCache::ResultCache(Options options)
    : options_(options),
      shard_budget_(options.budget_bytes /
                    std::max<size_t>(1, options.shards)) {
  size_t n = std::max<size_t>(1, options_.shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics;
    m_hits_ = reg->counter("silkroute_cache_hits_total");
    m_misses_ = reg->counter("silkroute_cache_misses_total");
    m_evictions_ = reg->counter("silkroute_cache_evictions_total");
    m_bytes_ = reg->counter("silkroute_cache_bytes_total");
    m_splices_ = reg->counter("silkroute_cache_splices_total");
    m_resident_ = reg->gauge("silkroute_cache_resident_bytes");
    m_entries_ = reg->gauge("silkroute_cache_entries");
  }
}

std::string ResultCache::FragmentKey(std::string_view normalized_sql,
                                     const TableVersionVector& versions) {
  return PackKey('F', normalized_sql, versions);
}

std::string ResultCache::DocumentKey(std::string_view plan_fingerprint,
                                     const TableVersionVector& versions) {
  return PackKey('D', plan_fingerprint, versions);
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>()(key);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const CacheEntry> ResultCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(std::string_view(key));
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (m_misses_ != nullptr) m_misses_->Add(1);
    return nullptr;
  }
  auto node = it->second;
  if (node->freq < 255) ++node->freq;
  shard.lru.splice(shard.lru.begin(), shard.lru, node);
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (m_hits_ != nullptr) m_hits_->Add(1);
  return node->entry;
}

void ResultCache::Insert(const std::string& key, CacheEntry entry) {
  size_t bytes = key.size() + entry.ByteSize() + kEntryOverhead;
  if (bytes > shard_budget_) {
    // Admission control: an entry bigger than a whole shard would only be
    // admitted by evicting everything else — not worth it.
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto shared = std::make_shared<const CacheEntry>(std::move(entry));
  Shard& shard = ShardFor(key);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(std::string_view(key));
    if (it != shard.index.end()) {
      // Replace in place (same key, refreshed payload — e.g. a re-publish
      // racing another coordinator on the same version vector).
      auto node = it->second;
      shard.resident_bytes -= node->bytes;
      shard.resident_bytes += bytes;
      if (m_resident_ != nullptr) {
        m_resident_->Add(static_cast<int64_t>(bytes) -
                         static_cast<int64_t>(node->bytes));
      }
      node->entry = std::move(shared);
      node->bytes = bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, node);
    } else {
      shard.lru.push_front(Node{key, std::move(shared), bytes, 0});
      shard.index.emplace(std::string_view(shard.lru.front().key),
                          shard.lru.begin());
      shard.resident_bytes += bytes;
      if (m_resident_ != nullptr) m_resident_->Add(static_cast<int64_t>(bytes));
      if (m_entries_ != nullptr) m_entries_->Add(1);
    }
    // Evict from the cold tail until back under budget. A tail entry hit
    // since its last scan gets a second chance (frequency halves, moves to
    // the front); each pass strictly decreases total frequency, so the
    // loop terminates.
    while (shard.resident_bytes > shard_budget_ && !shard.lru.empty()) {
      Node& tail = shard.lru.back();
      if (tail.freq > 1 && &tail != &shard.lru.front()) {
        tail.freq /= 2;
        shard.lru.splice(shard.lru.begin(), shard.lru,
                         std::prev(shard.lru.end()));
        continue;
      }
      shard.resident_bytes -= tail.bytes;
      if (m_resident_ != nullptr) {
        m_resident_->Add(-static_cast<int64_t>(tail.bytes));
      }
      if (m_entries_ != nullptr) m_entries_->Add(-1);
      shard.index.erase(std::string_view(tail.key));
      shard.lru.pop_back();
      ++evicted;
    }
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (m_bytes_ != nullptr) m_bytes_->Add(bytes);
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (m_evictions_ != nullptr) m_evictions_->Add(evicted);
  }
}

void ResultCache::RecordSplices(uint64_t n) {
  if (n == 0) return;
  splices_.fetch_add(n, std::memory_order_relaxed);
  if (m_splices_ != nullptr) m_splices_->Add(n);
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  s.splices = splices_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.resident_bytes += shard->resident_bytes;
    s.entries += shard->lru.size();
  }
  return s;
}

}  // namespace silkroute::engine
