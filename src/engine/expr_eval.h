// Expression compilation & evaluation against a RelSchema.
//
// A BoundExpr is an sql::Expr whose column references have been resolved to
// row indices once, so per-row evaluation does no name lookups.
//
// NULL semantics: comparisons involving NULL are "unknown", which predicates
// treat as false (SQL's WHERE semantics); arithmetic with NULL yields NULL;
// IS NULL / IS NOT NULL observe NULLs directly; NOT(unknown) is false at the
// predicate boundary (conservative, sufficient for this dialect).
#ifndef SILKROUTE_ENGINE_EXPR_EVAL_H_
#define SILKROUTE_ENGINE_EXPR_EVAL_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/rel_schema.h"
#include "relational/tuple.h"
#include "sql/ast.h"

namespace silkroute::engine {

/// Three-valued logic result for predicates.
enum class Tribool { kFalse, kTrue, kUnknown };

class BoundExpr {
 public:
  virtual ~BoundExpr() = default;

  /// Scalar evaluation (NULL-propagating).
  virtual Value Eval(const Tuple& row) const = 0;

  /// Predicate evaluation with three-valued logic.
  virtual Tribool Test(const Tuple& row) const;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// Resolves all column references in `expr` against `schema`.
Result<BoundExprPtr> BindExpr(const sql::Expr& expr, const RelSchema& schema);

/// Convenience: true iff the predicate evaluates to kTrue.
inline bool TestTrue(const BoundExpr& e, const Tuple& row) {
  return e.Test(row) == Tribool::kTrue;
}

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_EXPR_EVAL_H_
