// CostEstimator: an EXPLAIN-style optimizer facade. Given SQL text it
// returns estimated cardinality, evaluation cost, and result width without
// executing anything. This is the "oracle" of the paper's Sec. 5: SilkRoute's
// greedy planner submits candidate queries here and combines the returned
// evaluation_cost and data_size with its own coefficients.
//
// The model is System-R-lite:
//   - base-table cardinality and per-column distinct counts come from
//     DatabaseStats;
//   - equijoin selectivity is 1/max(V(a), V(b)); literal equality 1/V;
//     everything else 1/3;
//   - cost = sum of input scan costs + hash build/probe work + output rows,
//     plus n*log2(n)*width/64 for ORDER BY;
//   - UNION ALL adds rows and costs;
//   - LEFT OUTER JOIN keeps at least the left cardinality.
#ifndef SILKROUTE_ENGINE_ESTIMATOR_H_
#define SILKROUTE_ENGINE_ESTIMATOR_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engine/rel_schema.h"
#include "engine/stats.h"
#include "relational/catalog.h"
#include "sql/ast.h"

namespace silkroute::engine {

struct QueryEstimate {
  double rows = 0;
  double cost = 0;         // abstract work units (~value operations)
  double width_bytes = 0;  // average serialized row width

  /// The paper's data_size(q) = f(|attrs(q)| * cardinality(q)).
  double data_size() const { return rows * width_bytes; }
};

/// The planner-facing oracle abstraction: anything that can price a SQL
/// text. The synthetic CostEstimator below is the paper's oracle; the
/// MeasuredCostOracle (measured_oracle.h) overlays observed workload costs
/// on top of a synthetic base so genPlan re-runs price plans by reality.
class CostOracle {
 public:
  virtual ~CostOracle() = default;
  virtual Result<QueryEstimate> EstimateSql(std::string_view sql) = 0;
};

class CostEstimator : public CostOracle {
 public:
  CostEstimator(const Catalog* catalog, const DatabaseStats* stats)
      : catalog_(catalog), stats_(stats) {}

  /// Parses and estimates; increments the request counter (the quantity the
  /// paper reports in Sec. 5.1).
  Result<QueryEstimate> EstimateSql(std::string_view sql) override;

  Result<QueryEstimate> Estimate(const sql::Query& query);

  size_t num_requests() const { return num_requests_; }
  void ResetRequestCount() { num_requests_ = 0; }

 private:
  /// Column provenance: which base table/column an output column came from,
  /// if traceable; nullopt for computed columns.
  using Provenance = std::optional<std::pair<std::string, std::string>>;

  struct EstRel {
    double rows = 0;
    double cost = 0;
    double width = 0;
    RelSchema schema;
    std::vector<Provenance> prov;
  };

  Result<EstRel> EstimateQueryRel(const sql::Query& query);
  Result<EstRel> EstimateCore(const sql::SelectCore& core);
  Result<EstRel> EstimateTableRef(const sql::TableRef& ref);

  /// Selectivity of a predicate over `rel` (provenance-aware).
  double Selectivity(const sql::Expr& pred, const EstRel& rel) const;

  double DistinctOf(const EstRel& rel, const sql::ColumnRefExpr& ref) const;
  double WidthOf(const EstRel& rel, const sql::ColumnRefExpr& ref) const;

  const Catalog* catalog_;
  const DatabaseStats* stats_;
  size_t num_requests_ = 0;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_ESTIMATOR_H_
