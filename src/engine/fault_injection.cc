#include "engine/fault_injection.h"

#include <cctype>
#include <chrono>
#include <thread>

#include "obs/trace.h"

namespace silkroute::engine {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

bool SqlReferencesTable(std::string_view sql, std::string_view table) {
  if (table.empty()) return true;
  if (table.size() > sql.size()) return false;
  for (size_t i = 0; i + table.size() <= sql.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < table.size(); ++j) {
      if (LowerChar(sql[i + j]) != LowerChar(table[j])) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    if (i > 0 && IsIdentChar(sql[i - 1])) continue;
    size_t end = i + table.size();
    if (end < sql.size() && IsIdentChar(sql[end])) continue;
    return true;
  }
  return false;
}

FaultInjectingExecutor::FaultInjectingExecutor(SqlExecutor* inner,
                                               FaultPolicy policy)
    : inner_(inner),
      policy_(std::move(policy)),
      rng_(policy_.seed),
      rule_applications_(policy_.rules.size(), 0) {}

int FaultInjectingExecutor::IndexOf(const std::string& sql) {
  auto [it, inserted] =
      sql_index_.emplace(sql, static_cast<int>(sql_index_.size()));
  return it->second;
}

void FaultInjectingExecutor::Sleep(double ms) {
  if (ms <= 0) return;
  if (sleep_fn_) {
    sleep_fn_(ms);
  } else {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms));
  }
}

Result<Relation> FaultInjectingExecutor::ExecuteSqlWithDeadline(
    std::string_view sql, double timeout_ms) {
  std::string sql_text(sql);
  int index;
  double latency = 0;
  int truncate_after = -1;
  double per_row_delay = 0;
  Status injected = Status::OK();
  {
    // Policy evaluation under the lock; the sleeps and the inner execution
    // run outside it so concurrent queries proceed in parallel.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.executions;
    index = IndexOf(sql_text);

    // Collect the rules that apply to this execution; `times` is consumed
    // even when a later injection (e.g. truncation) ends up dominating.
    std::vector<const FaultRule*> active;
    for (size_t r = 0; r < policy_.rules.size(); ++r) {
      const FaultRule& rule = policy_.rules[r];
      if (!SqlReferencesTable(sql_text, rule.table)) continue;
      if (rule.query_index >= 0 && rule.query_index != index) continue;
      if (rule.times >= 0 && rule_applications_[r] >= rule.times) continue;
      ++rule_applications_[r];
      active.push_back(&rule);
    }

    for (const FaultRule* rule : active) {
      latency += rule->latency_ms;
      per_row_delay += rule->per_row_delay_ms;
      if (rule->truncate_after_rows >= 0 &&
          (truncate_after < 0 || rule->truncate_after_rows < truncate_after)) {
        truncate_after = rule->truncate_after_rows;
      }
    }
    for (const FaultRule* rule : active) {
      bool fire = rule->fail ||
                  (rule->flake_probability > 0 &&
                   rng_.Bernoulli(rule->flake_probability));
      if (fire) {
        ++stats_.injected_failures;
        injected = Status(rule->code, rule->message + " (query #" +
                                          std::to_string(index) + ")");
        break;
      }
    }
    stats_.injected_latency_ms += latency;
  }
  // Fault events become annotations on the enclosing attempt span, so a
  // trace shows *why* an attempt was slow or failed.
  if (latency > 0 && obs::CurrentSpan() != nullptr) {
    obs::AnnotateCurrent("fault.latency_ms", std::to_string(latency));
  }
  Sleep(latency);
  if (!injected.ok()) {
    obs::AnnotateCurrent("fault.injected", injected.ToString());
    return injected;
  }

  auto result = inner_->ExecuteSqlWithDeadline(sql, timeout_ms);
  if (!result.ok()) return result;
  Relation rel = std::move(result).value();

  size_t transferred = rel.rows.size();
  if (truncate_after >= 0 && rel.rows.size() > static_cast<size_t>(truncate_after)) {
    transferred = static_cast<size_t>(truncate_after);
  }
  double trickle = per_row_delay * static_cast<double>(transferred);
  if (trickle > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.injected_latency_ms += trickle;
  }
  Sleep(trickle);

  if (transferred < rel.rows.size()) {
    // The wire format is length-prefixed, so a dropped connection is always
    // detected; partial data never leaks out as a complete result.
    obs::AnnotateCurrent(
        "fault.truncated_after_rows", std::to_string(transferred));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.truncated_streams;
    return Status::Unavailable(
        "stream truncated after " + std::to_string(transferred) + " of " +
        std::to_string(rel.rows.size()) + " rows (query #" +
        std::to_string(index) + ")");
  }
  return rel;
}

}  // namespace silkroute::engine
