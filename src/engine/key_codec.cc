#include "engine/key_codec.h"

#include <cstring>

namespace silkroute::engine {

namespace {

constexpr char kTagNull = '\x00';
constexpr char kTagNumber = '\x01';
constexpr char kTagString = '\x02';

// Maps a double onto a uint64 whose unsigned order equals the double's
// numeric order: negative values flip all bits (reversing their two's-
// complement-style descending magnitude), non-negatives just set the sign
// bit so they sort above every negative. -0.0 is normalized to 0.0 first,
// mirroring Value::Hash, so the two zeros encode identically.
uint64_t OrderedDoubleBits(double d) {
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & 0x8000000000000000ULL) return ~bits;
  return bits | 0x8000000000000000ULL;
}

void AppendBigEndian(uint64_t u, std::string* out) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(u & 0xFF);
    u >>= 8;
  }
  out->append(buf, 8);
}

// 2^53: the first magnitude where distinct int64s share a double image, so
// the 8-byte image alone stops being order-exact for integers.
constexpr double kExactIntLimit = 9007199254740992.0;

// Whether a numeric segment with image `d` carries the 8-byte integer
// tiebreaker. The predicate is a pure function of the image: two segments
// with equal image bytes always have equal lengths, which keeps composite
// keys self-delimiting (the first differing byte between two keys still
// falls inside the differing segment).
bool ImageNeedsTie(double d) {
  return d >= kExactIntLimit || d <= -kExactIntLimit;
}

// Offset-binary image of an int64: unsigned order equals signed order.
uint64_t Int64TieBits(int64_t v) {
  return static_cast<uint64_t>(v) ^ 0x8000000000000000ULL;
}

// Tiebreaker for a double in the tie regime. Every such double is an
// integer; clamping into int64 orders it exactly like the integers that
// share its image. At or beyond ±2^63 the image is unique among doubles
// (and ties with the saturated int64 extremes, matching Value::Compare's
// via-double verdict there), so saturation never mis-orders anything —
// it only avoids an out-of-range cast.
uint64_t DoubleTieBits(double d) {
  if (!(d == d)) return 0;                       // NaN: defensive only
  if (d >= 9223372036854775808.0) return ~0ULL;  // >= 2^63
  if (d < -9223372036854775808.0) return 0;      // < -2^63
  return Int64TieBits(static_cast<int64_t>(d));
}

void AppendNumber(double d, std::string* out) {
  out->push_back(kTagNumber);
  AppendBigEndian(OrderedDoubleBits(d), out);
}

// Body bytes with 0x00 escaped as {0x00 0xFF}, then a {0x00 0x00}
// terminator. A shorter string is always a strict byte-prefix of its
// extensions up to the terminator, and 0x00 0x00 < 0x00 0xFF < any other
// continuation, so memcmp order over encodings equals string order — and
// no encoded segment is a prefix of a different segment. Takes a view so
// string-pool cells encode without materializing a std::string.
void AppendString(std::string_view s, std::string* out) {
  out->push_back(kTagString);
  size_t start = 0;
  for (;;) {
    size_t nul = s.find('\0', start);
    if (nul == std::string_view::npos) {
      out->append(s, start, s.size() - start);
      break;
    }
    out->append(s, start, nul - start);
    out->push_back('\x00');
    out->push_back('\xFF');
    start = nul + 1;
  }
  out->push_back('\x00');
  out->push_back('\x00');
}

// Shared by the Value path and the column path: the numeric segment for an
// exact int64 payload.
void AppendInt64Cell(int64_t i, std::string* out) {
  const double image = static_cast<double>(i);
  AppendNumber(image, out);
  if (ImageNeedsTie(image)) AppendBigEndian(Int64TieBits(i), out);
}

void AppendDoubleCell(double d, std::string* out) {
  AppendNumber(d, out);
  if (ImageNeedsTie(d)) AppendBigEndian(DoubleTieBits(d), out);
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back(kTagNull);
  } else if (v.is_int64()) {
    AppendInt64Cell(v.AsInt64(), out);
  } else if (v.is_double()) {
    AppendDoubleCell(v.AsDouble(), out);
  } else {
    AppendString(v.AsString(), out);
  }
}

void EncodeValueDescending(const Value& v, std::string* out) {
  size_t start = out->size();
  EncodeValue(v, out);
  for (size_t i = start; i < out->size(); ++i) {
    (*out)[i] = static_cast<char>(~static_cast<unsigned char>((*out)[i]));
  }
}

bool EncodeJoinKey(const Tuple& row, const std::vector<size_t>& cols,
                   std::string* out) {
  for (size_t c : cols) {
    const Value& v = row.values()[c];
    if (v.is_null()) return false;
    EncodeValue(v, out);
  }
  return true;
}

void EncodeRowKey(const Tuple& row, std::string* out) {
  for (const Value& v : row.values()) EncodeValue(v, out);
}

uint64_t OrderedNumericBits(const Value& v) {
  return OrderedDoubleBits(v.is_int64() ? static_cast<double>(v.AsInt64())
                                        : v.AsDouble());
}

bool NumericFitsWord(const Value& v) {
  return !ImageNeedsTie(v.is_int64() ? static_cast<double>(v.AsInt64())
                                     : v.AsDouble());
}

void EncodeShardValue(const ColumnarShard& shard, size_t col, size_t pos,
                      std::string* out) {
  const ColumnVector& cv = shard.column(col);
  if (cv.IsNull(pos)) {
    out->push_back(kTagNull);
  } else if (cv.type() == DataType::kString) {
    AppendString(cv.StringAt(pos), out);
  } else if (cv.CellIsInt64(pos)) {
    AppendInt64Cell(cv.Int64At(pos), out);
  } else {
    AppendDoubleCell(cv.DoubleAt(pos), out);
  }
}

void EncodeShardValueDescending(const ColumnarShard& shard, size_t col,
                                size_t pos, std::string* out) {
  const size_t start = out->size();
  EncodeShardValue(shard, col, pos, out);
  for (size_t i = start; i < out->size(); ++i) {
    (*out)[i] = static_cast<char>(~static_cast<unsigned char>((*out)[i]));
  }
}

bool EncodeTableJoinKey(const Table& table, size_t row,
                        const std::vector<size_t>& cols, std::string* out) {
  const Table::RowLoc loc = table.row_loc(row);
  const ColumnarShard& shard = table.shard(loc.shard);
  for (size_t c : cols) {
    if (shard.column(c).IsNull(loc.pos)) return false;
    EncodeShardValue(shard, c, loc.pos, out);
  }
  return true;
}

std::string_view KeyArena::Intern(std::string_view bytes) {
  if (bytes.size() > cur_left_) {
    size_t chunk = chunk_bytes_ > bytes.size() ? chunk_bytes_ : bytes.size();
    chunks_.push_back(std::make_unique<char[]>(chunk));
    cur_ = chunks_.back().get();
    cur_left_ = chunk;
  }
  char* dst = cur_;
  std::memcpy(dst, bytes.data(), bytes.size());
  cur_ += bytes.size();
  cur_left_ -= bytes.size();
  ++keys_;
  bytes_ += bytes.size();
  return std::string_view(dst, bytes.size());
}

}  // namespace silkroute::engine
