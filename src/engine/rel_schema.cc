#include "engine/rel_schema.h"

#include "common/string_util.h"

namespace silkroute::engine {

Result<size_t> RelSchema::Resolve(const std::string& qualifier,
                                  const std::string& name) const {
  ssize_t found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const OutputColumn& c = columns_[i];
    if (c.name != name) continue;
    if (!qualifier.empty() && c.qualifier != qualifier) continue;
    if (found >= 0) {
      return Status::InvalidArgument(
          "ambiguous column reference '" +
          (qualifier.empty() ? name : qualifier + "." + name) + "'");
    }
    found = static_cast<ssize_t>(i);
  }
  if (found < 0) {
    return Status::NotFound("unresolved column reference '" +
                            (qualifier.empty() ? name : qualifier + "." + name) +
                            "'");
  }
  return static_cast<size_t>(found);
}

RelSchema RelSchema::Concat(const RelSchema& left, const RelSchema& right) {
  std::vector<OutputColumn> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return RelSchema(std::move(cols));
}

RelSchema RelSchema::WithQualifier(const std::string& alias) const {
  std::vector<OutputColumn> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) cols.push_back({alias, c.name});
  return RelSchema(std::move(cols));
}

std::string RelSchema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) parts.push_back(c.FullName());
  return "[" + Join(parts, ", ") + "]";
}

}  // namespace silkroute::engine
