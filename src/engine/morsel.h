// MorselPool: the engine-owned thread pool behind intra-query parallelism
// (DESIGN.md §11). Operators split their input into fixed-size row ranges
// ("morsels", Leis et al.) and run them as one batch of independent tasks.
//
// The pool is deliberately NOT service::WorkerPool:
//
//  - The service pool's invariant is that tasks never block on other pool
//    tasks. Component queries *run on* service workers; if they fanned
//    their morsels into the same pool and waited, every worker could end
//    up waiting on tasks that no free worker remains to run.
//  - Here the submitting thread participates: ParallelFor claims and runs
//    tasks on the caller too, so a batch always drains even with zero
//    workers, under shutdown, or when every worker is busy with another
//    executor's batch. Calling it from inside a service worker is safe by
//    construction — the "blocked" caller is itself executing morsels.
//
// Determinism contract: ParallelFor guarantees nothing about which thread
// runs which task or in what order — callers own determinism by writing
// task outputs into per-task slots and concatenating them in task order
// (see the executor's parallel operators).
#ifndef SILKROUTE_ENGINE_MORSEL_H_
#define SILKROUTE_ENGINE_MORSEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"

namespace silkroute::engine {

class MorselPool {
 public:
  /// Spawns `workers` threads (>= 0). A query running at parallelism P
  /// wants P-1 workers: the P-th lane is the calling thread.
  explicit MorselPool(int workers);
  ~MorselPool();

  MorselPool(const MorselPool&) = delete;
  MorselPool& operator=(const MorselPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(i) once for every i in [0, n), on the workers and the calling
  /// thread, and returns when all n tasks finished. Tasks must not block
  /// on other tasks of any batch. On task failure every remaining task
  /// still runs (tasks observe deadlines themselves); the returned Status
  /// is the failure with the lowest task index, so concurrent failures
  /// resolve to the same error the serial loop would have hit first.
  /// Multiple threads may call ParallelFor concurrently on one pool.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

 private:
  struct Batch {
    const std::function<Status(size_t)>* fn;
    size_t n;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;  // signaled when done reaches n
    Status first_error;          // guarded by mu
    size_t first_error_index = 0;
  };

  /// Claims and runs tasks of `batch` until none are left to claim.
  static void RunSome(Batch* batch);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  // Batches with unclaimed tasks. shared_ptr, not raw: a worker can still
  // hold a batch it just popped when the submitter's wait completes and
  // ParallelFor returns; the shared_ptr keeps the Batch alive until that
  // worker's claim attempt sees next >= n and lets go. `fn` itself is
  // never dereferenced after completion — done == n implies every index
  // below n was already claimed, so late claims bail out on the bound
  // check before touching it.
  std::deque<std::shared_ptr<Batch>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_MORSEL_H_
