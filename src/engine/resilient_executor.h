// ResilientExecutor: the retry layer of the fault-tolerance stack. Wraps a
// SqlExecutor (the real connection, or a FaultInjectingExecutor in tests)
// and gives each component query
//
//  - a per-query deadline (forwarded to the inner executor, which enforces
//    it as kTimeout — re-armed per query, never per plan),
//  - bounded retries with exponential backoff and seeded jitter,
//  - a retry *budget* shared across all queries of the plan: once spent,
//    the next needed retry fails the plan with kResourceExhausted.
//
// Status codes are classified retryable (kUnavailable; kTimeout, at most
// once per query — a repeat timeout means the query itself is too heavy and
// should be degraded, not re-run) vs. permanent (everything else). Every
// attempt is recorded in an ExecutionReport the publisher surfaces through
// PlanMetrics.
//
// Concurrency: one ResilientExecutor instance serves one thread (the
// service layer builds one per component-query task), but instances
// cooperate through two shared, thread-safe objects: a RetryBudget that
// meters retries plan- or service-wide, and a CancelToken that makes the
// backoff sleep interruptible, so draining a worker pool never waits out a
// full backoff.
#ifndef SILKROUTE_ENGINE_RESILIENT_EXECUTOR_H_
#define SILKROUTE_ENGINE_RESILIENT_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "common/result.h"
#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace silkroute::engine {

/// A thread-safe retry allowance shared by the ResilientExecutor instances
/// of one plan (or one service): each retry consumes one unit; once spent,
/// further retries are denied and the caller fails with kResourceExhausted.
class RetryBudget {
 public:
  explicit RetryBudget(int budget) : budget_(budget) {}

  /// Consumes one retry if any allowance remains.
  bool TryConsume() {
    int current = used_.load(std::memory_order_relaxed);
    while (current < budget_) {
      if (used_.compare_exchange_weak(current, current + 1,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  int budget() const { return budget_; }
  int used() const { return used_.load(std::memory_order_relaxed); }
  int remaining() const { return budget_ - used(); }

 private:
  const int budget_;
  std::atomic<int> used_{0};
};

struct RetryOptions {
  /// Attempts per query including the first; >= 1.
  int max_attempts = 3;
  double initial_backoff_ms = 5;
  double backoff_multiplier = 2;
  double max_backoff_ms = 1000;
  /// Retries (attempts beyond each query's first) shared by the whole plan.
  /// Ignored when `shared_budget` is set.
  int retry_budget = 64;
  /// Per-attempt wall-clock cap, forwarded to the inner executor (0 = none).
  double query_deadline_ms = 0;
  /// Seed for backoff jitter (deterministic across runs).
  uint64_t jitter_seed = 0x51112;
  /// Replaces the real backoff sleep (tests pass a recorder).
  std::function<void(double)> sleep_fn;

  // --- Shared-state hooks for concurrent execution (borrowed) -----------
  /// Meters retries across executor instances; overrides `retry_budget`.
  RetryBudget* shared_budget = nullptr;
  /// Interrupts backoff sleeps and abandons further attempts when
  /// cancelled (service shutdown): ExecuteSql then returns the last
  /// attempt's error immediately.
  CancelToken* cancel = nullptr;
  /// End-to-end deadline this query must not overshoot. Each attempt's
  /// timeout is clamped to the time remaining, and a backoff that would
  /// sleep past the deadline returns kTimeout at once.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  // --- Observability (borrowed; null = disabled, zero overhead) ---------
  /// Attempt/backoff spans are parented under the thread's current span
  /// (the phase:query span installed by the publishing layer).
  obs::Tracer* tracer = nullptr;
  /// Attempt latency histograms and retry/backoff counters.
  obs::MetricsRegistry* metrics = nullptr;
};

/// True for codes worth a retry against the same query (kUnavailable,
/// kTimeout); false for permanent failures.
bool IsRetryableStatusCode(StatusCode code);

/// One component query's execution history.
struct QueryExecution {
  int query_index = -1;
  std::string sql;
  int attempts = 0;          // 1 = succeeded (or died) first try
  int timeout_attempts = 0;  // attempts that ended in kTimeout
  double backoff_ms = 0;     // total backoff charged before retries
  Status final_status;
};

struct ExecutionReport {
  std::vector<QueryExecution> queries;

  size_t total_attempts() const {
    size_t n = 0;
    for (const auto& q : queries) n += static_cast<size_t>(q.attempts);
    return n;
  }
  size_t total_retries() const {
    size_t n = 0;
    for (const auto& q : queries) {
      if (q.attempts > 1) n += static_cast<size_t>(q.attempts - 1);
    }
    return n;
  }
};

class ResilientExecutor : public SqlExecutor {
 public:
  ResilientExecutor(SqlExecutor* inner, RetryOptions options);

  /// Runs one component query to completion: retries transient failures
  /// under the budget, then returns the result, the last permanent error,
  /// or kResourceExhausted when a needed retry has no budget left.
  Result<Relation> ExecuteSql(std::string_view sql) override;

  Result<Relation> ExecuteSqlWithDeadline(std::string_view sql,
                                          double timeout_ms) override {
    options_.query_deadline_ms = timeout_ms;
    return ExecuteSql(sql);
  }

  void set_timeout_ms(double timeout_ms) override {
    options_.query_deadline_ms = timeout_ms;
  }

  /// Version fetches pass straight through (no retries: a failed fetch
  /// just bypasses the result cache for one publish).
  Result<std::vector<std::pair<std::string, uint64_t>>> FetchTableVersions(
      const std::vector<std::string>& tables) override {
    return inner_->FetchTableVersions(tables);
  }

  const ExecutionReport& report() const { return report_; }
  int budget_used() const {
    return options_.shared_budget != nullptr ? options_.shared_budget->used()
                                             : budget_used_;
  }
  int budget_remaining() const {
    return options_.shared_budget != nullptr
               ? options_.shared_budget->remaining()
               : options_.retry_budget - budget_used_;
  }

 private:
  void Sleep(double ms);
  /// Consumes one retry from the shared or local budget.
  bool ConsumeRetry();
  /// Milliseconds until the configured deadline (+inf when none).
  double DeadlineRemainingMs() const;

  SqlExecutor* inner_;
  RetryOptions options_;
  Random jitter_;
  ExecutionReport report_;
  int budget_used_ = 0;
  // Resolved once from options_.metrics (stable registry pointers); null
  // when metrics are disabled.
  obs::Counter* attempts_total_ = nullptr;
  obs::Counter* retries_total_ = nullptr;
  obs::Histogram* attempt_us_ = nullptr;
  obs::Histogram* backoff_us_ = nullptr;
};

}  // namespace silkroute::engine

#endif  // SILKROUTE_ENGINE_RESILIENT_EXECUTOR_H_
