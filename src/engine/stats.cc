#include "engine/stats.h"

#include <unordered_set>

#include "relational/value.h"

namespace silkroute::engine {

DatabaseStats DatabaseStats::Collect(const Database& db) {
  DatabaseStats stats;
  for (const std::string& name : db.catalog().TableNames()) {
    auto table_result = db.GetTable(name);
    if (!table_result.ok()) continue;
    const Table& table = *table_result.value();
    const size_t num_cols = table.schema().num_columns();

    TableStats ts;
    ts.row_count = table.num_rows();
    ts.columns.resize(num_cols);

    std::vector<std::unordered_set<Value, ValueHash>> distinct(num_cols);
    std::vector<size_t> null_counts(num_cols, 0);
    std::vector<size_t> width_sums(num_cols, 0);

    for (const Tuple& row : table.rows()) {
      for (size_t c = 0; c < num_cols; ++c) {
        const Value& v = row[c];
        width_sums[c] += v.ByteSize();
        if (v.is_null()) {
          ++null_counts[c];
        } else {
          distinct[c].insert(v);
        }
      }
    }

    double row_width = 0;
    for (size_t c = 0; c < num_cols; ++c) {
      ColumnStats& cs = ts.columns[c];
      cs.distinct_count = distinct[c].size();
      cs.null_fraction =
          ts.row_count == 0
              ? 0.0
              : static_cast<double>(null_counts[c]) / ts.row_count;
      cs.avg_width_bytes =
          ts.row_count == 0
              ? 8.0
              : static_cast<double>(width_sums[c]) / ts.row_count;
      row_width += cs.avg_width_bytes;
      stats.column_index_[name][table.schema().column(c).name] = c;
    }
    ts.avg_row_width_bytes = row_width;
    stats.tables_.emplace(name, std::move(ts));
  }
  return stats;
}

Result<const TableStats*> DatabaseStats::GetTable(
    const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no statistics for table '" + table + "'");
  }
  return &it->second;
}

double DatabaseStats::DistinctCount(const std::string& table,
                                    const std::string& column,
                                    double fallback) const {
  auto t = tables_.find(table);
  if (t == tables_.end()) return fallback;
  auto ci = column_index_.find(table);
  if (ci == column_index_.end()) return fallback;
  auto c = ci->second.find(column);
  if (c == ci->second.end()) return fallback;
  size_t d = t->second.columns[c->second].distinct_count;
  return d == 0 ? fallback : static_cast<double>(d);
}

const ColumnStats* DatabaseStats::GetColumn(const std::string& table,
                                            const std::string& column) const {
  auto t = tables_.find(table);
  if (t == tables_.end()) return nullptr;
  auto ci = column_index_.find(table);
  if (ci == column_index_.end()) return nullptr;
  auto c = ci->second.find(column);
  if (c == ci->second.end()) return nullptr;
  return &t->second.columns[c->second];
}

double DatabaseStats::RowCount(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0.0
                             : static_cast<double>(it->second.row_count);
}

}  // namespace silkroute::engine
