// Publisher: the end-to-end middle-ware facade (the paper's Fig. 7
// architecture). Given an RXL view and a target database it
//   1. builds and labels the view tree,
//   2. chooses a partition (unified, fully partitioned, an explicit edge
//      mask, or the greedy algorithm of Sec. 5),
//   3. generates one SQL query per component,
//   4. executes them against the target RDBMS, obtaining sorted tuple
//      streams over a wire protocol — through a resilient layer that
//      retries transient source failures under a plan-wide budget and, on
//      permanent failure, degrades the offending component into smaller
//      queries along the edge-mask lattice (see DESIGN.md "Fault
//      tolerance"; `strict` restores fail-fast), and
//   5. merges and tags the streams into the XML document.
//
// Timing is reported in the paper's terms: query time (SQL execution at the
// server) and total time (query + binding/transfer + tagging).
#ifndef SILKROUTE_SILKROUTE_PUBLISHER_H_
#define SILKROUTE_SILKROUTE_PUBLISHER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/estimator.h"
#include "engine/executor.h"
#include "engine/resilient_executor.h"
#include "engine/result_cache.h"
#include "engine/stats.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "relational/database.h"
#include "rxl/ast.h"
#include "silkroute/greedy.h"
#include "silkroute/source.h"
#include "silkroute/sqlgen.h"
#include "silkroute/tagger.h"
#include "silkroute/view_tree.h"

namespace silkroute::core {

enum class PlanStrategy {
  kGreedy,           // Sec. 5 algorithm (default)
  kUnified,          // all edges: one SQL query
  kFullyPartitioned, // no edges: one SQL query per node
  kExplicitMask,     // caller-provided edge mask
};

class PlanExecution;

struct PublishOptions {
  PlanStrategy strategy = PlanStrategy::kGreedy;
  uint64_t explicit_mask = 0;
  SqlGenStyle style = SqlGenStyle::kOuterJoin;
  bool reduce = true;
  /// SELECT DISTINCT in generated sub-selects (server-side set semantics).
  bool distinct_selects = false;
  /// Capabilities of the target engine; plans are adjusted to use only
  /// supported constructs (paper Sec. 3.4).
  SourceDescription source;
  GreedyParams greedy;
  /// Wrap the instance forest in this document element ("" = none).
  std::string document_element;
  bool pretty = false;
  /// Wall-clock cap in milliseconds applied to each *component* query
  /// independently (never to the plan as a whole; 0 = none), like the
  /// paper's 5-minute per-query cap in Sec. 4. Under the resilient layer a
  /// timeout is retried once with a fresh deadline; a repeat timeout is
  /// treated as a permanent source failure (degradation in non-strict
  /// mode, `timed_out` reporting once no smaller query can be cut).
  double query_timeout_ms = 0;
  /// Keep the generated SQL texts in the result (for logging / EXPLAIN).
  /// Degraded replacement queries are appended as they are attempted.
  bool collect_sql = true;
  /// Intra-query parallelism for the built-in executor: each component
  /// query runs its scans/joins/sorts as morsels across engine_threads
  /// threads (DESIGN.md §11). <= 1 = serial. Output is deterministic —
  /// byte-identical XML at any setting. Ignored when `executor` is set
  /// (configure that executor directly).
  int engine_threads = 1;

  // --- Fault tolerance (see DESIGN.md "Fault tolerance") ----------------
  /// Fail-fast mode: the first component query that fails permanently (or
  /// times out) aborts the plan, preserving the pre-resilience behaviour.
  /// When false (default), the publisher retries transient errors and
  /// degrades permanently-failing components into smaller queries.
  bool strict = false;
  /// Retry/backoff/budget knobs for the resilient execution layer.
  engine::RetryOptions retry;
  /// Replacement connection to the RDBMS (borrowed; e.g. a
  /// FaultInjectingExecutor wrapping a DatabaseExecutor). null = execute
  /// directly against the publisher's database.
  engine::SqlExecutor* executor = nullptr;
  /// Pluggable execution strategy turning component specs into sorted
  /// streams (borrowed). null = the built-in sequential retry/degrade loop;
  /// the concurrent PublishingService (src/service/) supplies a pooled
  /// strategy with circuit breakers and end-to-end deadlines.
  PlanExecution* execution = nullptr;

  // --- Result cache (DESIGN.md §15; borrowed, null = disabled) ----------
  /// Component-query result + document cache. Before executing, the
  /// publisher snapshots the version vector of every table the plan
  /// touches (one FetchTableVersions on the executor — or straight off the
  /// local database); the snapshot keys a whole-document lookup and, on a
  /// document miss, per-component fragment lookups. Any write between the
  /// snapshot and a query only makes an entry conservatively stale (the
  /// next publish re-keys), never wrongly fresh, so cached republishes are
  /// byte-identical to cold ones on a quiescent database. If the version
  /// fetch fails (legacy remote peer, backend down) the publish silently
  /// runs uncached.
  engine::ResultCache* result_cache = nullptr;

  // --- Observability (borrowed; null = disabled, see DESIGN.md §9) ------
  /// Emits plan / component / phase spans. Propagated into the resilient
  /// layer (attempt and backoff spans) via the retry options.
  obs::Tracer* tracer = nullptr;
  /// Parent for the plan span (the service's request span); null makes the
  /// plan span a trace root (CLI serial mode).
  obs::SpanHandle* parent_span = nullptr;
  /// Registry for phase latency histograms and row/byte counters.
  obs::MetricsRegistry* metrics_registry = nullptr;
  /// Observed-cost workload profile (borrowed). Execution strategies record
  /// per-component query/bind timings into it keyed by normalized SQL text,
  /// and the tag phase is apportioned across components by row share —
  /// the measurement half of the self-tuning planner (DESIGN.md §14).
  obs::WorkloadProfile* profile = nullptr;
  /// Overrides the publisher's synthetic estimator for greedy planning —
  /// typically an engine::MeasuredCostOracle overlaying a loaded profile.
  /// Null = the built-in CostEstimator. Planning is serialized internally,
  /// so the oracle needs no thread-safety of its own.
  engine::CostOracle* plan_oracle = nullptr;
};

/// Per-component execution outcome (one entry per component query actually
/// issued, including degraded replacements), attributing retries, breaker
/// fast-fails, and degradation to the specific tables involved instead of
/// only counting them plan-wide.
struct ComponentOutcome {
  /// View-tree nodes the component covers.
  std::vector<int> nodes;
  /// Backend tables the component introduces (ComponentTables).
  std::vector<std::string> tables;
  size_t attempts = 0;
  size_t retries = 0;
  /// Fast-failed by an open circuit breaker instead of executing.
  bool breaker_fast_fail = false;
  /// Permanently failed and replaced by two smaller queries.
  bool degraded = false;
  /// Time spent queued behind other tasks before a worker picked the
  /// query up (pooled execution only; 0 in sequential mode).
  double queue_wait_ms = 0;
  StatusCode final_status = StatusCode::kOk;
};

struct PlanMetrics {
  uint64_t mask = 0;
  size_t num_streams = 0;
  /// True if a query hit the configured timeout; times are then partial
  /// and no document was produced.
  bool timed_out = false;
  double query_ms = 0;  // SQL execution at the "server"
  double bind_ms = 0;   // server-side tuple binding (wire serialization)
  double tag_ms = 0;    // client-side decode + merge + tag
  double total_ms() const { return query_ms + bind_ms + tag_ms; }
  size_t rows = 0;
  size_t wire_bytes = 0;
  size_t xml_bytes = 0;
  /// Buffered-writer chunks pushed to the output stream (~xml_bytes /
  /// the writer's buffer size; 0 means the document fit in one flush).
  size_t xml_flushes = 0;
  TaggerStats tagger;
  std::vector<std::string> sql;

  // --- Fault-tolerance outcome ------------------------------------------
  /// ExecuteSql attempts across every component query (1 per query on a
  /// healthy run).
  size_t attempts = 0;
  /// Attempts beyond each query's first (0 on a healthy run).
  size_t retries = 0;
  /// Original components that were re-planned into smaller queries after a
  /// permanent source failure.
  size_t degraded_components = 0;
  /// Nodes whose queries still failed at the fully-partitioned limit; their
  /// instances are missing from the document (best-effort publishing).
  std::vector<int> failed_nodes;
  /// Per-query attempt log from the resilient layer.
  engine::ExecutionReport exec_report;
  /// Component queries fast-failed by an open circuit breaker instead of
  /// being executed (service execution only; they degrade immediately
  /// without consuming retry budget).
  size_t breaker_fast_fails = 0;
  /// One entry per component query issued (original and degraded), in
  /// issue order, attributing attempts/retries/fast-fails to the tables
  /// involved.
  std::vector<ComponentOutcome> components;

  // --- Result cache outcome (all 0/false when caching is off) -----------
  /// Component queries served from fragment cache (no SQL executed, no
  /// binding paid).
  size_t cache_hits = 0;
  /// Cacheable component queries that had to execute (absent or stale).
  size_t cache_misses = 0;
  /// Cached fragments the tagger spliced into a republished document
  /// alongside freshly executed ones (== cache_hits unless the whole
  /// document was served from cache).
  size_t cache_splices = 0;
  /// The entire document came from the cache: no SQL, no tagging; query/
  /// bind/tag times are 0 and `sql` is empty.
  bool served_from_doc_cache = false;
};

/// A produced component stream, ready for the merge/tag phase.
struct ComponentStream {
  StreamSpec spec;
  std::unique_ptr<engine::TupleStream> stream;
};

/// Strategy that executes the component queries of one plan and returns
/// their sorted tuple streams, in any order (the publisher re-sorts by
/// component root before tagging, so any correct strategy yields
/// byte-identical XML). Implementations may retry, degrade, and
/// parallelize. Contract:
///  - a fatal error fails the plan (returned status);
///  - setting metrics->timed_out and returning ok aborts publishing with
///    partial metrics and no document (the paper's timeout reporting);
///  - unrecoverable single-node components are skipped best-effort with an
///    empty stream and their nodes appended to metrics->failed_nodes.
class PlanExecution {
 public:
  virtual ~PlanExecution() = default;

  /// `plan_span` is the enclosing plan span (null/inert when tracing is
  /// off); strategies hang component spans off it.
  virtual Result<std::vector<ComponentStream>> Run(
      const ViewTree& tree, const SqlGenerator& gen,
      std::vector<StreamSpec> specs, const PublishOptions& options,
      PlanMetrics* metrics, obs::SpanHandle* plan_span) = 0;
};

struct PublishResult {
  PlanMetrics metrics;
  /// Present when strategy == kGreedy.
  GreedyPlan greedy_plan;
};

/// Starts a "component" span for `spec` under `parent`, annotated with the
/// covered nodes and the tables the component introduces. Returns null —
/// not an inert handle — when tracing is off, so the disabled path
/// allocates nothing. Shared by the sequential and pooled strategies.
std::shared_ptr<obs::SpanHandle> MakeComponentSpan(const ViewTree& tree,
                                                   obs::Tracer* tracer,
                                                   obs::SpanHandle* parent,
                                                   const StreamSpec& spec);

/// Thread-compatible for concurrent publishing: Publish/ExecutePlan may be
/// called from multiple threads at once provided each call writes to its
/// own output stream and any caller-supplied executor/execution strategy is
/// itself thread-safe. The shared cost estimator is serialized internally
/// (planning is cheap next to execution).
class Publisher {
 public:
  /// Statistics are collected once at construction (ANALYZE).
  explicit Publisher(const Database* db);

  const Database& db() const { return *db_; }
  engine::CostEstimator* estimator() { return &estimator_; }

  /// Parses RXL text and builds the labeled view tree.
  Result<ViewTree> BuildViewTree(std::string_view rxl_text) const;

  /// Full pipeline: RXL text -> XML on `out`.
  Result<PublishResult> Publish(std::string_view rxl_text,
                                const PublishOptions& options,
                                std::ostream* out);

  /// Virtual-view query (paper Sec. 7): composes a subview path such as
  /// "/supplier[nation='FRANCE']/part" with the view and publishes only the
  /// matched fragment.
  Result<PublishResult> PublishSubview(std::string_view rxl_text,
                                       std::string_view path,
                                       const PublishOptions& options,
                                       std::ostream* out);

  /// Executes one explicit plan for a pre-built view tree (the benchmark
  /// harness entry point).
  Result<PlanMetrics> ExecutePlan(const ViewTree& tree, uint64_t mask,
                                  const PublishOptions& options,
                                  std::ostream* out);

 private:
  const Database* db_;
  engine::DatabaseStats stats_;
  engine::CostEstimator estimator_;
  /// Serializes greedy planning (the estimator counts requests).
  std::mutex plan_mu_;
};

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_PUBLISHER_H_
