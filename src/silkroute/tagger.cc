#include "silkroute/tagger.h"

#include <algorithm>
#include <set>

namespace silkroute::core {

namespace {
int CompareKeys(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}
}  // namespace

/// A captured node instance waiting to be merged: its global key and the
/// values of the node's text content, read from the physical row that
/// carried it. One slot per InstanceSpec — the "constant memory" of the
/// tagger is one tuple per stream plus one captured instance per view-tree
/// node.
struct Tagger::StreamState {
  struct Pending {
    std::vector<Value> key;
    std::vector<Value> values;  // one per kValue content item, in order
  };

  const StreamSpec* spec = nullptr;
  engine::TupleStream* stream = nullptr;

  // Column resolution for this stream's schema.
  std::vector<int> label_col;       // level (1-based) -> column or -1
  std::map<VarIndex, int> var_col;  // any var -> column or absent

  std::optional<Tuple> row;    // current physical row
  size_t instance_cursor = 0;  // next InstanceSpec to try on `row`
  bool rows_done = false;

  // Per-spec state: captured instance and the last key seen (duplicate
  // suppression across adjacent physical rows).
  std::vector<std::optional<Pending>> pending;
  std::vector<std::optional<std::vector<Value>>> last_key;

  // Cached index of the minimal pending slot; -1 when empty/stale.
  int current = -1;

  int ColumnOfVar(VarIndex v) const {
    auto it = var_col.find(v);
    return it == var_col.end() ? -1 : it->second;
  }

  bool Exhausted() const {
    if (!rows_done || row.has_value()) return false;
    for (const auto& p : pending) {
      if (p.has_value()) return false;
    }
    return true;
  }
};

Tagger::Tagger(const ViewTree* tree, xml::XmlWriter* writer, Options options)
    : tree_(tree), writer_(writer), options_(std::move(options)) {
  BuildKeyLayout();
}

void Tagger::BuildKeyLayout() {
  const int max_level = tree_->MaxLevel();
  label_position_.assign(static_cast<size_t>(max_level) + 1, -1);
  size_t pos = 0;
  for (int j = 1; j <= max_level; ++j) {
    label_position_[static_cast<size_t>(j)] = static_cast<int>(pos++);
    for (const auto& v : tree_->IdentityVarsAtLevel(j)) {
      var_position_.emplace(v, pos++);
    }
  }
  num_positions_ = pos;
}

bool Tagger::InstancePresent(const StreamState& s,
                             const InstanceSpec& inst) const {
  for (const auto& [level, expected] : inst.label_checks) {
    int col = s.label_col[static_cast<size_t>(level)];
    if (col < 0) continue;  // constant level: matches by construction
    const Value& v = (*s.row)[static_cast<size_t>(col)];
    if (v.is_null()) return false;
    if (!v.is_int64() || v.AsInt64() != expected) return false;
  }
  for (int level : inst.null_levels) {
    int col = s.label_col[static_cast<size_t>(level)];
    if (col < 0) continue;
    if (!(*s.row)[static_cast<size_t>(col)].is_null()) return false;
  }
  return true;
}

void Tagger::BuildKey(const StreamState& s, const InstanceSpec& inst,
                      std::vector<Value>* key) const {
  key->assign(num_positions_, Value::Null());
  const int level = static_cast<int>(inst.path_labels.size());
  for (int j = 1; j <= level; ++j) {
    (*key)[static_cast<size_t>(label_position_[static_cast<size_t>(j)])] =
        Value::Int64(inst.path_labels[static_cast<size_t>(j - 1)]);
  }
  for (const auto& v : inst.key_vars) {
    auto pos_it = var_position_.find(v);
    if (pos_it == var_position_.end()) continue;
    int col = s.ColumnOfVar(v);
    if (col < 0) continue;
    (*key)[pos_it->second] = (*s.row)[static_cast<size_t>(col)];
  }
}

void Tagger::CaptureValues(const StreamState& s, const InstanceSpec& inst,
                           std::vector<Value>* values) const {
  values->clear();
  const ViewTreeNode& node = tree_->node(inst.node_id);
  for (const auto& item : node.content) {
    if (item.kind != ViewTreeNode::ContentItem::Kind::kValue) continue;
    int col = s.ColumnOfVar(item.value);
    values->push_back(col >= 0 ? (*s.row)[static_cast<size_t>(col)]
                               : Value::Null());
  }
}

/// Fills pending slots by expanding physical rows, stopping when a slot it
/// needs is still occupied (the occupied instance sorts no later, so the
/// merge will drain it first) or when rows run out.
Status Tagger::Refill(StreamState* s) {
  while (true) {
    if (!s->row.has_value()) {
      if (s->rows_done) return Status::OK();
      s->row = s->stream->Next();
      s->instance_cursor = 0;
      if (!s->row.has_value()) {
        s->rows_done = true;
        return Status::OK();
      }
      ++stats_.rows_consumed;
    }
    while (s->instance_cursor < s->spec->instances.size()) {
      const size_t index = s->instance_cursor;
      const InstanceSpec& inst = s->spec->instances[index];
      if (!InstancePresent(*s, inst)) {
        ++s->instance_cursor;
        continue;
      }
      std::vector<Value> key;
      BuildKey(*s, inst, &key);
      auto& last = s->last_key[index];
      // Fused instances must pass through equal-key repeats: each rule's
      // row contributes values that merge into the one element.
      if (!inst.fused && last.has_value() && *last == key) {
        ++stats_.duplicates_skipped;
        ++s->instance_cursor;
        continue;
      }
      if (s->pending[index].has_value()) {
        // Slot occupied by an earlier (no-later-sorting) instance: stall
        // this row until the merge drains the slot.
        return Status::OK();
      }
      StreamState::Pending p;
      p.key = key;
      CaptureValues(*s, inst, &p.values);
      s->pending[index] = std::move(p);
      last = std::move(key);
      ++s->instance_cursor;
      size_t live = 0;
      for (const auto& slot : s->pending) {
        if (slot.has_value()) ++live;
      }
      stats_.peak_buffered_tuples =
          std::max(stats_.peak_buffered_tuples, live);
    }
    s->row.reset();  // row fully expanded; fetch the next one
  }
}

int Tagger::MinPending(const StreamState& s) const {
  int best = -1;
  for (size_t i = 0; i < s.pending.size(); ++i) {
    if (!s.pending[i].has_value()) continue;
    if (best < 0 ||
        CompareKeys(s.pending[i]->key,
                    s.pending[static_cast<size_t>(best)]->key) < 0) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

bool Tagger::SameInstanceAt(const std::vector<Value>& open_key,
                            const std::vector<Value>& new_key,
                            int node_id) const {
  const ViewTreeNode& node = tree_->node(node_id);
  // Labels up to the node's level.
  for (int j = 1; j <= node.level(); ++j) {
    size_t pos = static_cast<size_t>(label_position_[static_cast<size_t>(j)]);
    if (open_key[pos].Compare(new_key[pos]) != 0) return false;
  }
  // The node's own identity variables.
  for (const auto& arg : node.args) {
    if (!arg.identity) continue;
    auto it = var_position_.find(arg.index);
    if (it == var_position_.end()) continue;
    if (open_key[it->second].Compare(new_key[it->second]) != 0) return false;
  }
  return true;
}

Status Tagger::EmitRowContent(const ViewTreeNode& node,
                              const std::vector<Value>* values,
                              bool opening) {
  // Which fused occurrences does this row speak for? Those that supplied a
  // non-null value through a column of their own — shared identity columns
  // (e.g. the fused key itself used as a value) are filled by every rule
  // and don't mark an occurrence active. Ordinary nodes always emit text.
  std::set<int> active;
  if (values != nullptr) {
    size_t value_index = 0;
    for (const auto& item : node.content) {
      if (item.kind != ViewTreeNode::ContentItem::Kind::kValue) continue;
      if (value_index < values->size() &&
          !(*values)[value_index].is_null() &&
          !tree_->IsIdentityVar(item.value)) {
        active.insert(item.occurrence);
      }
      ++value_index;
    }
  }
  size_t value_index = 0;
  for (const auto& item : node.content) {
    switch (item.kind) {
      case ViewTreeNode::ContentItem::Kind::kText:
        if (!node.fused() || active.count(item.occurrence) > 0) {
          SILK_RETURN_IF_ERROR(writer_->Text(item.text));
        }
        break;
      case ViewTreeNode::ContentItem::Kind::kValue: {
        // Identity-backed values (shared across rules) print once, when
        // the element opens; rule-specific values print with their row.
        bool emit = opening || !node.fused() ||
                    !tree_->IsIdentityVar(item.value);
        if (emit && values != nullptr && value_index < values->size()) {
          const Value& v = (*values)[value_index];
          if (!v.is_null()) {
            SILK_RETURN_IF_ERROR(writer_->Text(v.ToXmlText()));
          }
        }
        ++value_index;
        break;
      }
      case ViewTreeNode::ContentItem::Kind::kChild:
        break;  // children arrive as their own instances
    }
  }
  return Status::OK();
}

Status Tagger::OpenElement_(int node_id, const std::vector<Value>& key,
                            const std::vector<Value>* values) {
  const ViewTreeNode& node = tree_->node(node_id);
  SILK_RETURN_IF_ERROR(writer_->StartElement(node.tag));
  SILK_RETURN_IF_ERROR(EmitRowContent(node, values, /*opening=*/true));
  stack_.push_back(OpenElement{node_id, key});
  stats_.max_open_depth = std::max(stats_.max_open_depth, stack_.size());
  ++stats_.instances_emitted;
  return Status::OK();
}

Status Tagger::EmitInstance(int node_id, const std::vector<Value>& key,
                            const std::vector<Value>* values) {
  // Ancestor chain root..node.
  std::vector<int> chain;
  for (int id = node_id; id >= 0; id = tree_->node(id).parent) {
    chain.push_back(id);
  }
  std::reverse(chain.begin(), chain.end());

  // Longest prefix of the open stack matching the chain (same node and same
  // instance identity).
  size_t keep = 0;
  while (keep < stack_.size() && keep < chain.size()) {
    const OpenElement& open = stack_[keep];
    if (open.node_id != chain[keep]) break;
    if (!SameInstanceAt(open.key, key, chain[keep])) break;
    ++keep;
  }
  if (keep == chain.size()) {
    const ViewTreeNode& node = tree_->node(node_id);
    if (node.fused() && values != nullptr) {
      // Fusion: the element is already open; append this rule's content
      // (its literal text and non-null rule-specific values).
      return EmitRowContent(node, values, /*opening=*/false);
    }
    // Otherwise the instance (and its whole ancestor chain) is already
    // open: a duplicate.
    ++stats_.duplicates_skipped;
    return Status::OK();
  }
  while (stack_.size() > keep) {
    SILK_RETURN_IF_ERROR(writer_->EndElement());
    stack_.pop_back();
  }
  // Open any missing ancestors (should not happen — ancestors' own
  // instances sort first in the merged stream).
  for (size_t i = keep; i + 1 < chain.size(); ++i) {
    ++stats_.forced_ancestor_opens;
    SILK_RETURN_IF_ERROR(OpenElement_(chain[i], key, nullptr));
    --stats_.instances_emitted;  // forced opens are not real instances
  }
  return OpenElement_(node_id, key, values);
}

Status Tagger::Run(std::vector<StreamInput> streams) {
  std::vector<StreamState> states(streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    StreamState& s = states[i];
    s.spec = streams[i].spec;
    s.stream = streams[i].stream;
    s.pending.assign(s.spec->instances.size(), std::nullopt);
    s.last_key.assign(s.spec->instances.size(), std::nullopt);
    const engine::RelSchema& schema = s.stream->schema();
    const int max_level = tree_->MaxLevel();
    s.label_col.assign(static_cast<size_t>(max_level) + 1, -1);
    for (int j = 1; j <= max_level; ++j) {
      auto idx = schema.Resolve("", LabelColumnName(j));
      if (idx.ok()) s.label_col[static_cast<size_t>(j)] = static_cast<int>(*idx);
    }
    // Resolve every view-tree variable that exists in this stream.
    for (const auto& node : tree_->nodes()) {
      for (const auto& arg : node.args) {
        if (s.var_col.count(arg.index) > 0) continue;
        auto idx = schema.Resolve("", arg.index.ColumnName());
        if (idx.ok()) s.var_col.emplace(arg.index, static_cast<int>(*idx));
      }
    }
    SILK_RETURN_IF_ERROR(Refill(&s));
  }

  if (!options_.document_element.empty()) {
    SILK_RETURN_IF_ERROR(writer_->StartElement(options_.document_element));
  }

  while (true) {
    // Pick the stream/slot with the smallest pending key.
    StreamState* best_stream = nullptr;
    int best_slot = -1;
    for (auto& s : states) {
      int slot = MinPending(s);
      if (slot < 0) continue;
      if (best_stream == nullptr ||
          CompareKeys(s.pending[static_cast<size_t>(slot)]->key,
                      best_stream->pending[static_cast<size_t>(best_slot)]
                          ->key) < 0) {
        best_stream = &s;
        best_slot = slot;
      }
    }
    if (best_stream == nullptr) break;
    StreamState::Pending pending =
        std::move(*best_stream->pending[static_cast<size_t>(best_slot)]);
    best_stream->pending[static_cast<size_t>(best_slot)].reset();
    SILK_RETURN_IF_ERROR(EmitInstance(
        best_stream->spec->instances[static_cast<size_t>(best_slot)].node_id,
        pending.key, &pending.values));
    SILK_RETURN_IF_ERROR(Refill(best_stream));
  }

  while (!stack_.empty()) {
    SILK_RETURN_IF_ERROR(writer_->EndElement());
    stack_.pop_back();
  }
  if (!options_.document_element.empty()) {
    SILK_RETURN_IF_ERROR(writer_->EndElement());
  }
  return Status::OK();
}

}  // namespace silkroute::core
