// The tagger (paper Sec. 3.3): merges the sorted tuple streams of a
// partitioned plan into one logical stream, re-nests the tuples, and emits
// the XML document. Memory use depends only on the number of streams and
// the view-tree depth — one in-flight tuple per stream plus the open-element
// stack — never on the database size.
//
// Each physical row may carry several node instances (a parent repeated
// next to each child in outer-join plans, a whole reduced class in reduced
// plans). The tagger expands rows into *logical instance rows* using the
// stream's InstanceSpecs, in document order, and merges logical rows across
// streams by the global interleaved key (L1, identity vars of level 1,
// L2, ...). Duplicate instances (same full key) are emitted once.
#ifndef SILKROUTE_SILKROUTE_TAGGER_H_
#define SILKROUTE_SILKROUTE_TAGGER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/tuple_stream.h"
#include "silkroute/sqlgen.h"
#include "silkroute/view_tree.h"
#include "xml/writer.h"

namespace silkroute::core {

struct TaggerStats {
  size_t instances_emitted = 0;
  size_t rows_consumed = 0;
  size_t duplicates_skipped = 0;
  size_t max_open_depth = 0;
  /// Ancestor elements that had to be opened without their own instance row
  /// (should be zero; indicates a stream invariant violation).
  size_t forced_ancestor_opens = 0;
  /// Peak simultaneously captured instances within one stream (bounded by
  /// the number of view-tree nodes, never by database size).
  size_t peak_buffered_tuples = 0;
};

class Tagger {
 public:
  struct StreamInput {
    const StreamSpec* spec = nullptr;
    engine::TupleStream* stream = nullptr;
  };

  struct Options {
    /// If non-empty, wrap the document in this element (RXL views whose
    /// root node repeats produce a forest otherwise).
    std::string document_element;
  };

  Tagger(const ViewTree* tree, xml::XmlWriter* writer, Options options);

  /// Consumes all streams and writes the document.
  Status Run(std::vector<StreamInput> streams);

  const TaggerStats& stats() const { return stats_; }

 private:
  struct StreamState;  // runtime cursor per stream

  /// One open-element stack entry.
  struct OpenElement {
    int node_id = -1;
    std::vector<Value> key;
  };

  void BuildKeyLayout();
  Status Refill(StreamState* s);
  int MinPending(const StreamState& s) const;
  bool InstancePresent(const StreamState& s, const InstanceSpec& inst) const;
  void BuildKey(const StreamState& s, const InstanceSpec& inst,
                std::vector<Value>* key) const;
  void CaptureValues(const StreamState& s, const InstanceSpec& inst,
                     std::vector<Value>* values) const;
  Status EmitInstance(int node_id, const std::vector<Value>& key,
                      const std::vector<Value>* values);
  Status EmitRowContent(const ViewTreeNode& node,
                        const std::vector<Value>* values, bool opening);
  Status OpenElement_(int node_id, const std::vector<Value>& key,
                      const std::vector<Value>* values);
  bool SameInstanceAt(const std::vector<Value>& open_key,
                      const std::vector<Value>& new_key, int node_id) const;

  const ViewTree* tree_;
  xml::XmlWriter* writer_;
  Options options_;
  TaggerStats stats_;

  // Global key layout.
  size_t num_positions_ = 0;
  std::vector<int> label_position_;           // level (1-based) -> position
  std::map<VarIndex, size_t> var_position_;   // identity var -> position

  std::vector<OpenElement> stack_;
};

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_TAGGER_H_
