#include "silkroute/sqlgen.h"

#include <algorithm>
#include <map>
#include <set>

namespace silkroute::core {

namespace {

using sql::And;
using sql::AndAll;
using sql::Col;
using sql::ExprPtr;
using sql::IntLit;
using sql::Lit;
using sql::NullLit;
using sql::OrAll;

sql::BinaryOp ToSqlOp(rxl::CondOp op) {
  switch (op) {
    case rxl::CondOp::kEq:
      return sql::BinaryOp::kEq;
    case rxl::CondOp::kNe:
      return sql::BinaryOp::kNe;
    case rxl::CondOp::kLt:
      return sql::BinaryOp::kLt;
    case rxl::CondOp::kLe:
      return sql::BinaryOp::kLe;
    case rxl::CondOp::kGt:
      return sql::BinaryOp::kGt;
    case rxl::CondOp::kGe:
      return sql::BinaryOp::kGe;
  }
  return sql::BinaryOp::kEq;
}

ExprPtr OperandToExpr(const rxl::Operand& operand) {
  if (operand.kind == rxl::Operand::Kind::kField) {
    return Col(operand.field.var, operand.field.field);
  }
  return Lit(operand.literal);
}

ExprPtr ConditionToExpr(const rxl::Condition& cond) {
  return std::make_unique<sql::BinaryExpr>(
      ToSqlOp(cond.op), OperandToExpr(cond.lhs), OperandToExpr(cond.rhs));
}

/// The merged datalog rule of an execution class: atoms and conditions of
/// all covered nodes, deduplicated (they nest, so this equals the deepest
/// member's rule for chains, and the union for branching classes).
struct ClassQuery {
  std::vector<DatalogAtom> atoms;
  std::vector<rxl::Condition> conditions;
  std::map<VarIndex, rxl::FieldRef> args;  // all covered Skolem args
};

ClassQuery MergeClassQuery(const ViewTree& tree, const ExecNode& cls) {
  ClassQuery q;
  std::set<std::string> seen_bindings;
  std::set<std::string> seen_conditions;
  for (int id : cls.covered) {
    const ViewTreeNode& node = tree.node(id);
    for (const auto& atom : node.atoms) {
      if (seen_bindings.insert(atom.binding).second) q.atoms.push_back(atom);
    }
    for (const auto& cond : node.conditions) {
      if (seen_conditions.insert(cond.ToString()).second) {
        q.conditions.push_back(cond);
      }
    }
    for (const auto& arg : node.args) {
      q.args.emplace(arg.index, arg.field);
    }
  }
  return q;
}

}  // namespace

const char* SqlGenStyleToString(SqlGenStyle style) {
  return style == SqlGenStyle::kOuterJoin ? "outer-join" : "outer-union";
}

/// The uniform projection of a component: L1..Lmax, then all Skolem
/// variables covered by the component, ordered by (p, q).
struct SqlGenerator::ColumnList {
  int max_level = 0;
  std::vector<VarIndex> vars;
  std::vector<std::string> order_by;  // interleaved global sort key

  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(static_cast<size_t>(max_level) + vars.size());
    for (int j = 1; j <= max_level; ++j) names.push_back(LabelColumnName(j));
    for (const auto& v : vars) names.push_back(v.ColumnName());
    return names;
  }
};

Result<sql::SelectCore> SqlGenerator::BuildClassCore(
    const ExecComponent& exec, const ExecNode& cls,
    const ColumnList& columns) const {
  const ViewTreeNode& head = tree_->node(cls.head);
  ClassQuery q = MergeClassQuery(*tree_, cls);

  sql::SelectCore core;
  core.distinct = distinct_selects_;
  for (const auto& atom : q.atoms) {
    core.from.push_back(
        std::make_unique<sql::BaseTableRef>(atom.table, atom.binding));
  }
  std::vector<ExprPtr> conjuncts;
  conjuncts.reserve(q.conditions.size());
  for (const auto& cond : q.conditions) {
    conjuncts.push_back(ConditionToExpr(cond));
  }
  core.where = AndAll(std::move(conjuncts));

  // Labels: constants down to the head's level, NULL deeper.
  for (int j = 1; j <= columns.max_level; ++j) {
    ExprPtr e = j <= head.level()
                    ? IntLit(head.sfi[static_cast<size_t>(j - 1)])
                    : NullLit();
    core.select_list.emplace_back(std::move(e), LabelColumnName(j));
  }
  // Variables: real columns for covered args, NULL otherwise.
  for (const auto& v : columns.vars) {
    auto it = q.args.find(v);
    ExprPtr e = it != q.args.end() ? Col(it->second.var, it->second.field)
                                   : NullLit();
    core.select_list.emplace_back(std::move(e), v.ColumnName());
  }
  return core;
}

Result<std::vector<sql::SelectCore>> SqlGenerator::BuildClassCores(
    const ExecComponent& exec, const ExecNode& cls,
    const ColumnList& columns) const {
  const ViewTreeNode& head = tree_->node(cls.head);
  if (!head.fused() || cls.covered.size() != 1) {
    SILK_ASSIGN_OR_RETURN(sql::SelectCore core,
                          BuildClassCore(exec, cls, columns));
    std::vector<sql::SelectCore> cores;
    cores.push_back(std::move(core));
    return cores;
  }
  // Fused node: one core per datalog rule; each projects the columns its
  // rule can fill and NULL elsewhere.
  std::vector<sql::SelectCore> cores;
  for (const auto& rule : head.AllRules()) {
    sql::SelectCore core;
    core.distinct = distinct_selects_;
    for (const auto& atom : rule.atoms) {
      core.from.push_back(
          std::make_unique<sql::BaseTableRef>(atom.table, atom.binding));
    }
    std::vector<ExprPtr> conjuncts;
    conjuncts.reserve(rule.conditions.size());
    for (const auto& cond : rule.conditions) {
      conjuncts.push_back(ConditionToExpr(cond));
    }
    core.where = AndAll(std::move(conjuncts));
    for (int j = 1; j <= columns.max_level; ++j) {
      ExprPtr e = j <= head.level()
                      ? IntLit(head.sfi[static_cast<size_t>(j - 1)])
                      : NullLit();
      core.select_list.emplace_back(std::move(e), LabelColumnName(j));
    }
    for (const auto& v : columns.vars) {
      auto it = rule.fields.find(v);
      ExprPtr e = it != rule.fields.end()
                      ? Col(it->second.var, it->second.field)
                      : NullLit();
      core.select_list.emplace_back(std::move(e), v.ColumnName());
    }
    cores.push_back(std::move(core));
  }
  return cores;
}

Result<sql::QueryPtr> SqlGenerator::BuildJoinQuery(
    const ExecComponent& exec, size_t class_index,
    const ColumnList& columns) const {
  const ExecNode& cls = exec.nodes[class_index];
  SILK_ASSIGN_OR_RETURN(std::vector<sql::SelectCore> base_cores,
                        BuildClassCores(exec, cls, columns));
  auto base = std::make_unique<sql::Query>();
  base->cores = std::move(base_cores);
  if (cls.children.empty()) {
    return base;
  }

  // Union of child sub-queries.
  auto child_union = std::make_unique<sql::Query>();
  std::vector<ExprPtr> on_branches;
  for (int child_index : cls.children) {
    const ExecNode& child = exec.nodes[static_cast<size_t>(child_index)];
    SILK_ASSIGN_OR_RETURN(
        sql::QueryPtr child_query,
        BuildJoinQuery(exec, static_cast<size_t>(child_index), columns));
    for (auto& core : child_query->cores) {
      child_union->cores.push_back(std::move(core));
    }
    // Branch condition: the child's head label matched, and the child's
    // copy of the join parent's identity equals the parent's.
    const ViewTreeNode& child_head = tree_->node(child.head);
    const ViewTreeNode& join_parent = tree_->node(child_head.parent);
    std::vector<ExprPtr> conjuncts;
    conjuncts.push_back(sql::Eq(
        Col("C", LabelColumnName(child_head.level())),
        IntLit(child_head.label())));
    for (const auto& arg : join_parent.args) {
      if (!arg.identity) continue;
      conjuncts.push_back(sql::Eq(Col("P", arg.index.ColumnName()),
                                  Col("C", arg.index.ColumnName())));
    }
    on_branches.push_back(AndAll(std::move(conjuncts)));
  }
  ExprPtr on = OrAll(std::move(on_branches));

  // Columns owned by this class come from P; everything else from C.
  std::set<std::string> p_owned;
  const ViewTreeNode& head = tree_->node(cls.head);
  for (int j = 1; j <= head.level(); ++j) p_owned.insert(LabelColumnName(j));
  {
    ClassQuery q = MergeClassQuery(*tree_, cls);
    for (const auto& [index, field] : q.args) {
      p_owned.insert(index.ColumnName());
    }
  }

  sql::SelectCore joined;
  joined.from.push_back(std::make_unique<sql::JoinRef>(
      sql::JoinType::kLeftOuter,
      std::make_unique<sql::DerivedTableRef>(std::move(base), "P"),
      std::make_unique<sql::DerivedTableRef>(std::move(child_union), "C"),
      std::move(on)));
  for (const auto& name : columns.Names()) {
    ExprPtr e = p_owned.count(name) > 0 ? Col("P", name) : Col("C", name);
    joined.select_list.emplace_back(std::move(e), name);
  }
  auto out = std::make_unique<sql::Query>();
  out->cores.push_back(std::move(joined));
  return out;
}

void SqlGenerator::AddOrderBy(const ColumnList& columns,
                              sql::Query* query) const {
  for (const auto& name : columns.order_by) {
    query->order_by.emplace_back(Col(name), /*asc=*/true);
  }
}

Result<StreamSpec> SqlGenerator::GenerateComponent(
    const std::vector<int>& nodes) const {
  Partition::Component component;
  component.nodes = nodes;
  component.root = nodes.front();
  SILK_ASSIGN_OR_RETURN(ExecComponent exec,
                        BuildExecComponent(*tree_, component, reduce_));

  // Uniform column list.
  ColumnList columns;
  std::set<VarIndex> var_set;
  for (int id : nodes) {
    const ViewTreeNode& node = tree_->node(id);
    columns.max_level = std::max(columns.max_level, node.level());
    for (const auto& arg : node.args) var_set.insert(arg.index);
  }
  columns.vars.assign(var_set.begin(), var_set.end());
  std::sort(columns.vars.begin(), columns.vars.end());
  for (int j = 1; j <= columns.max_level; ++j) {
    columns.order_by.push_back(LabelColumnName(j));
    for (const auto& v : tree_->IdentityVarsAtLevel(j)) {
      if (var_set.count(v) > 0) columns.order_by.push_back(v.ColumnName());
    }
  }

  // Build the query.
  sql::QueryPtr query;
  if (style_ == SqlGenStyle::kOuterUnion) {
    query = std::make_unique<sql::Query>();
    for (const auto& cls : exec.nodes) {
      SILK_ASSIGN_OR_RETURN(std::vector<sql::SelectCore> cores,
                            BuildClassCores(exec, cls, columns));
      for (auto& core : cores) query->cores.push_back(std::move(core));
    }
  } else {
    SILK_ASSIGN_OR_RETURN(query, BuildJoinQuery(exec, 0, columns));
  }
  AddOrderBy(columns, query.get());

  // Instance specs in document order.
  StreamSpec spec;
  spec.sql = query->ToSql();
  spec.covered_nodes = nodes;
  std::map<int, const ExecNode*> class_of_node;
  for (const auto& cls : exec.nodes) {
    for (int id : cls.covered) class_of_node[id] = &cls;
  }
  std::vector<int> doc_order = nodes;
  std::sort(doc_order.begin(), doc_order.end(), [&](int a, int b) {
    return tree_->node(a).sfi < tree_->node(b).sfi;
  });
  for (int id : doc_order) {
    const ViewTreeNode& node = tree_->node(id);
    const ExecNode* cls = class_of_node[id];
    InstanceSpec inst;
    inst.node_id = id;
    inst.path_labels = node.sfi;
    const int head_level = tree_->node(cls->head).level();
    for (int j = 1; j <= std::min(head_level, node.level()); ++j) {
      inst.label_checks.emplace_back(j, node.sfi[static_cast<size_t>(j - 1)]);
    }
    if (style_ == SqlGenStyle::kOuterUnion) {
      for (int j = head_level + 1; j <= columns.max_level; ++j) {
        inst.null_levels.push_back(j);
      }
    }
    for (const auto& arg : node.args) {
      if (arg.identity) inst.key_vars.push_back(arg.index);
    }
    inst.fused = node.fused();
    spec.instances.push_back(std::move(inst));
  }
  return spec;
}

Result<std::vector<StreamSpec>> SqlGenerator::GeneratePlan(
    const Partition& plan) const {
  std::vector<StreamSpec> streams;
  streams.reserve(plan.components().size());
  for (const auto& component : plan.components()) {
    SILK_ASSIGN_OR_RETURN(StreamSpec spec,
                          GenerateComponent(component.nodes));
    streams.push_back(std::move(spec));
  }
  return streams;
}

}  // namespace silkroute::core
