#include "silkroute/dtdgen.h"

#include <map>
#include <set>

namespace silkroute::core {

namespace {

using xml::ContentParticle;
using xml::ElementDecl;

ContentParticle::Occurrence ToOccurrence(Multiplicity m) {
  switch (m) {
    case Multiplicity::kOne:
      return ContentParticle::Occurrence::kOne;
    case Multiplicity::kOptional:
      return ContentParticle::Occurrence::kOptional;
    case Multiplicity::kPlus:
      return ContentParticle::Occurrence::kPlus;
    case Multiplicity::kStar:
      return ContentParticle::Occurrence::kStar;
  }
  return ContentParticle::Occurrence::kStar;
}

ElementDecl DeclForNode(const ViewTree& tree, const ViewTreeNode& node) {
  bool has_text = false;
  std::vector<const ViewTreeNode*> children;
  for (const auto& item : node.content) {
    switch (item.kind) {
      case ViewTreeNode::ContentItem::Kind::kText:
      case ViewTreeNode::ContentItem::Kind::kValue:
        has_text = true;
        break;
      case ViewTreeNode::ContentItem::Kind::kChild:
        children.push_back(&tree.node(item.child_id));
        break;
    }
  }

  ElementDecl decl;
  decl.name = node.tag;
  if (children.empty() && !has_text) {
    decl.category = ElementDecl::Category::kEmpty;
  } else if (children.empty()) {
    decl.category = ElementDecl::Category::kPcdata;
  } else if (has_text) {
    decl.category = ElementDecl::Category::kMixed;
    std::set<std::string> names;
    for (const auto* child : children) {
      if (names.insert(child->tag).second) {
        decl.mixed_names.push_back(child->tag);
      }
    }
  } else {
    decl.category = ElementDecl::Category::kChildren;
    if (children.size() == 1) {
      decl.content.kind = ContentParticle::Kind::kName;
      decl.content.name = children[0]->tag;
      decl.content.occurrence = ToOccurrence(children[0]->edge_label);
    } else {
      decl.content.kind = ContentParticle::Kind::kSequence;
      for (const auto* child : children) {
        ContentParticle p;
        p.kind = ContentParticle::Kind::kName;
        p.name = child->tag;
        p.occurrence = ToOccurrence(child->edge_label);
        decl.content.children.push_back(std::move(p));
      }
    }
  }
  return decl;
}

bool SameDecl(const ElementDecl& a, const ElementDecl& b) {
  return a.ToString() == b.ToString();
}

}  // namespace

Result<xml::Dtd> GenerateDtd(const ViewTree& tree,
                             const std::string& document_element) {
  std::map<std::string, ElementDecl> decls;  // tag -> merged declaration
  for (const auto& node : tree.nodes()) {
    ElementDecl decl = DeclForNode(tree, node);
    auto [it, inserted] = decls.emplace(node.tag, decl);
    if (!inserted && !SameDecl(it->second, decl)) {
      // Conflicting uses of the same tag: widen to ANY.
      it->second.category = ElementDecl::Category::kAny;
      it->second.mixed_names.clear();
      it->second.content = xml::ContentParticle{};
    }
  }

  xml::Dtd dtd;
  if (!document_element.empty()) {
    if (decls.count(document_element) > 0) {
      return Status::InvalidArgument("document element '" + document_element +
                                     "' collides with a view element");
    }
    ElementDecl wrapper;
    wrapper.name = document_element;
    wrapper.category = ElementDecl::Category::kChildren;
    wrapper.content.kind = ContentParticle::Kind::kName;
    wrapper.content.name = tree.node(tree.root_id()).tag;
    wrapper.content.occurrence = ContentParticle::Occurrence::kStar;
    SILK_RETURN_IF_ERROR(dtd.AddElement(std::move(wrapper)));
  }
  for (auto& [tag, decl] : decls) {
    SILK_RETURN_IF_ERROR(dtd.AddElement(std::move(decl)));
  }
  return dtd;
}

Result<std::string> GenerateDtdText(const ViewTree& tree,
                                    const std::string& document_element) {
  SILK_ASSIGN_OR_RETURN(xml::Dtd dtd, GenerateDtd(tree, document_element));
  std::string out;
  // Render in a stable order: wrapper first (if any), then tags sorted.
  std::vector<std::string> names;
  if (!document_element.empty()) names.push_back(document_element);
  std::set<std::string> tags;
  for (const auto& node : tree.nodes()) tags.insert(node.tag);
  names.insert(names.end(), tags.begin(), tags.end());
  for (const auto& name : names) {
    SILK_ASSIGN_OR_RETURN(const xml::ElementDecl* decl,
                          dtd.GetElement(name));
    out += decl->ToString();
    out += "\n";
  }
  return out;
}

}  // namespace silkroute::core
