// The view tree (paper Sec. 3.1): SilkRoute's intermediate representation
// for an RXL view query. It is a global XML template — one node per element
// template, each annotated with a non-recursive datalog rule that computes
// all instances of that node — plus Skolem machinery:
//
//  - every node carries a Skolem-function index (SFI), a path of labels
//    assigned breadth-first ("S1.4.2" has SFI {1,4,2});
//  - every Skolem-term variable carries a variable index (p, q) where p is
//    the level of the shallowest node containing it and q makes (p, q)
//    unique; the canonical relational column for it is "v<p>_<q>";
//  - the label column for level j is "L<j>".
//
// Edges carry a multiplicity label (1 ? + *) derived from the database
// constraints (see labeling.h), which drives inner-vs-outer join selection
// and view-tree reduction.
#ifndef SILKROUTE_SILKROUTE_VIEW_TREE_H_
#define SILKROUTE_SILKROUTE_VIEW_TREE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"
#include "rxl/ast.h"

namespace silkroute::core {

/// Edge multiplicity: how many child instances per parent instance.
enum class Multiplicity {
  kOne,       // exactly one  ("1")
  kOptional,  // zero or one  ("?")
  kPlus,      // one or more  ("+")
  kStar,      // zero or more ("*")
};

const char* MultiplicityToString(Multiplicity m);

/// True for "1" and "+": an inner join suffices (every parent has a child).
bool AtLeastOne(Multiplicity m);
/// True for "1" and "?": at most one child (candidate for reduction: "1").
bool AtMostOne(Multiplicity m);

/// Skolem-term variable index (p, q).
struct VarIndex {
  int p = 0;
  int q = 0;

  /// Canonical relational column name, e.g. "v2_1".
  std::string ColumnName() const {
    return "v" + std::to_string(p) + "_" + std::to_string(q);
  }
  /// Paper rendering, e.g. "(2,1)".
  std::string ToString() const {
    return "(" + std::to_string(p) + "," + std::to_string(q) + ")";
  }
  bool operator==(const VarIndex& o) const { return p == o.p && q == o.q; }
  bool operator<(const VarIndex& o) const {
    return p != o.p ? p < o.p : q < o.q;
  }
};

/// Label column name for level j, e.g. "L2".
std::string LabelColumnName(int level);

/// One atom of a datalog rule body: a table with its tuple-variable binding.
struct DatalogAtom {
  std::string table;
  std::string binding;  // the RXL tuple variable name

  bool operator==(const DatalogAtom& o) const {
    return table == o.table && binding == o.binding;
  }
};

/// A Skolem-term argument: the field it carries and its variable index.
struct SkolemArg {
  rxl::FieldRef field;
  VarIndex index;
  /// True if this argument first appears at this node (not inherited from
  /// the parent's Skolem term).
  bool own = false;
  /// True for scope-key arguments (and explicit Skolem-term arguments),
  /// which identify the node instance. Value-only arguments are
  /// functionally determined by the identity arguments and are excluded
  /// from sort keys (a safe deviation from the paper's Sec. 3.2 ordering,
  /// which lists all variables; grouping is unchanged because values are
  /// functions of the identity).
  bool identity = true;
  /// Which rule of a fused node fills this argument (0 = the primary
  /// occurrence; identity arguments are shared by every rule).
  int rule = 0;
};

struct ViewTreeNode {
  /// Content of the element template, in document order.
  struct ContentItem {
    enum class Kind { kText, kValue, kChild };
    Kind kind = Kind::kText;
    std::string text;    // kText
    VarIndex value;      // kValue: column holding the text
    int child_id = -1;   // kChild
    /// Which fused occurrence contributed this item (0 for ordinary
    /// nodes). Literal text of occurrence k is emitted only alongside a
    /// row in which occurrence k supplied at least one non-null value.
    int occurrence = 0;
  };

  /// One datalog rule of a fused node (paper Sec. 3.1: elements from
  /// different templates merge when they share a Skolem function; each
  /// occurrence contributes one rule). `fields` maps every column the rule
  /// can fill — the positional Skolem arguments plus this occurrence's own
  /// values — to the field that supplies it.
  struct Rule {
    std::vector<DatalogAtom> atoms;
    std::vector<rxl::Condition> conditions;
    std::map<VarIndex, rxl::FieldRef> fields;
  };

  int id = -1;
  int parent = -1;  // -1 for the root
  std::vector<int> children;

  std::string tag;
  std::vector<int> sfi;     // Skolem-function index, e.g. {1, 4, 2}
  std::string skolem_name;  // "S1.4.2"

  /// Datalog rule body: conjunction of all from/where clauses in scope
  /// (the first — and usually only — rule of the node).
  std::vector<DatalogAtom> atoms;
  std::vector<rxl::Condition> conditions;

  /// Additional rules of a fused node (empty for ordinary nodes). A node
  /// is "fused" when two or more element templates share its explicit
  /// Skolem function; its instance set is the union over all rules.
  std::vector<Rule> extra_rules;
  bool fused() const { return !extra_rules.empty(); }
  /// All rules including the primary one, in occurrence order.
  std::vector<Rule> AllRules() const;

  /// Skolem-term arguments in canonical order (inherited first, then own).
  std::vector<SkolemArg> args;

  std::vector<ContentItem> content;

  /// Multiplicity of the edge from the parent (root: kOne).
  Multiplicity edge_label = Multiplicity::kStar;

  int level() const { return static_cast<int>(sfi.size()); }
  int label() const { return sfi.back(); }

  /// Arguments introduced at this node (own == true).
  std::vector<SkolemArg> OwnArgs() const;
};

class ViewTree {
 public:
  /// Builds the view tree for an RXL view over the given catalog: merges
  /// templates, assigns Skolem functions/indices and variable indices,
  /// derives datalog rules, and labels edges from the catalog's key and
  /// referential constraints (paper Sec. 3.1 and 3.5).
  ///
  /// Restrictions (documented in DESIGN.md): the root block must construct
  /// exactly one element; explicit Skolem merging requires identical scope
  /// queries.
  static Result<ViewTree> Build(const rxl::RxlQuery& query,
                                const Catalog& catalog);

  const std::vector<ViewTreeNode>& nodes() const { return nodes_; }
  const ViewTreeNode& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  ViewTreeNode& mutable_node(int id) { return nodes_[static_cast<size_t>(id)]; }
  int root_id() const { return 0; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Tree edges as (parent, child) pairs, in BFS order of the child.
  std::vector<std::pair<int, int>> Edges() const;
  size_t num_edges() const { return nodes_.size() - 1; }

  /// Maximum node level (depth of the tree).
  int MaxLevel() const;

  /// All variable indices at a level, ordered by q.
  std::vector<VarIndex> VarsAtLevel(int level) const;

  /// Identity variable indices at a level, ordered by q. This is the
  /// per-level segment of the global sort-key sequence (paper Sec. 3.2).
  std::vector<VarIndex> IdentityVarsAtLevel(int level) const;

  /// True if the variable is an identity variable in some node's term.
  bool IsIdentityVar(VarIndex index) const {
    return identity_vars_.count(index) > 0;
  }

  /// Resolves a variable index back to its field ref.
  Result<rxl::FieldRef> FieldOf(VarIndex index) const;

  /// Resolves a field ref to its variable index.
  Result<VarIndex> IndexOf(const rxl::FieldRef& field) const;

  /// The catalog this tree was built against (borrowed).
  const Catalog* catalog() const { return catalog_; }

  /// Fig. 6-style rendering for debugging and the bench output.
  std::string ToString() const;

 private:
  friend class ViewTreeBuilder;

  std::vector<ViewTreeNode> nodes_;
  std::map<rxl::FieldRef, VarIndex> var_index_;
  std::map<VarIndex, rxl::FieldRef> index_field_;
  std::set<VarIndex> identity_vars_;
  const Catalog* catalog_ = nullptr;
};

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_VIEW_TREE_H_
