#include "silkroute/view_tree.h"

#include <algorithm>
#include <deque>

#include "common/string_util.h"
#include "silkroute/labeling.h"

namespace silkroute::core {

const char* MultiplicityToString(Multiplicity m) {
  switch (m) {
    case Multiplicity::kOne:
      return "1";
    case Multiplicity::kOptional:
      return "?";
    case Multiplicity::kPlus:
      return "+";
    case Multiplicity::kStar:
      return "*";
  }
  return "?";
}

bool AtLeastOne(Multiplicity m) {
  return m == Multiplicity::kOne || m == Multiplicity::kPlus;
}

bool AtMostOne(Multiplicity m) {
  return m == Multiplicity::kOne || m == Multiplicity::kOptional;
}

std::string LabelColumnName(int level) {
  return "L" + std::to_string(level);
}

std::vector<SkolemArg> ViewTreeNode::OwnArgs() const {
  std::vector<SkolemArg> out;
  for (const auto& a : args) {
    if (a.own) out.push_back(a);
  }
  return out;
}

std::vector<ViewTreeNode::Rule> ViewTreeNode::AllRules() const {
  Rule primary;
  primary.atoms = atoms;
  primary.conditions = conditions;
  for (const auto& a : args) {
    if (a.rule == 0) primary.fields[a.index] = a.field;
  }
  std::vector<Rule> rules;
  rules.reserve(extra_rules.size() + 1);
  rules.push_back(std::move(primary));
  rules.insert(rules.end(), extra_rules.begin(), extra_rules.end());
  return rules;
}

namespace {

/// Pre-BFS representation of a node while walking the RXL template.
struct RawNode {
  std::string tag;
  std::optional<rxl::SkolemTerm> explicit_skolem;
  std::vector<DatalogAtom> atoms;
  std::vector<rxl::Condition> conditions;

  struct RawContent {
    enum class Kind { kText, kValue, kChild };
    Kind kind = Kind::kText;
    std::string text;
    rxl::FieldRef value;
    size_t child = 0;    // index into children
    int occurrence = 0;  // which fused occurrence contributed this item
  };
  std::vector<RawContent> content;
  std::vector<std::unique_ptr<RawNode>> children;

  /// Additional occurrences fused into this node (same explicit Skolem
  /// function under the same parent).
  struct RawOccurrence {
    std::vector<DatalogAtom> atoms;
    std::vector<rxl::Condition> conditions;
    std::vector<rxl::FieldRef> skolem_args;
  };
  std::vector<RawOccurrence> extra_occurrences;

  bool HasElementChildren() const { return !children.empty(); }
};

struct Scope {
  std::vector<rxl::TableBinding> bindings;
  std::vector<rxl::Condition> conditions;
};

}  // namespace

class ViewTreeBuilder {
 public:
  ViewTreeBuilder(const rxl::RxlQuery& query, const Catalog& catalog)
      : query_(query), catalog_(catalog) {}

  Result<ViewTree> Build() {
    // The root block must construct exactly one element.
    const rxl::Block& root_block = query_.root;
    const rxl::Content* root_element = nullptr;
    for (const auto& c : root_block.construct) {
      if (c.kind == rxl::Content::Kind::kElement) {
        if (root_element != nullptr) {
          return Status::InvalidArgument(
              "root block constructs more than one element; wrap them in a "
              "single root element");
        }
        root_element = &c;
      } else {
        return Status::InvalidArgument(
            "root block may only construct an element");
      }
    }
    if (root_element == nullptr) {
      return Status::InvalidArgument("root block constructs no element");
    }

    Scope scope;
    SILK_RETURN_IF_ERROR(ExtendScope(root_block, &scope));
    SILK_ASSIGN_OR_RETURN(std::unique_ptr<RawNode> raw,
                          WalkElement(*root_element->element, scope));

    // BFS numbering: assign SFIs and ids level by level.
    ViewTree tree;
    tree.catalog_ = &catalog_;
    struct QueueItem {
      const RawNode* raw;
      int parent_id;
      std::vector<int> sfi;
    };
    std::deque<QueueItem> queue;
    queue.push_back({raw.get(), -1, {1}});
    std::vector<const RawNode*> raw_of_id;
    while (!queue.empty()) {
      QueueItem item = std::move(queue.front());
      queue.pop_front();
      int id = static_cast<int>(tree.nodes_.size());
      ViewTreeNode node;
      node.id = id;
      node.parent = item.parent_id;
      node.tag = item.raw->tag;
      node.sfi = item.sfi;
      node.skolem_name = item.raw->explicit_skolem
                             ? item.raw->explicit_skolem->function
                             : SkolemNameFor(item.sfi);
      node.atoms = item.raw->atoms;
      node.conditions = item.raw->conditions;
      tree.nodes_.push_back(std::move(node));
      raw_of_id.push_back(item.raw);
      if (item.parent_id >= 0) {
        tree.nodes_[static_cast<size_t>(item.parent_id)].children.push_back(id);
      }
      int child_label = 0;
      for (const auto& child : item.raw->children) {
        ++child_label;
        std::vector<int> child_sfi = item.sfi;
        child_sfi.push_back(child_label);
        queue.push_back({child.get(), id, std::move(child_sfi)});
      }
    }

    // Duplicate explicit Skolem functions under the SAME parent were fused
    // during the walk; duplicates across different parents would require a
    // DAG-shaped view and stay unsupported.
    {
      std::map<std::string, int> seen;
      for (const auto& n : tree.nodes_) {
        auto [it, inserted] = seen.emplace(n.skolem_name, n.id);
        if (!inserted) {
          return Status::Unimplemented(
              "Skolem function '" + n.skolem_name +
              "' is shared by elements under different parents; fusion is "
              "only supported for sibling occurrences");
        }
      }
    }

    // Assign Skolem-term arguments, variable indices, rules, and content in
    // BFS (=id) order.
    std::map<int, int> next_q_at_level;
    for (size_t i = 0; i < tree.nodes_.size(); ++i) {
      ViewTreeNode& node = tree.nodes_[i];
      const RawNode* rn = raw_of_id[i];
      SILK_RETURN_IF_ERROR(
          AssignArgsAndContent(rn, &node, &tree, &next_q_at_level));
    }

    SILK_RETURN_IF_ERROR(LabelEdges(catalog_, &tree));
    return tree;
  }

 private:
  static std::string SkolemNameFor(const std::vector<int>& sfi) {
    std::string name = "S";
    for (size_t i = 0; i < sfi.size(); ++i) {
      if (i > 0) name += ".";
      name += std::to_string(sfi[i]);
    }
    return name;
  }

  Status ExtendScope(const rxl::Block& block, Scope* scope) const {
    for (const auto& b : block.from) {
      if (!catalog_.HasTable(b.table)) {
        return Status::NotFound("RXL references unknown table '" + b.table +
                                "'");
      }
      for (const auto& existing : scope->bindings) {
        if (existing.var == b.var) {
          return Status::InvalidArgument("tuple variable '$" + b.var +
                                         "' shadows an outer binding");
        }
      }
      scope->bindings.push_back(b);
    }
    for (const auto& c : block.where) {
      SILK_RETURN_IF_ERROR(CheckCondition(c, *scope));
      scope->conditions.push_back(c);
    }
    return Status::OK();
  }

  Status CheckFieldRef(const rxl::FieldRef& ref, const Scope& scope) const {
    for (const auto& b : scope.bindings) {
      if (b.var == ref.var) {
        SILK_ASSIGN_OR_RETURN(const TableSchema* schema,
                              catalog_.GetTable(b.table));
        if (!schema->HasColumn(ref.field)) {
          return Status::NotFound("table '" + b.table + "' has no column '" +
                                  ref.field + "' (in " + ref.ToString() + ")");
        }
        return Status::OK();
      }
    }
    return Status::NotFound("unbound tuple variable in " + ref.ToString());
  }

  Status CheckCondition(const rxl::Condition& c, const Scope& scope) const {
    if (c.lhs.kind == rxl::Operand::Kind::kField) {
      SILK_RETURN_IF_ERROR(CheckFieldRef(c.lhs.field, scope));
    }
    if (c.rhs.kind == rxl::Operand::Kind::kField) {
      SILK_RETURN_IF_ERROR(CheckFieldRef(c.rhs.field, scope));
    }
    return Status::OK();
  }

  Result<std::unique_ptr<RawNode>> WalkElement(const rxl::Element& element,
                                               const Scope& scope) {
    auto node = std::make_unique<RawNode>();
    node->tag = element.tag;
    node->explicit_skolem = element.skolem;
    for (const auto& b : scope.bindings) {
      node->atoms.push_back({b.table, b.var});
    }
    node->conditions = scope.conditions;
    if (element.skolem) {
      for (const auto& arg : element.skolem->args) {
        SILK_RETURN_IF_ERROR(CheckFieldRef(arg, scope));
      }
    }
    SILK_RETURN_IF_ERROR(WalkContents(element.content, scope, node.get(),
                                      /*block_level=*/false));
    return node;
  }

  /// Walks content items into `node`. `block_level` is true when the items
  /// come from a nested block's construct clause, where only elements and
  /// further nested blocks are allowed (a bare value there would be a
  /// repeated text node, which RXL's data model does not produce).
  Status WalkContents(const std::vector<rxl::Content>& contents,
                      const Scope& scope, RawNode* node, bool block_level) {
    for (const auto& c : contents) {
      switch (c.kind) {
        case rxl::Content::Kind::kText: {
          if (block_level) {
            return Status::Unimplemented(
                "nested blocks may only construct elements");
          }
          RawNode::RawContent item;
          item.kind = RawNode::RawContent::Kind::kText;
          item.text = c.text;
          node->content.push_back(std::move(item));
          break;
        }
        case rxl::Content::Kind::kFieldRef: {
          if (block_level) {
            return Status::Unimplemented(
                "nested blocks may only construct elements");
          }
          SILK_RETURN_IF_ERROR(CheckFieldRef(c.field, scope));
          RawNode::RawContent item;
          item.kind = RawNode::RawContent::Kind::kValue;
          item.value = c.field;
          node->content.push_back(std::move(item));
          break;
        }
        case rxl::Content::Kind::kElement: {
          SILK_ASSIGN_OR_RETURN(std::unique_ptr<RawNode> child,
                                WalkElement(*c.element, scope));
          SILK_RETURN_IF_ERROR(AddChild(node, std::move(child)));
          break;
        }
        case rxl::Content::Kind::kBlock: {
          // Parallel sibling blocks: extend the scope and attach the
          // block's elements (and the elements of blocks nested inside it)
          // as children of the current element.
          Scope inner = scope;
          SILK_RETURN_IF_ERROR(ExtendScope(*c.block, &inner));
          SILK_RETURN_IF_ERROR(WalkContents(c.block->construct, inner, node,
                                            /*block_level=*/true));
          break;
        }
      }
    }
    return Status::OK();
  }

  /// Attaches `child` to `node`, fusing it into an existing sibling that
  /// shares its explicit Skolem function (paper Sec. 3.1).
  Status AddChild(RawNode* node, std::unique_ptr<RawNode> child) {
    if (child->explicit_skolem) {
      for (auto& sibling : node->children) {
        if (sibling->explicit_skolem &&
            sibling->explicit_skolem->function ==
                child->explicit_skolem->function) {
          return FuseInto(sibling.get(), std::move(child));
        }
      }
    }
    RawNode::RawContent item;
    item.kind = RawNode::RawContent::Kind::kChild;
    item.child = node->children.size();
    node->children.push_back(std::move(child));
    node->content.push_back(std::move(item));
    return Status::OK();
  }

  /// Merges a second occurrence of a Skolem function into `target`.
  /// Restrictions keep fusion tree-shaped and streamable: same tag, equal
  /// Skolem arity, and text/value content only on both sides.
  Status FuseInto(RawNode* target, std::unique_ptr<RawNode> dup) {
    const std::string& fn = target->explicit_skolem->function;
    if (target->tag != dup->tag) {
      return Status::InvalidArgument(
          "fused Skolem function '" + fn + "' used with different tags <" +
          target->tag + "> and <" + dup->tag + ">");
    }
    if (target->explicit_skolem->args.size() !=
        dup->explicit_skolem->args.size()) {
      return Status::InvalidArgument("fused Skolem function '" + fn +
                                     "' used with different arities");
    }
    if (target->HasElementChildren() || dup->HasElementChildren()) {
      return Status::Unimplemented(
          "fused element '" + fn +
          "' may only contain text and values, not child elements");
    }
    const int occurrence =
        static_cast<int>(target->extra_occurrences.size()) + 1;
    target->extra_occurrences.push_back(
        {dup->atoms, dup->conditions, dup->explicit_skolem->args});
    for (auto& rc : dup->content) {
      rc.occurrence = occurrence;
      target->content.push_back(std::move(rc));
    }
    return Status::OK();
  }

  /// Computes the node's Skolem-term arguments (keys of all in-scope tuple
  /// variables, or the explicit Skolem args, then contained values),
  /// assigns (p, q) indices to first appearances, builds the rules of a
  /// fused node, and wires the content items.
  Status AssignArgsAndContent(const RawNode* raw, ViewTreeNode* node,
                              ViewTree* tree,
                              std::map<int, int>* next_q_at_level) {
    // Identity fields first (scope keys, explicit Skolem args), then
    // occurrence-0 value fields.
    std::vector<rxl::FieldRef> arg_fields;
    std::vector<bool> is_identity;
    auto add_field = [&](const rxl::FieldRef& f, bool identity) {
      auto it = std::find(arg_fields.begin(), arg_fields.end(), f);
      if (it != arg_fields.end()) {
        size_t i = static_cast<size_t>(it - arg_fields.begin());
        is_identity[i] = is_identity[i] || identity;
        return;
      }
      arg_fields.push_back(f);
      is_identity.push_back(identity);
    };
    if (raw->explicit_skolem) {
      // An explicit Skolem term overrides the automatic argument list: the
      // user controls how instances are grouped (paper Sec. 3.1).
      for (const auto& a : raw->explicit_skolem->args) {
        add_field(a, /*identity=*/true);
      }
    } else {
      for (const auto& atom : raw->atoms) {
        SILK_ASSIGN_OR_RETURN(const TableSchema* schema,
                              catalog_.GetTable(atom.table));
        if (schema->has_primary_key()) {
          for (const auto& k : schema->primary_key()) {
            add_field({atom.binding, k}, /*identity=*/true);
          }
        } else {
          for (const auto& col : schema->columns()) {
            add_field({atom.binding, col.name}, /*identity=*/true);
          }
        }
      }
    }
    for (const auto& rc : raw->content) {
      if (rc.kind == RawNode::RawContent::Kind::kValue &&
          rc.occurrence == 0) {
        add_field(rc.value, /*identity=*/false);
      }
    }

    const std::vector<SkolemArg>* parent_args = nullptr;
    if (node->parent >= 0) {
      parent_args = &tree->nodes_[static_cast<size_t>(node->parent)].args;
    }
    auto index_of = [&](const rxl::FieldRef& field) {
      auto it = tree->var_index_.find(field);
      if (it != tree->var_index_.end()) return it->second;
      VarIndex index;
      index.p = node->level();
      index.q = ++(*next_q_at_level)[index.p];
      tree->var_index_.emplace(field, index);
      tree->index_field_.emplace(index, field);
      return index;
    };
    for (size_t fi = 0; fi < arg_fields.size(); ++fi) {
      const auto& field = arg_fields[fi];
      SkolemArg arg;
      arg.field = field;
      arg.identity = is_identity[fi];
      arg.index = index_of(field);
      if (arg.identity) tree->identity_vars_.insert(arg.index);
      arg.own = true;
      if (parent_args != nullptr) {
        for (const auto& pa : *parent_args) {
          if (pa.field == field) {
            arg.own = false;
            break;
          }
        }
      }
      node->args.push_back(std::move(arg));
    }

    // An explicit Skolem term must still carry the parent's identity, or
    // the generated joins and the stream merge could not align instances
    // with their parent elements.
    if (raw->explicit_skolem && parent_args != nullptr) {
      for (const auto& pa : *parent_args) {
        if (!pa.identity) continue;
        bool covered = false;
        for (const auto& a : node->args) {
          if (a.identity && a.index == pa.index) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          return Status::InvalidArgument(
              "explicit Skolem term '" + node->skolem_name +
              "' must include the parent's Skolem argument " +
              pa.field.ToString());
        }
      }
    }

    // Ordered identity args (positional view for fused occurrences).
    std::vector<const SkolemArg*> identity_args;
    for (const auto& a : node->args) {
      if (a.identity) identity_args.push_back(&a);
    }

    // Rules for fused occurrences: positional identity mapping plus this
    // occurrence's own value columns.
    std::map<std::pair<int, std::string>, VarIndex> value_index;
    for (int k = 0; k < static_cast<int>(raw->extra_occurrences.size());
         ++k) {
      const auto& occ = raw->extra_occurrences[static_cast<size_t>(k)];
      ViewTreeNode::Rule rule;
      rule.atoms = occ.atoms;
      rule.conditions = occ.conditions;
      if (occ.skolem_args.size() != identity_args.size()) {
        return Status::InvalidArgument(
            "fused Skolem function '" + node->skolem_name +
            "' used with different arities");
      }
      for (size_t i = 0; i < occ.skolem_args.size(); ++i) {
        rule.fields[identity_args[i]->index] = occ.skolem_args[i];
      }
      for (const auto& rc : raw->content) {
        if (rc.kind != RawNode::RawContent::Kind::kValue ||
            rc.occurrence != k + 1) {
          continue;
        }
        VarIndex index = index_of(rc.value);
        value_index[{rc.occurrence, rc.value.ToString()}] = index;
        rule.fields[index] = rc.value;
        SkolemArg arg;
        arg.field = rc.value;
        arg.index = index;
        arg.identity = false;
        arg.own = true;
        arg.rule = k + 1;
        node->args.push_back(std::move(arg));
      }
      node->extra_rules.push_back(std::move(rule));
    }

    // Wire content items (children are known: BFS numbering ran first).
    size_t next_child = 0;
    for (const auto& rc : raw->content) {
      ViewTreeNode::ContentItem item;
      item.occurrence = rc.occurrence;
      switch (rc.kind) {
        case RawNode::RawContent::Kind::kText:
          item.kind = ViewTreeNode::ContentItem::Kind::kText;
          item.text = rc.text;
          break;
        case RawNode::RawContent::Kind::kValue: {
          item.kind = ViewTreeNode::ContentItem::Kind::kValue;
          auto local = value_index.find({rc.occurrence, rc.value.ToString()});
          if (local != value_index.end()) {
            item.value = local->second;
          } else {
            auto vi = tree->var_index_.find(rc.value);
            if (vi == tree->var_index_.end()) {
              return Status::Internal("value variable not indexed: " +
                                      rc.value.ToString());
            }
            item.value = vi->second;
          }
          break;
        }
        case RawNode::RawContent::Kind::kChild:
          item.kind = ViewTreeNode::ContentItem::Kind::kChild;
          item.child_id = node->children[next_child++];
          break;
      }
      node->content.push_back(std::move(item));
    }
    return Status::OK();
  }

  const rxl::RxlQuery& query_;
  const Catalog& catalog_;
};

Result<ViewTree> ViewTree::Build(const rxl::RxlQuery& query,
                                 const Catalog& catalog) {
  ViewTreeBuilder builder(query, catalog);
  return builder.Build();
}

std::vector<std::pair<int, int>> ViewTree::Edges() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (n.parent >= 0) edges.emplace_back(n.parent, n.id);
  }
  return edges;
}

int ViewTree::MaxLevel() const {
  int max_level = 0;
  for (const auto& n : nodes_) max_level = std::max(max_level, n.level());
  return max_level;
}

std::vector<VarIndex> ViewTree::VarsAtLevel(int level) const {
  std::vector<VarIndex> out;
  for (const auto& [index, field] : index_field_) {
    if (index.p == level) out.push_back(index);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VarIndex> ViewTree::IdentityVarsAtLevel(int level) const {
  std::vector<VarIndex> out;
  for (const auto& index : identity_vars_) {
    if (index.p == level) out.push_back(index);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<rxl::FieldRef> ViewTree::FieldOf(VarIndex index) const {
  auto it = index_field_.find(index);
  if (it == index_field_.end()) {
    return Status::NotFound("no variable with index " + index.ToString());
  }
  return it->second;
}

Result<VarIndex> ViewTree::IndexOf(const rxl::FieldRef& field) const {
  auto it = var_index_.find(field);
  if (it == var_index_.end()) {
    return Status::NotFound("no variable index for " + field.ToString());
  }
  return it->second;
}

std::string ViewTree::ToString() const {
  std::string out;
  // Pre-order walk so children print under their parent.
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const ViewTreeNode& n = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    out += std::string(static_cast<size_t>(n.level() - 1) * 2, ' ');
    out += "<" + n.tag + "> " + n.skolem_name + "(";
    std::vector<std::string> args;
    args.reserve(n.args.size());
    for (const auto& a : n.args) {
      args.push_back(a.field.field + a.index.ToString());
    }
    out += Join(args, ", ") + ")";
    if (n.parent >= 0) {
      out += "  [" + std::string(MultiplicityToString(n.edge_label)) + "]";
    }
    out += "\n";
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

}  // namespace silkroute::core
