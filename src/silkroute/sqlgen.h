// SQL generation (paper Sec. 3.4): translates one partition component into
// one SQL query over the target database, in either of the two plan shapes
// the paper distinguishes:
//
//  - kOuterJoin (SilkRoute's default): the sub-query for a node is combined
//    with the union of its children's sub-queries by a LEFT OUTER JOIN —
//    (R leftjoin (S union T)). Produces fewer, wider tuples.
//  - kOuterUnion (Shanmugasundaram et al. [9]): one SELECT per node, outer
//    unioned — (R leftjoin S) union (R leftjoin T), which with our Skolem
//    columns degenerates to a plain UNION ALL of per-node selects. Produces
//    more, narrower tuples.
//
// Every query projects the component's uniform column list — label columns
// L1..Lmax and Skolem-variable columns v<p>_<q> — and sorts by the global
// interleaved key (L1, identity vars of level 1, L2, ...), so the tagger
// can merge streams in constant space.
//
// A StreamSpec also carries InstanceSpecs: how to recognize, order, and
// deduplicate the node instances contained in each result row.
#ifndef SILKROUTE_SILKROUTE_SQLGEN_H_
#define SILKROUTE_SILKROUTE_SQLGEN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "silkroute/partition.h"
#include "silkroute/view_tree.h"
#include "sql/ast.h"

namespace silkroute::core {

enum class SqlGenStyle {
  kOuterJoin,
  kOuterUnion,
};

const char* SqlGenStyleToString(SqlGenStyle style);

/// How the tagger recognizes one node's instances in a stream row.
struct InstanceSpec {
  int node_id = -1;
  std::vector<int> path_labels;  // the node's SFI

  /// (level, expected label): the row's L<level> column must be non-NULL
  /// and equal. Levels deeper than the node's execution-class head carry no
  /// checks (reduced 1-children exist whenever their head does).
  std::vector<std::pair<int, int>> label_checks;

  /// Levels whose label column must be NULL. Outer-union streams partition
  /// rows by class, and a class's rows are exactly those whose labels match
  /// to the head's level and are NULL below it; without this, rows of a
  /// deeper class would be mistaken for instances of a shallower one.
  std::vector<int> null_levels;

  /// Identity variables that participate in this instance's logical sort /
  /// dedup key (read from the row; all other key positions are NULL).
  std::vector<VarIndex> key_vars;

  /// True for fused nodes: equal-key rows from different rules merge into
  /// one element, appending each row's values instead of deduplicating.
  bool fused = false;
};

struct StreamSpec {
  std::string sql;                   // final SQL text, with ORDER BY
  std::vector<int> covered_nodes;    // ascending node ids
  std::vector<InstanceSpec> instances;  // document order
  /// Result-cache fragment key (publisher, DESIGN.md §15): packed from the
  /// normalized SQL and the versions of the tables the component names.
  /// Empty = uncacheable (version fetch failed, cache off, or a degraded
  /// replacement query minted mid-plan, after the version snapshot).
  std::string cache_key;
};

class SqlGenerator {
 public:
  SqlGenerator(const ViewTree* tree, SqlGenStyle style, bool reduce,
               bool distinct_selects = false)
      : tree_(tree),
        style_(style),
        reduce_(reduce),
        distinct_selects_(distinct_selects) {}

  /// Generates the SQL and tagging metadata for one component (a connected
  /// set of view-tree node ids, ascending).
  Result<StreamSpec> GenerateComponent(const std::vector<int>& nodes) const;

  /// Generates all streams of a partition, ordered by component root.
  Result<std::vector<StreamSpec>> GeneratePlan(const Partition& plan) const;

 private:
  struct ColumnList;

  Result<sql::SelectCore> BuildClassCore(const ExecComponent& exec,
                                         const ExecNode& cls,
                                         const ColumnList& columns) const;
  /// One core per datalog rule: a single core for ordinary classes, one per
  /// occurrence for fused nodes.
  Result<std::vector<sql::SelectCore>> BuildClassCores(
      const ExecComponent& exec, const ExecNode& cls,
      const ColumnList& columns) const;
  Result<sql::QueryPtr> BuildJoinQuery(const ExecComponent& exec,
                                       size_t class_index,
                                       const ColumnList& columns) const;
  void AddOrderBy(const ColumnList& columns, sql::Query* query) const;

  const ViewTree* tree_;
  SqlGenStyle style_;
  bool reduce_;
  /// Emit SELECT DISTINCT in per-class sub-selects: enforces the datalog
  /// rules' set semantics at the server instead of relying on the tagger's
  /// duplicate suppression. Costs a hashing pass per sub-select; useful
  /// when explicit Skolem terms project away key columns.
  bool distinct_selects_;
};

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_SQLGEN_H_
