// Source descriptions (paper Sec. 3.4): "all SQL engines do not necessarily
// support all these constructs. In those cases, SilkRoute chooses
// permissible plans based on the source description of the underlying
// RDBMS."
//
// After reduction, a component needs
//   - a LEFT OUTER JOIN for every execution class that has child classes,
//   - a UNION for every execution class with two or more child classes
//     (sibling branches), and in outer-union style for any component with
//     two or more classes.
// Plans whose components avoid these constructs are "permissible" for
// engines that lack them; MakePermissible cuts offending kept edges until
// the plan qualifies (in the limit, the fully partitioned plan, which needs
// neither construct).
#ifndef SILKROUTE_SILKROUTE_SOURCE_H_
#define SILKROUTE_SILKROUTE_SOURCE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "silkroute/partition.h"
#include "silkroute/sqlgen.h"
#include "silkroute/view_tree.h"

namespace silkroute::core {

struct SourceDescription {
  bool supports_outer_join = true;
  bool supports_union = true;
};

/// True if the plan's generated SQL uses only constructs the source
/// supports.
Result<bool> PlanPermissible(const ViewTree& tree, uint64_t mask,
                             SqlGenStyle style, bool reduce,
                             const SourceDescription& source);

/// Largest permissible sub-plan of `mask`: cuts kept edges that force
/// unsupported constructs (preferring to cut the deepest offending edge
/// first) until the plan is permissible. Returns `mask` unchanged when it
/// already qualifies.
Result<uint64_t> MakePermissible(const ViewTree& tree, uint64_t mask,
                                 SqlGenStyle style, bool reduce,
                                 const SourceDescription& source);

/// The deepest tree edge with both endpoints in `nodes` (a connected
/// component's node set — every such edge is a kept edge of the component),
/// as an index into tree.Edges(); -1 when the set has no internal edge
/// (single node). This is the cut MakePermissible prefers, reused by the
/// publisher's plan degradation: cutting the deepest edge first preserves
/// shallow structure.
int DeepestInternalEdge(const ViewTree& tree, const std::vector<int>& nodes);

/// Splits a connected node set at tree edge (parent, child) into the
/// remainder (containing the component root) and the child's subtree, both
/// ascending. The edge must be internal to `nodes`.
std::pair<std::vector<int>, std::vector<int>> SplitAtEdge(
    const ViewTree& tree, const std::vector<int>& nodes,
    std::pair<int, int> edge);

/// The backend tables a component's covered nodes *introduce*: a node's
/// rule body is the conjunction of all atoms in scope, so the inherited
/// (ancestor) atoms are subtracted — a failure is attributed to the tables
/// the failing component brought in, not to every joined ancestor. Sorted,
/// deduplicated. Used as circuit-breaker keys by the service and as the
/// table attribution on component trace spans and per-component outcomes.
std::vector<std::string> ComponentTables(const ViewTree& tree,
                                         const std::vector<int>& nodes);

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_SOURCE_H_
