#include "silkroute/partition.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace silkroute::core {

namespace {

/// Union-find over node ids.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) {
    int ra = Find(a), rb = Find(b);
    if (ra != rb) parent_[static_cast<size_t>(std::max(ra, rb))] = std::min(ra, rb);
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

Result<Partition> Partition::FromMask(const ViewTree& tree, uint64_t mask) {
  const auto edges = tree.Edges();
  if (edges.size() > 63) {
    return Status::OutOfRange("view tree has more than 63 edges");
  }
  if (edges.size() < 64 && mask >= (uint64_t{1} << edges.size())) {
    return Status::OutOfRange("edge mask out of range");
  }
  Partition p;
  p.tree_ = &tree;
  p.mask_ = mask;

  DisjointSet ds(tree.num_nodes());
  for (size_t i = 0; i < edges.size(); ++i) {
    if ((mask >> i) & 1) ds.Union(edges[i].first, edges[i].second);
  }
  std::map<int, Component> by_root;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    int root = ds.Find(static_cast<int>(i));
    Component& c = by_root[root];
    if (c.nodes.empty()) c.root = static_cast<int>(i);
    c.nodes.push_back(static_cast<int>(i));
  }
  p.components_.reserve(by_root.size());
  for (auto& [root, c] : by_root) {
    // Ascending ids = BFS order; root is the lowest id = shallowest node
    // (BFS numbering guarantees ancestors have smaller ids).
    c.root = c.nodes.front();
    p.components_.push_back(std::move(c));
  }
  // Order components by their root id for a stable stream order.
  std::sort(p.components_.begin(), p.components_.end(),
            [](const Component& a, const Component& b) {
              return a.root < b.root;
            });
  return p;
}

Partition Partition::Unified(const ViewTree& tree) {
  uint64_t mask = tree.num_edges() >= 64
                      ? ~uint64_t{0}
                      : (uint64_t{1} << tree.num_edges()) - 1;
  auto result = FromMask(tree, mask);
  return std::move(result).value();
}

Partition Partition::FullyPartitioned(const ViewTree& tree) {
  auto result = FromMask(tree, 0);
  return std::move(result).value();
}

std::string Partition::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(components_.size());
  for (const auto& c : components_) {
    std::vector<std::string> names;
    names.reserve(c.nodes.size());
    for (int id : c.nodes) names.push_back(tree_->node(id).skolem_name);
    parts.push_back("{" + Join(names, ",") + "}");
  }
  return Join(parts, " | ");
}

Result<uint64_t> NumPlans(const ViewTree& tree) {
  if (tree.num_edges() > 63) {
    return Status::OutOfRange("view tree has more than 63 edges");
  }
  return uint64_t{1} << tree.num_edges();
}

Result<ExecComponent> BuildExecComponent(
    const ViewTree& tree, const Partition::Component& component, bool reduce) {
  ExecComponent out;
  out.source = component;

  // Class assignment: union nodes across '1'-labeled edges that are inside
  // the component (both endpoints members).
  std::map<int, size_t> member_index;
  for (size_t i = 0; i < component.nodes.size(); ++i) {
    member_index[component.nodes[i]] = i;
  }
  DisjointSet ds(component.nodes.size());
  if (reduce) {
    for (int id : component.nodes) {
      const ViewTreeNode& node = tree.node(id);
      if (node.parent < 0) continue;
      auto parent_it = member_index.find(node.parent);
      if (parent_it == member_index.end()) continue;
      if (node.edge_label == Multiplicity::kOne) {
        ds.Union(static_cast<int>(parent_it->second),
                 static_cast<int>(member_index[id]));
      }
    }
  }

  // Build classes keyed by representative; the head is the smallest id
  // (shallowest node, since ids are BFS-ordered).
  std::map<int, size_t> class_of_rep;  // representative -> ExecNode index
  for (size_t i = 0; i < component.nodes.size(); ++i) {
    int rep = ds.Find(static_cast<int>(i));
    auto [it, inserted] = class_of_rep.emplace(rep, out.nodes.size());
    if (inserted) out.nodes.emplace_back();
    ExecNode& cls = out.nodes[it->second];
    int node_id = component.nodes[i];
    cls.covered.push_back(node_id);
    if (cls.head < 0 || node_id < cls.head) cls.head = node_id;
  }
  for (auto& cls : out.nodes) {
    std::sort(cls.covered.begin(), cls.covered.end());
    cls.head = cls.covered.front();
  }
  // Root class first; then by head id.
  std::sort(out.nodes.begin(), out.nodes.end(),
            [](const ExecNode& a, const ExecNode& b) {
              return a.head < b.head;
            });

  // Wire parent/child relations between classes: for each class (other than
  // the root class), walk up from its head until hitting a node covered by
  // another class in this component.
  std::map<int, size_t> class_of_node;
  for (size_t ci = 0; ci < out.nodes.size(); ++ci) {
    for (int id : out.nodes[ci].covered) class_of_node[id] = ci;
  }
  for (size_t ci = 0; ci < out.nodes.size(); ++ci) {
    ExecNode& cls = out.nodes[ci];
    int up = tree.node(cls.head).parent;
    while (up >= 0) {
      auto it = class_of_node.find(up);
      if (it != class_of_node.end()) {
        if (it->second == ci) {
          return Status::Internal("exec class contains its own ancestor head");
        }
        cls.parent = static_cast<int>(it->second);
        out.nodes[it->second].children.push_back(static_cast<int>(ci));
        break;
      }
      up = tree.node(up).parent;
    }
    if (cls.parent < 0 && ci != 0) {
      return Status::Internal("non-root exec class has no parent in component");
    }
  }
  return out;
}

}  // namespace silkroute::core
