// The paper's workloads: the supplier DTD of Fig. 2 and the RXL view
// queries of Sec. 2 / Sec. 4 (Query 1, its boxed fragment, and Query 2).
#ifndef SILKROUTE_SILKROUTE_QUERIES_H_
#define SILKROUTE_SILKROUTE_QUERIES_H_

#include <string_view>

namespace silkroute::core {

/// Fig. 2: the DTD the exported XML must conform to. <supplier> contains
/// name, nation, region, and a list of parts; <part> contains a name and
/// pending orders; <order> contains orderkey, customer, and the customer's
/// nation.
std::string_view SupplierDtd();

/// DTD for the full document (SupplierDtd plus a <suppliers> wrapper used
/// when materializing the whole view as one document).
std::string_view SuppliersDocumentDtd();

/// Fig. 3, Query 1: orders nested under parts (two chained '*' edges).
/// View tree: Fig. 6 — 10 nodes, 9 edges.
std::string_view Query1Rxl();

/// The boxed fragment of Fig. 3 (supplier with nation and part children)
/// used in the motivating example (Figs. 4 and 5).
std::string_view QueryFragmentRxl();

/// Query 2 (Sec. 4): identical to Query 1 except the order block is a child
/// of supplier instead of part (two parallel '*' edges). View tree: Fig. 12.
std::string_view Query2Rxl();

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_QUERIES_H_
