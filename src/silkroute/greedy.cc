#include "silkroute/greedy.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace silkroute::core {

std::vector<uint64_t> GreedyPlan::PlanMasks() const {
  uint64_t base = 0;
  for (size_t e : mandatory_edges) base |= uint64_t{1} << e;
  std::vector<uint64_t> masks;
  const size_t n = optional_edges.size();
  masks.reserve(size_t{1} << n);
  for (uint64_t subset = 0; subset < (uint64_t{1} << n); ++subset) {
    uint64_t mask = base;
    for (size_t i = 0; i < n; ++i) {
      if ((subset >> i) & 1) mask |= uint64_t{1} << optional_edges[i];
    }
    masks.push_back(mask);
  }
  std::sort(masks.begin(), masks.end());
  masks.erase(std::unique(masks.begin(), masks.end()), masks.end());
  return masks;
}

uint64_t GreedyPlan::FullMask() const {
  uint64_t mask = 0;
  for (size_t e : mandatory_edges) mask |= uint64_t{1} << e;
  for (size_t e : optional_edges) mask |= uint64_t{1} << e;
  return mask;
}

std::string GreedyPlan::ToString(const ViewTree& tree) const {
  const auto edges = tree.Edges();
  auto render = [&](const std::vector<size_t>& list) {
    std::vector<std::string> parts;
    parts.reserve(list.size());
    for (size_t e : list) {
      parts.push_back(tree.node(edges[e].first).skolem_name + "-" +
                      tree.node(edges[e].second).skolem_name);
    }
    return Join(parts, ", ");
  };
  return "mandatory: [" + render(mandatory_edges) + "] optional: [" +
         render(optional_edges) + "] (oracle requests: " +
         std::to_string(oracle_requests) + ")";
}

namespace {

/// Memoizing cost oracle facade. Requests are deduplicated by SQL text, as
/// a middle-ware system would cache optimizer estimates.
class CachedOracle {
 public:
  explicit CachedOracle(engine::CostOracle* oracle) : oracle_(oracle) {}

  Result<engine::QueryEstimate> Estimate(const std::string& sql) {
    auto it = cache_.find(sql);
    if (it != cache_.end()) return it->second;
    SILK_ASSIGN_OR_RETURN(engine::QueryEstimate est,
                          oracle_->EstimateSql(sql));
    ++requests_;
    cache_.emplace(sql, est);
    return est;
  }

  size_t requests() const { return requests_; }

 private:
  engine::CostOracle* oracle_;
  std::map<std::string, engine::QueryEstimate> cache_;
  size_t requests_ = 0;
};

}  // namespace

Result<GreedyPlan> GeneratePlanGreedy(const ViewTree& tree,
                                      engine::CostOracle* oracle,
                                      const GreedyParams& params) {
  SqlGenerator gen(&tree, params.style, params.reduce);
  CachedOracle cached(oracle);

  auto cost_of = [&](const std::vector<int>& nodes) -> Result<double> {
    SILK_ASSIGN_OR_RETURN(StreamSpec spec, gen.GenerateComponent(nodes));
    SILK_ASSIGN_OR_RETURN(engine::QueryEstimate est,
                          cached.Estimate(spec.sql));
    return params.a * est.cost + params.b * est.data_size();
  };

  // Current components: each node starts alone.
  std::map<int, std::vector<int>> components;  // root id -> sorted node ids
  std::map<int, int> comp_of;                  // node -> root id
  for (const auto& node : tree.nodes()) {
    components[node.id] = {node.id};
    comp_of[node.id] = node.id;
  }

  const auto edges = tree.Edges();
  std::set<size_t> remaining;
  for (size_t i = 0; i < edges.size(); ++i) remaining.insert(i);

  GreedyPlan plan;
  while (!remaining.empty()) {
    double best_cost = 0;
    ssize_t best_edge = -1;
    std::vector<int> best_merged;
    for (size_t e : remaining) {
      int a = comp_of[edges[e].first];
      int b = comp_of[edges[e].second];
      const std::vector<int>& nodes_a = components[a];
      const std::vector<int>& nodes_b = components[b];
      std::vector<int> merged;
      merged.reserve(nodes_a.size() + nodes_b.size());
      std::merge(nodes_a.begin(), nodes_a.end(), nodes_b.begin(),
                 nodes_b.end(), std::back_inserter(merged));
      SILK_ASSIGN_OR_RETURN(double cost_a, cost_of(nodes_a));
      SILK_ASSIGN_OR_RETURN(double cost_b, cost_of(nodes_b));
      SILK_ASSIGN_OR_RETURN(double cost_c, cost_of(merged));
      double relative = cost_c - (cost_a + cost_b);
      if (best_edge < 0 || relative < best_cost) {
        best_cost = relative;
        best_edge = static_cast<ssize_t>(e);
        best_merged = std::move(merged);
      }
    }
    if (best_edge < 0) break;
    if (best_cost < params.t1) {
      plan.mandatory_edges.push_back(static_cast<size_t>(best_edge));
    } else if (best_cost < params.t2) {
      plan.optional_edges.push_back(static_cast<size_t>(best_edge));
    } else {
      break;  // no qualifying edge remains
    }
    // Merge the two components.
    size_t e = static_cast<size_t>(best_edge);
    int a = comp_of[edges[e].first];
    int b = comp_of[edges[e].second];
    int keep = std::min(a, b);
    int drop = std::max(a, b);
    components[keep] = std::move(best_merged);
    components.erase(drop);
    for (auto& [node, comp] : comp_of) {
      if (comp == drop) comp = keep;
    }
    remaining.erase(e);
  }

  std::sort(plan.mandatory_edges.begin(), plan.mandatory_edges.end());
  std::sort(plan.optional_edges.begin(), plan.optional_edges.end());
  plan.oracle_requests = cached.requests();
  return plan;
}

}  // namespace silkroute::core
