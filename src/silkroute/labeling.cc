#include "silkroute/labeling.h"

#include <algorithm>
#include <set>

namespace silkroute::core {

namespace {

using rxl::Condition;
using rxl::FieldRef;
using rxl::Operand;

bool Contains(const std::set<FieldRef>& set, const FieldRef& f) {
  return set.count(f) > 0;
}

/// All columns of `atom`'s table as FieldRefs on its binding.
std::vector<FieldRef> AtomColumns(const Catalog& catalog,
                                  const DatalogAtom& atom) {
  std::vector<FieldRef> out;
  auto schema = catalog.GetTable(atom.table);
  if (!schema.ok()) return out;
  for (const auto& col : (*schema)->columns()) {
    out.push_back({atom.binding, col.name});
  }
  return out;
}

/// Key columns of `atom`'s table as FieldRefs (all columns if keyless).
std::vector<FieldRef> AtomKey(const Catalog& catalog, const DatalogAtom& atom) {
  std::vector<FieldRef> out;
  auto schema = catalog.GetTable(atom.table);
  if (!schema.ok()) return out;
  if ((*schema)->has_primary_key()) {
    for (const auto& k : (*schema)->primary_key()) {
      out.push_back({atom.binding, k});
    }
  } else {
    return AtomColumns(catalog, atom);
  }
  return out;
}

}  // namespace

std::vector<FieldRef> FdClosure(const Catalog& catalog,
                                const std::vector<DatalogAtom>& atoms,
                                const std::vector<Condition>& conditions,
                                const std::vector<FieldRef>& start) {
  std::set<FieldRef> closure(start.begin(), start.end());

  // Constant filters seed the closure.
  for (const auto& c : conditions) {
    if (c.op != rxl::CondOp::kEq) continue;
    if (c.lhs.kind == Operand::Kind::kField &&
        c.rhs.kind == Operand::Kind::kLiteral) {
      closure.insert(c.lhs.field);
    } else if (c.rhs.kind == Operand::Kind::kField &&
               c.lhs.kind == Operand::Kind::kLiteral) {
      closure.insert(c.rhs.field);
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    // Key FDs: if the closure contains an atom's whole key, it contains all
    // of the atom's columns.
    for (const auto& atom : atoms) {
      std::vector<FieldRef> key = AtomKey(catalog, atom);
      if (key.empty()) continue;
      bool has_key = std::all_of(key.begin(), key.end(),
                                 [&](const FieldRef& k) {
                                   return Contains(closure, k);
                                 });
      if (!has_key) continue;
      for (const auto& col : AtomColumns(catalog, atom)) {
        if (closure.insert(col).second) changed = true;
      }
    }
    // Join equalities propagate both ways.
    for (const auto& c : conditions) {
      if (!c.IsFieldJoin()) continue;
      bool l = Contains(closure, c.lhs.field);
      bool r = Contains(closure, c.rhs.field);
      if (l && !r) {
        closure.insert(c.rhs.field);
        changed = true;
      } else if (r && !l) {
        closure.insert(c.lhs.field);
        changed = true;
      }
    }
  }
  return {closure.begin(), closure.end()};
}

namespace {

/// C1: do the parent's Skolem arguments functionally determine the child's?
bool CheckAtMostOne(const Catalog& catalog, const ViewTreeNode& parent,
                    const ViewTreeNode& child) {
  std::vector<FieldRef> start;
  start.reserve(parent.args.size());
  for (const auto& a : parent.args) start.push_back(a.field);
  std::vector<FieldRef> closure =
      FdClosure(catalog, child.atoms, child.conditions, start);
  std::set<FieldRef> closure_set(closure.begin(), closure.end());
  return std::all_of(child.args.begin(), child.args.end(),
                     [&](const SkolemArg& a) {
                       return closure_set.count(a.field) > 0;
                     });
}

/// C2: does every parent instance have at least one child instance?
/// Conservative foreign-key chase over the atoms the child adds.
bool CheckAtLeastOne(const Catalog& catalog, const ViewTreeNode& parent,
                     const ViewTreeNode& child) {
  // Bindings already guaranteed by the parent.
  std::set<std::string> safe;
  for (const auto& atom : parent.atoms) safe.insert(atom.binding);

  std::vector<DatalogAtom> extra;
  for (const auto& atom : child.atoms) {
    if (safe.count(atom.binding) == 0) extra.push_back(atom);
  }
  if (extra.empty()) {
    // Same query (plus possibly extra conditions). Extra conditions can
    // filter, so require none.
    size_t parent_conds = parent.conditions.size();
    return child.conditions.size() == parent_conds;
  }

  // Binding -> table lookup for all child atoms.
  std::map<std::string, std::string> table_of;
  for (const auto& atom : child.atoms) table_of[atom.binding] = atom.table;

  // Any non-join or constant condition on a new binding can filter children.
  auto mentions_unsafe_filter = [&](const std::string& binding) {
    for (const auto& c : child.conditions) {
      bool lhs_here = c.lhs.kind == Operand::Kind::kField &&
                      c.lhs.field.var == binding;
      bool rhs_here = c.rhs.kind == Operand::Kind::kField &&
                      c.rhs.field.var == binding;
      if (!lhs_here && !rhs_here) continue;
      if (!c.IsFieldJoin()) return true;  // literal or inequality filter
    }
    return false;
  };

  bool progress = true;
  std::set<std::string> done;
  while (progress && done.size() < extra.size()) {
    progress = false;
    for (const auto& atom : extra) {
      if (done.count(atom.binding) > 0) continue;
      if (mentions_unsafe_filter(atom.binding)) return false;

      // Equality links from safe bindings into this atom.
      // target column -> (source table, source column, source nullable).
      std::map<std::string, std::pair<std::string, std::string>> links;
      bool nullable_source = false;
      for (const auto& c : child.conditions) {
        if (!c.IsFieldJoin()) continue;
        const FieldRef* here = nullptr;
        const FieldRef* there = nullptr;
        if (c.lhs.field.var == atom.binding &&
            safe.count(c.rhs.field.var) > 0) {
          here = &c.lhs.field;
          there = &c.rhs.field;
        } else if (c.rhs.field.var == atom.binding &&
                   safe.count(c.lhs.field.var) > 0) {
          here = &c.rhs.field;
          there = &c.lhs.field;
        } else {
          continue;
        }
        auto src_table_it = table_of.find(there->var);
        if (src_table_it == table_of.end()) continue;
        links[here->field] = {src_table_it->second, there->field};
        auto schema = catalog.GetTable(src_table_it->second);
        if (schema.ok()) {
          auto idx = (*schema)->FindColumn(there->field);
          if (idx && (*schema)->column(*idx).nullable) nullable_source = true;
        }
      }
      if (links.empty()) continue;
      if (nullable_source) return false;

      // The linked columns must be exactly key columns covering the key.
      auto schema = catalog.GetTable(atom.table);
      if (!schema.ok()) return false;
      const auto& key = (*schema)->primary_key();
      if (key.empty()) return false;
      bool covers_key =
          std::all_of(key.begin(), key.end(), [&](const std::string& k) {
            return links.count(k) > 0;
          });
      if (!covers_key) continue;
      for (const auto& [col, src] : links) {
        if (std::find(key.begin(), key.end(), col) == key.end()) {
          // Equality on a non-key column can filter out matches.
          return false;
        }
      }

      // All key links must come from a single source table with a declared
      // foreign key to this table.
      std::string src_table;
      std::vector<std::string> src_cols;
      bool single_source = true;
      for (const auto& k : key) {
        const auto& [table, col] = links.at(k);
        if (src_table.empty()) {
          src_table = table;
        } else if (src_table != table) {
          single_source = false;
        }
        src_cols.push_back(col);
      }
      if (!single_source) continue;
      if (!catalog.HasInclusionDependency(src_table, src_cols, atom.table)) {
        continue;
      }
      done.insert(atom.binding);
      safe.insert(atom.binding);
      progress = true;
    }
  }
  return done.size() == extra.size();
}

}  // namespace

Status LabelEdges(const Catalog& catalog, ViewTree* tree) {
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    ViewTreeNode& node = tree->mutable_node(static_cast<int>(i));
    if (node.parent < 0) continue;
    const ViewTreeNode& parent = tree->node(node.parent);
    bool at_most_one;
    bool at_least_one;
    if (node.fused()) {
      // Multiple rules can each contribute an instance: never at-most-one;
      // at-least-one if any single rule guarantees a child.
      at_most_one = false;
      at_least_one = false;
      for (const auto& rule : node.AllRules()) {
        ViewTreeNode probe = node;
        probe.atoms = rule.atoms;
        probe.conditions = rule.conditions;
        if (CheckAtLeastOne(catalog, parent, probe)) {
          at_least_one = true;
          break;
        }
      }
    } else {
      at_most_one = CheckAtMostOne(catalog, parent, node);
      at_least_one = CheckAtLeastOne(catalog, parent, node);
    }
    if (at_most_one && at_least_one) {
      node.edge_label = Multiplicity::kOne;
    } else if (at_most_one) {
      node.edge_label = Multiplicity::kOptional;
    } else if (at_least_one) {
      node.edge_label = Multiplicity::kPlus;
    } else {
      node.edge_label = Multiplicity::kStar;
    }
  }
  return Status::OK();
}

}  // namespace silkroute::core
