// DTD generation from a labeled view tree: the inverse of the paper's
// Fig. 2 — the edge multiplicities (1 ? + *) derived in Sec. 3.5 are
// exactly the occurrence operators of the exported document's content
// models, so the middle-ware can publish a DTD alongside the XML view.
//
// Content models:
//   - element with only text/value content  -> (#PCDATA)
//   - element with only child elements      -> sequence with occurrences
//   - element with both                     -> mixed (#PCDATA | c1 | ...)*
//   - empty element                         -> EMPTY
// Distinct view-tree nodes may share a tag (Query 1 uses <name> and
// <nation> twice); identical models merge, conflicting models widen to ANY.
#ifndef SILKROUTE_SILKROUTE_DTDGEN_H_
#define SILKROUTE_SILKROUTE_DTDGEN_H_

#include <string>

#include "common/result.h"
#include "silkroute/view_tree.h"
#include "xml/dtd.h"

namespace silkroute::core {

/// Generates the DTD of the documents this view produces. When
/// `document_element` is non-empty, it is declared as containing
/// root-element* (the wrapper Publisher emits).
Result<xml::Dtd> GenerateDtd(const ViewTree& tree,
                             const std::string& document_element);

/// The same DTD as text ("<!ELEMENT ...>" lines).
Result<std::string> GenerateDtdText(const ViewTree& tree,
                                    const std::string& document_element);

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_DTDGEN_H_
