#include "silkroute/publisher.h"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "engine/tuple_stream.h"
#include "rxl/parser.h"
#include "silkroute/partition.h"
#include "silkroute/subview.h"
#include "xml/writer.h"

namespace silkroute::core {

Publisher::Publisher(const Database* db)
    : db_(db),
      stats_(engine::DatabaseStats::Collect(*db)),
      estimator_(&db->catalog(), &stats_) {}

Result<ViewTree> Publisher::BuildViewTree(std::string_view rxl_text) const {
  SILK_ASSIGN_OR_RETURN(rxl::RxlQuery query, rxl::ParseRxl(rxl_text));
  return ViewTree::Build(query, db_->catalog());
}

Result<PublishResult> Publisher::PublishSubview(std::string_view rxl_text,
                                                std::string_view path,
                                                const PublishOptions& options,
                                                std::ostream* out) {
  SILK_ASSIGN_OR_RETURN(rxl::RxlQuery view, rxl::ParseRxl(rxl_text));
  SILK_ASSIGN_OR_RETURN(rxl::RxlQuery composed, ComposeSubview(view, path));
  return Publish(composed.ToString(), options, out);
}

Result<PublishResult> Publisher::Publish(std::string_view rxl_text,
                                         const PublishOptions& options,
                                         std::ostream* out) {
  SILK_ASSIGN_OR_RETURN(ViewTree tree, BuildViewTree(rxl_text));

  PublishResult result;
  uint64_t mask = 0;
  switch (options.strategy) {
    case PlanStrategy::kUnified:
      mask = Partition::Unified(tree).mask();
      break;
    case PlanStrategy::kFullyPartitioned:
      mask = 0;
      break;
    case PlanStrategy::kExplicitMask:
      mask = options.explicit_mask;
      break;
    case PlanStrategy::kGreedy: {
      GreedyParams params = options.greedy;
      params.style = options.style;
      params.reduce = options.reduce;
      // The estimator mutates its request counter; concurrent publishers
      // share it, so planning is serialized (execution is not).
      std::lock_guard<std::mutex> lock(plan_mu_);
      engine::CostOracle* oracle = options.plan_oracle != nullptr
                                       ? options.plan_oracle
                                       : &estimator_;
      SILK_ASSIGN_OR_RETURN(result.greedy_plan,
                            GeneratePlanGreedy(tree, oracle, params));
      mask = result.greedy_plan.FullMask();
      break;
    }
  }
  SILK_ASSIGN_OR_RETURN(mask,
                        MakePermissible(tree, mask, options.style,
                                        options.reduce, options.source));
  SILK_ASSIGN_OR_RETURN(result.metrics,
                        ExecutePlan(tree, mask, options, out));
  return result;
}

namespace {

/// True for errors of the *source* (as opposed to bugs in the generated
/// SQL or the plan): the ones plan degradation can route around.
bool IsSourceFailure(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

/// A component query awaiting execution; degradation replaces one item
/// with the two halves of its deepest-edge split, keeping the index of the
/// original component so degradations are counted once per component.
struct PendingQuery {
  StreamSpec spec;
  size_t origin = 0;
  /// Component span (null when tracing is off). Shared so follow-up
  /// queries produced by degradation can nest under the failed
  /// component's span after this item is gone.
  std::shared_ptr<obs::SpanHandle> span;
};

}  // namespace

std::shared_ptr<obs::SpanHandle> MakeComponentSpan(const ViewTree& tree,
                                                   obs::Tracer* tracer,
                                                   obs::SpanHandle* parent,
                                                   const StreamSpec& spec) {
  if (tracer == nullptr || !tracer->enabled()) return nullptr;
  auto span = std::make_shared<obs::SpanHandle>(
      tracer->StartChild(parent, "component"));
  std::string nodes, tables;
  for (int id : spec.covered_nodes) {
    if (!nodes.empty()) nodes += ',';
    nodes += std::to_string(id);
  }
  for (const std::string& t : ComponentTables(tree, spec.covered_nodes)) {
    if (!tables.empty()) tables += ',';
    tables += t;
  }
  span->Annotate("nodes", std::move(nodes));
  span->Annotate("tables", std::move(tables));
  return span;
}

namespace {

/// The built-in strategy: one query at a time on the calling thread,
/// retries through a ResilientExecutor, degradation down the edge-mask
/// lattice on permanent source failure.
class SequentialExecution : public PlanExecution {
 public:
  explicit SequentialExecution(const Database* db) : db_(db) {}

  Result<std::vector<ComponentStream>> Run(const ViewTree& tree,
                                           const SqlGenerator& gen,
                                           std::vector<StreamSpec> specs,
                                           const PublishOptions& options,
                                           PlanMetrics* metrics,
                                           obs::SpanHandle* plan_span) override;

 private:
  const Database* db_;
};

Result<std::vector<ComponentStream>> SequentialExecution::Run(
    const ViewTree& tree, const SqlGenerator& gen,
    std::vector<StreamSpec> specs, const PublishOptions& options,
    PlanMetrics* metrics, obs::SpanHandle* plan_span) {
  // The execution stack: the connection (caller-supplied for fault
  // injection, otherwise the local database) under the resilient retry
  // layer. Strict mode runs single-attempt with no budget, preserving the
  // pre-resilience fail-fast behaviour.
  engine::DatabaseExecutor db_executor(db_);
  db_executor.set_parallelism(options.engine_threads);
  db_executor.set_metrics_registry(options.metrics_registry);
  engine::SqlExecutor* connection =
      options.executor != nullptr ? options.executor : &db_executor;
  engine::RetryOptions retry = options.retry;
  retry.query_deadline_ms = options.query_timeout_ms;
  retry.tracer = options.tracer;
  retry.metrics = options.metrics_registry;
  if (options.strict) {
    retry.max_attempts = 1;
    retry.retry_budget = 0;
  }
  engine::ResilientExecutor resilient(connection, retry);

  // Execute every SQL query at the "server" (query time), then bind the
  // results to the wire format (bind time). A component whose query fails
  // permanently is degraded: split at its deepest kept edge into two
  // smaller components and re-queued, in the limit one query per node.
  std::deque<PendingQuery> queue;
  for (size_t i = 0; i < specs.size(); ++i) {
    auto span = MakeComponentSpan(tree, options.tracer, plan_span, specs[i]);
    queue.push_back(PendingQuery{std::move(specs[i]), i, std::move(span)});
  }
  std::set<size_t> degraded_origins;
  std::vector<ComponentStream> done;
  auto finish_metrics = [&] {
    metrics->exec_report = resilient.report();
    metrics->attempts = metrics->exec_report.total_attempts();
    metrics->retries = metrics->exec_report.total_retries();
    metrics->degraded_components = degraded_origins.size();
  };
  while (!queue.empty()) {
    PendingQuery item = std::move(queue.front());
    queue.pop_front();
    if (options.collect_sql) metrics->sql.push_back(item.spec.sql);

    ComponentOutcome outcome;
    outcome.nodes = item.spec.covered_nodes;
    outcome.tables = ComponentTables(tree, item.spec.covered_nodes);

    // Fragment-cache fast path: a hit hands back the already-bound wire
    // bytes — no SQL execution, no binding, no retry-budget spend.
    engine::ResultCache* cache = options.result_cache;
    if (cache != nullptr && !item.spec.cache_key.empty()) {
      if (auto entry = cache->Lookup(item.spec.cache_key)) {
        ++metrics->cache_hits;
        metrics->rows += entry->num_tuples;
        auto stream = std::make_unique<engine::TupleStream>(
            entry->schema, entry->bytes, entry->num_tuples);
        metrics->wire_bytes += stream->wire_bytes();
        if (item.span != nullptr) {
          item.span->Annotate("cache", "hit");
          item.span->Annotate("status", StatusCodeToString(StatusCode::kOk));
        }
        metrics->components.push_back(std::move(outcome));
        done.push_back(
            ComponentStream{std::move(item.spec), std::move(stream)});
        continue;
      }
      ++metrics->cache_misses;
    }

    // phase:query under the component span; the resilient layer hangs
    // attempt/backoff spans off it through the thread-local current span.
    obs::SpanHandle query_span =
        obs::Tracer::Child(options.tracer, item.span.get(), "phase:query");
    Timer query_timer;
    auto rel_result = [&] {
      obs::ScopedCurrentSpan scope(&query_span);
      return resilient.ExecuteSql(item.spec.sql);
    }();
    const engine::QueryExecution& executed = resilient.report().queries.back();
    outcome.attempts = static_cast<size_t>(executed.attempts);
    outcome.retries = executed.attempts > 1
                          ? static_cast<size_t>(executed.attempts - 1)
                          : 0;
    if (rel_result.ok()) {
      engine::Relation rel = std::move(rel_result).value();
      // The span carries the *same* measured value that feeds the metrics,
      // so a trace reproduces the query/bind/tag totals exactly.
      double query_elapsed = query_timer.ElapsedMillis();
      metrics->query_ms += query_elapsed;
      query_span.AnnotateMs("ms", query_elapsed);
      query_span.End();
      metrics->rows += rel.rows.size();

      obs::SpanHandle bind_span =
          obs::Tracer::Child(options.tracer, item.span.get(), "phase:bind");
      Timer bind_timer;
      auto stream = std::make_unique<engine::TupleStream>(std::move(rel));
      double bind_elapsed = bind_timer.ElapsedMillis();
      metrics->bind_ms += bind_elapsed;
      bind_span.AnnotateMs("ms", bind_elapsed);
      bind_span.End();
      metrics->wire_bytes += stream->wire_bytes();
      if (cache != nullptr && !item.spec.cache_key.empty()) {
        engine::CacheEntry entry;
        entry.schema = stream->schema();
        entry.bytes = stream->shared_wire();
        entry.num_tuples = stream->num_tuples();
        cache->Insert(item.spec.cache_key, std::move(entry));
      }
      if (options.profile != nullptr) {
        options.profile->RecordQuery(item.spec.sql, query_elapsed,
                                     stream->num_tuples(),
                                     stream->wire_bytes());
        options.profile->RecordBind(item.spec.sql, bind_elapsed);
      }
      if (item.span != nullptr) {
        item.span->Annotate("status", StatusCodeToString(StatusCode::kOk));
      }
      metrics->components.push_back(std::move(outcome));
      done.push_back(ComponentStream{std::move(item.spec), std::move(stream)});
      continue;
    }
    const Status& status = rel_result.status();
    outcome.final_status = status.code();
    query_span.Annotate("status", StatusCodeToString(status.code()));
    query_span.End();
    if (item.span != nullptr) {
      item.span->Annotate("status", StatusCodeToString(status.code()));
    }
    // Budget exhaustion always aborts: degrading without retries left would
    // just re-fail; the caller must raise the budget or go strict.
    if (status.code() == StatusCode::kResourceExhausted ||
        !IsSourceFailure(status.code())) {
      metrics->components.push_back(std::move(outcome));
      return status;
    }
    if (options.strict) {
      metrics->components.push_back(std::move(outcome));
      if (status.code() == StatusCode::kTimeout) {
        metrics->timed_out = true;
        finish_metrics();
        return done;  // paper: "no time was reported"
      }
      return status;
    }

    int edge = DeepestInternalEdge(tree, item.spec.covered_nodes);
    if (edge < 0) {
      // Fully-partitioned limit reached and the single-node query still
      // fails. A timeout here keeps the paper's reporting; an unavailable
      // node is skipped (best-effort document, recorded in failed_nodes).
      metrics->components.push_back(std::move(outcome));
      if (status.code() == StatusCode::kTimeout) {
        metrics->timed_out = true;
        finish_metrics();
        return done;
      }
      metrics->failed_nodes.insert(metrics->failed_nodes.end(),
                                   item.spec.covered_nodes.begin(),
                                   item.spec.covered_nodes.end());
      done.push_back(ComponentStream{
          std::move(item.spec),
          std::make_unique<engine::TupleStream>(engine::Relation{})});
      continue;
    }
    degraded_origins.insert(item.origin);
    outcome.degraded = true;
    metrics->components.push_back(std::move(outcome));
    auto [remainder, subtree] =
        SplitAtEdge(tree, item.spec.covered_nodes, tree.Edges()[edge]);
    for (auto* part : {&remainder, &subtree}) {
      SILK_ASSIGN_OR_RETURN(StreamSpec sub_spec,
                            gen.GenerateComponent(*part));
      // Follow-up queries nest under the failed component's span, so the
      // trace shows the degradation tree.
      auto sub_span =
          MakeComponentSpan(tree, options.tracer, item.span.get(), sub_spec);
      queue.push_back(
          PendingQuery{std::move(sub_spec), item.origin, std::move(sub_span)});
    }
  }
  finish_metrics();
  return done;
}

}  // namespace

Result<PlanMetrics> Publisher::ExecutePlan(const ViewTree& tree,
                                           uint64_t mask,
                                           const PublishOptions& options,
                                           std::ostream* out) {
  SILK_ASSIGN_OR_RETURN(Partition plan, Partition::FromMask(tree, mask));
  SqlGenerator gen(&tree, options.style, options.reduce,
                   options.distinct_selects);
  SILK_ASSIGN_OR_RETURN(std::vector<StreamSpec> specs, gen.GeneratePlan(plan));

  PlanMetrics metrics;
  metrics.mask = mask;
  metrics.num_streams = specs.size();

  obs::SpanHandle plan_span =
      obs::Tracer::Child(options.tracer, options.parent_span, "plan");
  plan_span.AnnotateCount("mask", mask);
  plan_span.AnnotateCount("num_components", specs.size());

  // Result cache (DESIGN.md §15). The version vector of every table the
  // plan touches is snapshotted once, BEFORE any query runs: a write that
  // races the publish can only make an entry conservatively stale (keyed
  // on versions older than what the queries saw), never wrongly fresh. On
  // a quiescent database the snapshot matches the data exactly, which is
  // what makes cached republishes byte-identical to cold ones.
  engine::ResultCache* cache = options.result_cache;
  bool cache_live = false;
  std::string doc_key;
  if (cache != nullptr) {
    std::set<std::string> table_set;
    for (const StreamSpec& spec : specs) {
      for (std::string& t : ComponentTables(tree, spec.covered_nodes)) {
        table_set.insert(std::move(t));
      }
    }
    std::vector<std::string> table_list(table_set.begin(), table_set.end());
    Result<engine::TableVersionVector> fetched =
        [&]() -> Result<engine::TableVersionVector> {
      if (options.executor != nullptr) {
        return options.executor->FetchTableVersions(table_list);
      }
      engine::TableVersionVector local;
      local.reserve(table_list.size());
      for (const std::string& name : table_list) {
        SILK_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(name));
        local.emplace_back(name, table->version());
      }
      return local;
    }();
    // A failed fetch (legacy remote peer, backend down) leaves every
    // cache_key empty: this publish just runs uncached.
    if (fetched.ok()) {
      cache_live = true;
      const engine::TableVersionVector& versions = fetched.value();
      for (StreamSpec& spec : specs) {
        engine::TableVersionVector sub;
        for (const std::string& t : ComponentTables(tree, spec.covered_nodes)) {
          auto it = std::lower_bound(
              versions.begin(), versions.end(), t,
              [](const auto& pair, const std::string& name) {
                return pair.first < name;
              });
          if (it != versions.end() && it->first == t) sub.push_back(*it);
        }
        spec.cache_key =
            engine::ResultCache::FragmentKey(NormalizeSql(spec.sql), sub);
      }
      // The document fingerprint pins everything that shapes the XML: the
      // partition, every component's SQL (style/reduce/distinct are all
      // reflected there), and the tagging options.
      std::string fingerprint = std::to_string(mask);
      fingerprint += '|';
      fingerprint += options.document_element;
      fingerprint += options.pretty ? "|p" : "|c";
      for (const StreamSpec& spec : specs) {
        fingerprint += '|';
        fingerprint += NormalizeSql(spec.sql);
      }
      doc_key = engine::ResultCache::DocumentKey(fingerprint,
                                                 fetched.value());
      if (auto doc = cache->Lookup(doc_key)) {
        // Unchanged view over unchanged tables: stream the finished XML
        // straight out and rebuild the byte/row totals from the entry.
        out->write(doc->bytes->data(),
                   static_cast<std::streamsize>(doc->bytes->size()));
        metrics.served_from_doc_cache = true;
        for (const auto& [name, value] : doc->counters) {
          if (name == "num_streams") metrics.num_streams = value;
          else if (name == "rows") metrics.rows = value;
          else if (name == "wire_bytes") metrics.wire_bytes = value;
          else if (name == "xml_bytes") metrics.xml_bytes = value;
          else if (name == "xml_flushes") metrics.xml_flushes = value;
        }
        plan_span.Annotate("cache", "document_hit");
        plan_span.End();
        if (options.metrics_registry != nullptr) {
          options.metrics_registry->counter("silkroute_plans_total")->Add();
        }
        return metrics;
      }
    }
  }

  // 1. Produce the component streams through the configured strategy.
  SequentialExecution sequential(db_);
  PlanExecution* execution =
      options.execution != nullptr ? options.execution : &sequential;
  SILK_ASSIGN_OR_RETURN(
      std::vector<ComponentStream> done,
      execution->Run(tree, gen, std::move(specs), options, &metrics,
                     &plan_span));
  if (metrics.timed_out) return metrics;  // partial metrics, no document
  metrics.num_streams = done.size();

  // Restore document order after degradation: streams sorted by component
  // root (the smallest covered node id), exactly GeneratePlan's order. This
  // also makes concurrent strategies deterministic: completion order never
  // reaches the tagger.
  std::sort(done.begin(), done.end(), [](const auto& a, const auto& b) {
    return a.spec.covered_nodes.front() < b.spec.covered_nodes.front();
  });

  // 2. Merge + tag (client side; Next() also pays the wire decode). With a
  // live cache the document is captured so a clean publish can be admitted
  // under the document key.
  std::ostringstream capture;
  std::ostream* sink = cache_live ? static_cast<std::ostream*>(&capture) : out;
  xml::XmlWriter::Options writer_options;
  writer_options.pretty = options.pretty;
  xml::XmlWriter writer(sink, writer_options);
  Tagger tagger(&tree, &writer,
                Tagger::Options{options.document_element});
  std::vector<Tagger::StreamInput> inputs;
  inputs.reserve(done.size());
  for (auto& component : done) {
    inputs.push_back({&component.spec, component.stream.get()});
  }
  obs::SpanHandle tag_span =
      obs::Tracer::Child(options.tracer, &plan_span, "phase:tag");
  Timer tag_timer;
  SILK_RETURN_IF_ERROR(tagger.Run(std::move(inputs)));
  SILK_RETURN_IF_ERROR(writer.Finish());
  metrics.tag_ms = tag_timer.ElapsedMillis();
  tag_span.AnnotateMs("ms", metrics.tag_ms);
  tag_span.End();
  metrics.xml_bytes = writer.bytes_written();
  metrics.xml_flushes = writer.flushes();
  metrics.tagger = tagger.stats();

  if (cache_live) {
    std::string xml = std::move(capture).str();
    out->write(xml.data(), static_cast<std::streamsize>(xml.size()));
    // Only a clean document is admitted: a best-effort publish (skipped
    // nodes, degraded components, breaker fast-fails) reflects transient
    // failures, not the tables' state, and must not be replayed later.
    bool clean = metrics.failed_nodes.empty() &&
                 metrics.degraded_components == 0 &&
                 metrics.breaker_fast_fails == 0;
    if (clean) {
      engine::CacheEntry doc;
      doc.counters = {{"num_streams", metrics.num_streams},
                      {"rows", metrics.rows},
                      {"wire_bytes", metrics.wire_bytes},
                      {"xml_bytes", metrics.xml_bytes},
                      {"xml_flushes", metrics.xml_flushes}};
      doc.bytes = std::make_shared<const std::string>(std::move(xml));
      cache->Insert(doc_key, std::move(doc));
    }
    if (metrics.cache_hits > 0) {
      // Cached fragments merged with fresh ones into this document — the
      // incremental-maintenance splice path.
      metrics.cache_splices = metrics.cache_hits;
      cache->RecordSplices(metrics.cache_splices);
    }
  }

  // Tag runs once per plan over the merged streams; apportion its cost to
  // the component queries by row share so the profile prices each SQL text
  // with the downstream tagging work its rows cause.
  if (options.profile != nullptr && !done.empty()) {
    size_t total_rows = 0;
    for (const auto& component : done) {
      total_rows += component.stream->num_tuples();
    }
    for (const auto& component : done) {
      double share =
          total_rows > 0 ? static_cast<double>(component.stream->num_tuples()) /
                               static_cast<double>(total_rows)
                         : 1.0 / static_cast<double>(done.size());
      options.profile->RecordTag(component.spec.sql, metrics.tag_ms * share);
    }
  }

  plan_span.AnnotateMs("query_ms", metrics.query_ms);
  plan_span.AnnotateMs("bind_ms", metrics.bind_ms);
  plan_span.AnnotateMs("tag_ms", metrics.tag_ms);
  plan_span.AnnotateCount("rows", metrics.rows);
  plan_span.AnnotateCount("wire_bytes", metrics.wire_bytes);
  plan_span.AnnotateCount("xml_bytes", metrics.xml_bytes);
  plan_span.End();

  if (options.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = options.metrics_registry;
    reg->counter("silkroute_plans_total")->Add();
    reg->histogram("silkroute_phase_query_us")
        ->RecordMicros(metrics.query_ms * 1000.0);
    reg->histogram("silkroute_phase_bind_us")
        ->RecordMicros(metrics.bind_ms * 1000.0);
    reg->histogram("silkroute_phase_tag_us")
        ->RecordMicros(metrics.tag_ms * 1000.0);
    reg->histogram("silkroute_plan_rows")->Record(metrics.rows);
    reg->histogram("silkroute_plan_wire_bytes")->Record(metrics.wire_bytes);
    reg->histogram("silkroute_plan_xml_bytes")->Record(metrics.xml_bytes);
    reg->counter("silkroute_xml_writer_flushes_total")
        ->Add(metrics.xml_flushes);
  }
  return metrics;
}

}  // namespace silkroute::core
