#include "silkroute/publisher.h"

#include "common/timer.h"
#include "engine/tuple_stream.h"
#include "rxl/parser.h"
#include "silkroute/partition.h"
#include "silkroute/subview.h"
#include "xml/writer.h"

namespace silkroute::core {

Publisher::Publisher(const Database* db)
    : db_(db),
      stats_(engine::DatabaseStats::Collect(*db)),
      estimator_(&db->catalog(), &stats_) {}

Result<ViewTree> Publisher::BuildViewTree(std::string_view rxl_text) const {
  SILK_ASSIGN_OR_RETURN(rxl::RxlQuery query, rxl::ParseRxl(rxl_text));
  return ViewTree::Build(query, db_->catalog());
}

Result<PublishResult> Publisher::PublishSubview(std::string_view rxl_text,
                                                std::string_view path,
                                                const PublishOptions& options,
                                                std::ostream* out) {
  SILK_ASSIGN_OR_RETURN(rxl::RxlQuery view, rxl::ParseRxl(rxl_text));
  SILK_ASSIGN_OR_RETURN(rxl::RxlQuery composed, ComposeSubview(view, path));
  return Publish(composed.ToString(), options, out);
}

Result<PublishResult> Publisher::Publish(std::string_view rxl_text,
                                         const PublishOptions& options,
                                         std::ostream* out) {
  SILK_ASSIGN_OR_RETURN(ViewTree tree, BuildViewTree(rxl_text));

  PublishResult result;
  uint64_t mask = 0;
  switch (options.strategy) {
    case PlanStrategy::kUnified:
      mask = Partition::Unified(tree).mask();
      break;
    case PlanStrategy::kFullyPartitioned:
      mask = 0;
      break;
    case PlanStrategy::kExplicitMask:
      mask = options.explicit_mask;
      break;
    case PlanStrategy::kGreedy: {
      GreedyParams params = options.greedy;
      params.style = options.style;
      params.reduce = options.reduce;
      SILK_ASSIGN_OR_RETURN(result.greedy_plan,
                            GeneratePlanGreedy(tree, &estimator_, params));
      mask = result.greedy_plan.FullMask();
      break;
    }
  }
  SILK_ASSIGN_OR_RETURN(mask,
                        MakePermissible(tree, mask, options.style,
                                        options.reduce, options.source));
  SILK_ASSIGN_OR_RETURN(result.metrics,
                        ExecutePlan(tree, mask, options, out));
  return result;
}

Result<PlanMetrics> Publisher::ExecutePlan(const ViewTree& tree,
                                           uint64_t mask,
                                           const PublishOptions& options,
                                           std::ostream* out) {
  SILK_ASSIGN_OR_RETURN(Partition plan, Partition::FromMask(tree, mask));
  SqlGenerator gen(&tree, options.style, options.reduce,
                   options.distinct_selects);
  SILK_ASSIGN_OR_RETURN(std::vector<StreamSpec> specs, gen.GeneratePlan(plan));

  PlanMetrics metrics;
  metrics.mask = mask;
  metrics.num_streams = specs.size();

  // 1. Execute every SQL query at the "server" (query time), then bind the
  // results to the wire format (bind time).
  std::vector<std::unique_ptr<engine::TupleStream>> streams;
  streams.reserve(specs.size());
  for (const auto& spec : specs) {
    if (options.collect_sql) metrics.sql.push_back(spec.sql);
    engine::QueryExecutor executor(db_);
    if (options.query_timeout_ms > 0) {
      executor.set_timeout_ms(options.query_timeout_ms);
    }
    Timer query_timer;
    auto rel_result = executor.ExecuteSql(spec.sql);
    if (!rel_result.ok()) {
      if (rel_result.status().code() == StatusCode::kTimeout) {
        metrics.timed_out = true;
        return metrics;  // paper: "no time was reported"
      }
      return rel_result.status();
    }
    engine::Relation rel = std::move(rel_result).value();
    metrics.query_ms += query_timer.ElapsedMillis();
    metrics.rows += rel.rows.size();

    Timer bind_timer;
    auto stream = std::make_unique<engine::TupleStream>(std::move(rel));
    metrics.bind_ms += bind_timer.ElapsedMillis();
    metrics.wire_bytes += stream->wire_bytes();
    streams.push_back(std::move(stream));
  }

  // 2. Merge + tag (client side; Next() also pays the wire decode).
  xml::XmlWriter::Options writer_options;
  writer_options.pretty = options.pretty;
  xml::XmlWriter writer(out, writer_options);
  Tagger tagger(&tree, &writer,
                Tagger::Options{options.document_element});
  std::vector<Tagger::StreamInput> inputs;
  inputs.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    inputs.push_back({&specs[i], streams[i].get()});
  }
  Timer tag_timer;
  SILK_RETURN_IF_ERROR(tagger.Run(std::move(inputs)));
  SILK_RETURN_IF_ERROR(writer.Finish());
  metrics.tag_ms = tag_timer.ElapsedMillis();
  metrics.xml_bytes = writer.bytes_written();
  metrics.tagger = tagger.stats();
  return metrics;
}

}  // namespace silkroute::core
