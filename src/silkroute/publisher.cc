#include "silkroute/publisher.h"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "common/timer.h"
#include "engine/tuple_stream.h"
#include "rxl/parser.h"
#include "silkroute/partition.h"
#include "silkroute/subview.h"
#include "xml/writer.h"

namespace silkroute::core {

Publisher::Publisher(const Database* db)
    : db_(db),
      stats_(engine::DatabaseStats::Collect(*db)),
      estimator_(&db->catalog(), &stats_) {}

Result<ViewTree> Publisher::BuildViewTree(std::string_view rxl_text) const {
  SILK_ASSIGN_OR_RETURN(rxl::RxlQuery query, rxl::ParseRxl(rxl_text));
  return ViewTree::Build(query, db_->catalog());
}

Result<PublishResult> Publisher::PublishSubview(std::string_view rxl_text,
                                                std::string_view path,
                                                const PublishOptions& options,
                                                std::ostream* out) {
  SILK_ASSIGN_OR_RETURN(rxl::RxlQuery view, rxl::ParseRxl(rxl_text));
  SILK_ASSIGN_OR_RETURN(rxl::RxlQuery composed, ComposeSubview(view, path));
  return Publish(composed.ToString(), options, out);
}

Result<PublishResult> Publisher::Publish(std::string_view rxl_text,
                                         const PublishOptions& options,
                                         std::ostream* out) {
  SILK_ASSIGN_OR_RETURN(ViewTree tree, BuildViewTree(rxl_text));

  PublishResult result;
  uint64_t mask = 0;
  switch (options.strategy) {
    case PlanStrategy::kUnified:
      mask = Partition::Unified(tree).mask();
      break;
    case PlanStrategy::kFullyPartitioned:
      mask = 0;
      break;
    case PlanStrategy::kExplicitMask:
      mask = options.explicit_mask;
      break;
    case PlanStrategy::kGreedy: {
      GreedyParams params = options.greedy;
      params.style = options.style;
      params.reduce = options.reduce;
      // The estimator mutates its request counter; concurrent publishers
      // share it, so planning is serialized (execution is not).
      std::lock_guard<std::mutex> lock(plan_mu_);
      SILK_ASSIGN_OR_RETURN(result.greedy_plan,
                            GeneratePlanGreedy(tree, &estimator_, params));
      mask = result.greedy_plan.FullMask();
      break;
    }
  }
  SILK_ASSIGN_OR_RETURN(mask,
                        MakePermissible(tree, mask, options.style,
                                        options.reduce, options.source));
  SILK_ASSIGN_OR_RETURN(result.metrics,
                        ExecutePlan(tree, mask, options, out));
  return result;
}

namespace {

/// True for errors of the *source* (as opposed to bugs in the generated
/// SQL or the plan): the ones plan degradation can route around.
bool IsSourceFailure(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

/// A component query awaiting execution; degradation replaces one item
/// with the two halves of its deepest-edge split, keeping the index of the
/// original component so degradations are counted once per component.
struct PendingQuery {
  StreamSpec spec;
  size_t origin = 0;
};

/// The built-in strategy: one query at a time on the calling thread,
/// retries through a ResilientExecutor, degradation down the edge-mask
/// lattice on permanent source failure.
class SequentialExecution : public PlanExecution {
 public:
  explicit SequentialExecution(const Database* db) : db_(db) {}

  Result<std::vector<ComponentStream>> Run(const ViewTree& tree,
                                           const SqlGenerator& gen,
                                           std::vector<StreamSpec> specs,
                                           const PublishOptions& options,
                                           PlanMetrics* metrics) override;

 private:
  const Database* db_;
};

Result<std::vector<ComponentStream>> SequentialExecution::Run(
    const ViewTree& tree, const SqlGenerator& gen,
    std::vector<StreamSpec> specs, const PublishOptions& options,
    PlanMetrics* metrics) {
  // The execution stack: the connection (caller-supplied for fault
  // injection, otherwise the local database) under the resilient retry
  // layer. Strict mode runs single-attempt with no budget, preserving the
  // pre-resilience fail-fast behaviour.
  engine::DatabaseExecutor db_executor(db_);
  engine::SqlExecutor* connection =
      options.executor != nullptr ? options.executor : &db_executor;
  engine::RetryOptions retry = options.retry;
  retry.query_deadline_ms = options.query_timeout_ms;
  if (options.strict) {
    retry.max_attempts = 1;
    retry.retry_budget = 0;
  }
  engine::ResilientExecutor resilient(connection, retry);

  // Execute every SQL query at the "server" (query time), then bind the
  // results to the wire format (bind time). A component whose query fails
  // permanently is degraded: split at its deepest kept edge into two
  // smaller components and re-queued, in the limit one query per node.
  std::deque<PendingQuery> queue;
  for (size_t i = 0; i < specs.size(); ++i) {
    queue.push_back(PendingQuery{std::move(specs[i]), i});
  }
  std::set<size_t> degraded_origins;
  std::vector<ComponentStream> done;
  auto finish_metrics = [&] {
    metrics->exec_report = resilient.report();
    metrics->attempts = metrics->exec_report.total_attempts();
    metrics->retries = metrics->exec_report.total_retries();
    metrics->degraded_components = degraded_origins.size();
  };
  while (!queue.empty()) {
    PendingQuery item = std::move(queue.front());
    queue.pop_front();
    if (options.collect_sql) metrics->sql.push_back(item.spec.sql);

    Timer query_timer;
    auto rel_result = resilient.ExecuteSql(item.spec.sql);
    if (rel_result.ok()) {
      engine::Relation rel = std::move(rel_result).value();
      metrics->query_ms += query_timer.ElapsedMillis();
      metrics->rows += rel.rows.size();

      Timer bind_timer;
      auto stream = std::make_unique<engine::TupleStream>(std::move(rel));
      metrics->bind_ms += bind_timer.ElapsedMillis();
      metrics->wire_bytes += stream->wire_bytes();
      done.push_back(ComponentStream{std::move(item.spec), std::move(stream)});
      continue;
    }
    const Status& status = rel_result.status();
    // Budget exhaustion always aborts: degrading without retries left would
    // just re-fail; the caller must raise the budget or go strict.
    if (status.code() == StatusCode::kResourceExhausted) return status;
    if (!IsSourceFailure(status.code())) return status;
    if (options.strict) {
      if (status.code() == StatusCode::kTimeout) {
        metrics->timed_out = true;
        finish_metrics();
        return done;  // paper: "no time was reported"
      }
      return status;
    }

    int edge = DeepestInternalEdge(tree, item.spec.covered_nodes);
    if (edge < 0) {
      // Fully-partitioned limit reached and the single-node query still
      // fails. A timeout here keeps the paper's reporting; an unavailable
      // node is skipped (best-effort document, recorded in failed_nodes).
      if (status.code() == StatusCode::kTimeout) {
        metrics->timed_out = true;
        finish_metrics();
        return done;
      }
      metrics->failed_nodes.insert(metrics->failed_nodes.end(),
                                   item.spec.covered_nodes.begin(),
                                   item.spec.covered_nodes.end());
      done.push_back(ComponentStream{
          std::move(item.spec),
          std::make_unique<engine::TupleStream>(engine::Relation{})});
      continue;
    }
    degraded_origins.insert(item.origin);
    auto [remainder, subtree] =
        SplitAtEdge(tree, item.spec.covered_nodes, tree.Edges()[edge]);
    for (auto* part : {&remainder, &subtree}) {
      SILK_ASSIGN_OR_RETURN(StreamSpec sub_spec,
                            gen.GenerateComponent(*part));
      queue.push_back(PendingQuery{std::move(sub_spec), item.origin});
    }
  }
  finish_metrics();
  return done;
}

}  // namespace

Result<PlanMetrics> Publisher::ExecutePlan(const ViewTree& tree,
                                           uint64_t mask,
                                           const PublishOptions& options,
                                           std::ostream* out) {
  SILK_ASSIGN_OR_RETURN(Partition plan, Partition::FromMask(tree, mask));
  SqlGenerator gen(&tree, options.style, options.reduce,
                   options.distinct_selects);
  SILK_ASSIGN_OR_RETURN(std::vector<StreamSpec> specs, gen.GeneratePlan(plan));

  PlanMetrics metrics;
  metrics.mask = mask;
  metrics.num_streams = specs.size();

  // 1. Produce the component streams through the configured strategy.
  SequentialExecution sequential(db_);
  PlanExecution* execution =
      options.execution != nullptr ? options.execution : &sequential;
  SILK_ASSIGN_OR_RETURN(
      std::vector<ComponentStream> done,
      execution->Run(tree, gen, std::move(specs), options, &metrics));
  if (metrics.timed_out) return metrics;  // partial metrics, no document
  metrics.num_streams = done.size();

  // Restore document order after degradation: streams sorted by component
  // root (the smallest covered node id), exactly GeneratePlan's order. This
  // also makes concurrent strategies deterministic: completion order never
  // reaches the tagger.
  std::sort(done.begin(), done.end(), [](const auto& a, const auto& b) {
    return a.spec.covered_nodes.front() < b.spec.covered_nodes.front();
  });

  // 2. Merge + tag (client side; Next() also pays the wire decode).
  xml::XmlWriter::Options writer_options;
  writer_options.pretty = options.pretty;
  xml::XmlWriter writer(out, writer_options);
  Tagger tagger(&tree, &writer,
                Tagger::Options{options.document_element});
  std::vector<Tagger::StreamInput> inputs;
  inputs.reserve(done.size());
  for (auto& component : done) {
    inputs.push_back({&component.spec, component.stream.get()});
  }
  Timer tag_timer;
  SILK_RETURN_IF_ERROR(tagger.Run(std::move(inputs)));
  SILK_RETURN_IF_ERROR(writer.Finish());
  metrics.tag_ms = tag_timer.ElapsedMillis();
  metrics.xml_bytes = writer.bytes_written();
  metrics.tagger = tagger.stats();
  return metrics;
}

}  // namespace silkroute::core
