// Virtual views and subview queries (paper Sec. 1 and Sec. 7): SilkRoute
// typically keeps the XML view virtual; user queries extract small
// fragments, and the composition of user query and view translates into
// (usually simple) SQL. The full composition algorithm is in the WWW9
// SilkRoute paper [5]; this module implements the common fragment of it —
// a downward path with equality predicates on text children:
//
//   /supplier[nation='FRANCE']/part
//   /supplier/part/order[customer='Customer#000000042']
//
// Composition happens at the RXL level: the matched element becomes the new
// root template, the from/where clauses of every block on the path (and of
// predicate children) accumulate into the root block, and predicate values
// become literal conditions. The result is an ordinary RXL query that the
// regular view-tree / planning / tagging pipeline evaluates, exactly as
// Sec. 7 describes ("the resulting SQL query is usually simple").
#ifndef SILKROUTE_SILKROUTE_SUBVIEW_H_
#define SILKROUTE_SILKROUTE_SUBVIEW_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/value.h"
#include "rxl/ast.h"

namespace silkroute::core {

/// One predicate of a path step: [child='literal'].
struct SubviewPredicate {
  std::string child_tag;
  Value literal;
};

/// One step of a subview path: tag plus zero or more predicates.
struct SubviewStep {
  std::string tag;
  std::vector<SubviewPredicate> predicates;
};

/// Parses "/a[b='x']/c[d='y'][e='z']" (string literals in single quotes,
/// bare integers allowed).
Result<std::vector<SubviewStep>> ParseSubviewPath(std::string_view path);

/// Composes a user path query with an RXL view, yielding the RXL query of
/// the matched fragment. Fails if a step's tag or predicate child does not
/// exist in the view.
Result<rxl::RxlQuery> ComposeSubview(const rxl::RxlQuery& view,
                                     std::string_view path);

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_SUBVIEW_H_
