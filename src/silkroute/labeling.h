// Edge-multiplicity labeling (paper Sec. 3.5): derives the 1 / ? / + / *
// label of each view-tree edge from the catalog's key and referential
// constraints.
//
// For an edge parent p -> child c with rules F(x1..xm) :- Qp and
// G(x1..xm..xn) :- Qc:
//   C1 ("at most one"): the functional dependency Rc: x1..xm -> xm+1..xn
//     holds. Checked with an FD closure over Qc using table keys, join
//     equalities, and constant filters.
//   C2 ("at least one"): the inclusion dependency Rp[x1..xm] <= Rc[x1..xm]
//     holds. Checked with a conservative foreign-key chase: every atom Qc
//     adds beyond Qp must be reachable through a declared, non-nullable
//     foreign key that covers the new table's key, and must carry no extra
//     filters.
//
//          | C2 true | C2 false
//  C1 true |    1    |    ?
//  C1 false|    +    |    *
#ifndef SILKROUTE_SILKROUTE_LABELING_H_
#define SILKROUTE_SILKROUTE_LABELING_H_

#include <vector>

#include "common/status.h"
#include "relational/catalog.h"
#include "rxl/ast.h"
#include "silkroute/view_tree.h"

namespace silkroute::core {

class ViewTree;

/// Assigns edge_label on every non-root node of `tree`.
Status LabelEdges(const Catalog& catalog, ViewTree* tree);

/// Computes the FD closure of `start` fields under the constraints implied
/// by `atoms` and `conditions` (exposed for tests).
std::vector<rxl::FieldRef> FdClosure(
    const Catalog& catalog, const std::vector<DatalogAtom>& atoms,
    const std::vector<rxl::Condition>& conditions,
    const std::vector<rxl::FieldRef>& start);

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_LABELING_H_
