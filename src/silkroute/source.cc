#include "silkroute/source.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace silkroute::core {

namespace {

/// Finds one kept edge whose removal eliminates an unsupported construct,
/// or -1 if the plan is permissible. Prefers the deepest offender so
/// shallow structure survives.
Result<int> FindOffendingEdge(const ViewTree& tree, const Partition& plan,
                              SqlGenStyle style, bool reduce,
                              const SourceDescription& source) {
  const auto edges = tree.Edges();
  std::map<std::pair<int, int>, int> edge_index;
  for (size_t e = 0; e < edges.size(); ++e) {
    edge_index[edges[e]] = static_cast<int>(e);
  }

  int best_edge = -1;
  int best_depth = -1;
  auto consider = [&](int child_head) {
    int parent = tree.node(child_head).parent;
    auto it = edge_index.find({parent, child_head});
    if (it == edge_index.end()) return;
    int depth = tree.node(child_head).level();
    if (depth > best_depth) {
      best_depth = depth;
      best_edge = it->second;
    }
  };

  for (const auto& component : plan.components()) {
    SILK_ASSIGN_OR_RETURN(ExecComponent exec,
                          BuildExecComponent(tree, component, reduce));
    if (style == SqlGenStyle::kOuterUnion) {
      // Outer-union streams need UNION whenever two or more classes share
      // the stream; joins never appear.
      if (!source.supports_union && exec.nodes.size() >= 2) {
        for (size_t c = 1; c < exec.nodes.size(); ++c) {
          consider(exec.nodes[c].head);
        }
      }
      continue;
    }
    for (const auto& cls : exec.nodes) {
      if (!source.supports_outer_join && !cls.children.empty()) {
        for (int child : cls.children) {
          consider(exec.nodes[static_cast<size_t>(child)].head);
        }
      }
      if (!source.supports_union && cls.children.size() >= 2) {
        for (int child : cls.children) {
          consider(exec.nodes[static_cast<size_t>(child)].head);
        }
      }
    }
  }
  return best_edge;
}

}  // namespace

Result<bool> PlanPermissible(const ViewTree& tree, uint64_t mask,
                             SqlGenStyle style, bool reduce,
                             const SourceDescription& source) {
  SILK_ASSIGN_OR_RETURN(Partition plan, Partition::FromMask(tree, mask));
  SILK_ASSIGN_OR_RETURN(int offender,
                        FindOffendingEdge(tree, plan, style, reduce, source));
  return offender < 0;
}

Result<uint64_t> MakePermissible(const ViewTree& tree, uint64_t mask,
                                 SqlGenStyle style, bool reduce,
                                 const SourceDescription& source) {
  while (true) {
    SILK_ASSIGN_OR_RETURN(Partition plan, Partition::FromMask(tree, mask));
    SILK_ASSIGN_OR_RETURN(
        int offender, FindOffendingEdge(tree, plan, style, reduce, source));
    if (offender < 0) return mask;
    mask &= ~(uint64_t{1} << offender);
  }
}

int DeepestInternalEdge(const ViewTree& tree, const std::vector<int>& nodes) {
  std::set<int> in_set(nodes.begin(), nodes.end());
  const auto edges = tree.Edges();
  int best_edge = -1;
  int best_depth = -1;
  for (size_t e = 0; e < edges.size(); ++e) {
    const auto& [parent, child] = edges[e];
    if (in_set.count(parent) == 0 || in_set.count(child) == 0) continue;
    int depth = tree.node(child).level();
    if (depth > best_depth) {
      best_depth = depth;
      best_edge = static_cast<int>(e);
    }
  }
  return best_edge;
}

std::pair<std::vector<int>, std::vector<int>> SplitAtEdge(
    const ViewTree& tree, const std::vector<int>& nodes,
    std::pair<int, int> edge) {
  std::set<int> in_set(nodes.begin(), nodes.end());
  std::vector<int> remainder, subtree;
  for (int node : nodes) {
    // A node falls on the child side iff the cut child is on its path to
    // the root; the set is connected, so the walk stays inside it.
    bool under_child = false;
    for (int cursor = node; cursor != -1; cursor = tree.node(cursor).parent) {
      if (cursor == edge.second) {
        under_child = true;
        break;
      }
      if (in_set.count(cursor) == 0) break;
    }
    (under_child ? subtree : remainder).push_back(node);
  }
  return {std::move(remainder), std::move(subtree)};
}

std::vector<std::string> ComponentTables(const ViewTree& tree,
                                         const std::vector<int>& nodes) {
  std::set<std::string> tables;
  for (int id : nodes) {
    const ViewTreeNode& node = tree.node(id);
    const std::vector<DatalogAtom>* inherited =
        node.parent >= 0 ? &tree.node(node.parent).atoms : nullptr;
    auto own = [&](const DatalogAtom& atom) {
      return inherited == nullptr ||
             std::find(inherited->begin(), inherited->end(), atom) ==
                 inherited->end();
    };
    for (const auto& atom : node.atoms) {
      if (own(atom)) tables.insert(atom.table);
    }
    for (const auto& rule : node.extra_rules) {
      for (const auto& atom : rule.atoms) {
        if (own(atom)) tables.insert(atom.table);
      }
    }
  }
  return {tables.begin(), tables.end()};
}

}  // namespace silkroute::core
