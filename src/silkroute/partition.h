// View-tree partitioning (paper Sec. 3.2): a plan keeps a subset of the
// view-tree edges; the connected components of the resulting spanning forest
// each become one SQL query / tuple stream. With |E| edges there are 2^|E|
// plans, from fully partitioned (no edges, one stream per node) to unified
// (all edges, a single stream).
//
// Reduction (paper Sec. 3.5) additionally collapses nodes connected by
// '1'-labeled kept edges into execution classes; each class contributes one
// relational sub-select instead of one per node.
#ifndef SILKROUTE_SILKROUTE_PARTITION_H_
#define SILKROUTE_SILKROUTE_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "silkroute/view_tree.h"

namespace silkroute::core {

class Partition {
 public:
  /// Builds a partition from an edge bitmask aligned with tree.Edges():
  /// bit i set means edge i is kept (inside a SQL query).
  static Result<Partition> FromMask(const ViewTree& tree, uint64_t mask);

  /// All edges kept: one SQL query for the whole view.
  static Partition Unified(const ViewTree& tree);

  /// No edges kept: one SQL query per view-tree node.
  static Partition FullyPartitioned(const ViewTree& tree);

  struct Component {
    int root = -1;           // shallowest node id
    std::vector<int> nodes;  // ascending ids (BFS order: parents first)
  };

  const ViewTree& tree() const { return *tree_; }
  uint64_t mask() const { return mask_; }
  bool EdgeKept(size_t edge_index) const {
    return (mask_ >> edge_index) & 1;
  }
  const std::vector<Component>& components() const { return components_; }
  size_t num_streams() const { return components_.size(); }

  /// "{S1,S1.1}|{S1.2}|..." rendering.
  std::string ToString() const;

 private:
  const ViewTree* tree_ = nullptr;
  uint64_t mask_ = 0;
  std::vector<Component> components_;
};

/// Number of plans (2^|E|) for a view tree; fails if |E| > 63.
Result<uint64_t> NumPlans(const ViewTree& tree);

/// An execution class: one or more view-tree nodes collapsed by reduction
/// ('1'-labeled kept edges), evaluated as a single relational sub-select.
struct ExecNode {
  int head = -1;             // shallowest covered node id
  std::vector<int> covered;  // ascending ids; covered[0] == head
  int parent = -1;           // index of parent ExecNode in the component
  std::vector<int> children; // indices of child ExecNodes
};

struct ExecComponent {
  Partition::Component source;
  std::vector<ExecNode> nodes;  // nodes[0] is the root class
};

/// Computes the execution classes of one component. When `reduce` is false,
/// every view-tree node is its own class.
Result<ExecComponent> BuildExecComponent(const ViewTree& tree,
                                         const Partition::Component& component,
                                         bool reduce);

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_PARTITION_H_
