#include "silkroute/queries.h"

namespace silkroute::core {

std::string_view SupplierDtd() {
  return R"(
<!ELEMENT supplier (name, nation, region, part*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT nation (#PCDATA)>
<!ELEMENT region (#PCDATA)>
<!ELEMENT part (name, order*)>
<!ELEMENT order (orderkey, customer, nation)>
<!ELEMENT orderkey (#PCDATA)>
<!ELEMENT customer (#PCDATA)>
)";
}

std::string_view SuppliersDocumentDtd() {
  return R"(
<!ELEMENT suppliers (supplier*)>
<!ELEMENT supplier (name, nation, region, part*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT nation (#PCDATA)>
<!ELEMENT region (#PCDATA)>
<!ELEMENT part (name, order*)>
<!ELEMENT order (orderkey, customer, nation)>
<!ELEMENT orderkey (#PCDATA)>
<!ELEMENT customer (#PCDATA)>
)";
}

std::string_view Query1Rxl() {
  return R"(
from Supplier $s
construct
<supplier>
  <name>$s.name</name>
  { from Nation $n
    where $s.nationkey = $n.nationkey
    construct <nation>$n.name</nation> }
  { from Nation $n3, Region $r
    where $s.nationkey = $n3.nationkey, $n3.regionkey = $r.regionkey
    construct <region>$r.name</region> }
  { from PartSupp $ps, Part $p
    where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey
    construct
    <part>
      <name>$p.name</name>
      { from LineItem $l, Orders $o
        where $ps.partkey = $l.partkey, $ps.suppkey = $l.suppkey,
              $l.orderkey = $o.orderkey
        construct
        <order>
          <orderkey>$o.orderkey</orderkey>
          { from Customer $c
            where $o.custkey = $c.custkey
            construct <customer>$c.name</customer>
            { from Nation $n2
              where $c.nationkey = $n2.nationkey
              construct <nation>$n2.name</nation> } }
        </order> }
    </part> }
</supplier>
)";
}

std::string_view QueryFragmentRxl() {
  return R"(
from Supplier $s
construct
<supplier>
  { from Nation $n
    where $s.nationkey = $n.nationkey
    construct <nation>$n.name</nation> }
  { from PartSupp $ps, Part $p
    where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey
    construct <part>$p.name</part> }
</supplier>
)";
}

std::string_view Query2Rxl() {
  return R"(
from Supplier $s
construct
<supplier>
  <name>$s.name</name>
  { from Nation $n
    where $s.nationkey = $n.nationkey
    construct <nation>$n.name</nation> }
  { from Nation $n3, Region $r
    where $s.nationkey = $n3.nationkey, $n3.regionkey = $r.regionkey
    construct <region>$r.name</region> }
  { from PartSupp $ps, Part $p
    where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey
    construct
    <part>
      <name>$p.name</name>
    </part> }
  { from LineItem $l, Orders $o
    where $s.suppkey = $l.suppkey, $l.orderkey = $o.orderkey
    construct
    <order>
      <orderkey>$o.orderkey</orderkey>
      { from Customer $c
        where $o.custkey = $c.custkey
        construct <customer>$c.name</customer>
        { from Nation $n2
          where $c.nationkey = $n2.nationkey
          construct <nation>$n2.name</nation> } }
    </order> }
</supplier>
)";
}

}  // namespace silkroute::core
