// Greedy plan generation (paper Sec. 5, Fig. 17): starting from the fully
// partitioned plan, repeatedly combine the pair of adjacent components whose
// combined query is cheapest relative to evaluating them separately,
//
//   relative_cost(e) = cost(q_combined) - (cost(q1) + cost(q2))
//   cost(q) = a * evaluation_cost(q) + b * data_size(q)
//
// using the target RDBMS's optimizer (engine::CostEstimator) as the cost
// oracle. Edges cheaper than t1 are mandatory; edges cheaper than t2 are
// optional; each subset of the optional edges defines a near-optimal plan.
// Oracle responses are memoized by SQL text, which is why the measured
// request counts in Sec. 5.1 (22 / 25) are far below the O(|E|^2) bound.
#ifndef SILKROUTE_SILKROUTE_GREEDY_H_
#define SILKROUTE_SILKROUTE_GREEDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/estimator.h"
#include "silkroute/sqlgen.h"
#include "silkroute/view_tree.h"

namespace silkroute::core {

// The paper uses a=100, b=1, t1=-60000, t2=6000 for its commercial
// optimizer's cost units. Our estimator's units differ by a constant
// factor; the defaults below are the calibration that reproduces the
// paper's Fig. 18(b) plan family on the Config A database: the deep
// part/order spine becomes mandatory and the shallow supplier edges stay
// optional. As in the paper, one set of coefficients and thresholds is
// used for every query and configuration.
struct GreedyParams {
  double a = 100.0;   // weight of evaluation cost
  double b = 1.0;     // weight of data size
  double t1 = -3e5;   // mandatory-edge threshold (relative cost below this)
  double t2 = 1e5;    // optional-edge threshold
  SqlGenStyle style = SqlGenStyle::kOuterJoin;
  bool reduce = true;
};

struct GreedyPlan {
  std::vector<size_t> mandatory_edges;  // indices into tree.Edges()
  std::vector<size_t> optional_edges;
  size_t oracle_requests = 0;  // distinct estimate requests issued

  /// The plan family: mandatory edges always kept, each subset of the
  /// optional edges added (2^|optional| masks).
  std::vector<uint64_t> PlanMasks() const;

  /// The representative plan with all optional edges applied.
  uint64_t FullMask() const;

  std::string ToString(const ViewTree& tree) const;
};

/// Runs genPlan against any cost oracle — the synthetic CostEstimator or a
/// MeasuredCostOracle overlay. Distinct oracle requests are memoized by SQL
/// text and reported in GreedyPlan::oracle_requests.
Result<GreedyPlan> GeneratePlanGreedy(const ViewTree& tree,
                                      engine::CostOracle* oracle,
                                      const GreedyParams& params);

}  // namespace silkroute::core

#endif  // SILKROUTE_SILKROUTE_GREEDY_H_
