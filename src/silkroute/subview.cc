#include "silkroute/subview.h"

#include <cctype>
#include <cstdlib>
#include <map>

namespace silkroute::core {

namespace {

using rxl::Block;
using rxl::Condition;
using rxl::Content;
using rxl::Element;
using rxl::FieldRef;
using rxl::Operand;

/// Finds an element with `tag` among `contents`, descending into nested
/// blocks (which construct children of the same element) but not into
/// child elements. Blocks traversed on the way are appended to `blocks`.
const Element* FindChildElement(const std::vector<Content>& contents,
                                const std::string& tag,
                                std::vector<const Block*>* blocks) {
  for (const auto& c : contents) {
    switch (c.kind) {
      case Content::Kind::kElement:
        if (c.element->tag == tag) return c.element.get();
        break;
      case Content::Kind::kBlock: {
        size_t depth = blocks->size();
        blocks->push_back(c.block.get());
        const Element* found =
            FindChildElement(c.block->construct, tag, blocks);
        if (found != nullptr) return found;
        blocks->resize(depth);
        break;
      }
      default:
        break;
    }
  }
  return nullptr;
}

/// Renames tuple variables per `renames` inside a condition.
Condition RenameCondition(const Condition& cond,
                          const std::map<std::string, std::string>& renames) {
  Condition out = cond;
  auto fix = [&renames](Operand* op) {
    if (op->kind != Operand::Kind::kField) return;
    auto it = renames.find(op->field.var);
    if (it != renames.end()) op->field.var = it->second;
  };
  fix(&out.lhs);
  fix(&out.rhs);
  return out;
}

/// The first value (field ref) in an element's direct content.
const FieldRef* FirstValue(const Element& element) {
  for (const auto& c : element.content) {
    if (c.kind == Content::Kind::kFieldRef) return &c.field;
  }
  return nullptr;
}

}  // namespace

Result<std::vector<SubviewStep>> ParseSubviewPath(std::string_view path) {
  std::vector<SubviewStep> steps;
  size_t pos = 0;
  auto err = [&](const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(pos) +
                              " in subview path");
  };
  auto parse_name = [&]() -> std::string {
    size_t start = pos;
    while (pos < path.size() &&
           (std::isalnum(static_cast<unsigned char>(path[pos])) ||
            path[pos] == '_' || path[pos] == '-')) {
      ++pos;
    }
    return std::string(path.substr(start, pos - start));
  };

  while (pos < path.size()) {
    if (path[pos] != '/') return err("expected '/'");
    ++pos;
    SubviewStep step;
    step.tag = parse_name();
    if (step.tag.empty()) return err("expected element name");
    while (pos < path.size() && path[pos] == '[') {
      ++pos;
      SubviewPredicate pred;
      pred.child_tag = parse_name();
      if (pred.child_tag.empty()) return err("expected child name");
      if (pos >= path.size() || path[pos] != '=') return err("expected '='");
      ++pos;
      if (pos < path.size() && path[pos] == '\'') {
        ++pos;
        std::string value;
        while (pos < path.size() && path[pos] != '\'') {
          value.push_back(path[pos++]);
        }
        if (pos >= path.size()) return err("unterminated string literal");
        ++pos;
        pred.literal = Value::String(std::move(value));
      } else {
        size_t start = pos;
        if (pos < path.size() && path[pos] == '-') ++pos;
        while (pos < path.size() &&
               std::isdigit(static_cast<unsigned char>(path[pos]))) {
          ++pos;
        }
        if (pos == start) return err("expected literal");
        pred.literal = Value::Int64(std::strtoll(
            std::string(path.substr(start, pos - start)).c_str(), nullptr,
            10));
      }
      if (pos >= path.size() || path[pos] != ']') return err("expected ']'");
      ++pos;
      step.predicates.push_back(std::move(pred));
    }
    steps.push_back(std::move(step));
  }
  if (steps.empty()) {
    return Status::InvalidArgument("empty subview path");
  }
  return steps;
}

Result<rxl::RxlQuery> ComposeSubview(const rxl::RxlQuery& view,
                                     std::string_view path) {
  SILK_ASSIGN_OR_RETURN(std::vector<SubviewStep> steps,
                        ParseSubviewPath(path));

  Block accumulated;
  accumulated.from = view.root.from;
  accumulated.where = view.root.where;
  const std::vector<Content>* contents = &view.root.construct;
  const Element* element = nullptr;
  int rename_counter = 0;

  for (size_t i = 0; i < steps.size(); ++i) {
    const SubviewStep& step = steps[i];
    std::vector<const Block*> blocks_on_path;
    element = FindChildElement(*contents, step.tag, &blocks_on_path);
    if (element == nullptr) {
      return Status::NotFound("subview step '" + step.tag +
                              "' matches no element of the view");
    }
    // Blocks traversed to reach the element extend the scope.
    for (const Block* block : blocks_on_path) {
      for (const auto& binding : block->from) {
        accumulated.from.push_back(binding);
      }
      for (const auto& cond : block->where) {
        accumulated.where.push_back(cond);
      }
    }

    // Predicates: pull in the predicate child's blocks (with renamed
    // variables, so the retained subtree can still bind the originals) and
    // equate its value with the literal.
    for (const auto& pred : step.predicates) {
      std::vector<const Block*> pred_blocks;
      const Element* child =
          FindChildElement(element->content, pred.child_tag, &pred_blocks);
      if (child == nullptr) {
        return Status::NotFound("predicate child '" + pred.child_tag +
                                "' not found under '" + step.tag + "'");
      }
      const FieldRef* value = FirstValue(*child);
      if (value == nullptr) {
        return Status::InvalidArgument(
            "predicate child '" + pred.child_tag +
            "' has no value to compare against");
      }
      std::map<std::string, std::string> renames;
      for (const Block* block : pred_blocks) {
        for (const auto& binding : block->from) {
          renames[binding.var] =
              binding.var + "_q" + std::to_string(rename_counter++);
        }
      }
      for (const Block* block : pred_blocks) {
        for (const auto& binding : block->from) {
          accumulated.from.push_back(
              {binding.table, renames.at(binding.var)});
        }
        for (const auto& cond : block->where) {
          accumulated.where.push_back(RenameCondition(cond, renames));
        }
      }
      Condition equals;
      equals.lhs.kind = Operand::Kind::kField;
      equals.lhs.field = *value;
      auto it = renames.find(value->var);
      if (it != renames.end()) equals.lhs.field.var = it->second;
      equals.op = rxl::CondOp::kEq;
      equals.rhs.kind = Operand::Kind::kLiteral;
      equals.rhs.literal = pred.literal;
      accumulated.where.push_back(std::move(equals));
    }

    if (i + 1 < steps.size()) contents = &element->content;
  }

  rxl::RxlQuery composed;
  composed.root.from = std::move(accumulated.from);
  composed.root.where = std::move(accumulated.where);
  Content root_content;
  root_content.kind = Content::Kind::kElement;
  root_content.element = element->Clone();
  composed.root.construct.push_back(std::move(root_content));
  return composed;
}

}  // namespace silkroute::core
