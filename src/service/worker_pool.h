// WorkerPool: a fixed-size thread pool executing queued tasks in FIFO
// order. The pool bounds the number of component queries in flight at once
// — the service's primary concurrency throttle (admission control bounds
// what may *enter* the queue; the pool bounds what *runs*).
//
// Tasks must never block on other pool tasks (the publishing service obeys
// this: request coordination waits happen on client threads, pool tasks
// only execute queries and enqueue follow-ups), so the pool cannot
// deadlock. Shutdown drains: queued tasks still run, which is cheap
// because the service cancels its CancelToken first and drained tasks
// fail fast.
#ifndef SILKROUTE_SERVICE_WORKER_POOL_H_
#define SILKROUTE_SERVICE_WORKER_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace silkroute::service {

class WorkerPool {
 public:
  /// `metrics` (borrowed, may be null) records per-task queue wait — the
  /// time between Submit and a worker picking the task up — into
  /// silkroute_pool_queue_wait_us, plus the live queue depth gauge.
  explicit WorkerPool(size_t num_threads,
                      obs::MetricsRegistry* metrics = nullptr);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task. Returns false (task dropped) once Shutdown started.
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, drains the queue, joins all workers.
  /// Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  size_t queue_depth() const;

 private:
  struct Entry {
    std::function<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::mutex join_mu_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;

  // Registry mirrors (null when disabled), resolved once at construction.
  obs::Counter* m_tasks_ = nullptr;
  obs::Histogram* m_queue_wait_us_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
};

}  // namespace silkroute::service

#endif  // SILKROUTE_SERVICE_WORKER_POOL_H_
