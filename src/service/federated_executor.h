// FederatedExecutor: routes a plan's component queries across multiple
// SqlExecutor backends — the paper's middle-ware deployed over data that
// lives in more than one place. Each remote backend owns a set of tables;
// a component query referencing an owned table routes to that backend,
// everything else runs on the local executor.
//
// Fault tolerance (DESIGN.md §12, failover state machine):
//
//            breaker CLOSED                  breaker OPEN
//   query ──► remote backend ── source ──► RecordFailure ─► (threshold)
//                │ ok             failure        │
//                ▼                               ▼
//             result                    failover: local executor
//                                       (remaining deadline only)
//
//  - every remote backend has its own CircuitBreaker (key = backend name,
//    metric label `backend=` — the same state machine the service uses per
//    table, reused at the federation layer);
//  - a breaker fast-fail skips the remote entirely and runs the query on
//    the local fallback — XML output stays byte-identical because both
//    backends serve the same logical schema;
//  - a *source* failure from the remote (kUnavailable, kTimeout with
//    budget left) records against the breaker and fails over with the
//    remaining deadline; non-source errors (bad SQL) do not fail over —
//    they are deterministic and would fail locally too;
//  - once the breaker re-closes (half-open probe succeeds), traffic
//    returns to the remote: recovery is observable in the breaker state
//    and the silkroute_federation_* counters.
//
// Replica-set backends (DESIGN.md §13): a backend executor may itself be a
// net::ReplicaSet fanning the call across N replicas. The federation layer
// stays oblivious to replicas except for one hint: before dispatching it
// consults the executor's Healthy() — a side-effect-free "would anything
// admit this call" poll. A backend reporting unhealthy (every replica
// ejected) is skipped straight to local fallback *without* recording a
// backend-breaker failure: the skip is a routing decision, not evidence,
// and charging it would wedge the backend open after the replicas recover.
// Healthy() flips back true on its own once a replica's cool-down elapses,
// so traffic (and with it the half-open probes that drive real recovery)
// resumes without any federation-side state.
//
// Thread-safe: routing is read-only state, breakers and metrics are
// internally synchronized, and backends are required to be thread-safe
// SqlExecutors (DatabaseExecutor and RemoteSqlExecutor both are).
#ifndef SILKROUTE_SERVICE_FEDERATED_EXECUTOR_H_
#define SILKROUTE_SERVICE_FEDERATED_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"
#include "obs/metrics.h"
#include "service/circuit_breaker.h"

namespace silkroute::service {

/// True when `sql` references `table` as a whole identifier (not as a
/// substring of a longer identifier). Exposed for the routing tests.
bool SqlReferencesTable(std::string_view sql, std::string_view table);

struct FederatedBackendSpec {
  /// Breaker key and `backend=` metric/span label. Must be unique.
  std::string name;
  /// Borrowed; must outlive the FederatedExecutor and be thread-safe.
  engine::SqlExecutor* executor = nullptr;
  /// Tables this backend owns; a query referencing any of them routes
  /// here. Empty = matches every query (a catch-all remote).
  std::vector<std::string> tables;
};

struct FederatedExecutorOptions {
  /// The local fallback (and the home of unclaimed tables). Borrowed.
  engine::SqlExecutor* local = nullptr;
  std::vector<FederatedBackendSpec> remotes;
  /// Per-backend breaker tuning; label_key is forced to "backend".
  CircuitBreakerOptions breaker;
  /// When false, a sick remote fails the query instead of falling back —
  /// for deployments where local execution is not equivalent.
  bool failover_to_local = true;
  /// silkroute_federation_* counters (borrowed, may be null).
  obs::MetricsRegistry* metrics = nullptr;
};

class FederatedExecutor : public engine::SqlExecutor {
 public:
  explicit FederatedExecutor(FederatedExecutorOptions options);

  Result<engine::Relation> ExecuteSql(std::string_view sql) override {
    return ExecuteSqlCancellable(sql, timeout_ms_, nullptr);
  }
  Result<engine::Relation> ExecuteSqlWithDeadline(
      std::string_view sql, double timeout_ms) override {
    return ExecuteSqlCancellable(sql, timeout_ms, nullptr);
  }
  Result<engine::Relation> ExecuteSqlCancellable(std::string_view sql,
                                                 double timeout_ms,
                                                 CancelToken* cancel) override;
  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }

  /// Assembles a federation-wide version vector: each table is asked of
  /// the backend that owns it (same precedence as query routing, including
  /// catch-alls), unclaimed tables of the local executor. All-or-nothing —
  /// one backend declining fails the fetch, because a vector with holes
  /// would key cache entries that can never be invalidated by that
  /// backend's writes. The publisher treats any failure as "run uncached".
  Result<std::vector<std::pair<std::string, uint64_t>>> FetchTableVersions(
      const std::vector<std::string>& tables) override;

  /// The backend name `sql` routes to ("local" when no remote claims it).
  std::string RouteFor(std::string_view sql) const;

  CircuitBreakerRegistry* breakers() { return breakers_.get(); }

  uint64_t remote_queries() const { return remote_queries_.load(); }
  uint64_t local_queries() const { return local_queries_.load(); }
  uint64_t failovers() const { return failovers_.load(); }
  uint64_t fast_fail_failovers() const { return fast_fail_failovers_.load(); }
  /// Failovers taken because the backend executor reported Healthy()==false
  /// (e.g. a fully ejected replica set) — routed around, breaker untouched.
  uint64_t health_skip_failovers() const {
    return health_skip_failovers_.load();
  }

 private:
  struct Backend {
    FederatedBackendSpec spec;
    obs::Counter* m_failovers = nullptr;
    obs::Counter* m_fast_fails = nullptr;
    obs::Counter* m_health_skips = nullptr;
  };

  const Backend* Route(std::string_view sql) const;
  Result<engine::Relation> RunLocal(std::string_view sql, bool has_deadline,
                                    std::chrono::steady_clock::time_point
                                        deadline, CancelToken* cancel);

  FederatedExecutorOptions options_;
  double timeout_ms_ = 0;
  std::vector<Backend> backends_;
  std::unique_ptr<CircuitBreakerRegistry> breakers_;

  std::atomic<uint64_t> remote_queries_{0};
  std::atomic<uint64_t> local_queries_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> fast_fail_failovers_{0};
  std::atomic<uint64_t> health_skip_failovers_{0};
};

}  // namespace silkroute::service

#endif  // SILKROUTE_SERVICE_FEDERATED_EXECUTOR_H_
