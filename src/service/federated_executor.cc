#include "service/federated_executor.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <utility>

#include "obs/trace.h"

namespace silkroute::service {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsSourceFailureCode(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

}  // namespace

bool SqlReferencesTable(std::string_view sql, std::string_view table) {
  if (table.empty()) return false;
  size_t pos = 0;
  while ((pos = sql.find(table, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(sql[pos - 1]);
    size_t end = pos + table.size();
    bool right_ok = end == sql.size() || !IsIdentChar(sql[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

FederatedExecutor::FederatedExecutor(FederatedExecutorOptions options)
    : options_(std::move(options)) {
  CircuitBreakerOptions breaker = options_.breaker;
  breaker.label_key = "backend";
  breaker.metrics = options_.metrics;
  breakers_ = std::make_unique<CircuitBreakerRegistry>(std::move(breaker));
  backends_.reserve(options_.remotes.size());
  for (const auto& spec : options_.remotes) {
    Backend backend;
    backend.spec = spec;
    if (options_.metrics != nullptr) {
      backend.m_failovers = options_.metrics->counter(obs::LabeledName(
          "silkroute_federation_failovers_total", {{"backend", spec.name}}));
      backend.m_fast_fails = options_.metrics->counter(obs::LabeledName(
          "silkroute_federation_fast_fail_failovers_total",
          {{"backend", spec.name}}));
      backend.m_health_skips = options_.metrics->counter(obs::LabeledName(
          "silkroute_federation_health_skips_total",
          {{"backend", spec.name}}));
    }
    backends_.push_back(std::move(backend));
  }
}

const FederatedExecutor::Backend* FederatedExecutor::Route(
    std::string_view sql) const {
  for (const Backend& backend : backends_) {
    if (backend.spec.tables.empty()) return &backend;  // catch-all
    for (const std::string& table : backend.spec.tables) {
      if (SqlReferencesTable(sql, table)) return &backend;
    }
  }
  return nullptr;
}

Result<std::vector<std::pair<std::string, uint64_t>>>
FederatedExecutor::FetchTableVersions(const std::vector<std::string>& tables) {
  // Group the tables by owning backend, same precedence as Route(): first
  // backend whose table list names it (or a catch-all) wins; unclaimed
  // tables belong to the local executor.
  std::vector<std::vector<std::string>> per_backend(backends_.size());
  std::vector<std::string> local_tables;
  for (const std::string& table : tables) {
    size_t owner = backends_.size();
    for (size_t i = 0; i < backends_.size(); ++i) {
      const auto& owned = backends_[i].spec.tables;
      if (owned.empty() ||
          std::find(owned.begin(), owned.end(), table) != owned.end()) {
        owner = i;
        break;
      }
    }
    if (owner < backends_.size()) {
      per_backend[owner].push_back(table);
    } else {
      local_tables.push_back(table);
    }
  }

  std::vector<std::pair<std::string, uint64_t>> merged;
  merged.reserve(tables.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (per_backend[i].empty()) continue;
    SILK_ASSIGN_OR_RETURN(
        auto versions,
        backends_[i].spec.executor->FetchTableVersions(per_backend[i]));
    merged.insert(merged.end(), versions.begin(), versions.end());
  }
  if (!local_tables.empty()) {
    if (options_.local == nullptr) {
      return Status::Unavailable(
          "no backend claims some tables and no local executor is configured");
    }
    SILK_ASSIGN_OR_RETURN(auto versions,
                          options_.local->FetchTableVersions(local_tables));
    merged.insert(merged.end(), versions.begin(), versions.end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

std::string FederatedExecutor::RouteFor(std::string_view sql) const {
  const Backend* backend = Route(sql);
  return backend != nullptr ? backend->spec.name : std::string("local");
}

Result<engine::Relation> FederatedExecutor::RunLocal(
    std::string_view sql, bool has_deadline,
    std::chrono::steady_clock::time_point deadline, CancelToken* cancel) {
  local_queries_.fetch_add(1);
  double remaining_ms = 0;
  if (has_deadline) {
    remaining_ms = std::chrono::duration<double, std::milli>(
                       deadline - std::chrono::steady_clock::now())
                       .count();
    if (remaining_ms <= 0) {
      return Status::Timeout("deadline exceeded before local execution");
    }
  }
  return options_.local->ExecuteSqlCancellable(sql, remaining_ms, cancel);
}

Result<engine::Relation> FederatedExecutor::ExecuteSqlCancellable(
    std::string_view sql, double timeout_ms, CancelToken* cancel) {
  bool has_deadline = timeout_ms > 0;
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));

  const Backend* backend = Route(sql);
  if (backend == nullptr) {
    if (options_.local == nullptr) {
      return Status::InvalidArgument(
          "no backend claims this query and no local executor is configured");
    }
    obs::AnnotateCurrent("backend", "local");
    return RunLocal(sql, has_deadline, deadline, cancel);
  }

  obs::AnnotateCurrent("backend", backend->spec.name);
  CircuitBreaker* breaker = breakers_->Get(backend->spec.name);
  using Decision = CircuitBreaker::Decision;
  Decision decision = breaker->Admit();
  if (decision == Decision::kFastFail) {
    // The breaker is open: don't touch the sick remote at all.
    if (!options_.failover_to_local || options_.local == nullptr) {
      return Status::Unavailable("circuit breaker open for backend '" +
                                 backend->spec.name + "'");
    }
    fast_fail_failovers_.fetch_add(1);
    failovers_.fetch_add(1);
    if (backend->m_fast_fails != nullptr) backend->m_fast_fails->Add(1);
    if (backend->m_failovers != nullptr) backend->m_failovers->Add(1);
    obs::AnnotateCurrent("backend.failover", "breaker_open");
    obs::AnnotateCurrent("backend", "local");
    return RunLocal(sql, has_deadline, deadline, cancel);
  }

  if (!backend->spec.executor->Healthy()) {
    // The executor itself says nothing would admit this call (a fully
    // ejected replica set). Route around it without recording a breaker
    // outcome: the skip is not evidence about the backend, and Healthy()
    // turns true again by itself once a replica cool-down elapses — which
    // is what lets probe traffic resume and recovery actually happen.
    breaker->AbandonProbe(decision);
    if (!options_.failover_to_local || options_.local == nullptr) {
      return Status::Unavailable("backend '" + backend->spec.name +
                                 "' reports unhealthy (all replicas ejected)");
    }
    health_skip_failovers_.fetch_add(1);
    failovers_.fetch_add(1);
    if (backend->m_health_skips != nullptr) backend->m_health_skips->Add(1);
    if (backend->m_failovers != nullptr) backend->m_failovers->Add(1);
    obs::AnnotateCurrent("backend.failover", "unhealthy");
    obs::AnnotateCurrent("backend", "local");
    return RunLocal(sql, has_deadline, deadline, cancel);
  }

  remote_queries_.fetch_add(1);
  auto result =
      backend->spec.executor->ExecuteSqlCancellable(sql, timeout_ms, cancel);
  if (result.ok()) {
    breaker->RecordSuccess(decision);
    return result;
  }
  if (!IsSourceFailureCode(result.status().code())) {
    // Deterministic failure (bad SQL, internal bug): the backend is fine
    // and a local run would fail identically — no breaker hit, no
    // failover.
    breaker->AbandonProbe(decision);
    return result;
  }
  breaker->RecordFailure(decision);
  if (!options_.failover_to_local || options_.local == nullptr) {
    return result;
  }
  if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
    // The remote burned the whole budget; a local attempt cannot finish
    // either — surface the timeout rather than a doomed retry.
    return result;
  }
  failovers_.fetch_add(1);
  if (backend->m_failovers != nullptr) backend->m_failovers->Add(1);
  obs::AnnotateCurrent("backend.failover", StatusCodeToString(
                                               result.status().code()));
  obs::AnnotateCurrent("backend", "local");
  return RunLocal(sql, has_deadline, deadline, cancel);
}

}  // namespace silkroute::service
