#include "service/circuit_breaker.h"

#include <chrono>
#include <utility>

#include "obs/trace.h"

namespace silkroute::service {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

namespace {

/// FNV-1a 64 over the breaker key, so sibling breakers created from one
/// options struct (same base seed) still draw independent jitter streams.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

CircuitBreaker::CircuitBreaker(std::string key, CircuitBreakerOptions options)
    : key_(std::move(key)),
      options_(std::move(options)),
      jitter_(options_.jitter_seed ^ HashKey(key_)) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics;
    auto name = [&](std::string_view base) {
      return obs::LabeledName(base, {{options_.label_key, key_}});
    };
    m_trips_ = reg->counter(name("silkroute_breaker_trips_total"));
    m_fast_fails_ = reg->counter(name("silkroute_breaker_fast_fails_total"));
    m_probes_ = reg->counter(name("silkroute_breaker_probes_total"));
    m_successes_ = reg->counter(name("silkroute_breaker_successes_total"));
    m_failures_ = reg->counter(name("silkroute_breaker_failures_total"));
    m_state_ = reg->gauge(name("silkroute_breaker_state"));
  }
}

double CircuitBreaker::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CircuitBreaker::TripOpenLocked() {
  state_ = BreakerState::kOpen;
  double jitter_ms = options_.open_jitter_ms > 0
                         ? jitter_.NextDouble() * options_.open_jitter_ms
                         : 0;
  open_until_ms_ = NowMs() + options_.open_ms + jitter_ms;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  probe_in_flight_ = false;
  ++counters_.trips;
  if (m_trips_ != nullptr) {
    m_trips_->Add();
    m_state_->Set(1);
  }
  // State transitions become annotations on whatever span the tripping
  // thread is executing (the attempt/query span of the query that tripped
  // it). Thread-local, so safe under mu_.
  obs::AnnotateCurrent("breaker.trip", key_);
}

CircuitBreaker::Decision CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return Decision::kAllow;
    case BreakerState::kOpen:
      if (NowMs() < open_until_ms_) {
        ++counters_.fast_fails;
        if (m_fast_fails_ != nullptr) m_fast_fails_->Add();
        return Decision::kFastFail;
      }
      // Cool-down elapsed: admit one probe to test the source.
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      probe_successes_ = 0;
      ++counters_.probes;
      if (m_probes_ != nullptr) {
        m_probes_->Add();
        m_state_->Set(2);
      }
      obs::AnnotateCurrent("breaker.half_open", key_);
      return Decision::kProbe;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) {
        // One probe at a time; everyone else sheds until it reports back.
        ++counters_.fast_fails;
        if (m_fast_fails_ != nullptr) m_fast_fails_->Add();
        return Decision::kFastFail;
      }
      probe_in_flight_ = true;
      ++counters_.probes;
      if (m_probes_ != nullptr) m_probes_->Add();
      return Decision::kProbe;
  }
  ++counters_.fast_fails;
  if (m_fast_fails_ != nullptr) m_fast_fails_->Add();
  return Decision::kFastFail;
}

void CircuitBreaker::RecordSuccess(Decision admitted) {
  if (admitted == Decision::kFastFail) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.successes;
  if (m_successes_ != nullptr) m_successes_->Add();
  if (admitted == Decision::kProbe) {
    probe_in_flight_ = false;
    if (state_ == BreakerState::kHalfOpen) {
      if (++probe_successes_ >= options_.half_open_successes) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        probe_successes_ = 0;
        if (m_state_ != nullptr) m_state_->Set(0);
        obs::AnnotateCurrent("breaker.close", key_);
      }
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure(Decision admitted) {
  if (admitted == Decision::kFastFail) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.failures;
  if (m_failures_ != nullptr) m_failures_->Add();
  if (admitted == Decision::kProbe) {
    // The source is still sick: re-trip for another cool-down.
    TripOpenLocked();
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    TripOpenLocked();
  }
}

void CircuitBreaker::AbandonProbe(Decision admitted) {
  if (admitted != Decision::kProbe) return;
  std::lock_guard<std::mutex> lock(mu_);
  probe_in_flight_ = false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

bool CircuitBreaker::WouldFastFail() const {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return false;
    case BreakerState::kOpen:
      return NowMs() < open_until_ms_;
    case BreakerState::kHalfOpen:
      return probe_in_flight_;
  }
  return true;
}

BreakerCounters CircuitBreaker::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  BreakerCounters snapshot = counters_;
  snapshot.state = state_;
  snapshot.consecutive_failures = consecutive_failures_;
  return snapshot;
}

CircuitBreaker* CircuitBreakerRegistry::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(key);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(key, std::make_unique<CircuitBreaker>(key, options_))
             .first;
  }
  return it->second.get();
}

std::map<std::string, BreakerCounters> CircuitBreakerRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, BreakerCounters> snapshot;
  for (const auto& [key, breaker] : breakers_) {
    snapshot.emplace(key, breaker->counters());
  }
  return snapshot;
}

size_t CircuitBreakerRegistry::TotalFastFails() const {
  size_t total = 0;
  for (const auto& [key, counters] : Snapshot()) total += counters.fast_fails;
  return total;
}

size_t CircuitBreakerRegistry::TotalTrips() const {
  size_t total = 0;
  for (const auto& [key, counters] : Snapshot()) total += counters.trips;
  return total;
}

}  // namespace silkroute::service
