#include "service/publishing_service.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <utility>

#include "common/timer.h"
#include "engine/tuple_stream.h"
#include "silkroute/source.h"
#include "silkroute/sqlgen.h"

namespace silkroute::service {

namespace {

using core::ComponentStream;
using core::PublishOptions;
using core::SqlGenerator;
using core::StreamSpec;
using core::ViewTree;

/// True for errors of the *source*: the ones degradation and circuit
/// breaking route around (mirrors the sequential publisher).
bool IsSourceFailure(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

// The breaker keys of a component query are the tables it *introduces*:
// core::ComponentTables (silkroute/source.h), shared with the publisher's
// per-component outcome attribution.

/// The service's breakers mirror into the unified registry; options_ is
/// const by the time breakers_ is constructed, so the injection happens on
/// a copy in the initializer list.
CircuitBreakerOptions WithBreakerMetrics(CircuitBreakerOptions options,
                                         obs::MetricsRegistry* metrics) {
  options.metrics = metrics;
  return options;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// PooledExecution: the concurrent PlanExecution strategy for one request.
// Run() fans the component queries out to the service's worker pool; each
// task fills a result slot, degrading through the edge-mask lattice on
// permanent failure exactly like the sequential strategy. The publisher
// sorts the slots by component root before tagging, so the XML is
// byte-identical at any concurrency.

class PublishingService::PooledExecution : public core::PlanExecution {
 public:
  PooledExecution(PublishingService* service, bool has_deadline,
                  std::chrono::steady_clock::time_point deadline)
      : service_(service),
        has_deadline_(has_deadline),
        deadline_(deadline),
        budget_(service->options_.retry.retry_budget) {}

  Result<std::vector<ComponentStream>> Run(const ViewTree& tree,
                                           const SqlGenerator& gen,
                                           std::vector<StreamSpec> specs,
                                           const PublishOptions& options,
                                           core::PlanMetrics* metrics,
                                           obs::SpanHandle* plan_span) override;

  /// Buffered-byte reservation still held; the coordinator releases it
  /// once the document is tagged (the streams are consumed by then).
  size_t reserved_bytes() const { return reserved_bytes_; }

 private:
  /// A degradation replacement awaiting submission, with its component
  /// span (a child of the failed component's span).
  struct FollowUp {
    StreamSpec spec;
    size_t origin;
    std::shared_ptr<obs::SpanHandle> span;
  };

  /// Pre-condition: outstanding_ already counts this task.
  void SubmitTask(StreamSpec spec, size_t origin,
                  std::shared_ptr<obs::SpanHandle> span);
  void ExecuteOne(StreamSpec spec, size_t origin,
                  std::shared_ptr<obs::SpanHandle> span,
                  std::chrono::steady_clock::time_point enqueued);
  /// Terminal accounting of one task; submits degradation follow-ups.
  void FinishTask(std::vector<FollowUp> follow_ups);

  PublishingService* const service_;
  const bool has_deadline_;
  const std::chrono::steady_clock::time_point deadline_;
  engine::RetryBudget budget_;

  // Set once by Run before any task starts.
  const ViewTree* tree_ = nullptr;
  const SqlGenerator* gen_ = nullptr;
  const PublishOptions* options_ = nullptr;

  std::mutex mu_;
  std::condition_variable cv_;
  size_t outstanding_ = 0;
  std::vector<ComponentStream> done_;
  std::set<size_t> degraded_origins_;
  std::vector<int> failed_nodes_;
  std::vector<std::string> sql_log_;
  std::vector<core::ComponentOutcome> components_;
  engine::ExecutionReport report_;
  Status fatal_;
  bool timed_out_ = false;
  size_t breaker_fast_fails_ = 0;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
  size_t rows_ = 0;
  size_t wire_bytes_ = 0;
  double query_ms_ = 0;
  double bind_ms_ = 0;
  size_t reserved_bytes_ = 0;
};

Result<std::vector<ComponentStream>> PublishingService::PooledExecution::Run(
    const ViewTree& tree, const SqlGenerator& gen,
    std::vector<StreamSpec> specs, const PublishOptions& options,
    core::PlanMetrics* metrics, obs::SpanHandle* plan_span) {
  tree_ = &tree;
  gen_ = &gen;
  options_ = &options;

  // The plan's fan-out claims in-flight-query slots up front: a service at
  // its global query budget sheds the whole request fast instead of
  // trickling it through a saturated pool.
  SILK_RETURN_IF_ERROR(service_->admission_.AdmitQueries(specs.size()));

  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_ = specs.size();
  }
  // Component spans are started here, in plan order, so their hierarchical
  // ids are deterministic regardless of which worker finishes first.
  for (size_t i = 0; i < specs.size(); ++i) {
    auto span =
        core::MakeComponentSpan(tree, options.tracer, plan_span, specs[i]);
    SubmitTask(std::move(specs[i]), i, std::move(span));
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return outstanding_ == 0; });
  }

  // All tasks finished: the members are exclusively ours again. Query
  // slots in the report are renumbered to completion order (each task ran
  // its own single-slot executor).
  for (size_t i = 0; i < report_.queries.size(); ++i) {
    report_.queries[i].query_index = static_cast<int>(i);
  }
  metrics->exec_report = std::move(report_);
  metrics->attempts = metrics->exec_report.total_attempts();
  metrics->retries = metrics->exec_report.total_retries();
  metrics->degraded_components = degraded_origins_.size();
  metrics->breaker_fast_fails = breaker_fast_fails_;
  metrics->cache_hits = cache_hits_;
  metrics->cache_misses = cache_misses_;
  metrics->failed_nodes = std::move(failed_nodes_);
  std::sort(metrics->failed_nodes.begin(), metrics->failed_nodes.end());
  if (options.collect_sql) metrics->sql = std::move(sql_log_);
  metrics->components = std::move(components_);
  metrics->rows = rows_;
  metrics->wire_bytes = wire_bytes_;
  // Query/bind time is summed across workers: aggregate server time, which
  // under concurrency exceeds the request's wall-clock elapsed time.
  metrics->query_ms = query_ms_;
  metrics->bind_ms = bind_ms_;
  if (!fatal_.ok()) return fatal_;
  if (timed_out_) {
    metrics->timed_out = true;
    return std::vector<ComponentStream>{};
  }
  return std::move(done_);
}

void PublishingService::PooledExecution::SubmitTask(
    StreamSpec spec, size_t origin, std::shared_ptr<obs::SpanHandle> span) {
  bool submitted = service_->pool_.Submit(
      [this, spec = std::move(spec), origin, span = std::move(span),
       enqueued = std::chrono::steady_clock::now()]() mutable {
        ExecuteOne(std::move(spec), origin, std::move(span), enqueued);
      });
  if (!submitted) {
    // Pool already shut down; account the task as terminally failed.
    service_->admission_.FinishQuery();
    std::lock_guard<std::mutex> lock(mu_);
    if (fatal_.ok()) fatal_ = Status::Unavailable("service is shut down");
    if (--outstanding_ == 0) cv_.notify_all();
  }
}

void PublishingService::PooledExecution::FinishTask(
    std::vector<FollowUp> follow_ups) {
  service_->admission_.FinishQuery();
  if (!follow_ups.empty()) {
    // Degradation replacements stand in for the slot the failed query
    // held, so they force-admit rather than shed an admitted plan.
    service_->admission_.ForceAdmitQueries(follow_ups.size());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_ += follow_ups.size();
    if (--outstanding_ == 0) cv_.notify_all();
  }
  for (FollowUp& f : follow_ups) {
    SubmitTask(std::move(f.spec), f.origin, std::move(f.span));
  }
}

void PublishingService::PooledExecution::ExecuteOne(
    StreamSpec spec, size_t origin, std::shared_ptr<obs::SpanHandle> span,
    std::chrono::steady_clock::time_point enqueued) {
  const PublishOptions& options = *options_;
  double queue_wait_ms = MsSince(enqueued);
  if (span != nullptr) span->AnnotateMs("queue_wait_ms", queue_wait_ms);
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drain = !fatal_.ok() || timed_out_;
  }
  if (!drain && service_->cancel_.cancelled()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (fatal_.ok()) fatal_ = Status::Unavailable("service shutting down");
    drain = true;
  }
  // Every exit below ends the component span BEFORE FinishTask: the final
  // FinishTask releases the drain barrier, and a span still open past it
  // (ended only by the task lambda's destructor) could miss a trace export
  // that runs as soon as the plan completes.
  if (drain) {
    if (span != nullptr) {
      span->Annotate("status", "drained");
      span->End();
    }
    return FinishTask({});
  }

  // End-to-end deadline: a request out of time fails before burning a
  // worker on a doomed query.
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      timed_out_ = true;
    }
    if (span != nullptr) {
      span->Annotate("status", StatusCodeToString(StatusCode::kTimeout));
      span->End();
    }
    return FinishTask({});
  }

  std::vector<std::string> tables =
      core::ComponentTables(*tree_, spec.covered_nodes);
  core::ComponentOutcome outcome;
  outcome.nodes = spec.covered_nodes;
  outcome.tables = tables;
  outcome.queue_wait_ms = queue_wait_ms;

  // Fragment-cache fast path: a hit skips the breaker gates and the
  // executor entirely (nothing runs, so there is nothing to gate), but the
  // borrowed wire bytes still count against the buffered-tuple budget —
  // they live exactly as long as an executed stream's would.
  engine::ResultCache* cache = options.result_cache;
  if (cache != nullptr && !spec.cache_key.empty()) {
    if (auto entry = cache->Lookup(spec.cache_key)) {
      auto stream = std::make_unique<engine::TupleStream>(
          entry->schema, entry->bytes, entry->num_tuples);
      size_t bytes = stream->wire_bytes();
      Status reserved = service_->admission_.ReserveBytes(bytes);
      StatusCode final_code = reserved.code();
      outcome.final_status = final_code;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++cache_hits_;
        if (!reserved.ok()) {
          if (fatal_.ok()) fatal_ = reserved;
        } else {
          reserved_bytes_ += bytes;
          rows_ += entry->num_tuples;
          wire_bytes_ += bytes;
          done_.push_back(ComponentStream{std::move(spec), std::move(stream)});
        }
        components_.push_back(std::move(outcome));
      }
      if (span != nullptr) {
        span->Annotate("cache", "hit");
        span->Annotate("status", StatusCodeToString(final_code));
        span->End();
      }
      return FinishTask({});
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++cache_misses_;
  }

  // Circuit breakers: one gate per backend table this component touches.
  // Any open breaker fast-fails the query, which then degrades
  // immediately — no execution, no retry budget consumed.
  using Decision = CircuitBreaker::Decision;
  std::vector<std::pair<CircuitBreaker*, Decision>> gates;
  std::string open_table;
  for (const std::string& table : tables) {
    CircuitBreaker* breaker = service_->breakers_.Get(table);
    Decision decision = breaker->Admit();
    if (decision == Decision::kFastFail) {
      open_table = table;
      break;
    }
    gates.emplace_back(breaker, decision);
  }

  Status status = Status::OK();
  engine::Relation rel;
  engine::ExecutionReport task_report;
  double query_elapsed = 0;
  obs::SpanHandle query_span;
  if (!open_table.empty()) {
    // A sibling breaker may have admitted a probe for this same query;
    // return the probe slot unused.
    for (auto& [breaker, decision] : gates) breaker->AbandonProbe(decision);
    status = Status::Unavailable("circuit breaker open for table '" +
                                 open_table + "'");
    outcome.breaker_fast_fail = true;
    if (span != nullptr) span->Annotate("breaker.fast_fail", open_table);
    std::lock_guard<std::mutex> lock(mu_);
    ++breaker_fast_fails_;
  } else {
    // The gates passed: the query will run. Only now does it belong in
    // metrics->sql (drained or fast-failed queries never executed).
    if (options.collect_sql) {
      std::lock_guard<std::mutex> lock(mu_);
      sql_log_.push_back(spec.sql);
    }
    engine::RetryOptions retry = service_->options_.retry;
    retry.query_deadline_ms = options.query_timeout_ms;
    if (options.strict) {
      retry.max_attempts = 1;
      retry.retry_budget = 0;
    } else {
      retry.shared_budget = &budget_;
    }
    retry.cancel = &service_->cancel_;
    retry.has_deadline = has_deadline_;
    retry.deadline = deadline_;
    retry.tracer = service_->options_.tracer;
    retry.metrics = service_->options_.metrics_registry;
    engine::ResilientExecutor resilient(service_->executor_, retry);

    // phase:query under the component span; the resilient layer hangs
    // attempt/backoff spans off it through the thread-local current span.
    query_span = obs::Tracer::Child(service_->options_.tracer, span.get(),
                                    "phase:query");
    Timer query_timer;
    auto result = [&] {
      obs::ScopedCurrentSpan scope(&query_span);
      return resilient.ExecuteSql(spec.sql);
    }();
    query_elapsed = query_timer.ElapsedMillis();
    task_report = resilient.report();
    const engine::QueryExecution& executed = task_report.queries.back();
    outcome.attempts = static_cast<size_t>(executed.attempts);
    outcome.retries = executed.attempts > 1
                          ? static_cast<size_t>(executed.attempts - 1)
                          : 0;
    status = result.status();
    bool source_failure = !result.ok() && IsSourceFailure(status.code());
    for (auto& [breaker, decision] : gates) {
      if (result.ok()) {
        breaker->RecordSuccess(decision);
      } else if (source_failure) {
        breaker->RecordFailure(decision);
      } else {
        // A non-source error says nothing about the backend's health.
        breaker->AbandonProbe(decision);
      }
    }
    if (result.ok()) rel = std::move(result).value();
  }
  outcome.final_status = status.code();

  if (status.ok()) {
    size_t rel_rows = rel.rows.size();
    obs::SpanHandle bind_span =
        obs::Tracer::Child(service_->options_.tracer, span.get(), "phase:bind");
    Timer bind_timer;
    auto stream = std::make_unique<engine::TupleStream>(std::move(rel));
    double bind_elapsed = bind_timer.ElapsedMillis();
    size_t bytes = stream->wire_bytes();
    if (cache != nullptr && !spec.cache_key.empty()) {
      engine::CacheEntry entry;
      entry.schema = stream->schema();
      entry.bytes = stream->shared_wire();
      entry.num_tuples = stream->num_tuples();
      cache->Insert(spec.cache_key, std::move(entry));
    }
    if (options.profile != nullptr) {
      options.profile->RecordQuery(spec.sql, query_elapsed, rel_rows, bytes);
      options.profile->RecordBind(spec.sql, bind_elapsed);
    }
    // The buffered-tuple budget: requests whose streams would blow the
    // global memory bound are shed (kResourceExhausted), not OOM-killed.
    Status reserved = service_->admission_.ReserveBytes(bytes);
    {
      std::lock_guard<std::mutex> lock(mu_);
      report_.queries.insert(report_.queries.end(),
                             task_report.queries.begin(),
                             task_report.queries.end());
      if (!reserved.ok()) {
        if (fatal_.ok()) fatal_ = reserved;
        outcome.final_status = reserved.code();
      } else {
        reserved_bytes_ += bytes;
        rows_ += rel_rows;
        wire_bytes_ += bytes;
        query_ms_ += query_elapsed;
        bind_ms_ += bind_elapsed;
        // The spans carry the *same* measured values that feed the
        // metrics, so a trace reproduces the query/bind totals exactly.
        query_span.AnnotateMs("ms", query_elapsed);
        bind_span.AnnotateMs("ms", bind_elapsed);
        done_.push_back(ComponentStream{std::move(spec), std::move(stream)});
      }
      components_.push_back(std::move(outcome));
    }
    query_span.End();
    bind_span.End();
    if (span != nullptr) {
      span->Annotate("status", StatusCodeToString(reserved.code()));
      span->End();
    }
    return FinishTask({});
  }

  if (query_span.recording()) {
    query_span.Annotate("status", StatusCodeToString(status.code()));
    query_span.End();
  }
  if (span != nullptr) {
    span->Annotate("status", StatusCodeToString(status.code()));
  }

  // Failure handling, mirroring the sequential strategy's retry/degrade
  // loop: budget exhaustion and non-source errors are fatal; a source
  // failure splits the component at its deepest kept edge; at the
  // fully-partitioned limit a timeout reports timed_out and an unavailable
  // node is skipped best-effort.
  std::vector<FollowUp> follow_ups;
  {
    std::lock_guard<std::mutex> lock(mu_);
    report_.queries.insert(report_.queries.end(),
                           task_report.queries.begin(),
                           task_report.queries.end());
    if (status.code() == StatusCode::kResourceExhausted ||
        !IsSourceFailure(status.code())) {
      if (fatal_.ok()) fatal_ = status;
    } else if (options.strict) {
      if (status.code() == StatusCode::kTimeout) {
        timed_out_ = true;
      } else if (fatal_.ok()) {
        fatal_ = status;
      }
    } else {
      int edge = core::DeepestInternalEdge(*tree_, spec.covered_nodes);
      if (edge < 0) {
        if (status.code() == StatusCode::kTimeout) {
          timed_out_ = true;
        } else {
          failed_nodes_.insert(failed_nodes_.end(),
                               spec.covered_nodes.begin(),
                               spec.covered_nodes.end());
          done_.push_back(ComponentStream{
              std::move(spec),
              std::make_unique<engine::TupleStream>(engine::Relation{})});
        }
      } else {
        degraded_origins_.insert(origin);
        outcome.degraded = true;
        auto [remainder, subtree] = core::SplitAtEdge(
            *tree_, spec.covered_nodes, tree_->Edges()[edge]);
        for (auto* part : {&remainder, &subtree}) {
          auto sub_spec = gen_->GenerateComponent(*part);
          if (!sub_spec.ok()) {
            if (fatal_.ok()) fatal_ = sub_spec.status();
            follow_ups.clear();
            break;
          }
          // Follow-up queries nest under the failed component's span, so
          // the trace shows the degradation tree.
          StreamSpec sub = std::move(sub_spec).value();
          auto sub_span = core::MakeComponentSpan(
              *tree_, service_->options_.tracer, span.get(), sub);
          follow_ups.push_back(
              FollowUp{std::move(sub), origin, std::move(sub_span)});
        }
      }
    }
    components_.push_back(std::move(outcome));
  }
  if (span != nullptr) span->End();
  FinishTask(std::move(follow_ups));
}

// ---------------------------------------------------------------------------
// PublishTicket

PublishTicket::~PublishTicket() {
  if (coordinator_.joinable()) coordinator_.join();
}

const ServiceResponse& PublishTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_; });
  // Join under mu_ so concurrent Wait() calls (the shared_ptr API invites
  // sharing) serialize: exactly one sees joinable() and joins. Safe from
  // deadlock — once done_ is set the coordinator never takes mu_ again.
  if (coordinator_.joinable()) coordinator_.join();
  return response_;
}

// ---------------------------------------------------------------------------
// PublishingService

PublishingService::PublishingService(const Database* db, ServiceOptions options)
    : db_(db),
      options_(std::move(options)),
      publisher_(db),
      own_executor_(db),
      executor_(options_.executor != nullptr ? options_.executor
                                             : &own_executor_),
      admission_(options_.admission, options_.metrics_registry),
      breakers_(
          WithBreakerMetrics(options_.breaker, options_.metrics_registry)),
      pool_(options_.workers, options_.metrics_registry) {
  // Surface the engine's packed-key counters when the service executes
  // against its own connection (a caller-supplied executor wires its own).
  // Parallelism first: morsel counters register only at engine_threads > 1.
  own_executor_.set_parallelism(options_.engine_threads);
  own_executor_.set_metrics_registry(options_.metrics_registry);
}

PublishingService::~PublishingService() { Shutdown(); }

Result<std::shared_ptr<PublishTicket>> PublishingService::Submit(
    ServiceRequest request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::Unavailable("service is shut down");
  }
  SILK_RETURN_IF_ERROR(admission_.AdmitRequest());
  // Re-check shutdown_ atomically with the registration: Shutdown may have
  // set shutdown_ and observed active_requests_ == 0 after the check above,
  // and a request registered now would outlive the drain. Either the
  // request is fully registered before the drain check sees zero, or it is
  // rejected and its admission undone.
  bool registered = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      ++active_requests_;
      registered = true;
    }
  }
  if (!registered) {
    admission_.FinishRequest();
    return Status::Unavailable("service is shut down");
  }
  auto ticket = std::shared_ptr<PublishTicket>(new PublishTicket());
  // The request root span starts on the caller's thread, so concurrent
  // Submits take root ordinals in submission order and queueing ahead of
  // the coordinator is inside the span.
  obs::SpanHandle request_span = obs::Tracer::Root(options_.tracer, "request");
  ticket->coordinator_ = std::thread(
      [this, ticket_ptr = ticket.get(), req = std::move(request),
       span = std::move(request_span)]() mutable {
        RunRequest(std::move(req), ticket_ptr, std::move(span));
      });
  return ticket;
}

ServiceResponse PublishingService::Publish(ServiceRequest request) {
  auto ticket = Submit(std::move(request));
  if (!ticket.ok()) {
    ServiceResponse response;
    response.status = ticket.status();
    return response;
  }
  return (*ticket)->Wait();
}

std::vector<ServiceResponse> PublishingService::PublishAll(
    std::vector<ServiceRequest> requests) {
  std::vector<ServiceResponse> responses(requests.size());
  std::vector<std::shared_ptr<PublishTicket>> tickets(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto ticket = Submit(std::move(requests[i]));
    if (ticket.ok()) {
      tickets[i] = std::move(ticket).value();
    } else {
      responses[i].status = ticket.status();
    }
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    if (tickets[i] != nullptr) responses[i] = tickets[i]->Wait();
  }
  return responses;
}

void PublishingService::RunRequest(ServiceRequest request,
                                   PublishTicket* ticket,
                                   obs::SpanHandle request_span) {
  auto start = std::chrono::steady_clock::now();
  double deadline_ms = request.deadline_ms > 0 ? request.deadline_ms
                                               : options_.default_deadline_ms;
  bool has_deadline = deadline_ms > 0;
  auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(deadline_ms));
  if (has_deadline) request_span.AnnotateMs("deadline_ms", deadline_ms);

  ServiceResponse response;
  {
    PooledExecution execution(this, has_deadline, deadline);
    PublishOptions opts = request.options;
    opts.executor = executor_;
    opts.execution = &execution;
    opts.retry = options_.retry;
    opts.tracer = options_.tracer;
    opts.parent_span = &request_span;
    opts.metrics_registry = options_.metrics_registry;
    opts.profile = options_.profile;
    opts.plan_oracle = options_.plan_oracle;
    opts.result_cache = options_.result_cache;
    std::ostringstream out;
    auto result = publisher_.Publish(request.rxl, opts, &out);
    if (result.ok()) {
      response.result = std::move(result).value();
      if (!response.result.metrics.timed_out) response.xml = out.str();
    } else {
      response.status = result.status();
    }
    // The document is tagged; the buffered streams are gone.
    admission_.ReleaseBytes(execution.reserved_bytes());
  }
  response.elapsed_ms = MsSince(start);

  StatusCode final_code = !response.status.ok()
                              ? response.status.code()
                          : response.result.metrics.timed_out
                              ? StatusCode::kTimeout
                              : StatusCode::kOk;
  request_span.Annotate("status", StatusCodeToString(final_code));
  request_span.AnnotateMs("elapsed_ms", response.elapsed_ms);
  // End before fulfilling the ticket: a client that Waits and then reads
  // the trace must find the complete request span tree in the sink.
  request_span.End();
  if (options_.metrics_registry != nullptr) {
    options_.metrics_registry->histogram("silkroute_request_us")
        ->RecordMicros(response.elapsed_ms * 1000.0);
    const char* series = final_code == StatusCode::kOk
                             ? "silkroute_requests_completed_total"
                         : final_code == StatusCode::kTimeout
                             ? "silkroute_requests_timed_out_total"
                             : "silkroute_requests_failed_total";
    options_.metrics_registry->counter(series)->Add();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!response.status.ok()) {
      ++counters_.failed;
    } else if (response.result.metrics.timed_out) {
      ++counters_.timed_out;
    } else {
      ++counters_.completed;
    }
  }
  admission_.FinishRequest();
  {
    // Notify while still holding mu_: the moment Shutdown can observe
    // active_requests_ == 0 the service may be destroyed, so this must be
    // the coordinator's last touch of any service member.
    std::lock_guard<std::mutex> lock(mu_);
    --active_requests_;
    drained_cv_.notify_all();
  }

  // Fulfilling the ticket is the coordinator's very last act: the client
  // may destroy the ticket (joining this thread) the moment done_ flips.
  {
    std::lock_guard<std::mutex> lock(ticket->mu_);
    ticket->response_ = std::move(response);
    ticket->done_ = true;
  }
  ticket->cv_.notify_all();
}

void PublishingService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cancel_.Cancel();
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [&] { return active_requests_ == 0; });
  }
  pool_.Shutdown();
}

std::map<std::string, BreakerCounters> PublishingService::breaker_snapshot()
    const {
  return breakers_.Snapshot();
}

ServiceMetrics PublishingService::metrics() const {
  ServiceMetrics snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = counters_;
  }
  snapshot.admission = admission_.metrics();
  snapshot.breaker_fast_fails = breakers_.TotalFastFails();
  snapshot.breaker_trips = breakers_.TotalTrips();
  return snapshot;
}

}  // namespace silkroute::service
