#include "service/admission.h"

#include <algorithm>
#include <string>

namespace silkroute::service {

Status AdmissionController::AdmitRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  ++metrics_.submitted;
  if (metrics_.pending_requests >= options_.max_pending_requests) {
    ++metrics_.shed_requests;
    return Status::ResourceExhausted(
        "request queue full (" +
        std::to_string(options_.max_pending_requests) +
        " pending requests); shedding");
  }
  ++metrics_.admitted;
  ++metrics_.pending_requests;
  metrics_.peak_pending_requests =
      std::max(metrics_.peak_pending_requests, metrics_.pending_requests);
  return Status::OK();
}

void AdmissionController::FinishRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_.pending_requests > 0) --metrics_.pending_requests;
}

Status AdmissionController::AdmitQueries(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_.in_flight_queries + n > options_.max_in_flight_queries) {
    ++metrics_.shed_queries;
    return Status::ResourceExhausted(
        "in-flight query budget full (" +
        std::to_string(metrics_.in_flight_queries) + " in flight + " +
        std::to_string(n) + " requested > " +
        std::to_string(options_.max_in_flight_queries) + "); shedding");
  }
  metrics_.in_flight_queries += n;
  metrics_.peak_in_flight_queries =
      std::max(metrics_.peak_in_flight_queries, metrics_.in_flight_queries);
  return Status::OK();
}

void AdmissionController::ForceAdmitQueries(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.in_flight_queries += n;
  metrics_.peak_in_flight_queries =
      std::max(metrics_.peak_in_flight_queries, metrics_.in_flight_queries);
}

void AdmissionController::FinishQuery() {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_.in_flight_queries > 0) --metrics_.in_flight_queries;
}

Status AdmissionController::ReserveBytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_.buffered_bytes + bytes > options_.max_buffered_bytes) {
    ++metrics_.shed_memory;
    return Status::ResourceExhausted(
        "buffered-tuple budget full (" +
        std::to_string(metrics_.buffered_bytes) + " buffered + " +
        std::to_string(bytes) + " requested > " +
        std::to_string(options_.max_buffered_bytes) + " bytes); shedding");
  }
  metrics_.buffered_bytes += bytes;
  metrics_.peak_buffered_bytes =
      std::max(metrics_.peak_buffered_bytes, metrics_.buffered_bytes);
  return Status::OK();
}

void AdmissionController::ReleaseBytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.buffered_bytes -= std::min(metrics_.buffered_bytes, bytes);
}

AdmissionMetrics AdmissionController::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

}  // namespace silkroute::service
