#include "service/admission.h"

#include <algorithm>
#include <string>

namespace silkroute::service {

AdmissionController::AdmissionController(AdmissionOptions options,
                                         obs::MetricsRegistry* metrics)
    : options_(options) {
  if (metrics != nullptr) {
    m_submitted_ = metrics->counter("silkroute_admission_submitted_total");
    m_admitted_ = metrics->counter("silkroute_admission_admitted_total");
    m_shed_requests_ =
        metrics->counter("silkroute_admission_shed_requests_total");
    m_shed_queries_ =
        metrics->counter("silkroute_admission_shed_queries_total");
    m_shed_memory_ = metrics->counter("silkroute_admission_shed_memory_total");
    m_pending_ = metrics->gauge("silkroute_admission_pending_requests");
    m_in_flight_ = metrics->gauge("silkroute_admission_in_flight_queries");
    m_buffered_ = metrics->gauge("silkroute_admission_buffered_bytes");
  }
}

Status AdmissionController::AdmitRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  ++metrics_.submitted;
  if (m_submitted_ != nullptr) m_submitted_->Add();
  if (metrics_.pending_requests >= options_.max_pending_requests) {
    ++metrics_.shed_requests;
    if (m_shed_requests_ != nullptr) m_shed_requests_->Add();
    return Status::ResourceExhausted(
        "request queue full (" +
        std::to_string(options_.max_pending_requests) +
        " pending requests); shedding");
  }
  ++metrics_.admitted;
  ++metrics_.pending_requests;
  metrics_.peak_pending_requests =
      std::max(metrics_.peak_pending_requests, metrics_.pending_requests);
  if (m_admitted_ != nullptr) {
    m_admitted_->Add();
    m_pending_->Set(static_cast<int64_t>(metrics_.pending_requests));
  }
  return Status::OK();
}

void AdmissionController::FinishRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_.pending_requests > 0) --metrics_.pending_requests;
  if (m_pending_ != nullptr) {
    m_pending_->Set(static_cast<int64_t>(metrics_.pending_requests));
  }
}

Status AdmissionController::AdmitQueries(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_.in_flight_queries + n > options_.max_in_flight_queries) {
    ++metrics_.shed_queries;
    if (m_shed_queries_ != nullptr) m_shed_queries_->Add();
    return Status::ResourceExhausted(
        "in-flight query budget full (" +
        std::to_string(metrics_.in_flight_queries) + " in flight + " +
        std::to_string(n) + " requested > " +
        std::to_string(options_.max_in_flight_queries) + "); shedding");
  }
  metrics_.in_flight_queries += n;
  metrics_.peak_in_flight_queries =
      std::max(metrics_.peak_in_flight_queries, metrics_.in_flight_queries);
  if (m_in_flight_ != nullptr) {
    m_in_flight_->Set(static_cast<int64_t>(metrics_.in_flight_queries));
  }
  return Status::OK();
}

void AdmissionController::ForceAdmitQueries(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.in_flight_queries += n;
  metrics_.peak_in_flight_queries =
      std::max(metrics_.peak_in_flight_queries, metrics_.in_flight_queries);
  if (m_in_flight_ != nullptr) {
    m_in_flight_->Set(static_cast<int64_t>(metrics_.in_flight_queries));
  }
}

void AdmissionController::FinishQuery() {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_.in_flight_queries > 0) --metrics_.in_flight_queries;
  if (m_in_flight_ != nullptr) {
    m_in_flight_->Set(static_cast<int64_t>(metrics_.in_flight_queries));
  }
}

Status AdmissionController::ReserveBytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_.buffered_bytes + bytes > options_.max_buffered_bytes) {
    ++metrics_.shed_memory;
    if (m_shed_memory_ != nullptr) m_shed_memory_->Add();
    return Status::ResourceExhausted(
        "buffered-tuple budget full (" +
        std::to_string(metrics_.buffered_bytes) + " buffered + " +
        std::to_string(bytes) + " requested > " +
        std::to_string(options_.max_buffered_bytes) + " bytes); shedding");
  }
  metrics_.buffered_bytes += bytes;
  metrics_.peak_buffered_bytes =
      std::max(metrics_.peak_buffered_bytes, metrics_.buffered_bytes);
  if (m_buffered_ != nullptr) {
    m_buffered_->Set(static_cast<int64_t>(metrics_.buffered_bytes));
  }
  return Status::OK();
}

void AdmissionController::ReleaseBytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.buffered_bytes -= std::min(metrics_.buffered_bytes, bytes);
  if (m_buffered_ != nullptr) {
    m_buffered_->Set(static_cast<int64_t>(metrics_.buffered_bytes));
  }
}

AdmissionMetrics AdmissionController::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

}  // namespace silkroute::service
