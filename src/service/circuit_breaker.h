// Circuit breakers for the publishing service, one per backend table (the
// unit the paper's middle-ware queries; a sick table poisons every
// component query that joins it). The classic three-state machine:
//
//             failure_threshold consecutive failures
//   CLOSED ────────────────────────────────────────────► OPEN
//     ▲                                                   │
//     │ half_open_successes probe successes               │ open_ms elapsed
//     │                                                   ▼
//     └────────────────────────────────────────────── HALF-OPEN
//                        probe failure ──► OPEN (re-trip)
//
// While OPEN, Admit() fast-fails without touching the source, so plans
// degrade around the sick table immediately instead of burning their retry
// budget on queries that cannot succeed. HALF-OPEN admits a single probe
// query at a time; its outcome decides between closing and re-tripping.
//
// Outcomes are reported by the service from the ResilientExecutor's
// ExecutionReport: only *source* failures (kUnavailable, kTimeout) count
// against a breaker — a permanent kInternal is a bug in the generated SQL,
// not a sick backend.
//
// All members are thread-safe; the registry creates breakers on demand.
#ifndef SILKROUTE_SERVICE_CIRCUIT_BREAKER_H_
#define SILKROUTE_SERVICE_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/random.h"
#include "obs/metrics.h"

namespace silkroute::service {

struct CircuitBreakerOptions {
  /// Consecutive source failures that trip a closed breaker open.
  int failure_threshold = 3;
  /// Time a tripped breaker stays open before admitting a probe.
  double open_ms = 100;
  /// Extra uniform-random cool-down in [0, open_jitter_ms) added to every
  /// trip, drawn from a per-breaker RNG seeded by the breaker key. When
  /// one incident ejects many replicas at once, jitter desynchronizes
  /// their half-open probes so a recovering server sees a trickle instead
  /// of a synchronized probe herd. 0 disables (fully deterministic
  /// cool-downs, the pre-jitter behavior).
  double open_jitter_ms = 0;
  /// Base seed for the per-breaker jitter RNG (mixed with the key hash).
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
  /// Consecutive probe successes that close a half-open breaker.
  int half_open_successes = 1;
  /// Injectable monotonic clock in milliseconds (tests); null = steady_clock.
  std::function<double()> now_ms;
  /// Mirrors every breaker's counters and state into per-key labeled
  /// series (silkroute_breaker_*_total{<label_key>="..."}), superseding
  /// bespoke map snapshots as the export path. Borrowed; null = disabled.
  obs::MetricsRegistry* metrics = nullptr;
  /// Metric label naming the breaker dimension: "table" for the service's
  /// per-table registry, "backend" for the federation's per-backend one.
  std::string label_key = "table";
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateToString(BreakerState state);

/// A point-in-time snapshot of one breaker's counters.
struct BreakerCounters {
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  size_t trips = 0;          // transitions to OPEN (including re-trips)
  size_t fast_fails = 0;     // queries rejected without execution
  size_t probes = 0;         // half-open probe queries admitted
  size_t successes = 0;      // recorded successful executions
  size_t failures = 0;       // recorded failed executions
};

class CircuitBreaker {
 public:
  /// What Admit decided for this caller; pass it back to RecordSuccess /
  /// RecordFailure (or AbandonProbe) so probe bookkeeping stays balanced.
  enum class Decision { kAllow, kProbe, kFastFail };

  CircuitBreaker(std::string key, CircuitBreakerOptions options);

  /// Asks to execute one query against this breaker's table. kFastFail
  /// callers must not execute and must not record an outcome.
  Decision Admit();

  void RecordSuccess(Decision admitted);
  void RecordFailure(Decision admitted);
  /// Releases a kProbe admission whose query was never executed (e.g. a
  /// sibling table's breaker fast-failed the same component query).
  void AbandonProbe(Decision admitted);

  const std::string& key() const { return key_; }
  BreakerState state() const;
  BreakerCounters counters() const;

  /// True when Admit() would return kFastFail right now: open with the
  /// cool-down still running, or half-open with the probe slot taken.
  /// Side-effect-free (no counters, no state change) — the health-check
  /// path routers poll without consuming a probe admission.
  bool WouldFastFail() const;

 private:
  double NowMs() const;
  void TripOpenLocked();

  const std::string key_;
  const CircuitBreakerOptions options_;
  Random jitter_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  bool probe_in_flight_ = false;
  double open_until_ms_ = 0;
  BreakerCounters counters_;

  // Live mirrors in the unified metrics registry (null when disabled),
  // resolved once at construction.
  obs::Counter* m_trips_ = nullptr;
  obs::Counter* m_fast_fails_ = nullptr;
  obs::Counter* m_probes_ = nullptr;
  obs::Counter* m_successes_ = nullptr;
  obs::Counter* m_failures_ = nullptr;
  obs::Gauge* m_state_ = nullptr;  // 0 closed, 1 open, 2 half-open
};

/// Creates and owns one breaker per key (table name). Thread-safe.
class CircuitBreakerRegistry {
 public:
  explicit CircuitBreakerRegistry(CircuitBreakerOptions options)
      : options_(std::move(options)) {}

  /// The breaker for `key`, created closed on first use. The pointer stays
  /// valid for the registry's lifetime.
  CircuitBreaker* Get(const std::string& key);

  /// Counters of every breaker, keyed by table.
  std::map<std::string, BreakerCounters> Snapshot() const;

  /// Sum of fast_fails across all breakers.
  size_t TotalFastFails() const;
  /// Sum of trips across all breakers.
  size_t TotalTrips() const;

 private:
  const CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

}  // namespace silkroute::service

#endif  // SILKROUTE_SERVICE_CIRCUIT_BREAKER_H_
