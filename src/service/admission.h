// Admission control for the publishing service: overload is shed at the
// door with kResourceExhausted instead of queuing unboundedly (fail fast;
// a client retry later beats a request parked forever). Three budgets:
//
//  - request slots: admitted-but-unfinished publish requests;
//  - in-flight query slots: component queries spawned across all plans
//    (degradation splits *replace* a failed query, so they force-admit
//    rather than shed a plan the service already accepted);
//  - buffered bytes: wire bytes of materialized component streams held for
//    merging — the constant-memory tagger bounds per-request merge state,
//    this bounds the buffered inputs across requests.
//
// All members are thread-safe.
#ifndef SILKROUTE_SERVICE_ADMISSION_H_
#define SILKROUTE_SERVICE_ADMISSION_H_

#include <cstddef>
#include <mutex>

#include "common/status.h"
#include "obs/metrics.h"

namespace silkroute::service {

struct AdmissionOptions {
  /// Admitted publish requests not yet finished (the "request queue").
  size_t max_pending_requests = 32;
  /// Component queries admitted across all in-flight plans.
  size_t max_in_flight_queries = 256;
  /// Wire bytes of buffered component streams across all requests.
  size_t max_buffered_bytes = 256ull << 20;  // 256 MiB
};

struct AdmissionMetrics {
  size_t submitted = 0;        // AdmitRequest calls
  size_t admitted = 0;         // requests granted a slot
  size_t shed_requests = 0;    // shed: request slots full
  size_t shed_queries = 0;     // shed: query budget full at plan fan-out
  size_t shed_memory = 0;      // shed: buffered-byte budget full
  size_t pending_requests = 0; // current
  size_t in_flight_queries = 0;  // current
  size_t buffered_bytes = 0;     // current
  size_t peak_pending_requests = 0;
  size_t peak_in_flight_queries = 0;
  size_t peak_buffered_bytes = 0;
};

class AdmissionController {
 public:
  /// `metrics` (borrowed, may be null) live-mirrors the admission counters
  /// into silkroute_admission_* registry series, superseding polling of the
  /// AdmissionMetrics struct for export.
  explicit AdmissionController(AdmissionOptions options,
                               obs::MetricsRegistry* metrics = nullptr);

  /// Claims a request slot; kResourceExhausted when the queue bound is hit.
  Status AdmitRequest();
  void FinishRequest();

  /// Claims `n` query slots for a plan's initial fan-out (all or nothing).
  Status AdmitQueries(size_t n);
  /// Claims `n` slots unconditionally: degradation replacements for a
  /// query slot the plan already held. May transiently exceed the bound.
  void ForceAdmitQueries(size_t n);
  void FinishQuery();

  /// Reserves buffered-stream bytes; kResourceExhausted over the budget.
  Status ReserveBytes(size_t bytes);
  void ReleaseBytes(size_t bytes);

  AdmissionMetrics metrics() const;

 private:
  const AdmissionOptions options_;
  mutable std::mutex mu_;
  AdmissionMetrics metrics_;

  // Registry mirrors (null when disabled), resolved once at construction.
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_shed_requests_ = nullptr;
  obs::Counter* m_shed_queries_ = nullptr;
  obs::Counter* m_shed_memory_ = nullptr;
  obs::Gauge* m_pending_ = nullptr;
  obs::Gauge* m_in_flight_ = nullptr;
  obs::Gauge* m_buffered_ = nullptr;
};

}  // namespace silkroute::service

#endif  // SILKROUTE_SERVICE_ADMISSION_H_
