// PublishingService: the middle-tier that executes many publish requests
// concurrently over one shared Database while staying robust under load.
// Where the Publisher is a library call, the service is the servable
// layer the paper's architecture implies — many clients, one RDBMS:
//
//  - a bounded WorkerPool runs the component queries of all in-flight
//    plans in parallel; per-plan result slots collect the sorted streams
//    so the constant-memory tagger still merges in plan order and emits
//    XML byte-identical to the single-threaded Publisher;
//  - AdmissionController sheds overload fast with kResourceExhausted
//    (bounded request queue, global in-flight-query and buffered-tuple
//    budgets) instead of queuing unboundedly;
//  - a per-table CircuitBreaker (closed → open → half-open), fed by the
//    ResilientExecutor's outcomes, fast-fails queries against a sick
//    table so plans degrade immediately (SplitAtEdge lattice) without
//    burning retry budget;
//  - end-to-end deadlines: each request's remaining time is forwarded to
//    every component query as its deadline, so a slow first component
//    cannot make later components overshoot the request budget; backoff
//    sleeps that would cross the deadline fail the request at once.
//
// Threading model: Submit spawns one coordinator thread per admitted
// request (bounded by max_pending_requests); coordinators plan the view,
// fan component queries out to the shared pool, wait for the slots to
// fill, and tag. Pool workers never wait on other pool tasks, so the
// service cannot deadlock. Shutdown cancels the shared CancelToken —
// interrupting in-progress backoff sleeps — then drains.
#ifndef SILKROUTE_SERVICE_PUBLISHING_SERVICE_H_
#define SILKROUTE_SERVICE_PUBLISHING_SERVICE_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "engine/executor.h"
#include "engine/resilient_executor.h"
#include "service/admission.h"
#include "service/circuit_breaker.h"
#include "service/worker_pool.h"
#include "silkroute/publisher.h"

namespace silkroute::service {

struct ServiceOptions {
  /// Worker threads executing component queries (across all requests).
  size_t workers = 4;
  AdmissionOptions admission;
  CircuitBreakerOptions breaker;
  /// Retry/backoff template applied to every component query. The
  /// retry_budget meters each request's plan (as in the Publisher).
  engine::RetryOptions retry;
  /// Deadline applied to requests that do not carry one (0 = none).
  double default_deadline_ms = 0;
  /// Shared connection to the RDBMS for all workers (borrowed); must be
  /// thread-safe through ExecuteSqlWithDeadline (DatabaseExecutor and
  /// FaultInjectingExecutor are). null = the service's own
  /// DatabaseExecutor over `db`.
  engine::SqlExecutor* executor = nullptr;
  /// Intra-query parallelism of the service's own DatabaseExecutor: each
  /// component query fans its scans/joins/sorts out as morsels over an
  /// engine-owned pool (DESIGN.md §11; the engine pool is separate from
  /// `workers`, and service workers never block on it). <= 1 = serial.
  /// Ignored when `executor` is supplied.
  int engine_threads = 1;
  /// Shared component-result + document cache (borrowed; null = off).
  /// ResultCache is internally sharded/thread-safe, so all workers across
  /// all concurrent requests hit one instance; invalidation is structural
  /// (table versions inside the keys), so no coordination with writers is
  /// needed (DESIGN.md §15).
  engine::ResultCache* result_cache = nullptr;

  // --- Observability (borrowed; null = disabled, see DESIGN.md §9) ------
  /// Emits one request-rooted span tree per submitted request
  /// (request → plan → component → phase/attempt).
  obs::Tracer* tracer = nullptr;
  /// Unified metrics registry: admission, breaker, pool, and request
  /// series are live-mirrored into it.
  obs::MetricsRegistry* metrics_registry = nullptr;
  /// Observed-cost workload profile (borrowed): pool workers record each
  /// component's query/bind timings into it, the tag phase is apportioned
  /// by row share, and a MeasuredCostOracle built over it feeds measured
  /// costs back into greedy planning (DESIGN.md §14).
  obs::WorkloadProfile* profile = nullptr;
  /// Overrides the synthetic estimator for greedy planning on every
  /// request (e.g. a MeasuredCostOracle). Borrowed; null = synthetic.
  engine::CostOracle* plan_oracle = nullptr;
};

struct ServiceRequest {
  std::string rxl;
  /// Per-request publish options. `executor`, `execution`, and `retry` are
  /// overridden by the service's own execution stack.
  core::PublishOptions options;
  /// End-to-end deadline for this request (0 = service default).
  double deadline_ms = 0;
};

struct ServiceResponse {
  /// Admission or execution outcome. kResourceExhausted = shed.
  Status status;
  /// Valid when status is ok. metrics.timed_out marks a request whose
  /// deadline expired (partial metrics, empty xml — the paper's timeout
  /// reporting).
  core::PublishResult result;
  std::string xml;
  double elapsed_ms = 0;  // Submit -> completion, queueing included
};

struct ServiceMetrics {
  AdmissionMetrics admission;
  size_t completed = 0;  // responses with ok status and a document
  size_t timed_out = 0;  // deadline expiries
  size_t failed = 0;     // non-ok responses past admission
  size_t breaker_fast_fails = 0;
  size_t breaker_trips = 0;
};

/// Handle for one submitted request. Wait() blocks until the response is
/// ready; the destructor waits too, so dropping a ticket is safe.
class PublishTicket {
 public:
  ~PublishTicket();
  PublishTicket(const PublishTicket&) = delete;
  PublishTicket& operator=(const PublishTicket&) = delete;

  /// Blocks until the request finished; idempotent.
  const ServiceResponse& Wait();

 private:
  friend class PublishingService;
  PublishTicket() = default;

  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  ServiceResponse response_;
  std::thread coordinator_;
};

class PublishingService {
 public:
  PublishingService(const Database* db, ServiceOptions options);
  ~PublishingService();

  PublishingService(const PublishingService&) = delete;
  PublishingService& operator=(const PublishingService&) = delete;

  /// Admits and starts one request. Fails fast with kResourceExhausted
  /// when the request queue is full (overload shedding) or kUnavailable
  /// after Shutdown; otherwise returns a ticket to Wait on.
  Result<std::shared_ptr<PublishTicket>> Submit(ServiceRequest request);

  /// Submit + Wait. A shed request yields a response holding the
  /// admission status.
  ServiceResponse Publish(ServiceRequest request);

  /// Submits every request concurrently, then waits for all; responses
  /// are positionally aligned with `requests`.
  std::vector<ServiceResponse> PublishAll(std::vector<ServiceRequest> requests);

  /// Cancels in-flight work (interrupting retry backoffs), waits for all
  /// admitted requests to finish, and joins the pool. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  ServiceMetrics metrics() const;
  /// Legacy per-breaker counter map. The canonical export path is the
  /// unified metrics registry (ServiceOptions::metrics_registry), which the
  /// breakers mirror into live; this copy is for tests and callers that
  /// want the raw struct. Defined out of line so the header stays free of
  /// the map-copy machinery.
  std::map<std::string, BreakerCounters> breaker_snapshot() const;
  core::Publisher* publisher() { return &publisher_; }

 private:
  class PooledExecution;

  void RunRequest(ServiceRequest request, PublishTicket* ticket,
                  obs::SpanHandle request_span);

  const Database* db_;
  const ServiceOptions options_;
  core::Publisher publisher_;
  engine::DatabaseExecutor own_executor_;
  engine::SqlExecutor* executor_;  // options_.executor or &own_executor_
  AdmissionController admission_;
  CircuitBreakerRegistry breakers_;
  WorkerPool pool_;
  CancelToken cancel_;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  size_t active_requests_ = 0;
  bool shutdown_ = false;
  ServiceMetrics counters_;  // admission part filled on read
};

}  // namespace silkroute::service

#endif  // SILKROUTE_SERVICE_PUBLISHING_SERVICE_H_
