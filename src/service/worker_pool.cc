#include "service/worker_pool.h"

#include <algorithm>
#include <utility>

namespace silkroute::service {

WorkerPool::WorkerPool(size_t num_threads, obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    m_tasks_ = metrics->counter("silkroute_pool_tasks_total");
    m_queue_wait_us_ = metrics->histogram("silkroute_pool_queue_wait_us");
    m_queue_depth_ = metrics->gauge("silkroute_pool_queue_depth");
  }
  num_threads = std::max<size_t>(num_threads, 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

bool WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(Entry{std::move(task), std::chrono::steady_clock::now()});
    if (m_queue_depth_ != nullptr) {
      m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.notify_one();
  return true;
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  // The join mutex makes Shutdown idempotent and safe to race (service
  // Shutdown vs. destructor): exactly one caller joins each thread.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t WorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      entry = std::move(queue_.front());
      queue_.pop_front();
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    if (m_tasks_ != nullptr) {
      m_tasks_->Add();
      m_queue_wait_us_->RecordMicros(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - entry.enqueued)
              .count());
    }
    entry.task();
  }
}

}  // namespace silkroute::service
