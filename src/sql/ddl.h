// DDL execution: CREATE TABLE statements with column types, nullability,
// primary keys, and foreign keys — enough to describe a source database to
// the middle-ware from a schema file.
//
//   CREATE TABLE Supplier (
//     suppkey   BIGINT PRIMARY KEY,
//     name      VARCHAR(25),
//     addr      VARCHAR(40),
//     nationkey BIGINT,
//     FOREIGN KEY (nationkey) REFERENCES Nation(nationkey)
//   );
//
// Types map onto the engine's three storage classes: INT / INTEGER /
// BIGINT / SMALLINT -> INT64; DOUBLE [PRECISION] / FLOAT / REAL / DECIMAL /
// NUMERIC -> DOUBLE; VARCHAR / CHAR / TEXT / STRING / DATE -> STRING.
// Columns are NOT NULL by default; write NULL to permit nulls.
#ifndef SILKROUTE_SQL_DDL_H_
#define SILKROUTE_SQL_DDL_H_

#include <string_view>

#include "common/result.h"
#include "relational/database.h"

namespace silkroute::sql {

/// Executes every CREATE TABLE statement in `ddl`. Returns the number of
/// tables created. Statements may be separated by semicolons.
Result<size_t> ExecuteDdl(std::string_view ddl, Database* db);

}  // namespace silkroute::sql

#endif  // SILKROUTE_SQL_DDL_H_
