#include "sql/ast.h"

#include "common/string_util.h"

namespace silkroute::sql {

const char* BinaryOpToSql(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

namespace {
// Precedence for parenthesization when printing: higher binds tighter.
int Precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return 1;
    case BinaryOp::kAnd:
      return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return 5;
  }
  return 0;
}

std::string ChildSql(const Expr& child, int parent_prec) {
  if (child.kind() == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(child);
    if (Precedence(b.op()) < parent_prec) {
      return "(" + child.ToSql() + ")";
    }
  }
  return child.ToSql();
}
}  // namespace

std::string BinaryExpr::ToSql() const {
  int prec = Precedence(op_);
  return ChildSql(*left_, prec) + " " + BinaryOpToSql(op_) + " " +
         ChildSql(*right_, prec + 1);
}

ExprPtr Col(std::string qualifier, std::string name) {
  return std::make_unique<ColumnRefExpr>(std::move(qualifier),
                                         std::move(name));
}
ExprPtr Col(std::string name) {
  return std::make_unique<ColumnRefExpr>("", std::move(name));
}
ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr IntLit(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr StrLit(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr NullLit() { return Lit(Value::Null()); }
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(BinaryOp::kEq, std::move(l),
                                      std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(l),
                                      std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(l),
                                      std::move(r));
}

ExprPtr AndAll(std::vector<ExprPtr> exprs) {
  ExprPtr out;
  for (auto& e : exprs) {
    out = out ? And(std::move(out), std::move(e)) : std::move(e);
  }
  return out;
}

ExprPtr OrAll(std::vector<ExprPtr> exprs) {
  ExprPtr out;
  for (auto& e : exprs) {
    out = out ? Or(std::move(out), std::move(e)) : std::move(e);
  }
  return out;
}

void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind() == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op() == BinaryOp::kAnd) {
      CollectConjuncts(b.left(), out);
      CollectConjuncts(b.right(), out);
      return;
    }
  }
  out->push_back(&e);
}

void CollectDisjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind() == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op() == BinaryOp::kOr) {
      CollectDisjuncts(b.left(), out);
      CollectDisjuncts(b.right(), out);
      return;
    }
  }
  out->push_back(&e);
}

DerivedTableRef::DerivedTableRef(QueryPtr query, std::string alias)
    : query_(std::move(query)), alias_(std::move(alias)) {}

DerivedTableRef::~DerivedTableRef() = default;

std::string DerivedTableRef::ToSql() const {
  return "(" + query_->ToSql() + ") as " + alias_;
}

TableRefPtr DerivedTableRef::Clone() const {
  return std::make_unique<DerivedTableRef>(query_->CloneQuery(), alias_);
}

std::string JoinRef::ToSql() const {
  std::string left = left_->ToSql();
  std::string right = right_->ToSql();
  // Parenthesize nested joins / derived tables on the right for readability.
  if (right_->kind() == TableRef::Kind::kJoin) right = "(" + right + ")";
  const char* kw =
      type_ == JoinType::kInner ? " join " : " left outer join ";
  return left + kw + right + " on " + on_->ToSql();
}

SelectCore SelectCore::Clone() const {
  SelectCore out;
  out.distinct = distinct;
  out.select_star = select_star;
  out.select_list.reserve(select_list.size());
  for (const auto& item : select_list) out.select_list.push_back(item.Clone());
  out.from.reserve(from.size());
  for (const auto& t : from) out.from.push_back(t->Clone());
  if (where) out.where = where->Clone();
  return out;
}

std::string SelectCore::ToSql() const {
  std::string out = distinct ? "select distinct " : "select ";
  if (select_star) {
    out += "*";
  } else {
    std::vector<std::string> items;
    items.reserve(select_list.size());
    for (const auto& item : select_list) items.push_back(item.ToSql());
    out += Join(items, ", ");
  }
  if (!from.empty()) {
    out += " from ";
    std::vector<std::string> tables;
    tables.reserve(from.size());
    for (const auto& t : from) tables.push_back(t->ToSql());
    out += Join(tables, ", ");
  }
  if (where) {
    out += " where " + where->ToSql();
  }
  return out;
}

QueryPtr Query::CloneQuery() const {
  auto out = std::make_unique<Query>();
  out->cores.reserve(cores.size());
  for (const auto& c : cores) out->cores.push_back(c.Clone());
  out->order_by.reserve(order_by.size());
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  return out;
}

std::string Query::ToSql() const {
  std::vector<std::string> parts;
  parts.reserve(cores.size());
  for (const auto& c : cores) parts.push_back(c.ToSql());
  std::string out = cores.size() == 1
                        ? parts[0]
                        : "(" + Join(parts, ") union all (") + ")";
  if (!order_by.empty()) {
    std::vector<std::string> keys;
    keys.reserve(order_by.size());
    for (const auto& o : order_by) {
      keys.push_back(o.expr->ToSql() + (o.ascending ? "" : " desc"));
    }
    out += " order by " + Join(keys, ", ");
  }
  return out;
}

}  // namespace silkroute::sql
