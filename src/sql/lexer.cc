#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace silkroute::sql {

bool IsSqlKeyword(std::string_view w) {
  static const char* const kKeywords[] = {
      "select", "from", "where",  "and",   "or",    "not",  "as",    "on",
      "join",   "left", "outer",  "inner", "union", "all",  "order", "by",
      "asc",    "desc", "null",   "is",    "distinct",
  };
  for (const char* kw : kKeywords) {
    if (w == kw) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // `--` line comments (standard SQL).
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word(input.substr(start, i - start));
      std::string lower = ToLower(word);
      if (IsSqlKeyword(lower)) {
        tokens.push_back({TokenType::kKeyword, std::move(lower), start});
      } else {
        tokens.push_back({TokenType::kIdentifier, std::move(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        std::string(input.substr(start, i - start)), start});
      continue;
    }
    if (c == '\'') {
      std::string contents;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            contents.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        contents.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenType::kString, std::move(contents), start});
      continue;
    }
    // Two-character symbols first.
    if (i + 1 < n) {
      std::string_view two = input.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
        tokens.push_back(
            {TokenType::kSymbol, two == "!=" ? "<>" : std::string(two), start});
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '=':
      case '<':
      case '>':
      case '(':
      case ')':
      case ',':
      case '.':
      case '+':
      case '-':
      case ';':
      case '*':
      case '/':
        tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
        ++i;
        break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace silkroute::sql
