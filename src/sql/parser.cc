#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"

namespace silkroute::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryPtr> ParseQueryTop() {
    SILK_ASSIGN_OR_RETURN(QueryPtr q, ParseQueryBody());
    if (!Peek().IsKeyword("") && Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing token '" + Peek().text + "'");
    }
    return q;
  }

  Result<ExprPtr> ParseExprTop() {
    SILK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing token '" + Peek().text + "'");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(std::string_view kw) {
    if (!Match(kw)) {
      return Status::ParseError("expected '" + std::string(kw) + "', got '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!MatchSymbol(s)) {
      return Status::ParseError("expected '" + std::string(s) + "', got '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status Err(std::string msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset));
  }

  /// True if, skipping leading '(' tokens from `ahead`, the next token is the
  /// SELECT keyword — i.e. a parenthesized group is a query, not a join.
  bool LooksLikeQuery(size_t ahead) const {
    size_t i = ahead;
    while (Peek(i).IsSymbol("(")) ++i;
    return Peek(i).IsKeyword("select");
  }

  Result<QueryPtr> ParseQueryBody() {
    auto query = std::make_unique<Query>();
    SILK_RETURN_IF_ERROR(ParseQueryTerm(query.get()));
    while (Match("union")) {
      Match("all");  // UNION and UNION ALL both accepted (streams are keyed)
      SILK_RETURN_IF_ERROR(ParseQueryTerm(query.get()));
    }
    if (Match("order")) {
      SILK_RETURN_IF_ERROR(Expect("by"));
      do {
        SILK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        bool asc = true;
        if (Match("desc")) {
          asc = false;
        } else {
          Match("asc");
        }
        query->order_by.emplace_back(std::move(e), asc);
      } while (MatchSymbol(","));
    }
    return query;
  }

  /// Parses one UNION operand (a select core, possibly parenthesized, or a
  /// parenthesized compound query) and appends its cores to `out`.
  Status ParseQueryTerm(Query* out) {
    if (Peek().IsSymbol("(") && LooksLikeQuery(1)) {
      ++pos_;  // consume '('
      SILK_ASSIGN_OR_RETURN(QueryPtr inner, ParseQueryBody());
      SILK_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (!inner->order_by.empty()) {
        return Status::ParseError(
            "ORDER BY not allowed in parenthesized UNION operand");
      }
      for (auto& core : inner->cores) out->cores.push_back(std::move(core));
      return Status::OK();
    }
    SILK_ASSIGN_OR_RETURN(SelectCore core, ParseSelectCore());
    out->cores.push_back(std::move(core));
    return Status::OK();
  }

  Result<SelectCore> ParseSelectCore() {
    SILK_RETURN_IF_ERROR(Expect("select"));
    SelectCore core;
    core.distinct = Match("distinct");
    if (MatchSymbol("*")) {
      core.select_star = true;
    } else {
      do {
        SILK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        std::string alias;
        if (Match("as")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Err("expected alias after 'as'");
          }
          alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier) {
          // Implicit alias: `expr name`.
          alias = Advance().text;
        }
        core.select_list.emplace_back(std::move(e), std::move(alias));
      } while (MatchSymbol(","));
    }
    if (Match("from")) {
      do {
        SILK_ASSIGN_OR_RETURN(TableRefPtr t, ParseTableRef());
        core.from.push_back(std::move(t));
      } while (MatchSymbol(","));
    }
    if (Match("where")) {
      SILK_ASSIGN_OR_RETURN(core.where, ParseExpr());
    }
    return core;
  }

  Result<TableRefPtr> ParseTableRef() {
    SILK_ASSIGN_OR_RETURN(TableRefPtr left, ParsePrimaryTableRef());
    while (true) {
      JoinType type;
      if (Peek().IsKeyword("join")) {
        ++pos_;
        type = JoinType::kInner;
      } else if (Peek().IsKeyword("inner") && Peek(1).IsKeyword("join")) {
        pos_ += 2;
        type = JoinType::kInner;
      } else if (Peek().IsKeyword("left")) {
        ++pos_;
        Match("outer");
        SILK_RETURN_IF_ERROR(Expect("join"));
        type = JoinType::kLeftOuter;
      } else {
        break;
      }
      SILK_ASSIGN_OR_RETURN(TableRefPtr right, ParsePrimaryTableRef());
      SILK_RETURN_IF_ERROR(Expect("on"));
      SILK_ASSIGN_OR_RETURN(ExprPtr on, ParseExpr());
      left = std::make_unique<JoinRef>(type, std::move(left), std::move(right),
                                       std::move(on));
    }
    return left;
  }

  Result<TableRefPtr> ParsePrimaryTableRef() {
    if (Peek().IsSymbol("(")) {
      if (LooksLikeQuery(1)) {
        ++pos_;
        SILK_ASSIGN_OR_RETURN(QueryPtr q, ParseQueryBody());
        SILK_RETURN_IF_ERROR(ExpectSymbol(")"));
        std::string alias;
        if (Match("as")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Err("expected alias after 'as'");
          }
          alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier) {
          alias = Advance().text;
        }
        if (alias.empty()) {
          return Err("derived table requires an alias");
        }
        return TableRefPtr(
            std::make_unique<DerivedTableRef>(std::move(q), alias));
      }
      // Parenthesized join tree.
      ++pos_;
      SILK_ASSIGN_OR_RETURN(TableRefPtr inner, ParseTableRef());
      SILK_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (Peek().type != TokenType::kIdentifier) {
      return Err("expected table name, got '" + Peek().text + "'");
    }
    std::string table = Advance().text;
    std::string alias;
    if (Match("as")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected alias after 'as'");
      }
      alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      alias = Advance().text;
    }
    return TableRefPtr(std::make_unique<BaseTableRef>(table, alias));
  }

  // ---- expressions (precedence climbing) ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SILK_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Match("or")) {
      SILK_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    SILK_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Match("and")) {
      SILK_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (Match("not")) {
      SILK_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return ExprPtr(std::make_unique<NotExpr>(std::move(e)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SILK_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    if (Match("is")) {
      bool negated = Match("not");
      SILK_RETURN_IF_ERROR(Expect("null"));
      return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), negated));
    }
    BinaryOp op;
    if (MatchSymbol("=")) {
      op = BinaryOp::kEq;
    } else if (MatchSymbol("<>")) {
      op = BinaryOp::kNe;
    } else if (MatchSymbol("<=")) {
      op = BinaryOp::kLe;
    } else if (MatchSymbol(">=")) {
      op = BinaryOp::kGe;
    } else if (MatchSymbol("<")) {
      op = BinaryOp::kLt;
    } else if (MatchSymbol(">")) {
      op = BinaryOp::kGt;
    } else {
      return left;
    }
    SILK_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return ExprPtr(
        std::make_unique<BinaryExpr>(op, std::move(left), std::move(right)));
  }

  Result<ExprPtr> ParseAdditive() {
    SILK_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (MatchSymbol("+")) {
        op = BinaryOp::kAdd;
      } else if (MatchSymbol("-")) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      SILK_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = std::make_unique<BinaryExpr>(op, std::move(left),
                                          std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    SILK_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (true) {
      BinaryOp op;
      if (MatchSymbol("*")) {
        op = BinaryOp::kMul;
      } else if (MatchSymbol("/")) {
        op = BinaryOp::kDiv;
      } else {
        return left;
      }
      SILK_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = std::make_unique<BinaryExpr>(op, std::move(left),
                                          std::move(right));
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        int64_t v = std::strtoll(Advance().text.c_str(), nullptr, 10);
        return IntLit(v);
      }
      case TokenType::kFloat: {
        double v = std::strtod(Advance().text.c_str(), nullptr);
        return Lit(Value::Double(v));
      }
      case TokenType::kString:
        return StrLit(Advance().text);
      case TokenType::kKeyword:
        if (t.text == "null") {
          ++pos_;
          return NullLit();
        }
        return Err("unexpected keyword '" + t.text + "' in expression");
      case TokenType::kIdentifier: {
        std::string first = Advance().text;
        if (MatchSymbol(".")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Err("expected column name after '.'");
          }
          std::string col = Advance().text;
          return Col(std::move(first), std::move(col));
        }
        return Col(std::move(first));
      }
      case TokenType::kSymbol:
        if (t.text == "(") {
          ++pos_;
          SILK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          SILK_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        if (t.text == "-") {
          ++pos_;
          SILK_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
          return ExprPtr(std::make_unique<BinaryExpr>(
              BinaryOp::kSub, IntLit(0), std::move(e)));
        }
        return Err("unexpected symbol '" + t.text + "' in expression");
      case TokenType::kEnd:
        return Err("unexpected end of input in expression");
    }
    return Err("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryPtr> ParseQuery(std::string_view sql) {
  SILK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseQueryTop();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  SILK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseExprTop();
}

}  // namespace silkroute::sql
