// Recursive-descent parser for the SQL subset (see ast.h).
#ifndef SILKROUTE_SQL_PARSER_H_
#define SILKROUTE_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace silkroute::sql {

/// Parses a complete query (SELECT ... [UNION ALL ...] [ORDER BY ...]).
/// Fails if trailing tokens remain.
Result<QueryPtr> ParseQuery(std::string_view sql);

/// Parses a standalone scalar/boolean expression (used by tests).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace silkroute::sql

#endif  // SILKROUTE_SQL_PARSER_H_
