// SQL tokenizer. Keywords are case-insensitive; identifiers keep their case.
#ifndef SILKROUTE_SQL_LEXER_H_
#define SILKROUTE_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace silkroute::sql {

enum class TokenType {
  kIdentifier,
  kKeyword,   // normalized to lowercase in `text`
  kInteger,
  kFloat,
  kString,    // contents without quotes, '' unescaped
  kSymbol,    // one of: = <> < <= > >= ( ) , . + - * /
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;  // byte offset in the input, for error messages

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// Tokenizes `input`; the final token is always kEnd.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// True if `word` (lowercased) is a reserved SQL keyword of this dialect.
bool IsSqlKeyword(std::string_view lowercased);

}  // namespace silkroute::sql

#endif  // SILKROUTE_SQL_LEXER_H_
