#include "sql/ddl.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace silkroute::sql {

namespace {

class DdlParser {
 public:
  explicit DdlParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<size_t> Run(Database* db) {
    size_t created = 0;
    while (Peek().type != TokenType::kEnd) {
      SILK_RETURN_IF_ERROR(ParseCreateTable(db));
      ++created;
      while (MatchSymbol(";")) {
      }
    }
    return created;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  /// Case-insensitive word match against identifiers AND keywords (the SQL
  /// lexer reserves some DDL words like NOT/NULL).
  bool MatchWord(std::string_view word) {
    const Token& t = Peek();
    if ((t.type == TokenType::kIdentifier || t.type == TokenType::kKeyword) &&
        EqualsIgnoreCase(t.text, word)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectWord(std::string_view word) {
    if (!MatchWord(word)) {
      return Err("expected '" + std::string(word) + "', got '" + Peek().text +
                 "'");
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!MatchSymbol(s)) {
      return Err("expected '" + std::string(s) + "', got '" + Peek().text +
                 "'");
    }
    return Status::OK();
  }
  Status Err(std::string msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset) + " in DDL");
  }

  Result<std::string> ParseName() {
    if (Peek().type != TokenType::kIdentifier) {
      return Err("expected name, got '" + Peek().text + "'");
    }
    return Advance().text;
  }

  Result<std::vector<std::string>> ParseNameList() {
    SILK_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::string> names;
    do {
      SILK_ASSIGN_OR_RETURN(std::string name, ParseName());
      names.push_back(std::move(name));
    } while (MatchSymbol(","));
    SILK_RETURN_IF_ERROR(ExpectSymbol(")"));
    return names;
  }

  Result<DataType> ParseType() {
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier) {
      return Err("expected type name, got '" + t.text + "'");
    }
    std::string type = ToLower(Advance().text);
    DataType out;
    if (type == "int" || type == "integer" || type == "bigint" ||
        type == "smallint") {
      out = DataType::kInt64;
    } else if (type == "double" || type == "float" || type == "real" ||
               type == "decimal" || type == "numeric") {
      out = DataType::kDouble;
      MatchWord("precision");  // DOUBLE PRECISION
    } else if (type == "varchar" || type == "char" || type == "text" ||
               type == "string" || type == "date") {
      out = DataType::kString;
    } else {
      return Err("unknown type '" + type + "'");
    }
    // Optional length/precision suffix: (n) or (p, s).
    if (MatchSymbol("(")) {
      while (Peek().type == TokenType::kInteger || Peek().IsSymbol(",")) {
        ++pos_;
      }
      SILK_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    return out;
  }

  Status ParseCreateTable(Database* db) {
    SILK_RETURN_IF_ERROR(ExpectWord("create"));
    SILK_RETURN_IF_ERROR(ExpectWord("table"));
    SILK_ASSIGN_OR_RETURN(std::string table_name, ParseName());
    SILK_RETURN_IF_ERROR(ExpectSymbol("("));

    std::vector<ColumnDef> columns;
    std::vector<std::string> primary_key;
    std::vector<ForeignKeyDef> foreign_keys;

    do {
      if (MatchWord("primary")) {
        SILK_RETURN_IF_ERROR(ExpectWord("key"));
        SILK_ASSIGN_OR_RETURN(primary_key, ParseNameList());
        continue;
      }
      if (MatchWord("foreign")) {
        SILK_RETURN_IF_ERROR(ExpectWord("key"));
        ForeignKeyDef fk;
        SILK_ASSIGN_OR_RETURN(fk.columns, ParseNameList());
        SILK_RETURN_IF_ERROR(ExpectWord("references"));
        SILK_ASSIGN_OR_RETURN(fk.target_table, ParseName());
        SILK_ASSIGN_OR_RETURN(fk.target_columns, ParseNameList());
        foreign_keys.push_back(std::move(fk));
        continue;
      }
      ColumnDef col;
      SILK_ASSIGN_OR_RETURN(col.name, ParseName());
      SILK_ASSIGN_OR_RETURN(col.type, ParseType());
      col.nullable = false;
      // Column options in any order.
      while (true) {
        if (MatchWord("primary")) {
          SILK_RETURN_IF_ERROR(ExpectWord("key"));
          primary_key.push_back(col.name);
        } else if (MatchWord("not")) {
          SILK_RETURN_IF_ERROR(ExpectWord("null"));
          col.nullable = false;
        } else if (MatchWord("null")) {
          col.nullable = true;
        } else {
          break;
        }
      }
      columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    SILK_RETURN_IF_ERROR(ExpectSymbol(")"));

    TableSchema schema(table_name, std::move(columns));
    if (!primary_key.empty()) {
      SILK_RETURN_IF_ERROR(schema.SetPrimaryKey(std::move(primary_key)));
    }
    for (auto& fk : foreign_keys) {
      SILK_RETURN_IF_ERROR(schema.AddForeignKey(std::move(fk)));
    }
    return db->CreateTable(std::move(schema));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<size_t> ExecuteDdl(std::string_view ddl, Database* db) {
  SILK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(ddl));
  DdlParser parser(std::move(tokens));
  return parser.Run(db);
}

}  // namespace silkroute::sql
