// SQL abstract syntax for the subset SilkRoute emits (paper Sec. 3.4):
// SELECT lists with aliases and literals, comma-separated FROM lists,
// INNER / LEFT OUTER JOIN with arbitrary ON conditions, derived tables,
// UNION ALL, WHERE conjunctions, ORDER BY. Every node can print itself back
// to SQL text (ToSql), which is what the middle-ware ships to the RDBMS.
#ifndef SILKROUTE_SQL_AST_H_
#define SILKROUTE_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/value.h"

namespace silkroute::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

const char* BinaryOpToSql(BinaryOp op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
 public:
  enum class Kind { kColumnRef, kLiteral, kBinary, kNot, kIsNull };

  virtual ~Expr() = default;
  virtual Kind kind() const = 0;
  virtual std::string ToSql() const = 0;
  virtual ExprPtr Clone() const = 0;
};

/// `qualifier.name` or bare `name`.
class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name)
      : qualifier_(std::move(qualifier)), name_(std::move(name)) {}

  Kind kind() const override { return Kind::kColumnRef; }
  const std::string& qualifier() const { return qualifier_; }  // may be empty
  const std::string& name() const { return name_; }
  std::string ToSql() const override {
    return qualifier_.empty() ? name_ : qualifier_ + "." + name_;
  }
  ExprPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(qualifier_, name_);
  }

 private:
  std::string qualifier_;
  std::string name_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}

  Kind kind() const override { return Kind::kLiteral; }
  const Value& value() const { return value_; }
  std::string ToSql() const override { return value_.ToString(); }
  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }

 private:
  Value value_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Kind kind() const override { return Kind::kBinary; }
  BinaryOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }
  std::string ToSql() const override;
  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op_, left_->Clone(), right_->Clone());
  }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}

  Kind kind() const override { return Kind::kNot; }
  const Expr& operand() const { return *operand_; }
  std::string ToSql() const override {
    return "not (" + operand_->ToSql() + ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<NotExpr>(operand_->Clone());
  }

 private:
  ExprPtr operand_;
};

/// `expr IS [NOT] NULL`.
class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}

  Kind kind() const override { return Kind::kIsNull; }
  const Expr& operand() const { return *operand_; }
  bool negated() const { return negated_; }
  std::string ToSql() const override {
    return operand_->ToSql() + (negated_ ? " is not null" : " is null");
  }
  ExprPtr Clone() const override {
    return std::make_unique<IsNullExpr>(operand_->Clone(), negated_);
  }

 private:
  ExprPtr operand_;
  bool negated_;
};

// Convenience constructors used throughout the SQL generator.
ExprPtr Col(std::string qualifier, std::string name);
ExprPtr Col(std::string name);
ExprPtr Lit(Value v);
ExprPtr IntLit(int64_t v);
ExprPtr StrLit(std::string v);
ExprPtr NullLit();
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
/// AND-combines a vector (empty -> nullptr, meaning "true").
ExprPtr AndAll(std::vector<ExprPtr> exprs);
/// OR-combines a vector (empty -> nullptr).
ExprPtr OrAll(std::vector<ExprPtr> exprs);

/// Flattens nested ANDs into conjuncts.
void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out);
/// Flattens nested ORs into disjuncts.
void CollectDisjuncts(const Expr& e, std::vector<const Expr*>* out);

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // may be empty

  SelectItem() = default;
  SelectItem(ExprPtr e, std::string a) : expr(std::move(e)), alias(std::move(a)) {}
  SelectItem Clone() const {
    return SelectItem(expr->Clone(), alias);
  }
  std::string ToSql() const {
    return alias.empty() ? expr->ToSql() : expr->ToSql() + " as " + alias;
  }
};

class Query;
using QueryPtr = std::unique_ptr<Query>;

enum class JoinType { kInner, kLeftOuter };

class TableRef;
using TableRefPtr = std::unique_ptr<TableRef>;

class TableRef {
 public:
  enum class Kind { kBaseTable, kDerivedTable, kJoin };
  virtual ~TableRef() = default;
  virtual Kind kind() const = 0;
  virtual std::string ToSql() const = 0;
  virtual TableRefPtr Clone() const = 0;
};

class BaseTableRef final : public TableRef {
 public:
  BaseTableRef(std::string table, std::string alias)
      : table_(std::move(table)), alias_(std::move(alias)) {}

  Kind kind() const override { return Kind::kBaseTable; }
  const std::string& table() const { return table_; }
  const std::string& alias() const { return alias_; }  // may be empty
  /// The name the table is referred to by in expressions.
  const std::string& binding_name() const {
    return alias_.empty() ? table_ : alias_;
  }
  std::string ToSql() const override {
    return alias_.empty() ? table_ : table_ + " " + alias_;
  }
  TableRefPtr Clone() const override {
    return std::make_unique<BaseTableRef>(table_, alias_);
  }

 private:
  std::string table_;
  std::string alias_;
};

class DerivedTableRef final : public TableRef {
 public:
  DerivedTableRef(QueryPtr query, std::string alias);
  ~DerivedTableRef() override;

  Kind kind() const override { return Kind::kDerivedTable; }
  const Query& query() const { return *query_; }
  const std::string& alias() const { return alias_; }
  std::string ToSql() const override;
  TableRefPtr Clone() const override;

 private:
  QueryPtr query_;
  std::string alias_;
};

class JoinRef final : public TableRef {
 public:
  JoinRef(JoinType type, TableRefPtr left, TableRefPtr right, ExprPtr on)
      : type_(type),
        left_(std::move(left)),
        right_(std::move(right)),
        on_(std::move(on)) {}

  Kind kind() const override { return Kind::kJoin; }
  JoinType join_type() const { return type_; }
  const TableRef& left() const { return *left_; }
  const TableRef& right() const { return *right_; }
  const Expr& on() const { return *on_; }
  std::string ToSql() const override;
  TableRefPtr Clone() const override {
    return std::make_unique<JoinRef>(type_, left_->Clone(), right_->Clone(),
                                     on_->Clone());
  }

 private:
  JoinType type_;
  TableRefPtr left_;
  TableRefPtr right_;
  ExprPtr on_;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;

  OrderItem() = default;
  OrderItem(ExprPtr e, bool asc) : expr(std::move(e)), ascending(asc) {}
  OrderItem Clone() const { return OrderItem(expr->Clone(), ascending); }
};

/// One SELECT core (no set operations, no ORDER BY).
struct SelectCore {
  bool distinct = false;
  bool select_star = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRefPtr> from;  // comma-separated; each may be a join tree
  ExprPtr where;                  // may be null

  SelectCore() = default;
  SelectCore(SelectCore&&) = default;
  SelectCore& operator=(SelectCore&&) = default;
  SelectCore Clone() const;
  std::string ToSql() const;
};

/// A full query: one or more SELECT cores combined with UNION ALL, plus an
/// optional trailing ORDER BY. (SilkRoute's outer unions pad each branch
/// with NULL columns so plain UNION ALL implements them.)
class Query {
 public:
  Query() = default;
  Query(Query&&) = default;
  Query& operator=(Query&&) = default;

  std::vector<SelectCore> cores;
  std::vector<OrderItem> order_by;

  QueryPtr CloneQuery() const;
  std::string ToSql() const;
};

}  // namespace silkroute::sql

#endif  // SILKROUTE_SQL_AST_H_
