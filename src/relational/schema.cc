#include "relational/schema.h"

#include <algorithm>

#include "common/string_util.h"

namespace silkroute {

std::optional<size_t> TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> TableSchema::ColumnIndex(const std::string& name) const {
  auto idx = FindColumn(name);
  if (!idx) {
    return Status::NotFound("no column '" + name + "' in table '" + name_ +
                            "'");
  }
  return *idx;
}

Status TableSchema::SetPrimaryKey(std::vector<std::string> key_columns) {
  for (const auto& c : key_columns) {
    if (!HasColumn(c)) {
      return Status::InvalidArgument("primary key column '" + c +
                                     "' not in table '" + name_ + "'");
    }
  }
  primary_key_ = std::move(key_columns);
  return Status::OK();
}

Status TableSchema::AddForeignKey(ForeignKeyDef fk) {
  if (fk.columns.size() != fk.target_columns.size()) {
    return Status::InvalidArgument(
        "foreign key column count mismatch on table '" + name_ + "'");
  }
  for (const auto& c : fk.columns) {
    if (!HasColumn(c)) {
      return Status::InvalidArgument("foreign key column '" + c +
                                     "' not in table '" + name_ + "'");
    }
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

bool TableSchema::IsSuperkey(const std::vector<std::string>& cols) const {
  if (primary_key_.empty()) return false;
  return std::all_of(primary_key_.begin(), primary_key_.end(),
                     [&](const std::string& k) {
                       return std::find(cols.begin(), cols.end(), k) !=
                              cols.end();
                     });
}

std::string TableSchema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    bool is_key = std::find(primary_key_.begin(), primary_key_.end(),
                            c.name) != primary_key_.end();
    parts.push_back(is_key ? "*" + c.name : c.name);
  }
  return name_ + "(" + Join(parts, ", ") + ")";
}

}  // namespace silkroute
