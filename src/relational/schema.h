// Table schemas and integrity constraints. The constraint metadata (keys,
// functional dependencies, inclusion dependencies) is what SilkRoute's
// view-tree labeling (paper Sec. 3.5) consumes.
#ifndef SILKROUTE_RELATIONAL_SCHEMA_H_
#define SILKROUTE_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/value.h"

namespace silkroute {

struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = false;
};

/// Foreign key: `columns` of this table reference `target_columns` of
/// `target_table` (which must form a key there).
struct ForeignKeyDef {
  std::vector<std::string> columns;
  std::string target_table;
  std::vector<std::string> target_columns;
};

class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Index of a column by name, or nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const;
  Result<size_t> ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const {
    return FindColumn(name).has_value();
  }

  /// Declares the primary key (column names must exist).
  Status SetPrimaryKey(std::vector<std::string> key_columns);
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  bool has_primary_key() const { return !primary_key_.empty(); }

  Status AddForeignKey(ForeignKeyDef fk);
  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }

  /// True if `cols` is a superset of the primary key (hence a superkey).
  bool IsSuperkey(const std::vector<std::string>& cols) const;

  /// Human-readable datalog-style rendering, e.g.
  /// "Supplier(*suppkey, name, addr, nationkey)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<std::string> primary_key_;
  std::vector<ForeignKeyDef> foreign_keys_;
};

}  // namespace silkroute

#endif  // SILKROUTE_RELATIONAL_SCHEMA_H_
