#include "relational/columnar.h"

namespace silkroute {

void ColumnVector::Reserve(size_t additional) {
  const size_t target = size_ + additional;
  if (type_ == DataType::kString) {
    offsets_.reserve(target);
    lens_.reserve(target);
  } else {
    words_.reserve(target);
  }
  nulls_.reserve((target + 63) / 64);
}

bool ColumnVector::Append(const Value& v) {
  const size_t pos = size_++;
  if (type_ == DataType::kString) {
    if (v.is_null() || !v.is_string()) {
      offsets_.push_back(pool_.size());
      lens_.push_back(0);
      if (v.is_null()) {
        SetBit(&nulls_, pos);
        return true;
      }
      SetBit(&nulls_, pos);  // placeholder; owner falls back to the row store
      return false;
    }
    const std::string& s = v.AsString();
    offsets_.push_back(pool_.size());
    lens_.push_back(static_cast<uint32_t>(s.size()));
    pool_.append(s);
    return true;
  }
  // Numeric column: raw payload word + subtype bit. Both kInt64 and
  // kDouble columns accept either numeric representation, mirroring the
  // widened type check in Table::Insert.
  if (v.is_null()) {
    words_.push_back(0);
    SetBit(&nulls_, pos);
    return true;
  }
  uint64_t word = 0;
  if (v.is_int64()) {
    const int64_t i = v.AsInt64();
    std::memcpy(&word, &i, sizeof(word));
    words_.push_back(word);
    SetBit(&int_cells_, pos);
    return true;
  }
  if (v.is_double()) {
    const double d = v.AsDouble();
    std::memcpy(&word, &d, sizeof(word));
    words_.push_back(word);
    return true;
  }
  words_.push_back(0);
  SetBit(&nulls_, pos);  // placeholder; owner falls back to the row store
  return false;
}

Value ColumnVector::ValueAt(size_t i) const {
  if (IsNull(i)) return Value::Null();
  if (type_ == DataType::kString) return Value::String(std::string(StringAt(i)));
  return CellIsInt64(i) ? Value::Int64(Int64At(i)) : Value::Double(DoubleAt(i));
}

ColumnarShard::ColumnarShard(const TableSchema* schema) {
  columns_.reserve(schema->num_columns());
  for (const ColumnDef& col : schema->columns()) {
    columns_.emplace_back(col.type);
  }
}

void ColumnarShard::Reserve(size_t additional) {
  global_ids_.reserve(global_ids_.size() + additional);
  for (ColumnVector& c : columns_) c.Reserve(additional);
}

bool ColumnarShard::Append(const Tuple& row, uint64_t global_id) {
  bool exact = true;
  for (size_t c = 0; c < columns_.size(); ++c) {
    exact = columns_[c].Append(row[c]) && exact;
  }
  global_ids_.push_back(global_id);
  return exact;
}

Tuple ColumnarShard::MaterializeTuple(size_t pos) const {
  Tuple row;
  row.mutable_values().reserve(columns_.size());
  for (const ColumnVector& c : columns_) row.Append(c.ValueAt(pos));
  return row;
}

}  // namespace silkroute
