#include "relational/table.h"

namespace silkroute {

Table::Table(TableSchema schema, size_t shard_count)
    : schema_(std::move(schema)) {
  for (const auto& k : schema_.primary_key()) {
    auto idx = schema_.FindColumn(k);
    if (idx) key_indices_.push_back(*idx);
  }
  // Shard on the primary join column: the leading primary-key column when
  // one is declared, else column 0. Equality joins against the key then
  // find all candidate rows co-located in one shard.
  shard_key_col_ = key_indices_.empty() ? 0 : key_indices_.front();
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (size_t s = 0; s < shard_count; ++s) shards_.emplace_back(&schema_);
}

Tuple Table::ExtractKey(const Tuple& row) const {
  Tuple key;
  for (size_t i : key_indices_) key.Append(row[i]);
  return key;
}

Status Table::Insert(Tuple row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "arity mismatch inserting into '" + schema_.name() + "': got " +
        std::to_string(row.size()) + " values, want " +
        std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = schema_.column(i);
    const Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::ConstraintViolation("NULL in non-nullable column '" +
                                           col.name + "' of table '" +
                                           schema_.name() + "'");
      }
      continue;
    }
    bool type_ok = false;
    switch (col.type) {
      case DataType::kInt64:
        type_ok = v.is_int64();
        break;
      case DataType::kDouble:
        type_ok = v.is_double() || v.is_int64();
        break;
      case DataType::kString:
        type_ok = v.is_string();
        break;
    }
    if (!type_ok) {
      return Status::TypeError("value " + v.ToString() +
                               " does not match column '" + col.name +
                               "' of type " + DataTypeToString(col.type));
    }
  }
  if (!key_indices_.empty()) {
    Tuple key = ExtractKey(row);
    if (key_set_.count(key) != 0) {
      return Status::ConstraintViolation("duplicate primary key " +
                                         key.ToString() + " in table '" +
                                         schema_.name() + "'");
    }
  }
  CommitRow(std::move(row));
  return Status::OK();
}

void Table::CommitRow(Tuple row) {
  if (!key_indices_.empty()) key_set_.insert(ExtractKey(row));
  // Columnar view first (reads go through rows_ until the version bump
  // publishes the row, so the shard append is invisible mid-commit). A row
  // whose arity does not match the schema (possible only through
  // InsertUnchecked) cannot be laid out columnar; it parks in shard 0 as
  // all-NULL padding and the table drops to the row-store path for good.
  const uint64_t global_id = rows_.size();
  size_t s = 0;
  if (row.size() == schema_.num_columns()) {
    s = ShardOf(row[shard_key_col_], shards_.size());
    columnar_exact_ =
        shards_[s].Append(row, global_id) && columnar_exact_;
  } else {
    Tuple padding;
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      padding.Append(Value::Null());
    }
    shards_[0].Append(padding, global_id);
    columnar_exact_ = false;
  }
  row_locs_.push_back({static_cast<uint32_t>(s),
                       static_cast<uint32_t>(shards_[s].size() - 1)});
  rows_.push_back(std::move(row));
  IndexRow(rows_.size() - 1);
  version_.fetch_add(1, std::memory_order_release);
}

Status Table::CreateIndex(const std::string& column) {
  SILK_ASSIGN_OR_RETURN(size_t position, schema_.ColumnIndex(column));
  Index& index = indexes_[position];
  index.clear();
  index.reserve(rows_.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Value& v = rows_[r][position];
    if (!v.is_null()) index.emplace(v, r);
  }
  return Status::OK();
}

const Table::Index* Table::GetIndex(const std::string& column) const {
  auto position = schema_.FindColumn(column);
  if (!position) return nullptr;
  auto it = indexes_.find(*position);
  return it == indexes_.end() ? nullptr : &it->second;
}

void Table::IndexRow(size_t row_position) {
  for (auto& [column, index] : indexes_) {
    const Value& v = rows_[row_position][column];
    if (!v.is_null()) index.emplace(v, row_position);
  }
}

size_t Table::DataByteSize() const {
  size_t total = 0;
  for (const auto& r : rows_) total += r.ByteSize();
  return total;
}

}  // namespace silkroute
