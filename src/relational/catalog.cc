#include "relational/catalog.h"

#include <algorithm>

namespace silkroute {

namespace {
bool SameColumnSet(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  if (a.size() != b.size()) return false;
  return std::all_of(a.begin(), a.end(), [&](const std::string& c) {
    return std::find(b.begin(), b.end(), c) != b.end();
  });
}
}  // namespace

Status Catalog::AddTable(TableSchema schema) {
  const std::string name = schema.name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already in catalog");
  }
  tables_.emplace(name, std::move(schema));
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const TableSchema*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "' in catalog");
  }
  return &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, schema] : tables_) names.push_back(name);
  return names;
}

bool Catalog::IsSuperkey(const std::string& table,
                         const std::vector<std::string>& cols) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return false;
  return it->second.IsSuperkey(cols);
}

const ForeignKeyDef* Catalog::FindForeignKey(
    const std::string& from_table,
    const std::vector<std::string>& cols) const {
  auto it = tables_.find(from_table);
  if (it == tables_.end()) return nullptr;
  for (const auto& fk : it->second.foreign_keys()) {
    if (SameColumnSet(fk.columns, cols)) return &fk;
  }
  return nullptr;
}

bool Catalog::HasInclusionDependency(const std::string& from_table,
                                     const std::vector<std::string>& cols,
                                     const std::string& target_table) const {
  const ForeignKeyDef* fk = FindForeignKey(from_table, cols);
  if (fk == nullptr) return false;
  if (fk->target_table != target_table) return false;
  auto target = tables_.find(target_table);
  if (target == tables_.end()) return false;
  return SameColumnSet(fk->target_columns, target->second.primary_key());
}

}  // namespace silkroute
