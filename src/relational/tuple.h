// Tuple: a fixed-width row of Values.
#ifndef SILKROUTE_RELATIONAL_TUPLE_H_
#define SILKROUTE_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "relational/value.h"

namespace silkroute {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(size_t n) : values_(n) {}
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  Value& operator[](size_t i) { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& mutable_values() { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenates two tuples (used by joins).
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// Total serialized byte size of the row.
  size_t ByteSize() const;

  /// Lexicographic comparison by Value::Compare (NULLs first).
  int Compare(const Tuple& other) const;
  bool operator==(const Tuple& other) const { return Compare(other) == 0; }

  /// "(v1, v2, ...)" for tests and debugging.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

}  // namespace silkroute

#endif  // SILKROUTE_RELATIONAL_TUPLE_H_
