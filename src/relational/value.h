// Value: the dynamically-typed cell of the relational engine.
//
// SQL semantics implemented here:
//  - NULL is a distinct marker, not a value of any type.
//  - Equality joins never match NULLs (SqlEquals(NULL, x) is false).
//  - ORDER BY places NULLs first; Compare() treats two NULLs as equal so
//    sorted streams group correctly.
#ifndef SILKROUTE_RELATIONAL_VALUE_H_
#define SILKROUTE_RELATIONAL_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

namespace silkroute {

enum class DataType {
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeToString(DataType type);

class Value {
 public:
  /// Constructs SQL NULL.
  Value() : rep_(NullTag{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  bool is_null() const { return std::holds_alternative<NullTag>(rep_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  /// Typed accessors; calling the wrong one aborts (programming error).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric view: int64 widened to double. Aborts on string/null.
  double AsNumeric() const;

  /// Total order used by ORDER BY: NULL < int/double (numeric order) <
  /// string (lexicographic). Cross numeric types compare numerically.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// SQL equality: false if either side is NULL.
  bool SqlEquals(const Value& other) const {
    if (is_null() || other.is_null()) return false;
    return Compare(other) == 0;
  }

  /// Identity equality used by tests and hashing: NULL == NULL here.
  bool operator==(const Value& other) const { return Compare(other) == 0; }

  /// Hash consistent with Compare()==0 (numeric 3 and 3.0 hash alike).
  size_t Hash() const;

  /// Approximate serialized width in bytes (used by the cost model and the
  /// wire serializer).
  size_t ByteSize() const;

  /// Rendering used in SQL literals and test output. Strings are quoted.
  std::string ToString() const;
  /// Rendering used for XML text content (no quotes; numerics canonical).
  std::string ToXmlText() const;

 private:
  struct NullTag {
    bool operator==(const NullTag&) const { return true; }
  };
  using Rep = std::variant<NullTag, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace silkroute

#endif  // SILKROUTE_RELATIONAL_VALUE_H_
