// Columnar shard storage for base tables (DESIGN.md §16). A Table is
// hash-sharded on its primary join column into N ColumnarShards; each
// shard stores its rows column-major as contiguous typed arrays — 8-byte
// words for numerics, string-pool offsets for strings, plus a null
// bitmap — so scan+filter morsels and join-key encoding run over flat
// memory instead of dispatching through one std::variant per cell.
//
// Representation invariants the executor relies on:
//  - Exact Value round-trip. A kDouble column legally holds int64 cells
//    (Table::Insert widens the type check, not the value), and the
//    differential harness demands exact representation identity
//    (Int64(3) != Double(3.0), -0.0 != 0.0 bitwise). Numeric columns
//    therefore keep the raw 8-byte payload plus a per-cell int64-subtype
//    bitmap, never a widened double.
//  - Ascending global ids. Each shard records the table-global row id of
//    every appended row in insertion order, so a scan can merge per-shard
//    survivors back into global insertion order and the tuple stream is
//    byte-identical at any shard count.
//  - Append-only. Like the row store, shards never move or rewrite a
//    committed cell; string-pool offsets stay valid across growth.
#ifndef SILKROUTE_RELATIONAL_COLUMNAR_H_
#define SILKROUTE_RELATIONAL_COLUMNAR_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace silkroute {

/// One column of one shard: a typed contiguous array plus a null bitmap.
/// Numeric columns (kInt64 and kDouble alike) store raw 8-byte payloads in
/// `words_` with `int_cells_` marking which cells hold an int64; string
/// columns store (offset, length) into an append-only byte pool.
class ColumnVector {
 public:
  explicit ColumnVector(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return size_; }

  /// Pre-sizes the arrays for `additional` more cells.
  void Reserve(size_t additional);

  /// Appends one cell. Returns false when `v` cannot be represented in a
  /// column of this type (e.g. a string smuggled into a numeric column via
  /// InsertUnchecked): a placeholder NULL keeps positions aligned and the
  /// owning Table drops to the row-store path for good.
  bool Append(const Value& v);

  bool IsNull(size_t i) const { return GetBit(nulls_, i); }
  /// Exact subtype of a non-null numeric cell.
  bool CellIsInt64(size_t i) const { return GetBit(int_cells_, i); }

  /// Raw 8-byte payload of a numeric cell (int64 or double bit pattern).
  uint64_t WordAt(size_t i) const { return words_[i]; }
  int64_t Int64At(size_t i) const {
    int64_t v;
    std::memcpy(&v, &words_[i], sizeof(v));
    return v;
  }
  double DoubleAt(size_t i) const {
    double v;
    std::memcpy(&v, &words_[i], sizeof(v));
    return v;
  }
  /// Widened numeric view of a non-null numeric cell (Value::AsNumeric).
  double NumericAt(size_t i) const {
    return CellIsInt64(i) ? static_cast<double>(Int64At(i)) : DoubleAt(i);
  }
  /// View into the string pool; valid until the ColumnVector is destroyed
  /// (offsets are re-resolved on every call, so pool growth is safe).
  std::string_view StringAt(size_t i) const {
    return std::string_view(pool_.data() + offsets_[i], lens_[i]);
  }

  /// Exact Value round-trip of cell `i` (same representation that was
  /// appended, bit for bit).
  Value ValueAt(size_t i) const;

  const uint64_t* words() const { return words_.data(); }
  size_t pool_bytes() const { return pool_.size(); }

 private:
  static bool GetBit(const std::vector<uint64_t>& bits, size_t i) {
    const size_t word = i >> 6;
    return word < bits.size() && (bits[word] >> (i & 63)) & 1;
  }
  static void SetBit(std::vector<uint64_t>* bits, size_t i) {
    const size_t word = i >> 6;
    if (word >= bits->size()) bits->resize(word + 1, 0);
    (*bits)[word] |= uint64_t{1} << (i & 63);
  }

  DataType type_;
  size_t size_ = 0;
  std::vector<uint64_t> nulls_;      // bit set => SQL NULL
  std::vector<uint64_t> words_;      // numeric payloads, raw bit patterns
  std::vector<uint64_t> int_cells_;  // bit set => cell is an int64
  std::vector<uint64_t> offsets_;    // string cells: offset into pool_
  std::vector<uint32_t> lens_;       // string cells: byte length
  std::string pool_;                 // append-only string bytes
};

/// One hash shard of a Table: one ColumnVector per schema column plus the
/// ascending table-global row ids of the rows routed here.
class ColumnarShard {
 public:
  explicit ColumnarShard(const TableSchema* schema);

  size_t size() const { return global_ids_.size(); }
  size_t num_columns() const { return columns_.size(); }
  const ColumnVector& column(size_t c) const { return columns_[c]; }
  uint64_t global_id(size_t pos) const { return global_ids_[pos]; }
  const std::vector<uint64_t>& global_ids() const { return global_ids_; }

  void Reserve(size_t additional);

  /// Appends `row` (which must match the schema arity) as position
  /// size(). Returns false if any cell could not be represented exactly.
  bool Append(const Tuple& row, uint64_t global_id);

  /// Exact Value of cell (col, pos).
  Value ValueAt(size_t col, size_t pos) const {
    return columns_[col].ValueAt(pos);
  }

  /// Materializes the full row at `pos`, representation-exact.
  Tuple MaterializeTuple(size_t pos) const;

 private:
  std::vector<ColumnVector> columns_;
  std::vector<uint64_t> global_ids_;
};

/// Which of `shard_count` shards a key value routes to. NULL keys pool in
/// shard 0; everything else routes by Value::Hash, so values that compare
/// equal across representations (3 vs 3.0) co-locate.
inline size_t ShardOf(const Value& key, size_t shard_count) {
  if (shard_count <= 1 || key.is_null()) return 0;
  return key.Hash() % shard_count;
}

}  // namespace silkroute

#endif  // SILKROUTE_RELATIONAL_COLUMNAR_H_
