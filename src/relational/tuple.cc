#include "relational/tuple.h"

#include <ostream>

namespace silkroute {

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.values_.begin(), left.values_.end());
  out.insert(out.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(out));
}

size_t Tuple::ByteSize() const {
  size_t total = 0;
  for (const auto& v : values_) total += v.ByteSize();
  return total;
}

int Tuple::Compare(const Tuple& other) const {
  size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() < other.values_.size()) return -1;
  if (values_.size() > other.values_.size()) return 1;
  return 0;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return os << t.ToString();
}

}  // namespace silkroute
