#include "relational/database.h"

namespace silkroute {

Status Database::CreateTable(TableSchema schema) {
  const std::string name = schema.name();
  SILK_RETURN_IF_ERROR(catalog_.AddTable(schema));
  tables_.emplace(name, std::make_unique<Table>(std::move(schema),
                                                default_shard_count_));
  return Status::OK();
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Status Database::Insert(const std::string& table, Tuple row) {
  SILK_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  return t->Insert(std::move(row));
}

size_t Database::TotalByteSize() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->DataByteSize();
  return total;
}

}  // namespace silkroute
