#include "relational/csv.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iterator>

namespace silkroute {

std::vector<std::string> ParseCsvRecord(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++i;
      continue;
    }
    field.push_back(c);
    ++i;
  }
  fields.push_back(std::move(field));
  return fields;
}

namespace {

Result<Value> CoerceField(const std::string& field, const ColumnDef& col,
                          bool was_quoted_empty, bool empty_is_null) {
  if (field.empty() && empty_is_null && col.nullable && !was_quoted_empty) {
    return Value::Null();
  }
  switch (col.type) {
    case DataType::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::TypeError("'" + field + "' is not an integer for "
                                 "column '" + col.name + "'");
      }
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::TypeError("'" + field + "' is not a number for "
                                 "column '" + col.name + "'");
      }
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(field);
  }
  return Status::Internal("unknown column type");
}

}  // namespace

Result<size_t> LoadCsv(std::istream* input, const CsvLoadOptions& options,
                       const std::string& table, Database* db) {
  SILK_ASSIGN_OR_RETURN(Table * target, db->GetTable(table));
  const TableSchema& schema = target->schema();
  if (options.expected_rows > 0) target->Reserve(options.expected_rows);

  std::string line;
  size_t line_number = 0;
  size_t loaded = 0;
  bool skipped_header = !options.has_header;
  while (std::getline(*input, line)) {
    ++line_number;
    if (line.empty() || (line.size() == 1 && line[0] == '\r')) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    std::vector<std::string> fields = ParseCsvRecord(line);
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          table + ".csv line " + std::to_string(line_number) + ": expected " +
          std::to_string(schema.num_columns()) + " fields, got " +
          std::to_string(fields.size()));
    }
    Tuple row;
    row.mutable_values().reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      auto value = CoerceField(fields[c], schema.column(c),
                               /*was_quoted_empty=*/false,
                               options.empty_is_null);
      if (!value.ok()) {
        return Status::TypeError(table + ".csv line " +
                                 std::to_string(line_number) + ": " +
                                 value.status().message());
      }
      row.Append(std::move(value).value());
    }
    Status inserted = target->Insert(std::move(row));
    if (!inserted.ok()) {
      return Status::ConstraintViolation(
          table + ".csv line " + std::to_string(line_number) + ": " +
          inserted.message());
    }
    ++loaded;
  }
  return loaded;
}

Result<size_t> LoadCsvFile(const std::string& path,
                           const CsvLoadOptions& options,
                           const std::string& table, Database* db) {
  std::ifstream input(path);
  if (!input.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  CsvLoadOptions opts = options;
  if (opts.expected_rows == 0) {
    // Cheap sequential pre-pass: a newline count upper-bounds the row
    // count (header and blank lines included), which is exactly what a
    // Reserve() wants.
    opts.expected_rows = static_cast<size_t>(
        std::count(std::istreambuf_iterator<char>(input),
                   std::istreambuf_iterator<char>(), '\n')) + 1;
    input.clear();
    input.seekg(0);
  }
  return LoadCsv(&input, opts, table, db);
}

}  // namespace silkroute
