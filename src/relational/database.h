// Database: catalog plus table data. This is the "target RDBMS" of the
// middle-ware setting; the SilkRoute layers talk to it only through SQL text
// and tuple streams (see engine/).
#ifndef SILKROUTE_RELATIONAL_DATABASE_H_
#define SILKROUTE_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/catalog.h"
#include "relational/table.h"

namespace silkroute {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Catalog& catalog() const { return catalog_; }

  /// Registers the schema and creates an empty table with
  /// `default_shard_count()` columnar shards.
  Status CreateTable(TableSchema schema);

  /// Columnar shard count for tables created from here on (existing
  /// tables keep theirs). Sharding is a pure storage-layout choice — query
  /// results are byte-identical at any count; the differential harness
  /// pins {1, 4, 16}. Clamped to >= 1.
  void set_default_shard_count(size_t count) {
    default_shard_count_ = count == 0 ? 1 : count;
  }
  size_t default_shard_count() const { return default_shard_count_; }

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// Validated insert (see Table::Insert).
  Status Insert(const std::string& table, Tuple row);

  /// Sum of all table data sizes in bytes (what "database size" means in the
  /// experiment configurations).
  size_t TotalByteSize() const;

 private:
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  /// Default 4: every deployment (and every existing test/golden) runs the
  /// sharded columnar layout, which is what proves it order-transparent.
  size_t default_shard_count_ = 4;
};

}  // namespace silkroute

#endif  // SILKROUTE_RELATIONAL_DATABASE_H_
