// Table: an in-memory base relation with schema type-checking and
// primary-key uniqueness enforcement.
//
// Storage is dual-representation (DESIGN.md §16): every committed row
// lands both in the legacy row vector (`rows()`, which borrowed scans,
// secondary indexes, and intermediate-result copies read) and in N
// hash-sharded column-major ColumnarShards keyed on the primary join
// column (which scan+filter morsels and join-key encoding read). The two
// views are maintained eagerly inside the single CommitRow commit point,
// so they can never drift and no query-time state transition exists.
#ifndef SILKROUTE_RELATIONAL_TABLE_H_
#define SILKROUTE_RELATIONAL_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/columnar.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace silkroute {

class Table {
 public:
  /// Hash index: value -> row positions.
  using Index = std::unordered_multimap<Value, size_t, ValueHash>;

  /// Where a table-global row lives in the sharded columnar view.
  struct RowLoc {
    uint32_t shard;
    uint32_t pos;
  };

  explicit Table(TableSchema schema, size_t shard_count = 1);

  const TableSchema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// The sharded columnar view. Shard routing hashes the first primary-key
  /// column (column 0 when the schema declares no key); NULL keys pool in
  /// shard 0. Global ids within each shard ascend in insertion order.
  size_t shard_count() const { return shards_.size(); }
  const ColumnarShard& shard(size_t i) const { return shards_[i]; }
  size_t shard_key_column() const { return shard_key_col_; }
  RowLoc row_loc(size_t global_row) const { return row_locs_[global_row]; }

  /// True while every committed cell is represented exactly in the
  /// columnar view. An unrepresentable row (wrong arity or a type outside
  /// the column's domain, possible only through InsertUnchecked) clears
  /// this permanently and the executor's columnar fast paths step aside —
  /// the row store remains authoritative either way.
  bool columnar_exact() const { return columnar_exact_; }

  /// Monotonic mutation counter: bumped once per committed row, on every
  /// insert path (validated and bulk). Since the store is append-only the
  /// version doubles as the row high-water mark, so the delta since
  /// version v is exactly rows [v, num_rows()). The result cache keys
  /// component results on the version vector of the tables a query names
  /// (engine/result_cache.h); any drift between this counter and the
  /// actual row/index state would silently serve stale documents, which is
  /// why every mutation funnels through one CommitRow helper.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Rows appended since `version` (the delta a republish must re-read).
  size_t RowsAppendedSince(uint64_t version) const {
    return version >= rows_.size() ? 0 : rows_.size() - version;
  }

  /// Builds (or rebuilds) a hash index on one column. Maintained by later
  /// inserts. The executor uses it for literal-equality scans.
  Status CreateIndex(const std::string& column);

  /// The index on `column`, or nullptr if none was created.
  const Index* GetIndex(const std::string& column) const;

  /// Validates arity, types, nullability, and primary-key uniqueness, then
  /// appends the row.
  Status Insert(Tuple row);

  /// Appends without validation. Used by the bulk loader after generation,
  /// where rows are constructed schema-correct by code. Shares CommitRow
  /// with Insert, so bulk loads maintain the primary-key set, secondary
  /// indexes, and the version counter exactly like validated inserts —
  /// the paths can never drift.
  void InsertUnchecked(Tuple row) { CommitRow(std::move(row)); }

  /// Pre-sizes the row vector, primary-key set, every index, and each
  /// columnar shard for `expected_rows` additional rows, so a bulk load
  /// pays one allocation per container instead of incremental regrowth
  /// and rehashing. Shards split the budget evenly (hash routing keeps
  /// them balanced to within noise).
  void Reserve(size_t expected_rows) {
    rows_.reserve(rows_.size() + expected_rows);
    row_locs_.reserve(row_locs_.size() + expected_rows);
    const size_t per_shard = expected_rows / shards_.size() + 1;
    for (ColumnarShard& shard : shards_) shard.Reserve(per_shard);
    if (!key_indices_.empty()) {
      key_set_.reserve(key_set_.size() + expected_rows);
    }
    for (auto& [col, index] : indexes_) {
      index.reserve(index.size() + expected_rows);
    }
  }

  /// Total serialized size of all rows, in bytes.
  size_t DataByteSize() const;

 private:
  struct KeyHash {
    size_t operator()(const Tuple& t) const {
      size_t h = 0;
      for (const auto& v : t.values()) h = h * 1315423911u + v.Hash();
      return h;
    }
  };

  Tuple ExtractKey(const Tuple& row) const;
  void IndexRow(size_t row_position);
  /// The single mutation commit point: appends the row to the columnar
  /// shard it hashes into and to the row view, records its primary key,
  /// maintains every secondary index, and bumps the version counter —
  /// all-or-nothing, so version/index/key/shard state stay in lock step
  /// on every insert path.
  void CommitRow(Tuple row);

  TableSchema schema_;
  std::vector<Tuple> rows_;
  std::vector<ColumnarShard> shards_;
  std::vector<RowLoc> row_locs_;  // global row -> (shard, position)
  size_t shard_key_col_ = 0;
  bool columnar_exact_ = true;
  std::vector<size_t> key_indices_;
  std::unordered_set<Tuple, KeyHash> key_set_;
  std::map<size_t, Index> indexes_;  // column position -> index
  /// Atomic so a publisher thread can snapshot the version vector while
  /// another request's writer commits (writers themselves are serialized
  /// by the caller; the table is not a concurrent structure).
  std::atomic<uint64_t> version_{0};
};

}  // namespace silkroute

#endif  // SILKROUTE_RELATIONAL_TABLE_H_
