// Table: an in-memory row store with schema type-checking and primary-key
// uniqueness enforcement.
#ifndef SILKROUTE_RELATIONAL_TABLE_H_
#define SILKROUTE_RELATIONAL_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace silkroute {

class Table {
 public:
  /// Hash index: value -> row positions.
  using Index = std::unordered_multimap<Value, size_t, ValueHash>;

  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Monotonic mutation counter: bumped once per committed row, on every
  /// insert path (validated and bulk). Since the store is append-only the
  /// version doubles as the row high-water mark, so the delta since
  /// version v is exactly rows [v, num_rows()). The result cache keys
  /// component results on the version vector of the tables a query names
  /// (engine/result_cache.h); any drift between this counter and the
  /// actual row/index state would silently serve stale documents, which is
  /// why every mutation funnels through one CommitRow helper.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Rows appended since `version` (the delta a republish must re-read).
  size_t RowsAppendedSince(uint64_t version) const {
    return version >= rows_.size() ? 0 : rows_.size() - version;
  }

  /// Builds (or rebuilds) a hash index on one column. Maintained by later
  /// inserts. The executor uses it for literal-equality scans.
  Status CreateIndex(const std::string& column);

  /// The index on `column`, or nullptr if none was created.
  const Index* GetIndex(const std::string& column) const;

  /// Validates arity, types, nullability, and primary-key uniqueness, then
  /// appends the row.
  Status Insert(Tuple row);

  /// Appends without validation. Used by the bulk loader after generation,
  /// where rows are constructed schema-correct by code. Shares CommitRow
  /// with Insert, so bulk loads maintain the primary-key set, secondary
  /// indexes, and the version counter exactly like validated inserts —
  /// the paths can never drift.
  void InsertUnchecked(Tuple row) { CommitRow(std::move(row)); }

  /// Pre-sizes the row vector, primary-key set, and every index for
  /// `expected_rows` additional rows, so a bulk load pays one allocation
  /// per container instead of incremental regrowth and rehashing.
  void Reserve(size_t expected_rows) {
    rows_.reserve(rows_.size() + expected_rows);
    if (!key_indices_.empty()) {
      key_set_.reserve(key_set_.size() + expected_rows);
    }
    for (auto& [col, index] : indexes_) {
      index.reserve(index.size() + expected_rows);
    }
  }

  /// Total serialized size of all rows, in bytes.
  size_t DataByteSize() const;

 private:
  struct KeyHash {
    size_t operator()(const Tuple& t) const {
      size_t h = 0;
      for (const auto& v : t.values()) h = h * 1315423911u + v.Hash();
      return h;
    }
  };

  Tuple ExtractKey(const Tuple& row) const;
  void IndexRow(size_t row_position);
  /// The single mutation commit point: appends the row, records its
  /// primary key, maintains every secondary index, and bumps the version
  /// counter — all-or-nothing, so version/index/key state stay in lock
  /// step on every insert path.
  void CommitRow(Tuple row);

  TableSchema schema_;
  std::vector<Tuple> rows_;
  std::vector<size_t> key_indices_;
  std::unordered_set<Tuple, KeyHash> key_set_;
  std::map<size_t, Index> indexes_;  // column position -> index
  /// Atomic so a publisher thread can snapshot the version vector while
  /// another request's writer commits (writers themselves are serialized
  /// by the caller; the table is not a concurrent structure).
  std::atomic<uint64_t> version_{0};
};

}  // namespace silkroute

#endif  // SILKROUTE_RELATIONAL_TABLE_H_
