// Table: an in-memory row store with schema type-checking and primary-key
// uniqueness enforcement.
#ifndef SILKROUTE_RELATIONAL_TABLE_H_
#define SILKROUTE_RELATIONAL_TABLE_H_

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace silkroute {

class Table {
 public:
  /// Hash index: value -> row positions.
  using Index = std::unordered_multimap<Value, size_t, ValueHash>;

  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Builds (or rebuilds) a hash index on one column. Maintained by later
  /// inserts. The executor uses it for literal-equality scans.
  Status CreateIndex(const std::string& column);

  /// The index on `column`, or nullptr if none was created.
  const Index* GetIndex(const std::string& column) const;

  /// Validates arity, types, nullability, and primary-key uniqueness, then
  /// appends the row.
  Status Insert(Tuple row);

  /// Appends without validation. Used by the bulk loader after generation,
  /// where rows are constructed schema-correct by code.
  void InsertUnchecked(Tuple row) {
    rows_.push_back(std::move(row));
    IndexRow(rows_.size() - 1);
  }

  /// Pre-sizes the row vector, primary-key set, and every index for
  /// `expected_rows` additional rows, so a bulk load pays one allocation
  /// per container instead of incremental regrowth and rehashing.
  void Reserve(size_t expected_rows) {
    rows_.reserve(rows_.size() + expected_rows);
    if (!key_indices_.empty()) {
      key_set_.reserve(key_set_.size() + expected_rows);
    }
    for (auto& [col, index] : indexes_) {
      index.reserve(index.size() + expected_rows);
    }
  }

  /// Total serialized size of all rows, in bytes.
  size_t DataByteSize() const;

 private:
  struct KeyHash {
    size_t operator()(const Tuple& t) const {
      size_t h = 0;
      for (const auto& v : t.values()) h = h * 1315423911u + v.Hash();
      return h;
    }
  };

  Tuple ExtractKey(const Tuple& row) const;
  void IndexRow(size_t row_position);

  TableSchema schema_;
  std::vector<Tuple> rows_;
  std::vector<size_t> key_indices_;
  std::unordered_set<Tuple, KeyHash> key_set_;
  std::map<size_t, Index> indexes_;  // column position -> index
};

}  // namespace silkroute

#endif  // SILKROUTE_RELATIONAL_TABLE_H_
