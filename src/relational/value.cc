#include "relational/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>

namespace silkroute {

namespace {
[[noreturn]] void TypePanic(const char* want, const Value& v) {
  std::cerr << "Value type error: wanted " << want << ", value is "
            << v.ToString() << "\n";
  std::abort();
}

std::string FormatDouble(double d) {
  // Canonical shortest-ish representation: integral doubles print without
  // trailing zeros, others with up to 6 significant decimals.
  if (d == static_cast<double>(static_cast<int64_t>(d)) &&
      std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.0",
                  static_cast<long long>(static_cast<int64_t>(d)));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", d);
  return buf;
}
}  // namespace

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int64_t Value::AsInt64() const {
  if (!is_int64()) TypePanic("int64", *this);
  return std::get<int64_t>(rep_);
}

double Value::AsDouble() const {
  if (!is_double()) TypePanic("double", *this);
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  if (!is_string()) TypePanic("string", *this);
  return std::get<std::string>(rep_);
}

double Value::AsNumeric() const {
  if (is_int64()) return static_cast<double>(std::get<int64_t>(rep_));
  if (is_double()) return std::get<double>(rep_);
  TypePanic("numeric", *this);
}

int Value::Compare(const Value& other) const {
  // NULLs first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;

  const bool a_num = is_int64() || is_double();
  const bool b_num = other.is_int64() || other.is_double();
  if (a_num && b_num) {
    if (is_int64() && other.is_int64()) {
      int64_t a = std::get<int64_t>(rep_);
      int64_t b = std::get<int64_t>(other.rep_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsNumeric();
    double b = other.AsNumeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (a_num && !b_num) return -1;  // numerics before strings
  if (!a_num && b_num) return 1;
  return AsString().compare(other.AsString()) < 0
             ? -1
             : (AsString() == other.AsString() ? 0 : 1);
}

size_t Value::Hash() const {
  if (is_null()) return 0x9E3779B9u;
  if (is_string()) return std::hash<std::string>()(AsString());
  // Hash numerics via their double image so 3 and 3.0 collide (they compare
  // equal).
  double d = AsNumeric();
  if (d == 0.0) d = 0.0;  // normalize -0.0
  return std::hash<double>()(d);
}

size_t Value::ByteSize() const {
  if (is_null()) return 1;
  if (is_int64() || is_double()) return 8;
  return AsString().size() + 4;  // payload + length prefix
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(std::get<int64_t>(rep_));
  if (is_double()) return FormatDouble(std::get<double>(rep_));
  std::string out = "'";
  for (char c : AsString()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string Value::ToXmlText() const {
  if (is_null()) return "";
  if (is_string()) return AsString();
  if (is_int64()) return std::to_string(std::get<int64_t>(rep_));
  return FormatDouble(std::get<double>(rep_));
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace silkroute
