// CSV loading: parse RFC-4180-style records (quoted fields, doubled-quote
// escapes, CRLF tolerance) and bulk-load them into tables with type
// coercion against the table schema.
#ifndef SILKROUTE_RELATIONAL_CSV_H_
#define SILKROUTE_RELATIONAL_CSV_H_

#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace silkroute {

/// Splits one CSV record into fields. Handles quoted fields with embedded
/// commas and doubled-quote escapes; trailing CR is stripped.
std::vector<std::string> ParseCsvRecord(std::string_view line);

struct CsvLoadOptions {
  /// Skip the first row (column headers).
  bool has_header = true;
  /// Empty unquoted fields load as NULL (only legal in nullable columns).
  bool empty_is_null = true;
  /// Rows to Reserve() in the target table before loading (0 = don't).
  /// LoadCsvFile fills this in automatically with a newline count when
  /// left at 0, so file loads never grow the row vector incrementally.
  size_t expected_rows = 0;
};

/// Loads CSV rows from `input` into `table`, coercing each field to the
/// column type (int64, double, or string). Returns the number of rows
/// loaded; fails with row/column context on type or arity errors.
Result<size_t> LoadCsv(std::istream* input, const CsvLoadOptions& options,
                       const std::string& table, Database* db);

/// Convenience: load from a file path.
Result<size_t> LoadCsvFile(const std::string& path,
                           const CsvLoadOptions& options,
                           const std::string& table, Database* db);

}  // namespace silkroute

#endif  // SILKROUTE_RELATIONAL_CSV_H_
