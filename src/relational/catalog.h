// Catalog: the schema- and constraint-registry of a database. SilkRoute's
// view-tree labeling queries it for keys and foreign keys (paper Sec. 3.5
// "database constraints ... derived from key constraints and referential
// constraints extracted from the schema of the target database").
#ifndef SILKROUTE_RELATIONAL_CATALOG_H_
#define SILKROUTE_RELATIONAL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/schema.h"

namespace silkroute {

class Catalog {
 public:
  Status AddTable(TableSchema schema);
  bool HasTable(const std::string& name) const;
  Result<const TableSchema*> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// True if `cols` functionally determine all columns of `table`
  /// (i.e. contain its primary key).
  bool IsSuperkey(const std::string& table,
                  const std::vector<std::string>& cols) const;

  /// Finds a declared foreign key of `from_table` on exactly `cols`
  /// (order-insensitive). Returns nullptr if none.
  const ForeignKeyDef* FindForeignKey(
      const std::string& from_table,
      const std::vector<std::string>& cols) const;

  /// True if every row of from_table.cols appears in target_table's key
  /// columns, i.e. a declared referential constraint guarantees the
  /// inclusion dependency from_table[cols] <= target_table[key].
  bool HasInclusionDependency(const std::string& from_table,
                              const std::vector<std::string>& cols,
                              const std::string& target_table) const;

 private:
  std::map<std::string, TableSchema> tables_;
};

}  // namespace silkroute

#endif  // SILKROUTE_RELATIONAL_CATALOG_H_
