// Hierarchical span tracer for the publishing stack. One trace covers one
// publish request end to end:
//
//   request            (service: Submit -> response fulfilled)
//     plan             (publisher: plan chosen, SQL generated, tagged)
//       component      (one component query: submit -> stream produced)
//         phase:query  (SQL execution through the resilient layer)
//           attempt    (one ExecuteSql attempt at the source)
//           backoff    (the sleep charged before a retry)
//         phase:bind   (wire serialization into a TupleStream)
//       component      (degradation splits nest under the failed component)
//         ...
//       phase:tag      (merge + tag, once per plan)
//
// Span ids are hierarchical ("1", "1.2", "1.2.3"): a root takes the next
// root ordinal, a child takes its parent's id plus the parent's next child
// ordinal. Ids therefore depend only on the *structure* of the run (the
// order spans are started under each parent), never on which worker thread
// finishes first — concurrent runs of the same plan produce the same id
// tree even though the sink receives spans in completion order.
//
// Timestamps are monotonic nanoseconds since the tracer's construction
// (steady_clock; never wall time), so end >= start and a child never
// starts before its parent.
//
// Disabled mode: every entry point tolerates a null Tracer (and a null or
// inert parent handle) and degrades to an inert SpanHandle — no
// allocation, no clock read, no sink call. PublishOptions/ServiceOptions
// default to a null tracer, so the instrumented hot paths cost a pointer
// test when tracing is off (the <=5% overhead budget of DESIGN.md §9).
//
// Deep layers that cannot be handed a span explicitly (the SQL executors,
// fault injection, circuit breakers) annotate through a thread-local
// *current span* installed by the layer above (ScopedCurrentSpan); a span
// is only ever annotated by the thread that is executing it.
#ifndef SILKROUTE_OBS_TRACE_H_
#define SILKROUTE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace silkroute::obs {

struct Annotation {
  std::string key;
  std::string value;
};

/// One finished span, as delivered to the sink.
struct Span {
  std::string id;         // hierarchical, e.g. "1.2.3"
  std::string parent_id;  // "" for roots
  std::string name;       // "request", "plan", "component", "phase:query", ...
  uint64_t start_ns = 0;  // monotonic, since tracer construction
  uint64_t end_ns = 0;
  std::vector<Annotation> annotations;

  double duration_ms() const {
    return static_cast<double>(end_ns - start_ns) / 1e6;
  }
};

/// Receives finished spans, one call per span, from the thread that ended
/// it. Implementations must be thread-safe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSpan(Span span) = 0;
};

/// Buffers finished spans in memory for export (JSONL) and tests.
class CollectingSink : public TraceSink {
 public:
  void OnSpan(Span span) override {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(span));
  }

  /// A copy of everything collected so far; readers never block span ends
  /// for longer than the vector copy.
  std::vector<Span> spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

class Tracer;

/// Move-only handle for an open span. Inert (all methods no-ops) when
/// produced by a null/disabled tracer. Ends on destruction if still open.
/// A handle is owned by one logical flow: Annotate/End are not thread-safe
/// against each other, but starting children is (the child ordinal is
/// atomic), which is what degradation follow-ups need.
class SpanHandle {
 public:
  SpanHandle() = default;
  SpanHandle(SpanHandle&& other) noexcept
      : tracer_(other.tracer_), state_(std::move(other.state_)) {
    other.tracer_ = nullptr;
  }
  SpanHandle& operator=(SpanHandle&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      state_ = std::move(other.state_);
      other.tracer_ = nullptr;
    }
    return *this;
  }
  SpanHandle(const SpanHandle&) = delete;
  SpanHandle& operator=(const SpanHandle&) = delete;
  ~SpanHandle() { End(); }

  /// True when this handle records to a sink (tracing enabled and open).
  bool recording() const { return state_ != nullptr; }

  /// The tracer that created this handle (null when inert). Lets code
  /// holding only a parent handle start children via Tracer::Child from
  /// other threads (the engine's per-morsel spans).
  Tracer* tracer() const { return tracer_; }

  /// The span id ("" when inert). Stable from creation.
  const std::string& id() const {
    static const std::string kEmpty;
    return state_ != nullptr ? state_->span.id : kEmpty;
  }

  void Annotate(std::string key, std::string value) {
    if (state_ == nullptr) return;
    state_->span.annotations.push_back(
        Annotation{std::move(key), std::move(value)});
  }
  /// Formats doubles with fixed precision so traces diff cleanly.
  void AnnotateMs(std::string key, double ms);
  void AnnotateCount(std::string key, uint64_t n) {
    if (state_ == nullptr) return;
    Annotate(std::move(key), std::to_string(n));
  }

  /// Emits the finished span to the sink; idempotent.
  void End();

 private:
  friend class Tracer;
  struct State {
    Span span;
    std::atomic<uint32_t> next_child{0};
  };

  Tracer* tracer_ = nullptr;
  std::unique_ptr<State> state_;
};

class Tracer {
 public:
  /// A null sink disables the tracer entirely.
  explicit Tracer(TraceSink* sink)
      : sink_(sink), epoch_(std::chrono::steady_clock::now()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return sink_ != nullptr; }

  /// Monotonic nanoseconds since construction.
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  SpanHandle StartRoot(std::string_view name);
  /// Starts a child of `parent`; a null or inert parent yields a root, so
  /// spans are never silently lost when a layer runs without its caller's
  /// context.
  SpanHandle StartChild(SpanHandle* parent, std::string_view name);

  /// Null-tolerant entry points: inert handle when `tracer` is null or
  /// disabled. These are what instrumented code calls.
  static SpanHandle Root(Tracer* tracer, std::string_view name) {
    if (tracer == nullptr || !tracer->enabled()) return SpanHandle();
    return tracer->StartRoot(name);
  }
  static SpanHandle Child(Tracer* tracer, SpanHandle* parent,
                          std::string_view name) {
    if (tracer == nullptr || !tracer->enabled()) return SpanHandle();
    return tracer->StartChild(parent, name);
  }

  /// Grafts a *finished* span subtree recorded by another tracer (typically
  /// a remote EngineServer) under `parent`. Each subtree root — a span whose
  /// parent id is empty or absent from the batch — takes a fresh child
  /// ordinal from `parent`, every descendant id is rewritten under the new
  /// prefix (preserving the one-ordinal-per-level structure trace_check
  /// requires), and all timestamps shift forward by `offset_ns` — the
  /// caller's clock value for when the remote work began (its send time) —
  /// so a stitched child never starts before its new parent. Spans whose
  /// rewritten parent cannot be resolved (a malformed batch) are dropped
  /// rather than emitted dangling. No-op when disabled or `parent` is inert.
  void StitchSubtree(SpanHandle* parent, std::vector<Span> spans,
                     uint64_t offset_ns);

 private:
  friend class SpanHandle;
  void Emit(Span span) { sink_->OnSpan(std::move(span)); }

  TraceSink* sink_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint32_t> next_root_{0};
};

/// The span currently executing on this thread (null when none). Installed
/// by ScopedCurrentSpan; read by deep layers to attach annotations and to
/// parent attempt spans.
SpanHandle* CurrentSpan();

/// Appends an annotation to the current span, if any. The disabled-mode
/// cost is one thread-local load and a null test.
void AnnotateCurrent(std::string key, std::string value);

/// RAII installer for the thread-local current span. Inert handles install
/// nothing, so disabled mode never touches the thread-local either.
class ScopedCurrentSpan {
 public:
  explicit ScopedCurrentSpan(SpanHandle* span);
  ~ScopedCurrentSpan();
  ScopedCurrentSpan(const ScopedCurrentSpan&) = delete;
  ScopedCurrentSpan& operator=(const ScopedCurrentSpan&) = delete;

 private:
  SpanHandle* prev_ = nullptr;
  bool active_ = false;
};

}  // namespace silkroute::obs

#endif  // SILKROUTE_OBS_TRACE_H_
