#include "obs/export.h"

#include <cstdio>
#include <iomanip>

namespace silkroute::obs {

namespace {

// Splits a registry name built by LabeledName into base and label body:
// `base{k="v"}` -> {"base", `k="v"`}; unlabeled names yield an empty body.
struct SplitName {
  std::string_view base;
  std::string_view labels;  // without braces
};

SplitName Split(std::string_view name) {
  size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view body = name.substr(brace + 1);
  if (!body.empty() && body.back() == '}') body.remove_suffix(1);
  return {name.substr(0, brace), body};
}

// `base_suffix{labels,extra}` with every empty piece elided.
std::string SeriesName(std::string_view base, std::string_view suffix,
                       std::string_view labels, std::string_view extra = {}) {
  std::string out(base);
  out += suffix;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

void TypeLine(std::ostream& out, std::string_view base, std::string_view kind,
              std::string* last_base) {
  if (*last_base == base) return;
  *last_base = std::string(base);
  out << "# TYPE " << base << ' ' << kind << '\n';
}

std::string FormatMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

// Upper bound (inclusive) of log2 bucket i; mirrors metrics.cc.
uint64_t BucketUpperBound(size_t idx) {
  if (idx == 0) return 0;
  if (idx >= 63) return ~uint64_t{0};
  return (uint64_t{1} << idx) - 1;
}

}  // namespace

namespace {

// Length of the well-formed UTF-8 sequence starting at in[pos], or 0 when
// the lead byte / continuations are invalid (overlong C0/C1 and out-of-range
// F5..FF leads included). ASCII is handled by the caller.
size_t Utf8SequenceLength(std::string_view in, size_t pos) {
  unsigned char lead = static_cast<unsigned char>(in[pos]);
  size_t len;
  if (lead >= 0xC2 && lead <= 0xDF) {
    len = 2;
  } else if (lead >= 0xE0 && lead <= 0xEF) {
    len = 3;
  } else if (lead >= 0xF0 && lead <= 0xF4) {
    len = 4;
  } else {
    return 0;  // bare continuation byte or invalid lead
  }
  if (pos + len > in.size()) return 0;
  for (size_t i = 1; i < len; ++i) {
    unsigned char c = static_cast<unsigned char>(in[pos + i]);
    if (c < 0x80 || c > 0xBF) return 0;
  }
  return len;
}

}  // namespace

std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t pos = 0; pos < in.size();) {
    char c = in[pos];
    unsigned char uc = static_cast<unsigned char>(c);
    if (uc >= 0x80) {
      // Annotations carry raw SQL shipped over the wire; a torn or hostile
      // string must still produce valid JSON. Well-formed UTF-8 sequences
      // pass through; every invalid byte becomes U+FFFD.
      size_t len = Utf8SequenceLength(in, pos);
      if (len == 0) {
        out += "\\ufffd";
        ++pos;
      } else {
        out.append(in.substr(pos, len));
        pos += len;
      }
      continue;
    }
    ++pos;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (uc < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", uc);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteSpanJsonl(std::ostream& out, const Span& span) {
  out << "{\"id\":\"" << JsonEscape(span.id) << "\",\"parent\":\""
      << JsonEscape(span.parent_id) << "\",\"name\":\""
      << JsonEscape(span.name) << "\",\"start_ns\":" << span.start_ns
      << ",\"end_ns\":" << span.end_ns
      << ",\"duration_ms\":" << FormatMs(span.duration_ms())
      << ",\"annotations\":[";
  bool first = true;
  for (const Annotation& a : span.annotations) {
    if (!first) out << ',';
    first = false;
    out << "[\"" << JsonEscape(a.key) << "\",\"" << JsonEscape(a.value)
        << "\"]";
  }
  out << "]}\n";
}

void WriteTraceJsonl(std::ostream& out, const std::vector<Span>& spans) {
  for (const Span& span : spans) WriteSpanJsonl(out, span);
}

void WritePrometheusText(std::ostream& out, const MetricsSnapshot& snapshot) {
  std::string last_base;
  for (const auto& [name, value] : snapshot.counters) {
    SplitName parts = Split(name);
    TypeLine(out, parts.base, "counter", &last_base);
    out << name << ' ' << value << '\n';
  }
  last_base.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    SplitName parts = Split(name);
    TypeLine(out, parts.base, "gauge", &last_base);
    out << name << ' ' << value << '\n';
  }
  last_base.clear();
  for (const auto& [name, hist] : snapshot.histograms) {
    SplitName parts = Split(name);
    TypeLine(out, parts.base, "histogram", &last_base);
    // Cumulative le buckets; empty buckets are elided (the cumulative
    // counts at the emitted boundaries stay correct).
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;
      cumulative += hist.buckets[i];
      std::string le = "le=\"" + std::to_string(BucketUpperBound(i)) + "\"";
      out << SeriesName(parts.base, "_bucket", parts.labels, le) << ' '
          << cumulative << '\n';
    }
    out << SeriesName(parts.base, "_bucket", parts.labels, "le=\"+Inf\"")
        << ' ' << hist.count << '\n';
    out << SeriesName(parts.base, "_sum", parts.labels) << ' ' << hist.sum
        << '\n';
    out << SeriesName(parts.base, "_count", parts.labels) << ' ' << hist.count
        << '\n';
  }
}

void WriteStatsTable(std::ostream& out, const MetricsSnapshot& snapshot) {
  size_t width = 8;
  for (const auto& [name, _] : snapshot.counters) width = std::max(width, name.size());
  for (const auto& [name, _] : snapshot.gauges) width = std::max(width, name.size());
  for (const auto& [name, _] : snapshot.histograms) width = std::max(width, name.size());
  width += 2;

  if (!snapshot.counters.empty()) {
    out << "== counters ==\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << std::left << std::setw(static_cast<int>(width)) << name << value
          << '\n';
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "== gauges ==\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << std::left << std::setw(static_cast<int>(width)) << name << value
          << '\n';
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "== histograms ==\n";
    out << std::left << std::setw(static_cast<int>(width)) << "name"
        << std::right << std::setw(10) << "count" << std::setw(12) << "mean"
        << std::setw(12) << "p50" << std::setw(12) << "p95" << std::setw(12)
        << "p99" << std::setw(12) << "max" << '\n';
    for (const auto& [name, hist] : snapshot.histograms) {
      out << std::left << std::setw(static_cast<int>(width)) << name
          << std::right << std::setw(10) << hist.count << std::setw(12)
          << std::fixed << std::setprecision(1) << hist.mean() << std::setw(12)
          << hist.Percentile(0.50) << std::setw(12) << hist.Percentile(0.95)
          << std::setw(12) << hist.Percentile(0.99) << std::setw(12)
          << static_cast<double>(hist.max) << '\n';
    }
    out.unsetf(std::ios::fixed);
  }
}

}  // namespace silkroute::obs
