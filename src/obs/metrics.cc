#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace silkroute::obs {

namespace {

// Bucket index for a sample: 0 -> 0, otherwise 1 + floor(log2(v)), i.e.
// bucket i covers [2^(i-1), 2^i). bit_width(v) is exactly 1+floor(log2(v))
// for v > 0.
size_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  size_t idx = static_cast<size_t>(std::bit_width(value));
  return std::min(idx, Histogram::kNumBuckets - 1);
}

// Upper bound of bucket i (inclusive): 0 for bucket 0, else 2^i - 1.
uint64_t BucketUpperBound(size_t idx) {
  if (idx == 0) return 0;
  if (idx >= 63) return ~uint64_t{0};
  return (uint64_t{1} << idx) - 1;
}

void AtomicMin(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (value < cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (min == ~uint64_t{0}) ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target sample (1-based, ceil) in the cumulative counts.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      double upper = static_cast<double>(BucketUpperBound(i));
      return std::clamp(upper, static_cast<double>(min),
                        static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
      case '\r':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string name(base);
  if (labels.size() == 0) return name;
  name += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) name += ',';
    first = false;
    name += key;
    name += "=\"";
    name += EscapeLabelValue(value);
    name += '"';
  }
  name += '}';
  return name;
}

}  // namespace silkroute::obs
