#include "obs/profile.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace silkroute::obs {

namespace {

// Mirrors metrics.cc's log2 bucketing, capped at PhaseProfile::kNumBuckets.
size_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  size_t idx = static_cast<size_t>(std::bit_width(value));
  return std::min(idx, PhaseProfile::kNumBuckets - 1);
}

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

// --- Minimal JSON reader ----------------------------------------------------
// Just enough JSON for the profile schema: objects, arrays, strings with
// the common escapes, numbers, true/false/null. Strict: trailing garbage,
// truncation, or a type mismatch is a load error, never a partial profile.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    SILK_RETURN_IF_ERROR(ParseValue(&value));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("profile JSON: trailing garbage at byte " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("profile JSON: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("truncated value");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->b = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      SILK_RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      SILK_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      SILK_RETURN_IF_ERROR(ParseValue(&value));
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (the writer only emits \u00xx).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    out->kind = JsonValue::Kind::kNumber;
    try {
      out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return Fail("bad number");
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<double> NumberField(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("profile JSON: missing numeric field '" +
                                   std::string(key) + "'");
  }
  return v->number;
}

Status LoadPhase(const JsonValue& object, std::string_view key,
                 PhaseProfile* out) {
  const JsonValue* phase = object.Find(key);
  if (phase == nullptr || phase->kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("profile JSON: missing phase object '" +
                                   std::string(key) + "'");
  }
  SILK_ASSIGN_OR_RETURN(out->ewma_ms, NumberField(*phase, "ewma_ms"));
  SILK_ASSIGN_OR_RETURN(out->total_ms, NumberField(*phase, "total_ms"));
  SILK_ASSIGN_OR_RETURN(double count, NumberField(*phase, "count"));
  if (count < 0) {
    return Status::InvalidArgument("profile JSON: negative phase count");
  }
  out->count = static_cast<uint64_t>(count);
  const JsonValue* hist = phase->Find("hist");
  if (hist == nullptr || hist->kind != JsonValue::Kind::kArray ||
      hist->array.size() != PhaseProfile::kNumBuckets) {
    return Status::InvalidArgument(
        "profile JSON: phase 'hist' must be an array of " +
        std::to_string(PhaseProfile::kNumBuckets));
  }
  for (size_t i = 0; i < PhaseProfile::kNumBuckets; ++i) {
    const JsonValue& bucket = hist->array[i];
    if (bucket.kind != JsonValue::Kind::kNumber || bucket.number < 0) {
      return Status::InvalidArgument("profile JSON: bad histogram bucket");
    }
    out->hist[i] = static_cast<uint64_t>(bucket.number);
  }
  return Status::OK();
}

void WritePhase(std::ostream& out, std::string_view key,
                const PhaseProfile& phase) {
  out << '"' << key << "\":{\"ewma_ms\":" << FormatDouble(phase.ewma_ms)
      << ",\"total_ms\":" << FormatDouble(phase.total_ms)
      << ",\"count\":" << phase.count << ",\"hist\":[";
  for (size_t i = 0; i < phase.hist.size(); ++i) {
    if (i != 0) out << ',';
    out << phase.hist[i];
  }
  out << "]}";
}

// JSON-escapes a profile key (normalized SQL): quotes, backslashes,
// control characters.
std::string EscapeKey(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (uc < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", uc);
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void PhaseProfile::Record(double ms, double alpha) {
  if (ms < 0) ms = 0;
  ewma_ms = count == 0 ? ms : alpha * ms + (1 - alpha) * ewma_ms;
  total_ms += ms;
  ++count;
  ++hist[BucketIndex(static_cast<uint64_t>(ms * 1000.0 + 0.5))];
}

WorkloadProfile::WorkloadProfile(double alpha, MetricsRegistry* registry)
    : alpha_(alpha), registry_(registry) {
  if (registry_ != nullptr) {
    records_total_ = registry_->counter("silkroute_profile_records_total");
    keys_ = registry_->gauge("silkroute_profile_keys");
  }
}

void WorkloadProfile::Bump() {
  ++records_;
  if (records_total_ != nullptr) records_total_->Add(1);
  if (keys_ != nullptr) keys_->Set(static_cast<int64_t>(components_.size()));
}

void WorkloadProfile::RecordQuery(std::string_view sql, double ms,
                                  uint64_t rows, uint64_t wire_bytes) {
  std::string key = NormalizeSql(sql);
  std::lock_guard<std::mutex> lock(mu_);
  ComponentProfile& component = components_[key];
  bool first = component.query.count == 0;
  component.query.Record(ms, alpha_);
  double a = first ? 1.0 : alpha_;
  component.rows_ewma =
      a * static_cast<double>(rows) + (1 - a) * component.rows_ewma;
  component.wire_bytes_ewma =
      a * static_cast<double>(wire_bytes) + (1 - a) * component.wire_bytes_ewma;
  Bump();
}

void WorkloadProfile::RecordBind(std::string_view sql, double ms) {
  std::string key = NormalizeSql(sql);
  std::lock_guard<std::mutex> lock(mu_);
  components_[key].bind.Record(ms, alpha_);
  Bump();
}

void WorkloadProfile::RecordTag(std::string_view sql, double ms) {
  std::string key = NormalizeSql(sql);
  std::lock_guard<std::mutex> lock(mu_);
  components_[key].tag.Record(ms, alpha_);
  Bump();
}

std::optional<ComponentProfile> WorkloadProfile::Lookup(
    std::string_view sql) const {
  std::string key = NormalizeSql(sql);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = components_.find(key);
  if (it == components_.end()) return std::nullopt;
  return it->second;
}

size_t WorkloadProfile::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return components_.size();
}

uint64_t WorkloadProfile::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::string WorkloadProfile::ToJson() const {
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"version\":1,\"alpha\":" << FormatDouble(alpha_)
      << ",\"records\":" << records_ << ",\"components\":[";
  bool first = true;
  for (const auto& [sql, component] : components_) {
    if (!first) out << ',';
    first = false;
    out << "{\"sql\":\"" << EscapeKey(sql)
        << "\",\"rows_ewma\":" << FormatDouble(component.rows_ewma)
        << ",\"wire_bytes_ewma\":" << FormatDouble(component.wire_bytes_ewma)
        << ',';
    WritePhase(out, "query", component.query);
    out << ',';
    WritePhase(out, "bind", component.bind);
    out << ',';
    WritePhase(out, "tag", component.tag);
    out << '}';
  }
  out << "]}\n";
  return out.str();
}

Status WorkloadProfile::FromJson(std::string_view json) {
  JsonParser parser(json);
  auto parsed = parser.Parse();
  SILK_RETURN_IF_ERROR(parsed.status());
  const JsonValue& root = *parsed;
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("profile JSON: root must be an object");
  }
  SILK_ASSIGN_OR_RETURN(double version, NumberField(root, "version"));
  if (version != 1) {
    return Status::InvalidArgument("profile JSON: unsupported version " +
                                   FormatDouble(version));
  }
  const JsonValue* components = root.Find("components");
  if (components == nullptr ||
      components->kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(
        "profile JSON: missing 'components' array");
  }
  std::map<std::string, ComponentProfile> loaded;
  uint64_t records = 0;
  SILK_ASSIGN_OR_RETURN(double records_field, NumberField(root, "records"));
  if (records_field < 0) {
    return Status::InvalidArgument("profile JSON: negative record count");
  }
  records = static_cast<uint64_t>(records_field);
  for (const JsonValue& entry : components->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument(
          "profile JSON: component must be an object");
    }
    const JsonValue* sql = entry.Find("sql");
    if (sql == nullptr || sql->kind != JsonValue::Kind::kString) {
      return Status::InvalidArgument(
          "profile JSON: component missing 'sql' string");
    }
    ComponentProfile component;
    SILK_ASSIGN_OR_RETURN(component.rows_ewma,
                          NumberField(entry, "rows_ewma"));
    SILK_ASSIGN_OR_RETURN(component.wire_bytes_ewma,
                          NumberField(entry, "wire_bytes_ewma"));
    SILK_RETURN_IF_ERROR(LoadPhase(entry, "query", &component.query));
    SILK_RETURN_IF_ERROR(LoadPhase(entry, "bind", &component.bind));
    SILK_RETURN_IF_ERROR(LoadPhase(entry, "tag", &component.tag));
    loaded[NormalizeSql(sql->str)] = std::move(component);
  }
  std::lock_guard<std::mutex> lock(mu_);
  components_ = std::move(loaded);
  records_ = records;
  if (keys_ != nullptr) keys_->Set(static_cast<int64_t>(components_.size()));
  return Status::OK();
}

Status WorkloadProfile::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open profile file for write: " + path);
  }
  out << ToJson();
  out.flush();
  if (!out) return Status::Internal("short write to profile file: " + path);
  return Status::OK();
}

Status WorkloadProfile::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open profile file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromJson(buffer.str());
}

}  // namespace silkroute::obs
