// Low-overhead metrics registry for the publishing stack: counters,
// gauges, and log2-bucket histograms, all lock-free on the write path.
//
// The registry owns named metric objects; get-or-create takes a mutex, so
// hot paths resolve their metrics once (construction, first use) and then
// update through stable pointers — pointers stay valid for the registry's
// lifetime. Readers take Snapshot(), a point-in-time copy assembled from
// relaxed atomic loads: a reader never blocks a writer, and a writer never
// blocks a reader beyond the name-map mutex held during the copy.
//
// Naming scheme (DESIGN.md §9): `silkroute_<subsystem>_<what>[_total|_us]`
// with Prometheus-style labels folded into the name, e.g.
// `silkroute_breaker_trips_total{table="Orders"}`. LabeledName() builds
// such names; the exporters (obs/export.h) understand them.
//
// Every instrumented component takes an optional `MetricsRegistry*` and
// skips all accounting when it is null, keeping disabled-mode overhead to
// a pointer test.
#ifndef SILKROUTE_OBS_METRICS_H_
#define SILKROUTE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace silkroute::obs {

/// Monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous value (queue depths, buffered bytes, breaker states).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

struct HistogramSnapshot;

/// Log2-bucket histogram over non-negative integer samples (microseconds
/// for latencies, bytes for sizes). Bucket 0 holds the value 0; bucket i
/// (1..63) holds values in [2^(i-1), 2^i). Recording is a handful of
/// relaxed atomic updates; percentiles are estimated from the buckets at
/// snapshot time (upper bound of the containing bucket, clamped to the
/// observed max).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(uint64_t value);
  /// Clamps negatives to 0 and rounds to the nearest integer sample.
  void RecordMicros(double us) {
    Record(us <= 0 ? 0 : static_cast<uint64_t>(us + 0.5));
  }

  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when empty
  uint64_t max = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper-bound estimate of the p-quantile (p in [0,1]) from the log2
  /// buckets, clamped to [min, max].
  double Percentile(double p) const;
};

/// Point-in-time copy of every registered metric, safe to read at leisure.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the returned pointer is stable for the registry's
  /// lifetime. Resolve once, update often.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// One consistent-enough copy of everything: counters/gauges are single
  /// relaxed loads, histograms copy their bucket arrays. All exporters
  /// read from this, never from live metrics.
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;  // guards the name maps only
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Escapes a label value per the Prometheus exposition format: `\` -> `\\`,
/// `"` -> `\"`, newline -> `\n` (carriage return is folded into `\n` too —
/// the format has no escape for it and a raw CR would tear the line).
std::string EscapeLabelValue(std::string_view value);

/// Folds labels into a metric name, Prometheus-style:
/// LabeledName("silkroute_breaker_trips_total", {{"table", "Orders"}})
///   -> `silkroute_breaker_trips_total{table="Orders"}`.
/// Label values are escaped with EscapeLabelValue.
std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

}  // namespace silkroute::obs

#endif  // SILKROUTE_OBS_METRICS_H_
