// Exporters for the observability layer. All three read only from
// point-in-time copies (CollectingSink::spans(), MetricsRegistry
// ::Snapshot()) so exporting never blocks the instrumented hot paths.
//
//  - WriteTraceJsonl: one JSON object per line per span; machine-checkable
//    (tools/trace_check) and diffable.
//  - WritePrometheusText: text exposition format. Registry names may embed
//    labels (`base{k="v"}`, built by LabeledName); histograms expand to
//    cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
//  - WriteStatsTable: the human-readable `--stats` table for the CLI.
#ifndef SILKROUTE_OBS_EXPORT_H_
#define SILKROUTE_OBS_EXPORT_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace silkroute::obs {

/// JSON-escapes `in` (quotes, backslashes, control characters) without the
/// surrounding quotes.
std::string JsonEscape(std::string_view in);

/// One span as a single-line JSON object:
/// {"id":"1.2","parent":"1","name":"component","start_ns":...,"end_ns":...,
///  "duration_ms":...,"annotations":{"table":"Orders",...}}
void WriteSpanJsonl(std::ostream& out, const Span& span);

/// All spans, one per line, in sink order (completion order).
void WriteTraceJsonl(std::ostream& out, const std::vector<Span>& spans);

/// Prometheus text exposition of a metrics snapshot. Series sharing a base
/// name emit one # TYPE line; histogram quantiles are exported as
/// pre-computed gauges alongside the cumulative buckets.
void WritePrometheusText(std::ostream& out, const MetricsSnapshot& snapshot);

/// Human-readable summary table: counters, gauges, then histograms with
/// count/mean/p50/p95/p99/max.
void WriteStatsTable(std::ostream& out, const MetricsSnapshot& snapshot);

}  // namespace silkroute::obs

#endif  // SILKROUTE_OBS_EXPORT_H_
