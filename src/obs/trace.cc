#include "obs/trace.h"

#include <cstdio>

namespace silkroute::obs {

namespace {
thread_local SpanHandle* g_current_span = nullptr;
}  // namespace

void SpanHandle::AnnotateMs(std::string key, double ms) {
  if (state_ == nullptr) return;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  Annotate(std::move(key), buffer);
}

void SpanHandle::End() {
  if (state_ == nullptr || tracer_ == nullptr) {
    state_.reset();
    return;
  }
  state_->span.end_ns = tracer_->NowNs();
  tracer_->Emit(std::move(state_->span));
  state_.reset();
  tracer_ = nullptr;
}

SpanHandle Tracer::StartRoot(std::string_view name) {
  SpanHandle handle;
  handle.tracer_ = this;
  handle.state_ = std::make_unique<SpanHandle::State>();
  handle.state_->span.id = std::to_string(
      next_root_.fetch_add(1, std::memory_order_relaxed) + 1);
  handle.state_->span.name = std::string(name);
  handle.state_->span.start_ns = NowNs();
  return handle;
}

SpanHandle Tracer::StartChild(SpanHandle* parent, std::string_view name) {
  if (parent == nullptr || !parent->recording()) return StartRoot(name);
  SpanHandle handle;
  handle.tracer_ = this;
  handle.state_ = std::make_unique<SpanHandle::State>();
  uint32_t ordinal =
      parent->state_->next_child.fetch_add(1, std::memory_order_relaxed) + 1;
  handle.state_->span.parent_id = parent->state_->span.id;
  handle.state_->span.id =
      handle.state_->span.parent_id + "." + std::to_string(ordinal);
  handle.state_->span.name = std::string(name);
  handle.state_->span.start_ns = NowNs();
  return handle;
}

SpanHandle* CurrentSpan() { return g_current_span; }

void AnnotateCurrent(std::string key, std::string value) {
  if (g_current_span == nullptr) return;
  g_current_span->Annotate(std::move(key), std::move(value));
}

ScopedCurrentSpan::ScopedCurrentSpan(SpanHandle* span) {
  if (span == nullptr || !span->recording()) return;
  prev_ = g_current_span;
  g_current_span = span;
  active_ = true;
}

ScopedCurrentSpan::~ScopedCurrentSpan() {
  if (active_) g_current_span = prev_;
}

}  // namespace silkroute::obs
