#include "obs/trace.h"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace silkroute::obs {

namespace {
thread_local SpanHandle* g_current_span = nullptr;
}  // namespace

void SpanHandle::AnnotateMs(std::string key, double ms) {
  if (state_ == nullptr) return;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  Annotate(std::move(key), buffer);
}

void SpanHandle::End() {
  if (state_ == nullptr || tracer_ == nullptr) {
    state_.reset();
    return;
  }
  state_->span.end_ns = tracer_->NowNs();
  tracer_->Emit(std::move(state_->span));
  state_.reset();
  tracer_ = nullptr;
}

SpanHandle Tracer::StartRoot(std::string_view name) {
  SpanHandle handle;
  handle.tracer_ = this;
  handle.state_ = std::make_unique<SpanHandle::State>();
  handle.state_->span.id = std::to_string(
      next_root_.fetch_add(1, std::memory_order_relaxed) + 1);
  handle.state_->span.name = std::string(name);
  handle.state_->span.start_ns = NowNs();
  return handle;
}

SpanHandle Tracer::StartChild(SpanHandle* parent, std::string_view name) {
  if (parent == nullptr || !parent->recording()) return StartRoot(name);
  SpanHandle handle;
  handle.tracer_ = this;
  handle.state_ = std::make_unique<SpanHandle::State>();
  uint32_t ordinal =
      parent->state_->next_child.fetch_add(1, std::memory_order_relaxed) + 1;
  handle.state_->span.parent_id = parent->state_->span.id;
  handle.state_->span.id =
      handle.state_->span.parent_id + "." + std::to_string(ordinal);
  handle.state_->span.name = std::string(name);
  handle.state_->span.start_ns = NowNs();
  return handle;
}

void Tracer::StitchSubtree(SpanHandle* parent, std::vector<Span> spans,
                           uint64_t offset_ns) {
  if (!enabled() || parent == nullptr || !parent->recording() || spans.empty())
    return;
  std::unordered_set<std::string> present;
  present.reserve(spans.size());
  for (const Span& span : spans) present.insert(span.id);

  // Subtree roots take fresh child ordinals from `parent`, in batch order,
  // so stitching is deterministic for a deterministic batch.
  struct Prefix {
    std::string old_root;
    std::string fresh;
  };
  std::vector<Prefix> prefixes;
  for (const Span& span : spans) {
    if (span.parent_id.empty() || present.count(span.parent_id) == 0) {
      uint32_t ordinal = parent->state_->next_child.fetch_add(
                             1, std::memory_order_relaxed) +
                         1;
      prefixes.push_back(
          Prefix{span.id, parent->state_->span.id + "." +
                              std::to_string(ordinal)});
    }
  }

  // Rewrite every id under its longest matching root prefix; ids that fall
  // under no root (a malformed batch) are dropped below.
  std::unordered_map<std::string, std::string> rewritten;
  rewritten.reserve(spans.size());
  for (const Span& span : spans) {
    const Prefix* best = nullptr;
    for (const Prefix& prefix : prefixes) {
      bool matches = span.id == prefix.old_root ||
                     (span.id.size() > prefix.old_root.size() &&
                      span.id.compare(0, prefix.old_root.size(),
                                      prefix.old_root) == 0 &&
                      span.id[prefix.old_root.size()] == '.');
      if (matches &&
          (best == nullptr || prefix.old_root.size() > best->old_root.size())) {
        best = &prefix;
      }
    }
    if (best == nullptr) continue;
    rewritten.emplace(span.id,
                      best->fresh + span.id.substr(best->old_root.size()));
  }

  const std::string parent_id = parent->state_->span.id;
  for (Span& span : spans) {
    auto id_it = rewritten.find(span.id);
    if (id_it == rewritten.end()) continue;
    std::string new_parent;
    if (span.parent_id.empty() || present.count(span.parent_id) == 0) {
      new_parent = parent_id;
    } else {
      auto parent_it = rewritten.find(span.parent_id);
      if (parent_it == rewritten.end()) continue;  // never emit dangling
      new_parent = parent_it->second;
    }
    Span out = std::move(span);
    out.id = id_it->second;
    out.parent_id = std::move(new_parent);
    out.start_ns += offset_ns;
    out.end_ns += offset_ns;
    Emit(std::move(out));
  }
}

SpanHandle* CurrentSpan() { return g_current_span; }

void AnnotateCurrent(std::string key, std::string value) {
  if (g_current_span == nullptr) return;
  g_current_span->Annotate(std::move(key), std::move(value));
}

ScopedCurrentSpan::ScopedCurrentSpan(SpanHandle* span) {
  if (span == nullptr || !span->recording()) return;
  prev_ = g_current_span;
  g_current_span = span;
  active_ = true;
}

ScopedCurrentSpan::~ScopedCurrentSpan() {
  if (active_) g_current_span = prev_;
}

}  // namespace silkroute::obs
