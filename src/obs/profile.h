// Observed-cost workload profile (DESIGN.md §14): measured per-component
// query / bind / tag cost, keyed by normalized SQL text, persisted across
// runs as JSON. This is the measurement half of the self-tuning planner:
// the publishing layers record real phase timings here, `--profile-out`
// persists them, and a later `--profile-in` run overlays them on the
// synthetic cost oracle (engine::MeasuredCostOracle) so genPlan re-runs
// price plans by what the workload actually cost.
//
// Per key the profile keeps, for each phase, an EWMA of the cost in
// milliseconds (alpha-weighted toward recent runs), a total, a sample
// count, and a log2 histogram over microseconds — enough to both overlay
// a point estimate on the oracle and inspect the distribution. Row and
// wire-byte EWMAs ride along on the query phase for cardinality overlays.
//
// Thread-safe: the publishing service records from many workers. All
// methods take one mutex; recording is a map lookup plus a handful of
// arithmetic ops, far off the per-tuple hot path.
#ifndef SILKROUTE_OBS_PROFILE_H_
#define SILKROUTE_OBS_PROFILE_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace silkroute::obs {

/// Canonical form of a SQL text for profile keying: whitespace runs
/// collapse to one space, leading/trailing whitespace dropped. Formatting
/// differences between plan re-runs must not split a component's history.
/// The one definition lives in common/string_util.h and is shared with the
/// component-result cache's key (engine/result_cache.h), so profile keys
/// and cache keys cannot diverge.
using silkroute::NormalizeSql;

/// Per-phase cost statistics. Histogram buckets are log2 over integer
/// microseconds: bucket 0 holds 0, bucket i holds [2^(i-1), 2^i) us.
struct PhaseProfile {
  static constexpr size_t kNumBuckets = 32;

  double ewma_ms = 0;
  double total_ms = 0;
  uint64_t count = 0;
  std::array<uint64_t, kNumBuckets> hist{};

  void Record(double ms, double alpha);
};

struct ComponentProfile {
  PhaseProfile query;
  PhaseProfile bind;
  PhaseProfile tag;  // tag cost apportioned to this component by row share
  double rows_ewma = 0;
  double wire_bytes_ewma = 0;
};

class WorkloadProfile {
 public:
  /// `alpha` weights the EWMAs toward recent samples. An optional registry
  /// receives live `silkroute_profile_*` series (records counter, keys
  /// gauge) so the scrape endpoints can watch the profile fill.
  explicit WorkloadProfile(double alpha = 0.3,
                           MetricsRegistry* registry = nullptr);

  WorkloadProfile(const WorkloadProfile&) = delete;
  WorkloadProfile& operator=(const WorkloadProfile&) = delete;

  void RecordQuery(std::string_view sql, double ms, uint64_t rows,
                   uint64_t wire_bytes);
  void RecordBind(std::string_view sql, double ms);
  void RecordTag(std::string_view sql, double ms);

  /// Profile for a component query, if any samples exist (normalizes `sql`
  /// before lookup). A point-in-time copy.
  std::optional<ComponentProfile> Lookup(std::string_view sql) const;

  size_t size() const;
  uint64_t records() const;
  double alpha() const { return alpha_; }

  /// JSON round-trip. The schema is documented in DESIGN.md §14; Load/
  /// FromJson replace the current contents and reject structural defects
  /// with kInvalidArgument rather than half-loading.
  std::string ToJson() const;
  Status FromJson(std::string_view json);
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  void Bump();  // registry mirrors; callers hold mu_

  const double alpha_;
  MetricsRegistry* const registry_;
  Counter* records_total_ = nullptr;
  Gauge* keys_ = nullptr;

  mutable std::mutex mu_;
  std::map<std::string, ComponentProfile> components_;
  uint64_t records_ = 0;
};

}  // namespace silkroute::obs

#endif  // SILKROUTE_OBS_PROFILE_H_
