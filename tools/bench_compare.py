#!/usr/bin/env python3
"""Perf-regression guard over the BENCH_*.json reports.

Usage: bench_compare.py BASELINE_DIR CANDIDATE_DIR [--tolerance 0.25]

Compares every BENCH_*.json present in BASELINE_DIR against the same file
in CANDIDATE_DIR. Two formats are understood:

  - google-benchmark JSON ({"benchmarks": [{"name", "real_time", ...}]}),
    written by bench_engine_micro;
  - BenchReport JSON ({"bench": ..., "rows": [{"name", "values": {...}}]}),
    written by the experiment benches (bench_greedy_plans etc.).

Absolute wall times are not comparable across machines (the checked-in
baseline comes from a different box than the CI runner), so timings are
normalized by a per-file *machine-speed factor*: the median of the
candidate/baseline time ratios across all common rows. A row regresses
when its candidate time exceeds its baseline time scaled by that factor
by more than the tolerance — i.e. it got slower *relative to how the rest
of the file moved on this machine*. The median is robust where a single
anchor row is not: one row speeding up (or jittering — fast rows swing
±15% at CI's short --benchmark_min_time) neither masks nor invents
regressions in every other row of its file. Only slower is flagged;
getting faster is never an error.

Deterministic counters (rows, wire_bytes, streams, ...) must stay within
the tolerance band of the baseline absolutely: the workloads are seeded,
so a drifting counter means the engine changed behavior, not the machine.
Machine-dependent series (throughput, shed rates) are skipped.

A row present in the baseline but missing from the candidate fails: a
deleted benchmark silently retires its regression coverage.

Exit status: 0 clean, 1 regression or structural mismatch.
"""

import argparse
import io
import json
import os
import sys

# Per-file tolerance floors. The service-load report includes a remote
# scenario over a real loopback socket; kernel scheduling and RTT variance
# there dwarf the compiled-code noise the default band is sized for. The
# effective tolerance for a file is max(--tolerance, this floor).
FILE_TOLERANCE = {
    "BENCH_service_load.json": 0.6,
    # The warm-doc row is a single map lookup (sub-millisecond), so its
    # ratio against the cold anchor is dominated by constant overhead that
    # varies across machines. A warm republish that stopped hitting the
    # document cache would blow past even this band (its ratio jumps from
    # ~0.01 to ~1.0), which is the regression this row exists to catch.
    "BENCH_cache.json": 1.5,
}

# BenchReport value keys that vary run-to-run / machine-to-machine and
# carry no regression signal of their own.
NONDETERMINISTIC_KEYS = {
    "throughput_rps",
    "shed",
    "completed",
    "timed_out",
    "failed",
    "breaker_trips",
    "breaker_fast_fails",
    # Rank positions within a sort of 512 plans by *measured* wall time:
    # plans with near-identical cost reshuffle freely run to run, so a
    # rank is scheduling noise, not an engine-behavior counter.
    "worst_rank",
    "in_top_2x",
}


class ReportError(Exception):
    """A report file that cannot be compared (missing/empty/corrupt)."""


def load_rows(path):
    """Returns (ordered row names, {name: {key: value}}, {name: time}).

    Raises ReportError (not a stack trace) when the file is missing, empty,
    or not valid JSON — a truncated bench run must fail the comparison with
    a diagnosable one-liner, not a traceback.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        raise ReportError(f"{path}: unreadable ({e.strerror})") from e
    if not text.strip():
        raise ReportError(
            f"{path}: empty report (bench crashed or was interrupted?)"
        )
    try:
        doc = json.load(io.StringIO(text))
    except json.JSONDecodeError as e:
        raise ReportError(f"{path}: invalid JSON at line {e.lineno}: {e.msg}")
    if not isinstance(doc, dict):
        raise ReportError(f"{path}: expected a JSON object at top level")
    names, values, times = [], {}, {}
    if "benchmarks" in doc:  # google-benchmark schema
        for row in doc["benchmarks"]:
            if row.get("run_type") == "aggregate":
                continue
            name = row["name"]
            names.append(name)
            values[name] = {}
            times[name] = float(row["real_time"])
    else:  # BenchReport schema
        for row in doc.get("rows", []):
            name = row["name"]
            names.append(name)
            vals = dict(row.get("values", {}))
            # *_ms keys are timings; everything else is a counter.
            times[name] = sum(
                v for k, v in vals.items() if k.endswith("_ms")
            )
            values[name] = {
                k: float(v)
                for k, v in vals.items()
                if not k.endswith("_ms") and k not in NONDETERMINISTIC_KEYS
            }
    return names, values, times


def compare_file(name, base_path, cand_path, tolerance):
    base_names, base_values, base_times = load_rows(base_path)
    _, cand_values, cand_times = load_rows(cand_path)

    failures = []
    missing = [n for n in base_names if n not in cand_times]
    for n in missing:
        failures.append(f"{name}: row '{n}' missing from candidate")
    common = [n for n in base_names if n in cand_times]
    if not common:
        failures.append(f"{name}: no rows in common with baseline")
        return failures

    # Machine-speed factor: median candidate/baseline time ratio over the
    # file's rows. Robust to any single row legitimately changing speed.
    ratios = sorted(
        cand_times[n] / base_times[n]
        for n in common
        if base_times[n] > 0 and cand_times[n] > 0
    )
    scale = ratios[len(ratios) // 2] if ratios else 1.0

    for n in common:
        if base_times[n] > 0 and cand_times[n] > 0 and scale > 0:
            rel = cand_times[n] / (base_times[n] * scale)
            if rel > 1 + tolerance:
                failures.append(
                    f"{name}: '{n}' slowed {rel:.2f}x "
                    f"vs the file's median speed factor {scale:.3f} "
                    f"(baseline {base_times[n]:.0f}, "
                    f"candidate {cand_times[n]:.0f})"
                )
        for key, base_val in base_values[n].items():
            cand_val = cand_values.get(n, {}).get(key)
            if cand_val is None:
                failures.append(f"{name}: '{n}' lost counter '{key}'")
                continue
            band = abs(base_val) * tolerance
            if abs(cand_val - base_val) > band:
                failures.append(
                    f"{name}: '{n}' counter '{key}' drifted "
                    f"{base_val:.6g} -> {cand_val:.6g} "
                    f"(> {tolerance:.0%} band)"
                )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir")
    parser.add_argument("candidate_dir")
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args()

    base_files = sorted(
        f
        for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not base_files:
        print(f"bench_compare: no BENCH_*.json in {args.baseline_dir}",
              file=sys.stderr)
        return 1

    failures = []
    compared = 0
    for f in base_files:
        cand_path = os.path.join(args.candidate_dir, f)
        if not os.path.exists(cand_path):
            # A missing candidate report silently retires its regression
            # coverage — hard failure, same as a missing row.
            failures.append(
                f"{f}: not produced by candidate "
                f"(expected {cand_path}; did its bench fail to run?)"
            )
            continue
        tolerance = max(args.tolerance, FILE_TOLERANCE.get(f, 0.0))
        print(f"bench_compare: {f}: tolerance {tolerance:.0%}"
              + (" (per-file floor)" if tolerance > args.tolerance else ""))
        try:
            failures += compare_file(
                f, os.path.join(args.baseline_dir, f), cand_path, tolerance
            )
        except ReportError as e:
            failures.append(str(e))
            continue
        compared += 1

    if compared == 0 and not failures:
        print("bench_compare: no common report files", file=sys.stderr)
        return 1
    for failure in failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    print(
        f"bench_compare: {compared} file(s), "
        f"{len(failures)} regression(s), tolerance {args.tolerance:.0%}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
