// silkroute: the middle-ware as a command-line tool.
//
//   silkroute --schema schema.sql --data dir/ --view view.rxl [options]
//
// Loads a relational database from a DDL file plus per-table CSV files
// (dir/<Table>.csv), compiles the RXL view, and publishes the XML document.
//
// Options:
//   --schema FILE      CREATE TABLE statements (required)
//   --data DIR         directory with <Table>.csv files (default: schema dir)
//   --view FILE        RXL view query (required unless --demo)
//   --output FILE      write XML here (default: stdout)
//   --root NAME        wrap the document in this element
//   --strategy S       greedy | unified | partitioned | outer-union
//   --subview PATH     publish only /a[b='x']/c of the view
//   --explain          print the view tree, plan, and SQL; no execution
//   --dtd              print the DTD derived from the view and exit
//   --pretty           indent the XML output
//   --no-reduce        disable view-tree reduction
//   --concurrency N    publish through the concurrent service with N workers
//   --engine-threads N intra-query parallelism: run each component query's
//                      scans/joins/sorts as morsels across N threads (the
//                      output is byte-identical at any N)
//   --deadline-ms D    end-to-end deadline per request (service mode)
//   --requests N       publish the view N times concurrently (service mode)
//   --trace FILE       write the span trace as JSONL (see tools/trace_check)
//   --prom FILE        write metrics in Prometheus text exposition format
//   --stats            print the metrics summary table on stderr
//
// Result cache (DESIGN.md §15):
//   --cache-mb N       cache component-query results and finished documents
//                      under an N-MB byte budget, keyed by table versions;
//                      repeated publishes (--requests) of an unchanged view
//                      are served from cache, byte-identical
//   --cache-stats      print hit/miss/eviction/splice totals on stderr
//                      after publishing (enables a 64 MB cache if --cache-mb
//                      was not given)
//
// Live observability (DESIGN.md §14):
//   --prom-port PORT   serve live Prometheus text exposition over HTTP on
//                      PORT while running (0 = ephemeral; works in serve,
//                      service, and plain publish modes)
//   --prom-port-file F with --prom-port: write the bound scrape port to F
//   --scrape HOST:PORT fetch a running engine server's metrics snapshot
//                      via a kStats wire frame, print it, and exit
//
// Observed-cost workload profile (DESIGN.md §14):
//   --profile-out FILE record per-component query/bind/tag costs while
//                      publishing and save them as JSON to FILE
//   --profile-in FILE  load a recorded profile and overlay its observed
//                      costs on the planner's synthetic estimates, so
//                      genPlan prices component merges by measurement
//                      (also honored by --explain)
//
// Networked federation (DESIGN.md §12):
//   --serve PORT       run as an engine server: load schema+data, answer
//                      wire-protocol SQL requests until SIGINT/SIGTERM
//                      (PORT 0 = ephemeral; no --view needed)
//   --port-file FILE   with --serve: write the bound port to FILE once
//                      listening (how scripts find an ephemeral port)
//   --connect LIST     execute component SQL on the engine server(s) at
//                      the comma-separated host:port list instead of the
//                      local engine; two or more endpoints form a replica
//                      set (health-aware routing + hedged requests,
//                      DESIGN.md §13)
//   --federate LIST    with --connect: route only the comma-separated
//                      tables to the remote ("all" = every table), fall
//                      back to the locally loaded data when it is down
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/timer.h"
#include "engine/measured_oracle.h"
#include "engine/result_cache.h"
#include "net/prom_server.h"
#include "net/remote_executor.h"
#include "net/replica_set.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "relational/csv.h"
#include "service/federated_executor.h"
#include "service/publishing_service.h"
#include "silkroute/dtdgen.h"
#include "silkroute/partition.h"
#include "silkroute/publisher.h"
#include "rxl/parser.h"
#include "silkroute/subview.h"
#include "sql/ddl.h"

using namespace silkroute;
using namespace silkroute::core;

namespace {

struct Args {
  std::string schema;
  std::string data;
  std::string view;
  std::string output;
  std::string root;
  std::string strategy = "greedy";
  std::string subview;
  bool explain = false;
  bool dtd = false;
  bool pretty = false;
  bool reduce = true;
  int concurrency = 0;      // >0: publish through the PublishingService
  int engine_threads = 1;   // intra-query morsel parallelism
  double deadline_ms = 0;   // end-to-end deadline per request
  int requests = 1;         // concurrent copies of the request
  std::string trace;        // JSONL span trace output path
  std::string prom;         // Prometheus text output path
  bool stats = false;       // metrics table on stderr
  int cache_mb = 0;         // >0: result cache with this byte budget (MB)
  bool cache_stats = false; // print cache totals on stderr after the run
  int prom_port = -1;       // >=0: live HTTP scrape endpoint on this port
  std::string prom_port_file;  // write the bound scrape port here
  std::string scrape;       // host:port — print a server's stats and exit
  std::string profile_out;  // save the observed-cost workload profile here
  std::string profile_in;   // overlay this profile on the planner's costs
  int serve = -1;           // >=0: run as an engine server on this port
  std::string port_file;    // with --serve: write the bound port here
  std::string connect;      // host:port of a remote engine server
  std::string federate;     // comma-separated remote tables, or "all"
};

volatile std::sig_atomic_t g_stop = 0;
void HandleStopSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --schema schema.sql --view view.rxl [--data dir] "
               "[--output file] [--root name] [--strategy greedy|unified|"
               "partitioned|outer-union] [--subview path] [--explain] "
               "[--dtd] [--pretty] [--no-reduce] [--concurrency N] "
               "[--engine-threads N] [--deadline-ms D] [--requests N] "
               "[--trace file] [--prom file] [--stats] "
               "[--cache-mb N] [--cache-stats] "
               "[--prom-port port [--prom-port-file file]] "
               "[--scrape host:port] "
               "[--profile-out file] [--profile-in file] "
               "[--serve port [--port-file file]] [--connect host:port"
               "[,host:port...] [--federate table,...|all]]\n";
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

#define CLI_CHECK(expr)                                       \
  do {                                                        \
    auto&& _cli_result = (expr);                              \
    if (!_cli_result.ok()) {                                  \
      std::cerr << "error: " << _cli_result.status() << "\n"; \
      return 1;                                               \
    }                                                         \
  } while (false)

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--schema") {
      args.schema = next() ? argv[i] : "";
    } else if (flag == "--data") {
      args.data = next() ? argv[i] : "";
    } else if (flag == "--view") {
      args.view = next() ? argv[i] : "";
    } else if (flag == "--output") {
      args.output = next() ? argv[i] : "";
    } else if (flag == "--root") {
      args.root = next() ? argv[i] : "";
    } else if (flag == "--strategy") {
      args.strategy = next() ? argv[i] : "";
    } else if (flag == "--subview") {
      args.subview = next() ? argv[i] : "";
    } else if (flag == "--explain") {
      args.explain = true;
    } else if (flag == "--dtd") {
      args.dtd = true;
    } else if (flag == "--pretty") {
      args.pretty = true;
    } else if (flag == "--no-reduce") {
      args.reduce = false;
    } else if (flag == "--concurrency") {
      args.concurrency = next() ? std::atoi(argv[i]) : -1;
      if (args.concurrency <= 0) return Usage(argv[0]);
    } else if (flag == "--engine-threads") {
      args.engine_threads = next() ? std::atoi(argv[i]) : -1;
      if (args.engine_threads <= 0) return Usage(argv[0]);
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = next() ? std::atof(argv[i]) : -1;
      if (args.deadline_ms <= 0) return Usage(argv[0]);
    } else if (flag == "--requests") {
      args.requests = next() ? std::atoi(argv[i]) : -1;
      if (args.requests <= 0) return Usage(argv[0]);
    } else if (flag == "--trace") {
      args.trace = next() ? argv[i] : "";
      if (args.trace.empty()) return Usage(argv[0]);
    } else if (flag == "--prom") {
      args.prom = next() ? argv[i] : "";
      if (args.prom.empty()) return Usage(argv[0]);
    } else if (flag == "--stats") {
      args.stats = true;
    } else if (flag == "--cache-mb") {
      args.cache_mb = next() ? std::atoi(argv[i]) : -1;
      if (args.cache_mb <= 0) return Usage(argv[0]);
    } else if (flag == "--cache-stats") {
      args.cache_stats = true;
    } else if (flag == "--prom-port") {
      args.prom_port = next() ? std::atoi(argv[i]) : -1;
      if (args.prom_port < 0 || args.prom_port > 65535) return Usage(argv[0]);
    } else if (flag == "--prom-port-file") {
      args.prom_port_file = next() ? argv[i] : "";
      if (args.prom_port_file.empty()) return Usage(argv[0]);
    } else if (flag == "--scrape") {
      args.scrape = next() ? argv[i] : "";
      if (args.scrape.find(':') == std::string::npos) return Usage(argv[0]);
    } else if (flag == "--profile-out") {
      args.profile_out = next() ? argv[i] : "";
      if (args.profile_out.empty()) return Usage(argv[0]);
    } else if (flag == "--profile-in") {
      args.profile_in = next() ? argv[i] : "";
      if (args.profile_in.empty()) return Usage(argv[0]);
    } else if (flag == "--serve") {
      args.serve = next() ? std::atoi(argv[i]) : -1;
      if (args.serve < 0 || args.serve > 65535) return Usage(argv[0]);
    } else if (flag == "--port-file") {
      args.port_file = next() ? argv[i] : "";
      if (args.port_file.empty()) return Usage(argv[0]);
    } else if (flag == "--connect") {
      args.connect = next() ? argv[i] : "";
      if (args.connect.find(':') == std::string::npos) return Usage(argv[0]);
    } else if (flag == "--federate") {
      args.federate = next() ? argv[i] : "";
      if (args.federate.empty()) return Usage(argv[0]);
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return Usage(argv[0]);
    }
  }
  // Scrape mode: dial a running engine server, print its live metrics
  // snapshot, exit. Needs no schema or view of its own.
  if (!args.scrape.empty()) {
    size_t colon = args.scrape.find_last_of(':');
    std::string host = args.scrape.substr(0, colon);
    uint16_t port =
        static_cast<uint16_t>(std::atoi(args.scrape.c_str() + colon + 1));
    auto stats = net::FetchServerStats(host, port, /*timeout_ms=*/2000);
    CLI_CHECK(stats);
    std::cout << *stats;
    return 0;
  }

  // A server answers SQL; it never compiles a view of its own.
  if (args.schema.empty()) return Usage(argv[0]);
  if (args.view.empty() && args.serve < 0) return Usage(argv[0]);
  if (!args.federate.empty() && args.connect.empty()) return Usage(argv[0]);

  // 1. Schema.
  Database db;
  {
    auto ddl = ReadFile(args.schema);
    CLI_CHECK(ddl);
    auto created = sql::ExecuteDdl(*ddl, &db);
    CLI_CHECK(created);
    std::cerr << "created " << *created << " table(s)\n";
  }

  // 2. Data (skipped for --explain / --dtd without a data dir).
  std::string data_dir = args.data;
  if (data_dir.empty()) {
    size_t slash = args.schema.find_last_of('/');
    data_dir = slash == std::string::npos ? "." : args.schema.substr(0, slash);
  }
  size_t total_rows = 0;
  Timer load_timer;
  for (const std::string& table : db.catalog().TableNames()) {
    std::string path = data_dir + "/" + table + ".csv";
    std::ifstream probe(path);
    if (!probe.is_open()) continue;
    probe.close();
    auto loaded = LoadCsvFile(path, CsvLoadOptions{}, table, &db);
    CLI_CHECK(loaded);
    total_rows += *loaded;
  }
  const double load_ms = load_timer.ElapsedMillis();
  std::cerr << "loaded " << total_rows << " row(s), "
            << db.TotalByteSize() << " bytes in " << load_ms << " ms\n";

  // Server mode: answer wire-protocol SQL requests over the loaded data
  // until a stop signal. The publisher side of the federation runs
  // elsewhere with --connect.
  if (args.serve >= 0) {
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    obs::MetricsRegistry serve_registry;
    net::EngineServerOptions server_options;
    server_options.port = static_cast<uint16_t>(args.serve);
    server_options.workers =
        args.concurrency > 0 ? static_cast<size_t>(args.concurrency) : 4;
    server_options.engine_threads = args.engine_threads;
    server_options.metrics = &serve_registry;
    net::EngineServer server(&db, server_options);
    auto started = server.Start();
    if (!started.ok()) {
      std::cerr << "error: " << started << "\n";
      return 1;
    }
    // Live scrape endpoint next to the wire listener: HTTP on --prom-port
    // for Prometheus, while kStats frames serve the CLI's --scrape.
    std::unique_ptr<net::PromServer> prom_server;
    if (args.prom_port >= 0) {
      prom_server = std::make_unique<net::PromServer>(
          &serve_registry, server_options.host,
          static_cast<uint16_t>(args.prom_port));
      auto prom_started = prom_server->Start();
      if (!prom_started.ok()) {
        std::cerr << "error: " << prom_started << "\n";
        return 1;
      }
      if (!args.prom_port_file.empty()) {
        std::ofstream prom_port_out(args.prom_port_file);
        if (!prom_port_out.is_open()) {
          std::cerr << "error: cannot write '" << args.prom_port_file
                    << "'\n";
          return 1;
        }
        prom_port_out << prom_server->port() << "\n";
      }
      std::cerr << "prometheus scrape on port " << prom_server->port()
                << "\n";
    }
    if (!args.port_file.empty()) {
      std::ofstream port_out(args.port_file);
      if (!port_out.is_open()) {
        std::cerr << "error: cannot write '" << args.port_file << "'\n";
        return 1;
      }
      port_out << server.port() << "\n";
    }
    std::cerr << "serving on port " << server.port() << "\n";
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (prom_server != nullptr) prom_server->Shutdown();
    server.Shutdown();
    std::cerr << "served " << server.requests_served() << " request(s), "
              << server.requests_failed() << " failed, "
              << server.connections_accepted() << " connection(s)\n";
    return 0;
  }

  // 3. View.
  auto view_text = ReadFile(args.view);
  CLI_CHECK(view_text);
  std::string rxl = *view_text;
  if (!args.subview.empty()) {
    auto parsed = rxl::ParseRxl(rxl);
    CLI_CHECK(parsed);
    auto composed = ComposeSubview(*parsed, args.subview);
    CLI_CHECK(composed);
    rxl = composed->ToString();
  }

  Publisher publisher(&db);
  auto tree = publisher.BuildViewTree(rxl);
  CLI_CHECK(tree);

  if (args.dtd) {
    auto dtd = GenerateDtdText(*tree, args.root);
    CLI_CHECK(dtd);
    std::cout << *dtd;
    return 0;
  }

  PublishOptions options;
  options.document_element = args.root;
  options.pretty = args.pretty;
  options.reduce = args.reduce;
  if (args.strategy == "greedy") {
    options.strategy = PlanStrategy::kGreedy;
  } else if (args.strategy == "unified") {
    options.strategy = PlanStrategy::kUnified;
  } else if (args.strategy == "partitioned") {
    options.strategy = PlanStrategy::kFullyPartitioned;
  } else if (args.strategy == "outer-union") {
    options.strategy = PlanStrategy::kUnified;
    options.style = SqlGenStyle::kOuterUnion;
    options.reduce = false;
  } else {
    std::cerr << "unknown strategy '" << args.strategy << "'\n";
    return Usage(argv[0]);
  }

  // Observability: a collecting tracer when --trace was given, a metrics
  // registry when --stats/--prom/--prom-port were; null pointers keep the
  // whole stack in its compiled-in disabled mode.
  obs::CollectingSink trace_sink;
  obs::Tracer tracer(&trace_sink);
  obs::MetricsRegistry registry;
  obs::Tracer* tracer_ptr = args.trace.empty() ? nullptr : &tracer;
  obs::MetricsRegistry* registry_ptr =
      (args.stats || !args.prom.empty() || args.prom_port >= 0) ? &registry
                                                                : nullptr;
  if (registry_ptr != nullptr) {
    // Bulk-load accounting, captured above before the registry existed.
    registry_ptr->gauge("silkroute_load_ms")
        ->Set(static_cast<int64_t>(load_ms + 0.5));
    registry_ptr->counter("silkroute_load_rows_total")->Add(total_rows);
  }
  auto export_observability = [&]() -> bool {
    if (!args.trace.empty()) {
      std::ofstream trace_out(args.trace);
      if (!trace_out.is_open()) {
        std::cerr << "error: cannot write '" << args.trace << "'\n";
        return false;
      }
      obs::WriteTraceJsonl(trace_out, trace_sink.spans());
      std::cerr << "trace: " << trace_sink.size() << " span(s) -> "
                << args.trace << "\n";
    }
    if (!args.prom.empty()) {
      std::ofstream prom_out(args.prom);
      if (!prom_out.is_open()) {
        std::cerr << "error: cannot write '" << args.prom << "'\n";
        return false;
      }
      obs::WritePrometheusText(prom_out, registry.Snapshot());
    }
    if (args.stats) obs::WriteStatsTable(std::cerr, registry.Snapshot());
    return true;
  };

  // Result cache (DESIGN.md §15): one instance shared by every publish this
  // process runs, so repeated --requests serve warm fragments/documents.
  std::unique_ptr<engine::ResultCache> result_cache;
  if (args.cache_mb > 0 || args.cache_stats) {
    engine::ResultCache::Options cache_options;
    cache_options.budget_bytes =
        static_cast<size_t>(args.cache_mb > 0 ? args.cache_mb : 64) << 20;
    cache_options.metrics = registry_ptr;
    result_cache = std::make_unique<engine::ResultCache>(cache_options);
  }
  auto report_cache = [&] {
    if (result_cache == nullptr || !args.cache_stats) return;
    auto s = result_cache->stats();
    std::cerr << "cache: " << s.hits << " hit(s), " << s.misses
              << " miss(es), " << s.evictions << " eviction(s), " << s.splices
              << " splice(s), " << s.entries << " entr"
              << (s.entries == 1 ? "y" : "ies") << ", " << s.resident_bytes
              << " byte(s) resident\n";
  };

  // Observed-cost overlay: a loaded profile prices plan candidates by what
  // this workload actually cost, falling back to the synthetic estimator
  // for SQL the profile has never seen (DESIGN.md §14).
  std::unique_ptr<obs::WorkloadProfile> profile;
  std::unique_ptr<engine::MeasuredCostOracle> measured_oracle;
  if (!args.profile_in.empty() || !args.profile_out.empty()) {
    profile = std::make_unique<obs::WorkloadProfile>(/*alpha=*/0.3,
                                                     registry_ptr);
    if (!args.profile_in.empty()) {
      auto loaded = profile->Load(args.profile_in);
      if (!loaded.ok()) {
        std::cerr << "error: " << loaded << "\n";
        return 1;
      }
      std::cerr << "profile: " << profile->size() << " component(s) from "
                << args.profile_in << "\n";
      measured_oracle = std::make_unique<engine::MeasuredCostOracle>(
          publisher.estimator(), profile.get());
    }
  }

  if (args.explain) {
    std::cout << "view tree:\n" << tree->ToString() << "\n";
    uint64_t mask;
    if (options.strategy == PlanStrategy::kGreedy) {
      GreedyParams params = options.greedy;
      params.style = options.style;
      params.reduce = options.reduce;
      engine::CostOracle* oracle = measured_oracle != nullptr
                                       ? measured_oracle.get()
                                       : static_cast<engine::CostOracle*>(
                                             publisher.estimator());
      auto plan = GeneratePlanGreedy(*tree, oracle, params);
      CLI_CHECK(plan);
      std::cout << "greedy " << plan->ToString(*tree) << "\n";
      mask = plan->FullMask();
    } else if (options.strategy == PlanStrategy::kFullyPartitioned) {
      mask = 0;
    } else {
      mask = Partition::Unified(*tree).mask();
    }
    auto partition = Partition::FromMask(*tree, mask);
    CLI_CHECK(partition);
    std::cout << "plan: " << partition->ToString() << "\n";
    SqlGenerator gen(&*tree, options.style, options.reduce);
    auto specs = gen.GeneratePlan(*partition);
    CLI_CHECK(specs);
    for (const auto& spec : *specs) {
      auto est = publisher.estimator()->EstimateSql(spec.sql);
      CLI_CHECK(est);
      std::cout << "-- rows~" << static_cast<long long>(est->rows)
                << " cost~" << static_cast<long long>(est->cost) << "\n"
                << spec.sql << "\n";
    }
    return 0;
  }

  std::ofstream file_out;
  std::ostream* out = &std::cout;
  if (!args.output.empty()) {
    file_out.open(args.output);
    if (!file_out.is_open()) {
      std::cerr << "error: cannot write '" << args.output << "'\n";
      return 1;
    }
    out = &file_out;
  }

  // Live scrape endpoint for the publishing side: Prometheus HTTP over the
  // same registry the run records into.
  std::unique_ptr<net::PromServer> prom_server;
  if (args.prom_port >= 0) {
    prom_server = std::make_unique<net::PromServer>(
        &registry, "127.0.0.1", static_cast<uint16_t>(args.prom_port));
    auto prom_started = prom_server->Start();
    if (!prom_started.ok()) {
      std::cerr << "error: " << prom_started << "\n";
      return 1;
    }
    if (!args.prom_port_file.empty()) {
      std::ofstream prom_port_out(args.prom_port_file);
      if (!prom_port_out.is_open()) {
        std::cerr << "error: cannot write '" << args.prom_port_file << "'\n";
        return 1;
      }
      prom_port_out << prom_server->port() << "\n";
    }
    std::cerr << "prometheus scrape on port " << prom_server->port() << "\n";
  }

  // Persist the observed-cost profile (if any) once the run is done.
  auto export_profile = [&]() -> bool {
    if (profile == nullptr || args.profile_out.empty()) return true;
    auto saved = profile->Save(args.profile_out);
    if (!saved.ok()) {
      std::cerr << "error: " << saved << "\n";
      return false;
    }
    std::cerr << "profile: " << profile->size() << " component(s), "
              << profile->records() << " record(s) -> " << args.profile_out
              << "\n";
    return true;
  };

  // Federation: component SQL goes to one remote engine server — or a
  // replica set of them when --connect lists several endpoints —
  // optionally split by table ownership with the local engine as
  // failover target.
  std::unique_ptr<net::RemoteSqlExecutor> remote_executor;
  std::unique_ptr<net::ReplicaSet> replica_set;
  std::unique_ptr<engine::DatabaseExecutor> local_executor;
  std::unique_ptr<service::FederatedExecutor> federated_executor;
  engine::SqlExecutor* executor = nullptr;
  if (!args.connect.empty()) {
    std::vector<net::ReplicaEndpoint> endpoints;
    std::istringstream connect_list(args.connect);
    std::string hostport;
    while (std::getline(connect_list, hostport, ',')) {
      if (hostport.empty()) continue;
      size_t colon = hostport.find_last_of(':');
      if (colon == std::string::npos) return Usage(argv[0]);
      net::ReplicaEndpoint endpoint;
      endpoint.name = "r" + std::to_string(endpoints.size());
      endpoint.host = hostport.substr(0, colon);
      endpoint.port =
          static_cast<uint16_t>(std::atoi(hostport.c_str() + colon + 1));
      endpoints.push_back(std::move(endpoint));
    }
    if (endpoints.empty()) return Usage(argv[0]);
    engine::SqlExecutor* remote = nullptr;
    if (endpoints.size() == 1) {
      net::RemoteExecutorOptions remote_options;
      remote_options.host = endpoints[0].host;
      remote_options.port = endpoints[0].port;
      remote_options.metrics = registry_ptr;
      remote_executor =
          std::make_unique<net::RemoteSqlExecutor>(remote_options);
      remote = remote_executor.get();
    } else {
      net::ReplicaSetOptions set_options;
      set_options.backend = "remote";
      set_options.endpoints = std::move(endpoints);
      set_options.metrics = registry_ptr;
      replica_set = std::make_unique<net::ReplicaSet>(std::move(set_options));
      remote = replica_set.get();
    }
    if (!args.federate.empty()) {
      local_executor = std::make_unique<engine::DatabaseExecutor>(&db);
      service::FederatedBackendSpec spec;
      spec.name = "remote";
      spec.executor = remote;
      if (args.federate != "all") {
        std::istringstream tables(args.federate);
        std::string table;
        while (std::getline(tables, table, ',')) {
          if (!table.empty()) spec.tables.push_back(table);
        }
      }
      service::FederatedExecutorOptions federated_options;
      federated_options.local = local_executor.get();
      federated_options.remotes.push_back(std::move(spec));
      federated_options.metrics = registry_ptr;
      federated_executor = std::make_unique<service::FederatedExecutor>(
          std::move(federated_options));
      executor = federated_executor.get();
    } else {
      executor = remote;
    }
  }

  // Service mode: publish through the concurrent PublishingService with a
  // worker pool, admission control, circuit breakers, and deadlines.
  if (args.concurrency > 0 || args.requests > 1 || args.deadline_ms > 0) {
    service::ServiceOptions service_options;
    service_options.workers =
        args.concurrency > 0 ? static_cast<size_t>(args.concurrency) : 4;
    service_options.default_deadline_ms = args.deadline_ms;
    service_options.engine_threads = args.engine_threads;
    service_options.executor = executor;  // null = built-in local engine
    service_options.tracer = tracer_ptr;
    service_options.metrics_registry = registry_ptr;
    service_options.profile = profile.get();
    service_options.plan_oracle = measured_oracle.get();
    service_options.result_cache = result_cache.get();
    service::PublishingService service(&db, service_options);
    std::vector<service::ServiceRequest> batch(
        static_cast<size_t>(args.requests));
    for (auto& request : batch) {
      request.rxl = rxl;
      request.options = options;
    }
    auto responses = service.PublishAll(std::move(batch));
    int failures = 0;
    for (size_t i = 0; i < responses.size(); ++i) {
      const auto& response = responses[i];
      if (!response.status.ok()) {
        std::cerr << "request " << i << ": error: " << response.status << "\n";
        ++failures;
        continue;
      }
      if (response.result.metrics.timed_out) {
        std::cerr << "request " << i << ": deadline expired after "
                  << response.elapsed_ms << " ms\n";
        ++failures;
        continue;
      }
      std::cerr << "request " << i << ": " << response.xml.size()
                << " bytes in " << response.elapsed_ms << " ms\n";
    }
    auto metrics = service.metrics();
    std::cerr << "service: " << metrics.completed << " completed, "
              << metrics.timed_out << " timed out, " << metrics.failed
              << " failed, " << metrics.admission.shed_requests
              << " shed\n";
    for (const auto& response : responses) {
      if (response.status.ok() && !response.result.metrics.timed_out) {
        *out << response.xml;  // all byte-identical; emit the document once
        break;
      }
    }
    report_cache();
    if (!export_observability()) return 1;
    if (!export_profile()) return 1;
    if (prom_server != nullptr) prom_server->Shutdown();
    return failures == 0 ? 0 : 1;
  }

  options.engine_threads = args.engine_threads;
  options.executor = executor;  // null = built-in local engine
  options.tracer = tracer_ptr;
  options.metrics_registry = registry_ptr;
  options.profile = profile.get();
  options.plan_oracle = measured_oracle.get();
  options.result_cache = result_cache.get();
  auto result = publisher.Publish(rxl, options, out);
  CLI_CHECK(result);
  std::cerr << "published " << result->metrics.xml_bytes << " bytes via "
            << result->metrics.num_streams << " SQL quer"
            << (result->metrics.num_streams == 1 ? "y" : "ies") << " in "
            << result->metrics.total_ms() << " ms\n";
  report_cache();
  if (!export_observability()) return 1;
  if (!export_profile()) return 1;
  if (prom_server != nullptr) prom_server->Shutdown();
  return 0;
}
