#!/bin/sh
# Cross-process tracing smoke (DESIGN.md §14): publish the demo view over a
# real socket with --federate and --trace, validate the stitched trace with
# trace_check, and require at least one server-side subtree — the remote's
# queue-wait/execute/serialize phases hanging under a client attempt span.
# Then the observed-cost loop: record a profile over the same connection
# (--profile-out), feed it back (--profile-in), and require the re-planned
# publish to stay byte-identical.
#
#   trace_federated_smoke.sh CLI_BINARY TRACE_CHECK SCHEMA VIEW WORKDIR
set -e
CLI="$1"
TRACE_CHECK="$2"
SCHEMA="$3"
VIEW="$4"
WORK="$5"

PORTFILE="$WORK/trace_fed_port.txt"
rm -f "$PORTFILE"
"$CLI" --schema "$SCHEMA" --serve 0 --port-file "$PORTFILE" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; \
     wait "$SERVER_PID" 2>/dev/null || true' EXIT

i=0
while [ "$i" -lt 100 ]; do
  [ -s "$PORTFILE" ] && break
  i=$((i + 1))
  sleep 0.1
done
[ -s "$PORTFILE" ] || { echo "server never wrote the port file" >&2; exit 1; }
PORT=$(cat "$PORTFILE")

TRACE="$WORK/trace_fed.jsonl"
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT" --federate all \
  --concurrency 2 --requests 2 --deadline-ms 60000 \
  --trace "$TRACE"
CHECK=$("$TRACE_CHECK" "$TRACE")
echo "$CHECK"
case "$CHECK" in
  *" 0 server subtree(s)"*)
    echo "federated trace has no stitched server subtrees" >&2; exit 1 ;;
  *"server subtree(s)"*) ;;
  *)
    echo "unexpected trace_check output" >&2; exit 1 ;;
esac

# Observed-cost round trip over the same server: the overlay may re-plan,
# but the published document must not change by a byte.
PROFILE="$WORK/trace_fed_profile.json"
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT" --profile-out "$PROFILE" \
  --output "$WORK/trace_fed_baseline.xml"
[ -s "$PROFILE" ] || { echo "profile file not written" >&2; exit 1; }
grep -q '"version":1' "$PROFILE" || {
  echo "profile file lacks the v1 schema marker" >&2; exit 1; }
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT" --profile-in "$PROFILE" \
  --output "$WORK/trace_fed_profiled.xml"
cmp "$WORK/trace_fed_baseline.xml" "$WORK/trace_fed_profiled.xml"
echo "federated trace smoke OK (port $PORT)"
