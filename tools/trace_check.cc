// trace_check: validates a JSONL span trace written by the CLI's --trace
// flag (obs::WriteTraceJsonl). Exits 0 when the trace is well-formed:
//
//  - every line is one complete span object with the expected fields;
//  - span ids are unique and hierarchical: a child's id is its parent's id
//    plus ".<ordinal>", and the parent span is present in the trace;
//  - timestamps are monotonic: end_ns >= start_ns, and a child never
//    starts before its parent (children may END after their parent —
//    degradation follow-ups outlive the failed component's span);
//  - per plan span, the "ms" annotations of its phase:query / phase:bind /
//    phase:tag descendants sum to the plan's query_ms / bind_ms / tag_ms
//    annotations (the trace reproduces the metrics), within 1% plus the
//    %.3f formatting slack;
//  - per "server" span (a remote subtree stitched under a client attempt
//    span, DESIGN.md §14), the "ms" annotations of its direct phase:*
//    children sum to no more than the client-side parent span's duration
//    within tolerance: server-measured work cannot exceed what the client
//    observed for the whole exchange, or the stitch re-based timestamps
//    against the wrong span.
//
// Usage: trace_check FILE   (or "-" for stdin)
//
// The parser covers exactly the JSON subset WriteSpanJsonl emits: a flat
// object of string and number fields plus "annotations" as an array of
// [key, value] string pairs.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace {

struct SpanRec {
  std::string id;
  std::string parent;
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  double duration_ms = 0;
  std::vector<std::pair<std::string, std::string>> annotations;

  const std::string* Find(std::string_view key) const {
    for (const auto& [k, v] : annotations) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

// --- Minimal JSON reader for WriteSpanJsonl's output -----------------------

class LineParser {
 public:
  explicit LineParser(std::string_view line) : in_(line) {}

  bool Parse(SpanRec* span, std::string* error) {
    if (!Expect('{')) return Fail(error, "expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Peek() == '}') {
        ++pos_;
        SkipWs();
        if (pos_ != in_.size()) return Fail(error, "trailing characters");
        return true;
      }
      if (!first && !Expect(',')) return Fail(error, "expected ','");
      first = false;
      std::string key;
      if (!ParseString(&key)) return Fail(error, "expected field name");
      if (!Expect(':')) return Fail(error, "expected ':'");
      if (!ParseValue(key, span)) {
        return Fail(error, "bad value for field '" + key + "'");
      }
    }
  }

 private:
  bool ParseValue(const std::string& key, SpanRec* span) {
    SkipWs();
    if (key == "id") return ParseString(&span->id);
    if (key == "parent") return ParseString(&span->parent);
    if (key == "name") return ParseString(&span->name);
    if (key == "start_ns") return ParseUint(&span->start_ns);
    if (key == "end_ns") return ParseUint(&span->end_ns);
    if (key == "duration_ms") return ParseDouble(&span->duration_ms);
    if (key == "annotations") return ParseAnnotations(&span->annotations);
    return false;  // unknown field: the format grew without updating us
  }

  bool ParseAnnotations(
      std::vector<std::pair<std::string, std::string>>* out) {
    if (!Expect('[')) return false;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Expect('[')) return false;
      std::string key, value;
      if (!ParseString(&key)) return false;
      if (!Expect(',')) return false;
      if (!ParseString(&value)) return false;
      if (!Expect(']')) return false;
      out->emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      if (!Expect(',')) return false;
    }
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (!Expect('"')) return false;
    out->clear();
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= in_.size()) return false;
      char esc = in_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > in_.size()) return false;
          unsigned code = std::strtoul(
              std::string(in_.substr(pos_, 4)).c_str(), nullptr, 16);
          pos_ += 4;
          out->push_back(static_cast<char>(code));  // control chars only
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseUint(uint64_t* out) {
    SkipWs();
    size_t start = pos_;
    while (pos_ < in_.size() && std::isdigit(static_cast<unsigned char>(
                                    in_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::strtoull(std::string(in_.substr(start, pos_ - start)).c_str(),
                         nullptr, 10);
    return true;
  }

  bool ParseDouble(double* out) {
    SkipWs();
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '.' || in_[pos_] == '-' || in_[pos_] == '+' ||
            in_[pos_] == 'e' || in_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::strtod(std::string(in_.substr(start, pos_ - start)).c_str(),
                       nullptr);
    return true;
  }

  char Peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < in_.size() && (in_[pos_] == ' ' || in_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool Expect(char c) {
    SkipWs();
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool Fail(std::string* error, std::string message) {
    *error = std::move(message) + " at offset " + std::to_string(pos_);
    return false;
  }

  std::string_view in_;
  size_t pos_ = 0;
};

// --- Checks ----------------------------------------------------------------

int Problem(size_t line, const std::string& id, const std::string& what) {
  std::cerr << "trace_check: line " << line << " (span '" << id
            << "'): " << what << "\n";
  return 1;
}

/// The phase-vs-plan reconciliation: the sum of `phase_name` descendants'
/// "ms" annotations must reproduce the plan's `plan_key` annotation within
/// 1% plus the per-span %.3f rounding slack.
bool CheckPhaseSum(const SpanRec& plan, const std::vector<SpanRec>& spans,
                   const std::string& phase_name, const std::string& plan_key,
                   size_t plan_line) {
  const std::string* expected_text = plan.Find(plan_key);
  if (expected_text == nullptr) return true;  // older trace; nothing to check
  double expected = std::strtod(expected_text->c_str(), nullptr);
  double sum = 0;
  size_t n = 0;
  std::string prefix = plan.id + ".";
  for (const SpanRec& s : spans) {
    if (s.name != phase_name) continue;
    if (s.id.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string* ms = s.Find("ms");
    if (ms == nullptr) continue;  // failed phase: no measured value
    sum += std::strtod(ms->c_str(), nullptr);
    ++n;
  }
  double tolerance = 0.01 * expected + 0.001 * static_cast<double>(n + 1);
  if (std::fabs(sum - expected) > tolerance) {
    Problem(plan_line, plan.id,
            phase_name + " spans sum to " + std::to_string(sum) +
                " ms but the plan reports " + plan_key + "=" +
                std::to_string(expected));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " trace.jsonl  (or - for stdin)\n";
    return 2;
  }
  std::ifstream file;
  std::istream* in = &std::cin;
  if (std::string_view(argv[1]) != "-") {
    file.open(argv[1]);
    if (!file.is_open()) {
      std::cerr << "trace_check: cannot open '" << argv[1] << "'\n";
      return 2;
    }
    in = &file;
  }

  std::vector<SpanRec> spans;
  std::vector<size_t> lines;  // source line of spans[i]
  std::map<std::string, size_t> by_id;
  std::string line;
  size_t line_no = 0;
  int failures = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    SpanRec span;
    std::string error;
    if (!LineParser(line).Parse(&span, &error)) {
      failures += Problem(line_no, "?", "parse error: " + error);
      continue;
    }
    if (span.id.empty()) failures += Problem(line_no, span.id, "empty id");
    if (span.name.empty()) failures += Problem(line_no, span.id, "empty name");
    if (span.end_ns < span.start_ns) {
      failures += Problem(line_no, span.id, "end_ns before start_ns");
    }
    if (!by_id.emplace(span.id, spans.size()).second) {
      failures += Problem(line_no, span.id, "duplicate span id");
    }
    spans.push_back(std::move(span));
    lines.push_back(line_no);
  }
  if (spans.empty()) {
    std::cerr << "trace_check: no spans\n";
    return 1;
  }

  size_t roots = 0;
  size_t plans = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRec& span = spans[i];
    if (span.parent.empty()) {
      ++roots;
      continue;
    }
    auto it = by_id.find(span.parent);
    if (it == by_id.end()) {
      failures += Problem(lines[i], span.id,
                          "parent '" + span.parent + "' not in trace");
      continue;
    }
    const SpanRec& parent = spans[it->second];
    // Hierarchical ids: the child extends its parent's id by one ordinal.
    std::string prefix = span.parent + ".";
    if (span.id.compare(0, prefix.size(), prefix) != 0 ||
        span.id.find('.', prefix.size()) != std::string::npos) {
      failures += Problem(lines[i], span.id,
                          "id is not parent id '" + span.parent +
                              "' plus one ordinal");
    }
    if (span.start_ns < parent.start_ns) {
      failures += Problem(lines[i], span.id, "starts before its parent");
    }
  }
  if (roots == 0) {
    std::cerr << "trace_check: no root spans\n";
    ++failures;
  }

  // Cross-process reconciliation: a stitched server subtree's measured
  // phase work must fit inside the client-side attempt span it hangs
  // under. 1% + per-span %.3f slack, plus a small absolute allowance for
  // the server's own span bookkeeping between phases.
  size_t servers = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRec& span = spans[i];
    if (span.name != "server") continue;
    ++servers;
    if (span.parent.empty()) continue;  // server-side export, unstitched
    auto it = by_id.find(span.parent);
    if (it == by_id.end()) continue;  // already flagged as dangling above
    const SpanRec& attempt = spans[it->second];
    double sum = 0;
    size_t n = 0;
    for (const SpanRec& s : spans) {
      if (s.parent != span.id) continue;
      if (s.name.compare(0, 6, "phase:") != 0) continue;
      const std::string* ms = s.Find("ms");
      if (ms == nullptr) continue;
      sum += std::strtod(ms->c_str(), nullptr);
      ++n;
    }
    double tolerance = 0.01 * attempt.duration_ms +
                       0.001 * static_cast<double>(n + 1) + 0.5;
    if (sum > attempt.duration_ms + tolerance) {
      failures += Problem(
          lines[i], span.id,
          "server phase spans sum to " + std::to_string(sum) +
              " ms, exceeding the client attempt span's " +
              std::to_string(attempt.duration_ms) + " ms");
    }
  }

  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name != "plan") continue;
    ++plans;
    if (!CheckPhaseSum(spans[i], spans, "phase:query", "query_ms", lines[i])) {
      ++failures;
    }
    if (!CheckPhaseSum(spans[i], spans, "phase:bind", "bind_ms", lines[i])) {
      ++failures;
    }
    if (!CheckPhaseSum(spans[i], spans, "phase:tag", "tag_ms", lines[i])) {
      ++failures;
    }
  }

  if (failures > 0) {
    std::cerr << "trace_check: " << failures << " problem(s) in "
              << spans.size() << " span(s)\n";
    return 1;
  }
  std::cout << "trace ok: " << spans.size() << " span(s), " << roots
            << " root(s), " << plans << " plan(s), " << servers
            << " server subtree(s)\n";
  return 0;
}
