#!/bin/sh
# End-to-end smoke of the networked federation CLI: start two engine
# servers on ephemeral ports, publish the demo view through --connect
# (remote executor), --connect --federate all (failover router), and a
# two-replica --connect host:p1,host:p2 (replica set), and require every
# document to be byte-identical to the local publish. The first server
# also exposes its live scrape endpoints (--prom-port HTTP exposition and
# the kStats wire snapshot behind --scrape); both are scraped after the
# query traffic and must agree on the stable server counters.
#
#   serve_smoke.sh CLI_BINARY SCHEMA VIEW WORKDIR
set -e
CLI="$1"
SCHEMA="$2"
VIEW="$3"
WORK="$4"

PORTFILE="$WORK/serve_port.txt"
PORTFILE2="$WORK/serve_port2.txt"
PROMPORTFILE="$WORK/serve_prom_port.txt"
rm -f "$PORTFILE" "$PORTFILE2" "$PROMPORTFILE"
"$CLI" --schema "$SCHEMA" --serve 0 --port-file "$PORTFILE" \
  --prom-port 0 --prom-port-file "$PROMPORTFILE" &
SERVER_PID=$!
"$CLI" --schema "$SCHEMA" --serve 0 --port-file "$PORTFILE2" &
SERVER2_PID=$!
trap 'kill "$SERVER_PID" "$SERVER2_PID" 2>/dev/null || true; \
     wait "$SERVER_PID" "$SERVER2_PID" 2>/dev/null || true' EXIT

i=0
while [ "$i" -lt 100 ]; do
  [ -s "$PORTFILE" ] && [ -s "$PORTFILE2" ] && [ -s "$PROMPORTFILE" ] && break
  i=$((i + 1))
  sleep 0.1
done
[ -s "$PORTFILE" ] || { echo "server never wrote the port file" >&2; exit 1; }
[ -s "$PORTFILE2" ] || { echo "replica never wrote the port file" >&2; exit 1; }
[ -s "$PROMPORTFILE" ] || { echo "server never wrote the prom port file" >&2; exit 1; }
PORT=$(cat "$PORTFILE")
PORT2=$(cat "$PORTFILE2")
PROMPORT=$(cat "$PROMPORTFILE")

"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --output "$WORK/serve_smoke_local.xml"
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT" --output "$WORK/serve_smoke_remote.xml"
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT" --federate all --concurrency 4 \
  --output "$WORK/serve_smoke_federated.xml"
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT,127.0.0.1:$PORT2" \
  --output "$WORK/serve_smoke_replicas.xml"

cmp "$WORK/serve_smoke_local.xml" "$WORK/serve_smoke_remote.xml"
cmp "$WORK/serve_smoke_local.xml" "$WORK/serve_smoke_federated.xml"
cmp "$WORK/serve_smoke_local.xml" "$WORK/serve_smoke_replicas.xml"

# Live scrape endpoints, after the query traffic above. The HTTP exposition
# and the wire snapshot read the same registry, so the stable counters
# (requests/errors — untouched by the scrapes themselves) must match
# exactly; the request counter must also reflect that queries ran.
python3 -c "import urllib.request, sys; \
  sys.stdout.write(urllib.request.urlopen( \
    'http://127.0.0.1:$PROMPORT/metrics', timeout=10).read().decode())" \
  > "$WORK/serve_smoke_prom.txt"
"$CLI" --scrape "127.0.0.1:$PORT" > "$WORK/serve_smoke_stats.txt"
grep -E "^silkroute_server_(requests|errors)_total " \
  "$WORK/serve_smoke_prom.txt" > "$WORK/serve_smoke_prom_subset.txt"
grep -E "^silkroute_server_(requests|errors)_total " \
  "$WORK/serve_smoke_stats.txt" > "$WORK/serve_smoke_stats_subset.txt"
cmp "$WORK/serve_smoke_prom_subset.txt" "$WORK/serve_smoke_stats_subset.txt"
REQUESTS=$(sed -n 's/^silkroute_server_requests_total \([0-9]*\)$/\1/p' \
  "$WORK/serve_smoke_stats_subset.txt")
[ -n "$REQUESTS" ] && [ "$REQUESTS" -gt 0 ] || {
  echo "scrape shows no served requests (got '$REQUESTS')" >&2; exit 1; }
echo "serve smoke OK (ports $PORT,$PORT2; prom $PROMPORT; $REQUESTS requests)"
