#!/bin/sh
# End-to-end smoke of the networked federation CLI: start an engine server
# on an ephemeral port, publish the demo view through --connect (remote
# executor) and --connect --federate all (failover router), and require
# both documents to be byte-identical to the local publish.
#
#   serve_smoke.sh CLI_BINARY SCHEMA VIEW WORKDIR
set -e
CLI="$1"
SCHEMA="$2"
VIEW="$3"
WORK="$4"

PORTFILE="$WORK/serve_port.txt"
rm -f "$PORTFILE"
"$CLI" --schema "$SCHEMA" --serve 0 --port-file "$PORTFILE" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true' EXIT

i=0
while [ "$i" -lt 100 ]; do
  [ -s "$PORTFILE" ] && break
  i=$((i + 1))
  sleep 0.1
done
[ -s "$PORTFILE" ] || { echo "server never wrote the port file" >&2; exit 1; }
PORT=$(cat "$PORTFILE")

"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --output "$WORK/serve_smoke_local.xml"
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT" --output "$WORK/serve_smoke_remote.xml"
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT" --federate all --concurrency 4 \
  --output "$WORK/serve_smoke_federated.xml"

cmp "$WORK/serve_smoke_local.xml" "$WORK/serve_smoke_remote.xml"
cmp "$WORK/serve_smoke_local.xml" "$WORK/serve_smoke_federated.xml"
echo "serve smoke OK (port $PORT)"
