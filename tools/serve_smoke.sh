#!/bin/sh
# End-to-end smoke of the networked federation CLI: start two engine
# servers on ephemeral ports, publish the demo view through --connect
# (remote executor), --connect --federate all (failover router), and a
# two-replica --connect host:p1,host:p2 (replica set), and require every
# document to be byte-identical to the local publish.
#
#   serve_smoke.sh CLI_BINARY SCHEMA VIEW WORKDIR
set -e
CLI="$1"
SCHEMA="$2"
VIEW="$3"
WORK="$4"

PORTFILE="$WORK/serve_port.txt"
PORTFILE2="$WORK/serve_port2.txt"
rm -f "$PORTFILE" "$PORTFILE2"
"$CLI" --schema "$SCHEMA" --serve 0 --port-file "$PORTFILE" &
SERVER_PID=$!
"$CLI" --schema "$SCHEMA" --serve 0 --port-file "$PORTFILE2" &
SERVER2_PID=$!
trap 'kill "$SERVER_PID" "$SERVER2_PID" 2>/dev/null || true; \
     wait "$SERVER_PID" "$SERVER2_PID" 2>/dev/null || true' EXIT

i=0
while [ "$i" -lt 100 ]; do
  [ -s "$PORTFILE" ] && [ -s "$PORTFILE2" ] && break
  i=$((i + 1))
  sleep 0.1
done
[ -s "$PORTFILE" ] || { echo "server never wrote the port file" >&2; exit 1; }
[ -s "$PORTFILE2" ] || { echo "replica never wrote the port file" >&2; exit 1; }
PORT=$(cat "$PORTFILE")
PORT2=$(cat "$PORTFILE2")

"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --output "$WORK/serve_smoke_local.xml"
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT" --output "$WORK/serve_smoke_remote.xml"
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT" --federate all --concurrency 4 \
  --output "$WORK/serve_smoke_federated.xml"
"$CLI" --schema "$SCHEMA" --view "$VIEW" --root league \
  --connect "127.0.0.1:$PORT,127.0.0.1:$PORT2" \
  --output "$WORK/serve_smoke_replicas.xml"

cmp "$WORK/serve_smoke_local.xml" "$WORK/serve_smoke_remote.xml"
cmp "$WORK/serve_smoke_local.xml" "$WORK/serve_smoke_federated.xml"
cmp "$WORK/serve_smoke_local.xml" "$WORK/serve_smoke_replicas.xml"
echo "serve smoke OK (ports $PORT,$PORT2)"
