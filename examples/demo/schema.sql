CREATE TABLE Team (
  teamkey BIGINT PRIMARY KEY,
  name VARCHAR(30),
  city VARCHAR(30)
);
CREATE TABLE Player (
  playerkey BIGINT PRIMARY KEY,
  teamkey BIGINT,
  name VARCHAR(30),
  goals INT,
  FOREIGN KEY (teamkey) REFERENCES Team(teamkey)
);
