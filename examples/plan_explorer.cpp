// Plan explorer: an EXPLAIN-style tool for the middle-ware. Shows, for one
// of the paper's queries, the labeled view tree, the SQL generated for a
// few representative plans with the optimizer's estimates, and the greedy
// algorithm's choice.
//
// Usage: plan_explorer [1|2] [scale]
#include <cstdio>
#include <cstdlib>

#include "silkroute/greedy.h"
#include "silkroute/partition.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tpch/generator.h"

using namespace silkroute;
using namespace silkroute::core;

int main(int argc, char** argv) {
  const int query = argc > 1 ? std::atoi(argv[1]) : 1;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.01;

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = scale;
  if (!tpch::GenerateTpch(config, &db).ok()) return 1;

  Publisher publisher(&db);
  auto tree =
      publisher.BuildViewTree(query == 2 ? Query2Rxl() : Query1Rxl());
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  std::printf("Query %d view tree (labels in brackets):\n%s\n", query,
              tree->ToString().c_str());
  std::printf("%llu possible plans (2^%zu edges)\n\n",
              static_cast<unsigned long long>(uint64_t{1}
                                              << tree->num_edges()),
              tree->num_edges());

  // Explain three canonical plans.
  struct Candidate {
    const char* name;
    uint64_t mask;
  };
  const Candidate candidates[] = {
      {"fully partitioned", 0},
      {"unified", (uint64_t{1} << tree->num_edges()) - 1},
      {"greedy-selected", 0},  // filled below
  };

  GreedyParams params;
  auto greedy = GeneratePlanGreedy(*tree, publisher.estimator(), params);
  if (!greedy.ok()) {
    std::fprintf(stderr, "%s\n", greedy.status().ToString().c_str());
    return 1;
  }
  std::printf("greedy algorithm: %s\n\n", greedy->ToString(*tree).c_str());

  SqlGenerator gen(&*tree, SqlGenStyle::kOuterJoin, /*reduce=*/true);
  for (const Candidate& c : candidates) {
    uint64_t mask =
        std::string(c.name) == "greedy-selected" ? greedy->FullMask() : c.mask;
    auto plan = Partition::FromMask(*tree, mask);
    if (!plan.ok()) return 1;
    std::printf("--- %s (mask %llu): %zu stream(s) ---\n", c.name,
                static_cast<unsigned long long>(mask), plan->num_streams());
    std::printf("components: %s\n", plan->ToString().c_str());
    auto specs = gen.GeneratePlan(*plan);
    if (!specs.ok()) return 1;
    double total_cost = 0;
    for (const auto& spec : *specs) {
      auto est = publisher.estimator()->EstimateSql(spec.sql);
      if (!est.ok()) return 1;
      total_cost += est->cost;
      std::printf("  [rows~%.0f cost~%.0f width~%.0fB] %.120s%s\n",
                  est->rows, est->cost, est->width_bytes, spec.sql.c_str(),
                  spec.sql.size() > 120 ? "..." : "");
    }
    std::printf("  estimated total evaluation cost: %.0f\n\n", total_cost);
  }
  return 0;
}
