// Virtual-view scenario (paper Sec. 1 / Sec. 7): the XML view stays
// virtual; clients ask path queries against it and receive only the
// matching fragment. The middle-ware composes the path with the RXL view
// and runs the (usually simple) resulting SQL.
//
// Usage: virtual_view [path] [scale]
//   default path: /supplier[nation='FRANCE']/part
#include <iostream>
#include <sstream>

#include "rxl/parser.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "silkroute/subview.h"
#include "tpch/generator.h"

using namespace silkroute;
using namespace silkroute::core;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/supplier[nation='FRANCE']/part";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.01;

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = scale;
  if (!tpch::GenerateTpch(config, &db).ok()) return 1;

  // Show the composed RXL the middle-ware will actually evaluate.
  auto view = rxl::ParseRxl(Query1Rxl());
  if (!view.ok()) return 1;
  auto composed = ComposeSubview(*view, path);
  if (!composed.ok()) {
    std::cerr << "composition failed: " << composed.status() << "\n";
    return 1;
  }
  std::cout << "path query " << path << " composes to:\n"
            << composed->ToString() << "\n";

  Publisher publisher(&db);
  PublishOptions options;
  options.document_element = "result";
  options.pretty = true;
  std::ostringstream out;
  auto result = publisher.PublishSubview(Query1Rxl(), path, options, &out);
  if (!result.ok()) {
    std::cerr << "publish failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "fragment (" << result->metrics.num_streams
            << " SQL queries, " << result->metrics.rows << " tuples, "
            << result->metrics.total_ms() << " ms):\n";
  const std::string& xml = out.str();
  std::cout << (xml.size() > 2000 ? xml.substr(0, 2000) + "\n..." : xml)
            << "\n";
  return 0;
}
