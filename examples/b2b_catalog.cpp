// B2B data-exchange scenario from the paper's introduction: a consortium
// of parts suppliers agrees on a public DTD that does NOT match any
// partner's internal schema. This example exports order information grouped
// by nation (not by supplier, the internal layout), demonstrating:
//   - explicit Skolem terms to control element grouping/fusion,
//   - a DTD agreed "by consortium" and validated before exchange,
//   - strategy comparison on the same view.
#include <iostream>
#include <sstream>

#include "silkroute/publisher.h"
#include "tpch/generator.h"
#include "xml/dtd.h"
#include "xml/reader.h"

using namespace silkroute;
using namespace silkroute::core;

namespace {

// Consortium DTD: markets, each with the nation's name, its suppliers, and
// for each supplier the parts on offer.
constexpr const char* kConsortiumDtd = R"(
<!ELEMENT catalog (market*)>
<!ELEMENT market (marketName, seller*)>
<!ELEMENT marketName (#PCDATA)>
<!ELEMENT seller (sellerName, offer*)>
<!ELEMENT sellerName (#PCDATA)>
<!ELEMENT offer (item, quantity)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
)";

// The mapping cannot be derived automatically (paper Sec. 2): element
// names (`market`, `seller`, `offer`) expose nothing of the internal
// schema, and grouping is by nation via explicit Skolem terms.
constexpr const char* kView = R"(
from Nation $n
construct
<market ID=M($n.nationkey)>
  <marketName>$n.name</marketName>
  { from Supplier $s
    where $s.nationkey = $n.nationkey
    construct
    <seller ID=SEL($n.nationkey, $s.suppkey)>
      <sellerName>$s.name</sellerName>
      { from PartSupp $ps, Part $p
        where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey
        construct
        <offer ID=OFF($n.nationkey, $s.suppkey, $ps.partkey)>
          <item>$p.name</item>
          <quantity>$ps.availqty</quantity>
        </offer> }
    </seller> }
</market>
)";

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  Database db;
  tpch::TpchConfig config;
  config.scale_factor = scale;
  if (!tpch::GenerateTpch(config, &db).ok()) return 1;

  Publisher publisher(&db);
  auto tree = publisher.BuildViewTree(kView);
  if (!tree.ok()) {
    std::cerr << tree.status() << "\n";
    return 1;
  }
  std::cout << "consortium view tree:\n" << tree->ToString() << "\n";

  auto dtd = xml::ParseDtd(kConsortiumDtd);
  if (!dtd.ok()) {
    std::cerr << dtd.status() << "\n";
    return 1;
  }

  for (PlanStrategy strategy :
       {PlanStrategy::kGreedy, PlanStrategy::kUnified,
        PlanStrategy::kFullyPartitioned}) {
    PublishOptions options;
    options.strategy = strategy;
    options.document_element = "catalog";
    options.collect_sql = false;
    std::ostringstream out;
    auto result = publisher.Publish(kView, options, &out);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    auto doc = xml::ParseXml(out.str());
    if (!doc.ok()) {
      std::cerr << doc.status() << "\n";
      return 1;
    }
    Status valid = dtd->Validate(**doc);
    const char* name = strategy == PlanStrategy::kGreedy ? "greedy"
                       : strategy == PlanStrategy::kUnified
                           ? "unified"
                           : "fully partitioned";
    std::cout << name << ": " << result->metrics.num_streams
              << " stream(s), " << result->metrics.total_ms() << " ms, "
              << out.str().size() << " bytes, DTD "
              << (valid.ok() ? "valid" : valid.ToString().c_str()) << "\n";
  }

  // Show a fragment of the document.
  PublishOptions options;
  options.document_element = "catalog";
  options.pretty = true;
  std::ostringstream out;
  if (!publisher.Publish(kView, options, &out).ok()) return 1;
  std::cout << "\ndocument fragment:\n"
            << out.str().substr(0, 800) << "...\n";
  return 0;
}
