-- Two-source staff directory: employees and external consultants are
-- integrated into one <person> list per branch (Skolem fusion).
CREATE TABLE Branch (
  branchkey BIGINT PRIMARY KEY,
  city      VARCHAR(30)
);
CREATE TABLE Employee (
  empkey    BIGINT PRIMARY KEY,
  branchkey BIGINT,
  name      VARCHAR(30),
  phone     VARCHAR(20),
  FOREIGN KEY (branchkey) REFERENCES Branch(branchkey)
);
CREATE TABLE Consultant (
  conskey   BIGINT PRIMARY KEY,
  branchkey BIGINT,
  name      VARCHAR(30),
  agency    VARCHAR(30),
  FOREIGN KEY (branchkey) REFERENCES Branch(branchkey)
);
