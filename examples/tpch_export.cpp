// Data-export / warehousing scenario (the paper's target use case):
// materialize the full XML view of a TPC-H database, choosing the
// evaluation strategy from the command line, and validate the document
// against the paper's DTD.
//
// Usage: tpch_export [scale] [strategy] [output-file]
//   scale     TPC-H scale factor (default 0.01, ~0.4 MB)
//   strategy  greedy | unified | partitioned | outer-union (default greedy)
//   output    file path, or "-" for stdout (default /tmp/suppliers.xml)
#include <fstream>
#include <iostream>
#include <sstream>

#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tpch/generator.h"
#include "xml/dtd.h"
#include "xml/reader.h"

using namespace silkroute;
using namespace silkroute::core;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  const std::string strategy = argc > 2 ? argv[2] : "greedy";
  const std::string output = argc > 3 ? argv[3] : "/tmp/suppliers.xml";

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = scale;
  Status gen = tpch::GenerateTpch(config, &db);
  if (!gen.ok()) {
    std::cerr << "generation failed: " << gen << "\n";
    return 1;
  }
  std::cerr << "TPC-H database: " << db.TotalByteSize() << " bytes\n";

  PublishOptions options;
  options.document_element = "suppliers";
  if (strategy == "greedy") {
    options.strategy = PlanStrategy::kGreedy;
  } else if (strategy == "unified") {
    options.strategy = PlanStrategy::kUnified;
  } else if (strategy == "partitioned") {
    options.strategy = PlanStrategy::kFullyPartitioned;
  } else if (strategy == "outer-union") {
    options.strategy = PlanStrategy::kUnified;
    options.style = SqlGenStyle::kOuterUnion;
    options.reduce = false;
  } else {
    std::cerr << "unknown strategy '" << strategy << "'\n";
    return 1;
  }

  Publisher publisher(&db);
  std::ostringstream buffer;
  auto result = publisher.Publish(Query1Rxl(), options, &buffer);
  if (!result.ok()) {
    std::cerr << "publish failed: " << result.status() << "\n";
    return 1;
  }

  const PlanMetrics& m = result->metrics;
  std::cerr << "strategy " << strategy << ": " << m.num_streams
            << " SQL queries, " << m.rows << " tuples, "
            << m.wire_bytes << " wire bytes\n"
            << "  query " << m.query_ms << " ms, bind " << m.bind_ms
            << " ms, tag " << m.tag_ms << " ms, total " << m.total_ms()
            << " ms\n";
  if (options.strategy == PlanStrategy::kGreedy) {
    std::cerr << "  greedy plan: "
              << result->greedy_plan.ToString(
                     *publisher.BuildViewTree(Query1Rxl()))
              << "\n";
  }

  // Validate against the paper's DTD before shipping.
  auto doc = xml::ParseXml(buffer.str());
  if (!doc.ok()) {
    std::cerr << "output is not well-formed: " << doc.status() << "\n";
    return 1;
  }
  auto dtd = xml::ParseDtd(SuppliersDocumentDtd());
  if (!dtd.ok()) {
    std::cerr << "DTD error: " << dtd.status() << "\n";
    return 1;
  }
  Status valid = dtd->Validate(**doc);
  if (!valid.ok()) {
    std::cerr << "document invalid: " << valid << "\n";
    return 1;
  }
  std::cerr << "document is valid against the supplier DTD\n";

  if (output == "-") {
    std::cout << buffer.str();
  } else {
    std::ofstream out(output);
    out << buffer.str();
    std::cerr << "wrote " << buffer.str().size() << " bytes to " << output
              << "\n";
  }
  return 0;
}
