// Quickstart: publish an XML view of a small relational database.
//
//   1. create a database and load rows,
//   2. write an RXL view (SQL-style extraction + XML template),
//   3. publish — SilkRoute picks a plan, generates SQL, and streams XML.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "relational/database.h"
#include "silkroute/publisher.h"

using namespace silkroute;

namespace {

Status LoadExampleData(Database* db) {
  TableSchema team("Team", {{"teamkey", DataType::kInt64, false},
                            {"name", DataType::kString, false},
                            {"city", DataType::kString, false}});
  SILK_RETURN_IF_ERROR(team.SetPrimaryKey({"teamkey"}));
  SILK_RETURN_IF_ERROR(db->CreateTable(team));

  TableSchema player("Player", {{"playerkey", DataType::kInt64, false},
                                {"teamkey", DataType::kInt64, false},
                                {"name", DataType::kString, false},
                                {"goals", DataType::kInt64, false}});
  SILK_RETURN_IF_ERROR(player.SetPrimaryKey({"playerkey"}));
  SILK_RETURN_IF_ERROR(
      player.AddForeignKey({{"teamkey"}, "Team", {"teamkey"}}));
  SILK_RETURN_IF_ERROR(db->CreateTable(player));

  SILK_RETURN_IF_ERROR(db->Insert(
      "Team", Tuple{Value::Int64(1), Value::String("Rovers"),
                    Value::String("Leeds")}));
  SILK_RETURN_IF_ERROR(db->Insert(
      "Team", Tuple{Value::Int64(2), Value::String("Wanderers"),
                    Value::String("Bath")}));
  SILK_RETURN_IF_ERROR(db->Insert(
      "Player", Tuple{Value::Int64(10), Value::Int64(1),
                      Value::String("Ada"), Value::Int64(12)}));
  SILK_RETURN_IF_ERROR(db->Insert(
      "Player", Tuple{Value::Int64(11), Value::Int64(1),
                      Value::String("Grace"), Value::Int64(7)}));
  SILK_RETURN_IF_ERROR(db->Insert(
      "Player", Tuple{Value::Int64(12), Value::Int64(2),
                      Value::String("Edsger"), Value::Int64(3)}));
  return Status::OK();
}

// The view: one <team> element per Team row, with the team's name and a
// nested list of its players. The nested block becomes a left outer join,
// so a team without players would still appear.
constexpr const char* kView = R"(
from Team $t
construct
<team>
  <name>$t.name</name>
  <city>$t.city</city>
  { from Player $p
    where $t.teamkey = $p.teamkey
    construct <player><name>$p.name</name><goals>$p.goals</goals></player> }
</team>
)";

}  // namespace

int main() {
  Database db;
  Status loaded = LoadExampleData(&db);
  if (!loaded.ok()) {
    std::cerr << "load failed: " << loaded << "\n";
    return 1;
  }

  core::Publisher publisher(&db);

  // Inspect the compiled view tree (Skolem terms and edge multiplicities).
  auto tree = publisher.BuildViewTree(kView);
  if (!tree.ok()) {
    std::cerr << "view error: " << tree.status() << "\n";
    return 1;
  }
  std::cout << "view tree:\n" << tree->ToString() << "\n";

  // Publish with the greedy planner (the default strategy).
  core::PublishOptions options;
  options.document_element = "league";
  options.pretty = true;
  auto result = publisher.Publish(kView, options, &std::cout);
  if (!result.ok()) {
    std::cerr << "publish failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "\npublished " << result->metrics.xml_bytes << " bytes via "
            << result->metrics.num_streams << " SQL quer"
            << (result->metrics.num_streams == 1 ? "y" : "ies") << " in "
            << result->metrics.total_ms() << " ms\n";
  for (const auto& sql : result->metrics.sql) {
    std::cout << "  SQL: " << sql << "\n";
  }
  return 0;
}
